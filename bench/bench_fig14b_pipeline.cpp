/**
 * @file
 * Fig. 14b reproduction: the SneakySnake + WFA pipeline (use case 5)
 * on 16 cores, QUETZAL+C vs VEC.
 *
 * Paper: 1.8x, 2.7x, 3.6x, 3.1x for 100bp_1 / 250bp_1 / 10Kbp /
 * 30Kbp respectively.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 14b: SS + WFA pipeline, 16 cores "
                  "(QUETZAL+C vs VEC)");

    TextTable table({"Dataset", "Accepted/pairs", "VEC cyc",
                     "QZ+C cyc", "1-core speedup", "16-core speedup"});
    const auto params = sim::SystemParams::withQuetzal();

    bench::CellBatch batch;
    struct Row
    {
        std::string dataset;
        std::size_t vec, qzc;
    };
    std::vector<Row> rows;
    for (const auto &spec : genomics::datasetCatalog()) {
        const auto ds = std::make_shared<const genomics::PairDataset>(
            algos::mixWithDecoys(
                genomics::makeDataset(spec.name, bench::benchScale())));
        rows.push_back({spec.name,
                        batch.add(AlgoKind::SsWfa, ds, Variant::Vec),
                        batch.add(AlgoKind::SsWfa, ds, Variant::QzC)});
    }
    batch.run();

    for (const Row &row : rows) {
        const auto &vec = batch[row.vec];
        const auto &qzc = batch[row.qzc];
        const double s1 = algos::speedup(vec, qzc);
        // 16-core throughput ratio under the shared-bandwidth model.
        const double tVec = sim::multicoreThroughput(
            vec.demand(), vec.pairs, 16, params);
        const double tQzc = sim::multicoreThroughput(
            qzc.demand(), qzc.pairs, 16, params);
        table.addRow({row.dataset,
                      std::to_string(qzc.accepted) + "/" +
                          std::to_string(qzc.pairs),
                      std::to_string(vec.cycles),
                      std::to_string(qzc.cycles),
                      TextTable::num(s1, 2) + "x",
                      TextTable::num(tQzc / tVec, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper (16 cores): 1.8x, 2.7x, 3.6x, 3.1x across "
                 "the four datasets.\n";
    bench::maybeWriteJson("fig14b_pipeline", batch.outcome());
    return 0;
}
