/**
 * @file
 * Fig. 14b reproduction: the SneakySnake + WFA pipeline (use case 5)
 * on 16 cores, QUETZAL+C vs VEC.
 *
 * Paper: 1.8x, 2.7x, 3.6x, 3.1x for 100bp_1 / 250bp_1 / 10Kbp /
 * 30Kbp respectively.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 14b: SS + WFA pipeline, 16 cores "
                  "(QUETZAL+C vs VEC)");

    TextTable table({"Dataset", "Accepted/pairs", "VEC cyc",
                     "QZ+C cyc", "1-core speedup", "16-core speedup"});
    const auto params = sim::SystemParams::withQuetzal();
    for (const auto &spec : genomics::datasetCatalog()) {
        const auto ds = algos::mixWithDecoys(
            genomics::makeDataset(spec.name, bench::benchScale()));
        const auto vec = bench::runCell(AlgoKind::SsWfa, ds,
                                        Variant::Vec);
        const auto qzc = bench::runCell(AlgoKind::SsWfa, ds,
                                        Variant::QzC);
        const double s1 = algos::speedup(vec, qzc);
        // 16-core throughput ratio under the shared-bandwidth model.
        const double tVec = sim::multicoreThroughput(
            vec.demand(), vec.pairs, 16, params);
        const double tQzc = sim::multicoreThroughput(
            qzc.demand(), qzc.pairs, 16, params);
        table.addRow({spec.name,
                      std::to_string(qzc.accepted) + "/" +
                          std::to_string(qzc.pairs),
                      std::to_string(vec.cycles),
                      std::to_string(qzc.cycles),
                      TextTable::num(s1, 2) + "x",
                      TextTable::num(tQzc / tVec, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper (16 cores): 1.8x, 2.7x, 3.6x, 3.1x across "
                 "the four datasets.\n";
    return 0;
}
