/**
 * @file
 * Fig. 14a reproduction: reduction of memory requests issued to the
 * cache hierarchy by QUETZAL relative to the VEC implementations.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 14a: cache-hierarchy request reduction "
                  "(QUETZAL+C vs VEC)");

    TextTable table(
        {"Algorithm", "Dataset",
         std::string(algos::variantName(Variant::Vec)) + " requests",
         std::string(algos::variantName(Variant::QzC)) + " requests",
         "Reduction"});

    bench::CellBatch batch;
    struct Row
    {
        AlgoKind kind;
        std::string dataset;
        std::size_t vec, qzc;
    };
    std::vector<Row> rows;
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds = bench::makeDatasetPtr(spec.name);
            rows.push_back({kind, spec.name,
                            batch.add(kind, ds, Variant::Vec),
                            batch.add(kind, ds, Variant::QzC)});
        }
    }
    batch.run();

    for (const Row &row : rows) {
        const auto &vec = batch[row.vec];
        const auto &qzc = batch[row.qzc];
        const double reduction =
            vec.memRequests == 0
                ? 0.0
                : 100.0 *
                      (1.0 - static_cast<double>(qzc.memRequests) /
                                 static_cast<double>(vec.memRequests));
        table.addRow({std::string(algos::algoName(row.kind)),
                      row.dataset, std::to_string(vec.memRequests),
                      std::to_string(qzc.memRequests),
                      TextTable::num(reduction, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "\nPaper: all input-sequence accesses execute in the "
                 "QBUFFERs; the remaining requests are strided wave "
                 "updates the prefetcher handles.\n";
    bench::maybeWriteJson("fig14a_memreqs", batch.outcome());
    return 0;
}
