/**
 * @file
 * Fig. 14a reproduction: reduction of memory requests issued to the
 * cache hierarchy by QUETZAL relative to the VEC implementations.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 14a: cache-hierarchy request reduction "
                  "(QUETZAL+C vs VEC)");

    TextTable table({"Algorithm", "Dataset", "VEC requests",
                     "QUETZAL+C requests", "Reduction"});
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds =
                genomics::makeDataset(spec.name, bench::benchScale());
            const auto vec = bench::runCell(kind, ds, Variant::Vec);
            const auto qzc = bench::runCell(kind, ds, Variant::QzC);
            const double reduction =
                vec.memRequests == 0
                    ? 0.0
                    : 100.0 *
                          (1.0 - static_cast<double>(qzc.memRequests) /
                                     static_cast<double>(
                                         vec.memRequests));
            table.addRow({std::string(algos::algoName(kind)), spec.name,
                          std::to_string(vec.memRequests),
                          std::to_string(qzc.memRequests),
                          TextTable::num(reduction, 1) + "%"});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: all input-sequence accesses execute in the "
                 "QBUFFERs; the remaining requests are strided wave "
                 "updates the prefetcher handles.\n";
    return 0;
}
