/**
 * @file
 * Fig. 12 reproduction: relative performance of the QZ_1P/2P/4P/8P
 * configurations (QBUFFER read-port sweep), normalized to QZ_1P.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 12: QBUFFER read-port design-space sweep "
                  "(QUETZAL+C, normalized to QZ_1P)");

    const unsigned ports[] = {1, 2, 4, 8};
    TextTable table({"Algorithm", "Dataset", "QZ_1P", "QZ_2P", "QZ_4P",
                     "QZ_8P"});

    bench::CellBatch batch;
    struct Row
    {
        AlgoKind kind;
        std::string dataset;
        std::size_t cell[4];
    };
    std::vector<Row> rows;
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds = bench::makeDatasetPtr(spec.name);
            Row row{kind, spec.name, {}};
            for (int i = 0; i < 4; ++i)
                row.cell[i] = batch.add(kind, ds, Variant::QzC,
                                        ~std::size_t{0},
                                        genomics::AlphabetKind::Dna,
                                        ports[i]);
            rows.push_back(std::move(row));
        }
    }
    batch.run();

    for (const Row &row : rows) {
        auto rel = [&](int i) {
            return TextTable::num(
                       static_cast<double>(batch[row.cell[0]].cycles) /
                           static_cast<double>(
                               batch[row.cell[i]].cycles),
                       2) +
                   "x";
        };
        table.addRow({std::string(algos::algoName(row.kind)),
                      row.dataset, rel(0), rel(1), rel(2), rel(3)});
    }
    table.print(std::cout);
    std::cout << "\nPaper: performance rises with port count; QZ_8P "
                 "(2-cycle reads) is the chosen configuration.\n";
    bench::maybeWriteJson("fig12_ports", batch.outcome());
    return 0;
}
