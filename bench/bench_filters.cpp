/**
 * @file
 * Extra study: the two pre-alignment filters side by side.
 *
 * SneakySnake and Shouji are alternative edit-distance approximations
 * (paper Section II-C cites both); running them on the same QUETZAL
 * hardware with just different instruction sequences is the
 * programmability pitch in action.
 */
#include "bench_common.hpp"

#include <optional>

#include "algos/shouji.hpp"
#include "algos/sneakysnake.hpp"
#include "quetzal/qzunit.hpp"

int
main()
{
    using namespace quetzal;
    using algos::Variant;
    bench::banner("Filter study: SneakySnake vs Shouji on QUETZAL");

    TextTable table({"Dataset", "Filter", "Accepted", "QZ+C cycles",
                     "BASE cycles", "Speedup"});
    for (const char *name : {"100bp_1", "250bp_1"}) {
        const auto ds = algos::mixWithDecoys(
            genomics::makeDataset(name, bench::benchScale()));
        const std::int64_t e = algos::defaultSsThreshold(
            ds.readLength, ds.errorRate);

        for (int which = 0; which < 2; ++which) {
            std::uint64_t cycles[2] = {0, 0};
            std::size_t accepted = 0;
            int i = 0;
            for (Variant v : {Variant::QzC, Variant::Base}) {
                sim::SimContext ctx(
                    algos::needsQuetzal(v)
                        ? sim::SystemParams::withQuetzal()
                        : sim::SystemParams::baseline());
                isa::VectorUnit vpu(ctx.pipeline());
                std::optional<accel::QzUnit> qz;
                if (algos::needsQuetzal(v))
                    qz.emplace(vpu, ctx.params().quetzal);
                std::size_t acc = 0;
                if (which == 0) {
                    auto engine = algos::makeSsEngine(
                        v, &vpu, qz ? &*qz : nullptr);
                    algos::SsConfig config;
                    config.editThreshold = e;
                    for (const auto &pair : ds.pairs)
                        acc += algos::sneakySnake(*engine, pair.pattern,
                                                  pair.text, config)
                                   .accepted;
                } else {
                    for (const auto &pair : ds.pairs)
                        acc += algos::shouji(v, pair.pattern, pair.text,
                                             e, &vpu,
                                             qz ? &*qz : nullptr)
                                   .accepted;
                }
                accepted = acc;
                cycles[i++] = ctx.pipeline().totalCycles();
            }
            table.addRow({name, which == 0 ? "SneakySnake" : "Shouji",
                          std::to_string(accepted) + "/" +
                              std::to_string(ds.size()),
                          std::to_string(cycles[0]),
                          std::to_string(cycles[1]),
                          TextTable::num(static_cast<double>(cycles[1]) /
                                             static_cast<double>(
                                                 cycles[0]),
                                         2) +
                              "x"});
        }
    }
    table.print(std::cout);
    std::cout << "\nBoth filters run on identical hardware; switching "
                 "algorithms is a recompile, not a respin.\n";
    return 0;
}
