/**
 * @file
 * Fig. 15a reproduction: alignment throughput of a 16-core
 * QUETZAL-capable CPU against the GPU baselines (WFA-GPU and GASAL2
 * on an A40-class device, analytic model).
 *
 * Paper shape: GPUs win on short reads; for long reads QUETZAL is
 * ~2.7x over WFA-GPU and ~1.1x over GASAL2.
 */
#include "bench_common.hpp"

#include "gpu/gpu_model.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 15a: 16-core QUETZAL CPU vs GPU approaches "
                  "(alignments/second)");

    const auto params = sim::SystemParams::withQuetzal();
    const gpu::GpuDeviceParams device;
    const auto wfaGpu = gpu::wfaGpuModel();
    const auto gasal = gpu::gasal2Model();

    TextTable table({"Dataset", "WFA QZ+C (16c)", "WFA-GPU",
                     "SW QZ (16c)", "GASAL2", "QZ/WFA-GPU",
                     "QZ-SW/GASAL2"});

    bench::CellBatch batch;
    struct Row
    {
        std::string dataset;
        std::size_t readLength;
        double errorRate;
        std::size_t wfa, sw;
    };
    std::vector<Row> rows;
    for (const auto &spec : genomics::datasetCatalog()) {
        const auto ds = bench::makeDatasetPtr(spec.name);
        rows.push_back({spec.name, spec.readLength, spec.errorRate,
                        batch.add(AlgoKind::Wfa, ds, Variant::QzC),
                        batch.add(AlgoKind::Swg, ds, Variant::Qz)});
    }
    batch.run();

    for (const Row &row : rows) {
        const auto &wfa = batch[row.wfa];
        const auto &sw = batch[row.sw];

        const double clockHz = params.clockGhz * 1e9;
        auto cpuRate = [&](const algos::RunResult &r) {
            const double perCore =
                static_cast<double>(r.pairs) * clockHz /
                static_cast<double>(r.cycles);
            return perCore * sim::multicoreSpeedup(r.demand(), 16,
                                                   params);
        };
        const double cpuWfa = cpuRate(wfa);
        const double cpuSw = cpuRate(sw);
        const double gWfa = gpu::gpuThroughput(device, wfaGpu,
                                               row.readLength,
                                               row.errorRate);
        const double gSw = gpu::gpuThroughput(device, gasal,
                                              row.readLength,
                                              row.errorRate);
        table.addRow({row.dataset, TextTable::num(cpuWfa, 0),
                      TextTable::num(gWfa, 0), TextTable::num(cpuSw, 0),
                      TextTable::num(gSw, 0),
                      TextTable::num(cpuWfa / gWfa, 2) + "x",
                      TextTable::num(cpuSw / gSw, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: GPU leads on short reads; occupancy "
                 "collapse hands long reads to QUETZAL (~2.7x over "
                 "WFA-GPU, ~1.1x over GASAL2). A40 area ~"
              << TextTable::num(device.areaMm2, 0)
              << " mm^2 (>10x a 16-core QUETZAL CPU slice).\n";
    bench::maybeWriteJson("fig15a_gpu", batch.outcome());
    return 0;
}
