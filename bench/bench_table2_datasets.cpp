/**
 * @file
 * Table II reproduction: input dataset characteristics.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    bench::banner("Table II: input dataset characteristics");

    TextTable table({"Dataset", "Read Length", "Pairs", "Error rate",
                     "Total bases", "Technology class"});
    for (const auto &spec : genomics::datasetCatalog()) {
        const auto ds =
            genomics::makeDataset(spec.name, bench::benchScale());
        table.addRow({spec.name, std::to_string(spec.readLength),
                      std::to_string(ds.size()),
                      TextTable::num(spec.errorRate, 3),
                      std::to_string(ds.totalPatternBases()),
                      spec.longRead ? "long read (PacBio-HiFi-class)"
                                    : "short read (Illumina-class)"});
    }
    table.print(std::cout);

    const auto protein = bench::proteinDataset(bench::benchScale());
    std::cout << "\nProtein workload (use case 4, BAliBase-style): "
              << protein.size() << " pairwise alignments of ~"
              << protein.readLength << " residues\n";
    return 0;
}
