/**
 * @file
 * Fig. 3 reproduction: speedup of the SVE-intrinsics (VEC)
 * implementations of WFA and SneakySnake over the auto-vectorized
 * baseline, for short and long reads.
 *
 * Paper: ~1.3x for short reads, ~2.5x for long reads on average.
 */
#include "bench_common.hpp"

#include <cmath>

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 3: VEC speedup over the scalar baseline");

    TextTable table({"Algorithm", "Dataset", "BASE cycles",
                     "VEC cycles", "VEC speedup"});

    bench::CellBatch batch;
    struct Row
    {
        AlgoKind kind;
        std::string dataset;
        bool longRead;
        std::size_t base, vec;
    };
    std::vector<Row> rows;
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds = bench::makeDatasetPtr(spec.name);
            Row row{kind, spec.name, spec.longRead, 0, 0};
            row.base = batch.add(kind, ds, Variant::Base);
            row.vec = batch.add(kind, ds, Variant::Vec);
            rows.push_back(std::move(row));
        }
    }
    batch.run();

    double shortProd = 1.0, longProd = 1.0;
    int shortN = 0, longN = 0;
    for (const Row &row : rows) {
        const auto &base = batch[row.base];
        const auto &vec = batch[row.vec];
        const double s = algos::speedup(base, vec);
        table.addRow({std::string(algos::algoName(row.kind)),
                      row.dataset, std::to_string(base.cycles),
                      std::to_string(vec.cycles),
                      TextTable::num(s, 2) + "x"});
        if (row.longRead) {
            longProd *= s;
            ++longN;
        } else {
            shortProd *= s;
            ++shortN;
        }
    }
    table.print(std::cout);

    const double shortGeo =
        shortN ? std::pow(shortProd, 1.0 / shortN) : 0.0;
    const double longGeo = longN ? std::pow(longProd, 1.0 / longN) : 0.0;
    std::cout << "\nGeomean VEC speedup: short reads "
              << TextTable::num(shortGeo, 2) << "x (paper ~1.3x), "
              << "long reads " << TextTable::num(longGeo, 2)
              << "x (paper ~2.5x)\n";
    bench::maybeWriteJson("fig03_vectorization", batch.outcome());
    return 0;
}
