/**
 * @file
 * Table IV reproduction: peak-GCUPS comparison against published
 * domain-specific accelerators.
 *
 * GCUPS uses the equivalent-cells convention the field reports for
 * wavefront-style designs: an alignment of an m x n pair counts m*n
 * DP cells whether or not the algorithm skipped them — that is what
 * makes WFA-class designs look dramatically faster per area.
 * QUETZAL rows are measured in simulation; the ASIC rows are the
 * published numbers the paper compares against (scaled to 7 nm).
 */
#include "bench_common.hpp"

#include "quetzal/area_model.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Table IV: accelerator comparison (PGCUPS)");

    // Peak throughput: QUETZAL+C WFA on the long-read dataset.
    bench::CellBatch batch;
    const auto ds = bench::makeDatasetPtr("30Kbp");
    const std::size_t wfaCell =
        batch.add(AlgoKind::Wfa, ds, Variant::QzC);
    batch.run();
    const auto &wfa = batch[wfaCell];
    std::uint64_t equivCells = 0;
    for (const auto &pair : ds->pairs)
        equivCells += static_cast<std::uint64_t>(pair.pattern.size()) *
                      pair.text.size();
    const double pgcups =
        accel::gcups(equivCells, wfa.cycles, 2.0);

    const auto qz8 = accel::estimateAreaPower(8);
    TextTable table({"Study", "Device", "PEs", "Area (7nm)", "PGCUPS",
                     "PGCUPS/mm^2"});
    auto addRow = [&](const std::string &study,
                      const std::string &device, unsigned pes,
                      double area, double value) {
        table.addRow({study, device, std::to_string(pes),
                      TextTable::num(area, 3) + " mm^2",
                      TextTable::num(value, 1),
                      TextTable::num(value / area, 1)});
    };
    addRow("QUETZAL (this sim)", "CPU", 1, qz8.areaMm2, pgcups);
    addRow("Core+QUETZAL (this sim)", "CPU", 1,
           accel::A64fxReference::coreAreaMm2 + qz8.areaMm2, pgcups);
    for (const auto &row : accel::publishedAccelerators())
        addRow(row.study + " (published)", row.device, row.numPes,
               row.areaMm2, row.pgcups);
    table.print(std::cout);

    std::cout << "\nPaper take-aways: some fixed-function ASICs beat "
                 "QUETZAL on raw PGCUPS (GenASM 2.7x, Darwin 1.2x), "
                 "but QUETZAL runs every algorithm in this repo on "
                 "one programmable datapath at ~1.4% SoC overhead.\n";
    bench::maybeWriteJson("table4_accelerators", batch.outcome());
    return 0;
}
