/**
 * @file
 * Fig. 13a reproduction: single-core speedups of VEC / QUETZAL /
 * QUETZAL+C over the scalar baseline for all five use cases.
 *
 * Paper averages (over VEC): modern aligners 1.5x/2.1x short and
 * 5.1x/5.5x long (QUETZAL / QUETZAL+C); SS 2.1x short, 5.2x long;
 * classic SW 1.3x, NW 1.4x; protein 6.0x/6.6x.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 13a: single-core speedup over the baseline");

    TextTable table({"Algorithm", "Dataset",
                     std::string(algos::variantName(Variant::Vec)),
                     std::string(algos::variantName(Variant::Qz)),
                     std::string(algos::variantName(Variant::QzC)),
                     "QZ/VEC", "QZ+C/VEC"});

    // Phase 1: queue every cell of the figure on the batch engine.
    bench::CellBatch batch;
    struct Row
    {
        AlgoKind kind;
        std::string dataset;
        std::size_t base, vec, qz, qzc;
    };
    std::vector<Row> rows;

    auto submit = [&](AlgoKind kind, const bench::DatasetPtr &ds,
                      std::size_t maxLen,
                      genomics::AlphabetKind alphabet) {
        Row row{kind, ds->name, 0, 0, 0, 0};
        row.base = batch.add(kind, ds, Variant::Base, maxLen, alphabet);
        row.vec = batch.add(kind, ds, Variant::Vec, maxLen, alphabet);
        row.qz = batch.add(kind, ds, Variant::Qz, maxLen, alphabet);
        row.qzc = batch.add(kind, ds, Variant::QzC, maxLen, alphabet);
        rows.push_back(std::move(row));
    };

    const std::size_t classicCap = 1000;
    for (const auto &spec : genomics::datasetCatalog()) {
        const auto ds = bench::makeDatasetPtr(spec.name);
        submit(AlgoKind::Wfa, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::BiWfa, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::SneakySnake, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::Swg, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::Nw, ds, classicCap,
               genomics::AlphabetKind::Dna);
    }

    // Use case 4: protein alignment (8-bit encoding).
    const auto protein = std::make_shared<const genomics::PairDataset>(
        bench::proteinDataset(bench::benchScale()));
    submit(AlgoKind::Wfa, protein, ~std::size_t{0},
           genomics::AlphabetKind::Protein);
    submit(AlgoKind::SneakySnake, protein, ~std::size_t{0},
           genomics::AlphabetKind::Protein);

    // Phase 2: run the whole matrix in parallel, then print in
    // submission order.
    batch.run();
    for (const Row &row : rows) {
        const auto &base = batch[row.base];
        const auto &vec = batch[row.vec];
        const auto &qz = batch[row.qz];
        const auto &qzc = batch[row.qzc];
        auto rel = [&](const algos::RunResult &r) {
            return TextTable::num(algos::speedup(base, r), 2) + "x";
        };
        table.addRow({std::string(algos::algoName(row.kind)),
                      row.dataset, rel(vec), rel(qz), rel(qzc),
                      TextTable::num(algos::speedup(vec, qz), 2) + "x",
                      TextTable::num(algos::speedup(vec, qzc), 2) +
                          "x"});
    }

    table.print(std::cout);
    std::cout << "\nNW is length-capped at " << classicCap
              << " bp (full-table DP; the paper likewise constrained "
                 "datasets for simulation time).\n";
    bench::maybeWriteJson("fig13a_singlecore", batch.outcome());
    return 0;
}
