/**
 * @file
 * Fig. 13a reproduction: single-core speedups of VEC / QUETZAL /
 * QUETZAL+C over the scalar baseline for all five use cases.
 *
 * Paper averages (over VEC): modern aligners 1.5x/2.1x short and
 * 5.1x/5.5x long (QUETZAL / QUETZAL+C); SS 2.1x short, 5.2x long;
 * classic SW 1.3x, NW 1.4x; protein 6.0x/6.6x.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 13a: single-core speedup over the baseline");

    TextTable table({"Algorithm", "Dataset", "VEC", "QUETZAL",
                     "QUETZAL+C", "QZ/VEC", "QZ+C/VEC"});

    auto emit = [&](AlgoKind kind, const genomics::PairDataset &ds,
                    std::size_t maxLen,
                    genomics::AlphabetKind alphabet) {
        const auto base =
            bench::runCell(kind, ds, Variant::Base, maxLen, alphabet);
        const auto vec =
            bench::runCell(kind, ds, Variant::Vec, maxLen, alphabet);
        const auto qz =
            bench::runCell(kind, ds, Variant::Qz, maxLen, alphabet);
        const auto qzc =
            bench::runCell(kind, ds, Variant::QzC, maxLen, alphabet);
        auto rel = [&](const algos::RunResult &r) {
            return TextTable::num(algos::speedup(base, r), 2) + "x";
        };
        table.addRow({std::string(algos::algoName(kind)), ds.name,
                      rel(vec), rel(qz), rel(qzc),
                      TextTable::num(algos::speedup(vec, qz), 2) + "x",
                      TextTable::num(algos::speedup(vec, qzc), 2) +
                          "x"});
    };

    const std::size_t classicCap = 1000;
    for (const auto &spec : genomics::datasetCatalog()) {
        const auto ds =
            genomics::makeDataset(spec.name, bench::benchScale());
        emit(AlgoKind::Wfa, ds, ~std::size_t{0},
             genomics::AlphabetKind::Dna);
        emit(AlgoKind::BiWfa, ds, ~std::size_t{0},
             genomics::AlphabetKind::Dna);
        emit(AlgoKind::SneakySnake, ds, ~std::size_t{0},
             genomics::AlphabetKind::Dna);
        emit(AlgoKind::Swg, ds, ~std::size_t{0},
             genomics::AlphabetKind::Dna);
        emit(AlgoKind::Nw, ds, classicCap,
             genomics::AlphabetKind::Dna);
    }

    // Use case 4: protein alignment (8-bit encoding).
    const auto protein = bench::proteinDataset(bench::benchScale());
    emit(AlgoKind::Wfa, protein, ~std::size_t{0},
         genomics::AlphabetKind::Protein);
    emit(AlgoKind::SneakySnake, protein, ~std::size_t{0},
         genomics::AlphabetKind::Protein);

    table.print(std::cout);
    std::cout << "\nNW is length-capped at " << classicCap
              << " bp (full-table DP; the paper likewise constrained "
                 "datasets for simulation time).\n";
    return 0;
}
