/**
 * @file
 * Fig. 4 reproduction: execution-time breakdown of the vectorized
 * WFA, BiWFA, and SneakySnake implementations on the baseline core.
 *
 * Paper: cache accesses account for 32%-65% of execution time.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 4: execution-time breakdown of VEC "
                  "implementations");

    TextTable table({"Algorithm", "Dataset", "Cycles", "Frontend",
                     "Compute", "Cache access", "RS/LSQ stall"});

    bench::CellBatch batch;
    struct Row
    {
        AlgoKind kind;
        std::string dataset;
        std::size_t vec;
    };
    std::vector<Row> rows;
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds = bench::makeDatasetPtr(spec.name);
            rows.push_back(
                {kind, spec.name, batch.add(kind, ds, Variant::Vec)});
        }
    }
    batch.run();

    for (const Row &row : rows) {
        const auto &vec = batch[row.vec];
        const double total = static_cast<double>(vec.cycles);
        auto pct = [&](sim::StallKind kind) {
            return TextTable::num(
                       100.0 * vec.stallCycles(kind) / total, 1) +
                   "%";
        };
        table.addRow({std::string(algos::algoName(row.kind)),
                      row.dataset, std::to_string(vec.cycles),
                      pct(sim::StallKind::Frontend),
                      pct(sim::StallKind::Compute),
                      pct(sim::StallKind::Cache),
                      pct(sim::StallKind::Struct)});
    }
    table.print(std::cout);
    std::cout << "\nPaper: cache accesses are 32%-65% of execution "
                 "time, growing with sequence length.\n";
    bench::maybeWriteJson("fig04_breakdown", batch.outcome());
    return 0;
}
