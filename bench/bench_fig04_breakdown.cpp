/**
 * @file
 * Fig. 4 reproduction: execution-time breakdown of the vectorized
 * WFA, BiWFA, and SneakySnake implementations on the baseline core.
 *
 * Paper: cache accesses account for 32%-65% of execution time.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 4: execution-time breakdown of VEC "
                  "implementations");

    TextTable table({"Algorithm", "Dataset", "Cycles", "Frontend",
                     "Compute", "Cache access", "RS/LSQ stall"});
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds =
                genomics::makeDataset(spec.name, bench::benchScale());
            const auto vec = bench::runCell(kind, ds, Variant::Vec);
            const double total = static_cast<double>(vec.cycles);
            auto pct = [&](std::uint64_t v) {
                return TextTable::num(100.0 * v / total, 1) + "%";
            };
            table.addRow({std::string(algos::algoName(kind)), spec.name,
                          std::to_string(vec.cycles),
                          pct(vec.stalls[0]), pct(vec.stalls[1]),
                          pct(vec.stalls[2]), pct(vec.stalls[3])});
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: cache accesses are 32%-65% of execution "
                 "time, growing with sequence length.\n";
    return 0;
}
