/**
 * @file
 * Google-benchmark microbenchmarks of the simulator substrate itself:
 * host-side cost of the hardware models (QBUFFER reads, count ALU,
 * cache probes, pipeline issue) so regressions in simulation speed
 * are visible.
 */
#include <benchmark/benchmark.h>

#include "genomics/encoding.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/countalu.hpp"
#include "quetzal/qbuffer.hpp"
#include "sim/context.hpp"

namespace {

using namespace quetzal;

void
BM_CountAlu(benchmark::State &state)
{
    const std::uint64_t a = 0x123456789ABCDEF0ull;
    const std::uint64_t b = 0x123456789ABCDEF3ull;
    for (auto _ : state) {
        benchmark::DoNotOptimize(accel::CountAlu::count(
            a, b, genomics::ElementSize::Bits2));
    }
}
BENCHMARK(BM_CountAlu);

void
BM_QBufferWindowRead(benchmark::State &state)
{
    sim::QuetzalParams params;
    params.present = true;
    accel::QBuffer buf(params);
    for (std::size_t w = 0; w < buf.words(); ++w)
        buf.writeWord(w, w * 0x9E3779B97F4A7C15ull);
    std::size_t idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(buf.readWindow64(
            idx, genomics::ElementSize::Bits2));
        idx = (idx + 37) % 30000;
    }
}
BENCHMARK(BM_QBufferWindowRead);

void
BM_CacheProbe(benchmark::State &state)
{
    sim::Cache cache("bench", sim::CacheParams{});
    sim::Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr += 256;
    }
}
BENCHMARK(BM_CacheProbe);

void
BM_PipelineIssue(benchmark::State &state)
{
    sim::SimContext ctx;
    sim::Tag chain{};
    for (auto _ : state) {
        chain = ctx.pipeline().executeOp(sim::OpClass::VecAlu,
                                         {chain});
        benchmark::DoNotOptimize(chain.ready);
    }
}
BENCHMARK(BM_PipelineIssue);

void
BM_Pack2bit(benchmark::State &state)
{
    genomics::ReadSimConfig config;
    config.readLength = 1024;
    genomics::ReadSimulator sim(config);
    const std::string seq = sim.randomSequence(1024);
    for (auto _ : state)
        benchmark::DoNotOptimize(genomics::pack2bit(seq));
}
BENCHMARK(BM_Pack2bit);

} // namespace

BENCHMARK_MAIN();
