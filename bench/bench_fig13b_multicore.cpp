/**
 * @file
 * Fig. 13b reproduction: multicore scalability of the QUETZAL+C
 * implementations (1..16 cores).
 *
 * Two contention effects are composed per core count N: the shared
 * 8 MB L2 is capacity-partitioned (each core effectively sees L2/N,
 * re-simulated), and the aggregate DRAM demand is capped by the HBM2
 * roofline. Small inputs scale linearly; long reads flatten once
 * their working set stops fitting the per-core L2 share — the paper's
 * sub-linear long-read behaviour.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 13b: multicore scaling of QUETZAL+C "
                  "(shared L2 + HBM2 roofline)");

    TextTable table({"Algorithm", "Dataset", "1 core", "2", "4", "8",
                     "16", "DRAM B/cyc @16"});
    const unsigned counts[] = {1, 2, 4, 8, 16};
    constexpr std::size_t numCounts = std::size(counts);

    bench::CellBatch batch;
    struct Row
    {
        AlgoKind kind;
        std::string dataset;
        std::size_t cell[numCounts];
    };
    std::vector<Row> rows;
    const double dramPeakBpc =
        sim::SystemParams::withQuetzal().dram.peakBytesPerCycle;
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds = bench::makeDatasetPtr(spec.name);
            Row row{kind, spec.name, {}};
            for (std::size_t i = 0; i < numCounts; ++i) {
                algos::RunOptions options;
                options.variant = Variant::QzC;
                options.verify = false;
                options.system = sim::SystemParams::withQuetzal();
                // Capacity-partition the shared L2 across cores.
                options.system.l2.sizeBytes =
                    std::max<std::uint64_t>(
                        options.system.l2.sizeBytes / counts[i],
                        256 * 1024);
                row.cell[i] = batch.add(kind, ds, options);
            }
            rows.push_back(std::move(row));
        }
    }
    batch.run();

    for (const Row &row : rows) {
        std::vector<std::string> out{
            std::string(algos::algoName(row.kind)), row.dataset};
        const std::uint64_t cycles1 = batch[row.cell[0]].cycles;
        double lastDemand = 0.0;
        for (std::size_t i = 0; i < numCounts; ++i) {
            const auto &r = batch[row.cell[i]];
            const double perCoreDemand = r.demand().bytesPerCycle();
            lastDemand = perCoreDemand;
            const double bwCap =
                perCoreDemand > 0
                    ? dramPeakBpc / perCoreDemand
                    : static_cast<double>(counts[i]);
            const double speedup =
                std::min<double>(counts[i], bwCap) *
                static_cast<double>(cycles1) /
                static_cast<double>(r.cycles);
            out.push_back(TextTable::num(speedup, 2) + "x");
        }
        out.push_back(TextTable::num(lastDemand, 3));
        table.addRow(std::move(out));
    }
    table.print(std::cout);
    std::cout << "\nPaper: near-linear for short reads; long reads "
                 "flatten as the shared LLC and HBM2 bandwidth "
                 "saturate.\n";
    bench::maybeWriteJson("fig13b_multicore", batch.outcome());
    return 0;
}
