/**
 * @file
 * Fig. 13b reproduction: multicore scalability of the QUETZAL+C
 * implementations (1..16 cores).
 *
 * Two contention effects are composed per core count N: the shared
 * 8 MB L2 is capacity-partitioned (each core effectively sees L2/N,
 * re-simulated), and the aggregate DRAM demand is capped by the HBM2
 * roofline. Small inputs scale linearly; long reads flatten once
 * their working set stops fitting the per-core L2 share — the paper's
 * sub-linear long-read behaviour.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;
    bench::banner("Fig. 13b: multicore scaling of QUETZAL+C "
                  "(shared L2 + HBM2 roofline)");

    TextTable table({"Algorithm", "Dataset", "1 core", "2", "4", "8",
                     "16", "DRAM B/cyc @16"});
    const unsigned counts[] = {1, 2, 4, 8, 16};
    for (const AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake}) {
        for (const auto &spec : genomics::datasetCatalog()) {
            const auto ds =
                genomics::makeDataset(spec.name, bench::benchScale());
            std::vector<std::string> row{
                std::string(algos::algoName(kind)), spec.name};

            std::uint64_t cycles1 = 0;
            double lastDemand = 0.0;
            for (unsigned cores : counts) {
                algos::RunOptions options;
                options.variant = Variant::QzC;
                options.verify = false;
                options.system = sim::SystemParams::withQuetzal();
                // Capacity-partition the shared L2 across cores.
                options.system.l2.sizeBytes =
                    std::max<std::uint64_t>(
                        options.system.l2.sizeBytes / cores,
                        256 * 1024);
                const auto r =
                    algos::runAlgorithm(kind, ds, options);
                if (cores == 1)
                    cycles1 = r.cycles;
                const double perCoreDemand =
                    r.demand().bytesPerCycle();
                lastDemand = perCoreDemand;
                const double bwCap =
                    perCoreDemand > 0
                        ? options.system.dram.peakBytesPerCycle /
                              perCoreDemand
                        : static_cast<double>(cores);
                const double speedup =
                    std::min<double>(cores, bwCap) *
                    static_cast<double>(cycles1) /
                    static_cast<double>(r.cycles);
                row.push_back(TextTable::num(speedup, 2) + "x");
            }
            row.push_back(TextTable::num(lastDemand, 3));
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    std::cout << "\nPaper: near-linear for short reads; long reads "
                 "flatten as the shared LLC and HBM2 bandwidth "
                 "saturate.\n";
    return 0;
}
