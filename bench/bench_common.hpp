/**
 * @file
 * Shared plumbing for the per-figure/per-table bench binaries.
 *
 * Each binary regenerates one table or figure of the paper: it builds
 * the workload, simulates the relevant variants, and prints the same
 * rows/series the paper reports. Set QZ_BENCH_SCALE to scale dataset
 * sizes (default 1.0; e.g. 0.2 for a quick pass, 4 for longer runs).
 */
#ifndef QUETZAL_BENCH_BENCH_COMMON_HPP
#define QUETZAL_BENCH_BENCH_COMMON_HPP

#include <cstdlib>
#include <iostream>
#include <string>

#include "algos/runner.hpp"
#include "common/table.hpp"
#include "genomics/datasets.hpp"
#include "genomics/protein.hpp"

namespace quetzal::bench {

/** Dataset scale factor from QZ_BENCH_SCALE (default 1.0). */
inline double
benchScale()
{
    if (const char *env = std::getenv("QZ_BENCH_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0)
            return scale;
    }
    return 1.0;
}

/** Print the experiment banner with the Table I system summary. */
inline void
banner(const std::string &title)
{
    std::cout << "==================================================\n"
              << title << "\n"
              << "Simulated system (Table I): 2.0 GHz A64FX-like, "
                 "512-bit SVE,\n"
              << "  L1D 64KB/8w lt=4, L2 8MB/16w lt=37, HBM2; "
                 "QUETZAL 2x8KB QBUFFERs\n"
              << "Dataset scale: " << benchScale()
              << " (set QZ_BENCH_SCALE to change)\n"
              << "==================================================\n";
}

/** Run one algorithm/variant/dataset cell without verification. */
inline algos::RunResult
runCell(algos::AlgoKind kind, const genomics::PairDataset &dataset,
        algos::Variant variant,
        std::size_t maxLen = ~std::size_t{0},
        genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
        unsigned qzPorts = 8)
{
    algos::RunOptions options;
    options.variant = variant;
    options.maxLen = maxLen;
    options.alphabet = alphabet;
    options.verify = false; // the test suite covers correctness
    if (algos::needsQuetzal(variant))
        options.system = sim::SystemParams::withQuetzal(qzPorts);
    return algos::runAlgorithm(kind, dataset, options);
}

/** Build the protein workload as a PairDataset (use case 4). */
inline genomics::PairDataset
proteinDataset(double scale)
{
    genomics::ProteinFamilyConfig config;
    config.familyCount =
        std::max<std::size_t>(1, static_cast<std::size_t>(2 * scale));
    config.membersPerFamily = 4;
    config.ancestorLength = 400;
    genomics::PairDataset ds;
    ds.name = "protein";
    ds.readLength = config.ancestorLength;
    ds.errorRate = config.divergence;
    ds.pairs = genomics::proteinPairWorkload(config);
    return ds;
}

} // namespace quetzal::bench

#endif // QUETZAL_BENCH_BENCH_COMMON_HPP
