/**
 * @file
 * Shared plumbing for the per-figure/per-table bench binaries.
 *
 * Each binary regenerates one table or figure of the paper: it builds
 * the workload, queues the relevant (algorithm, variant, dataset)
 * cells on the batch engine, and prints the same rows/series the
 * paper reports.
 *
 * Environment knobs:
 *  - QZ_BENCH_SCALE   dataset scale (default 1.0; 0.2 quick, 4 long)
 *  - QZ_BENCH_THREADS harness workers (default hardware_concurrency)
 *  - QZ_BENCH_JSON    dump the RunResult rows as JSON: a path, or "-"
 *                     for stdout after the table
 *  - QZ_BENCH_CHECKPOINT  append completed cells to this file and skip
 *                     cells already in it on restart (resumable sweeps)
 *  - QZ_FAULT_INJECT  deterministic fault injection, CELL:KIND[:TIMES]
 *                     (docs/ROBUSTNESS.md)
 *  - QZ_BENCH_SHARD   run as shard K/N of a multi-process sweep: only
 *                     cells with index % N == K-1 execute, and the
 *                     JSON report carries their global indices so
 *                     qz-merge can reassemble the unsharded output
 *                     byte-identically (docs/SIMULATOR.md)
 *  - QZ_BENCH_LIST    =1: print every registered workload with its
 *                     variants/datasets and exit
 *  - QZ_BENCH_HOSTPERF =1: record host wall-clock per cell into the
 *                     JSON report ("host_ns" on each result). Off by
 *                     default so reports stay byte-identical across
 *                     machines and serial/parallel/sharded runs
 *                     (docs/SIMULATOR.md, "Host performance")
 */
#ifndef QUETZAL_BENCH_BENCH_COMMON_HPP
#define QUETZAL_BENCH_BENCH_COMMON_HPP

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algos/batch.hpp"
#include "algos/report.hpp"
#include "algos/runner.hpp"
#include "common/table.hpp"
#include "common/threadpool.hpp"
#include "genomics/datasets.hpp"
#include "genomics/pairsource.hpp"
#include "genomics/protein.hpp"
#include "genomics/store.hpp"

namespace quetzal::bench {

/** Dataset scale factor from QZ_BENCH_SCALE (default 1.0). */
inline double
benchScale()
{
    if (const char *env = std::getenv("QZ_BENCH_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0)
            return scale;
    }
    return 1.0;
}

/** Harness worker count from QZ_BENCH_THREADS (default: all cores). */
inline unsigned
benchThreads()
{
    if (const char *env = std::getenv("QZ_BENCH_THREADS")) {
        const long n = std::atol(env);
        if (n > 0)
            return static_cast<unsigned>(n);
        warn("ignoring QZ_BENCH_THREADS='{}' (want a positive integer)",
             env);
    }
    return ThreadPool::hardwareThreads();
}

/** Print the experiment banner with the Table I system summary. */
inline void
banner(const std::string &title)
{
    if (const char *env = std::getenv("QZ_BENCH_LIST"); env && *env &&
                                                        std::string_view(env) != "0") {
        std::cout << algos::workloadListing();
        std::exit(0);
    }
    std::cout << "==================================================\n"
              << title << "\n"
              << "Simulated system (Table I): 2.0 GHz A64FX-like, "
                 "512-bit SVE,\n"
              << "  L1D 64KB/8w lt=4, L2 8MB/16w lt=37, HBM2; "
                 "QUETZAL 2x8KB QBUFFERs\n"
              << "Dataset scale: " << benchScale()
              << " (QZ_BENCH_SCALE), harness threads: "
              << benchThreads() << " (QZ_BENCH_THREADS)\n"
              << "==================================================\n";
}

/** Shared-ownership dataset handle for batch cells. */
using DatasetPtr = std::shared_ptr<const genomics::PairDataset>;

/**
 * Shared-ownership streaming source for batch cells. Cells hold
 * sources; a DatasetPtr is the zero-copy in-RAM special case the
 * engine wraps automatically.
 */
using SourcePtr = std::shared_ptr<const genomics::PairSource>;

/** Materialize a catalog dataset behind a shared handle. */
inline DatasetPtr
makeDatasetPtr(std::string_view name, double scale = benchScale())
{
    return std::make_shared<const genomics::PairDataset>(
        genomics::makeDataset(name, scale));
}

/**
 * A catalog dataset as a bounded-memory generator stream — the pairs
 * are byte-identical to makeDatasetPtr()'s, so results (and
 * checkpoints) are interchangeable between the two.
 */
inline SourcePtr
makeSourcePtr(std::string_view name, double scale = benchScale())
{
    return std::make_shared<genomics::GeneratorPairSource>(name,
                                                           scale);
}

/** A read-store range (`FILE[:FROM-TO]`, docs/STORE.md) as a source. */
inline SourcePtr
makeStoreSourcePtr(const std::string &target)
{
    return SourcePtr(genomics::openStoreSource(
        genomics::parseStoreTarget(target)));
}

/** RunOptions for one verification-free bench cell. */
inline algos::RunOptions
cellOptions(algos::Variant variant,
            std::size_t maxLen = ~std::size_t{0},
            genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
            unsigned qzPorts = 8)
{
    algos::RunOptions options;
    options.variant = variant;
    options.maxLen = maxLen;
    options.alphabet = alphabet;
    options.verify = false; // the test suite covers correctness
    if (algos::needsQuetzal(variant))
        options.system = sim::SystemParams::withQuetzal(qzPorts);
    return options;
}

/** Run one algorithm/variant/dataset cell without verification. */
inline algos::RunResult
runCell(algos::AlgoKind kind, const genomics::PairDataset &dataset,
        algos::Variant variant,
        std::size_t maxLen = ~std::size_t{0},
        genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
        unsigned qzPorts = 8)
{
    return algos::runAlgorithm(
        kind, dataset, cellOptions(variant, maxLen, alphabet, qzPorts));
}

/**
 * The bench binaries' front end to algos::BatchRunner: queue every
 * cell of the figure first, then run() once across QZ_BENCH_THREADS
 * workers and read results back by the indices add() returned.
 * Results are deterministic and bitwise identical to a serial run.
 */
class CellBatch
{
  public:
    CellBatch() : runner_(benchThreads())
    {
        if (const char *env = std::getenv("QZ_BENCH_CHECKPOINT");
            env && *env)
            runner_.setCheckpoint(env);
    }

    /** Queue a cell; @return its index into results(). */
    std::size_t
    add(algos::AlgoKind kind, DatasetPtr dataset,
        algos::Variant variant, std::size_t maxLen = ~std::size_t{0},
        genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
        unsigned qzPorts = 8)
    {
        return runner_.add(
            kind, std::move(dataset),
            cellOptions(variant, maxLen, alphabet, qzPorts));
    }

    /** Queue a cell with fully custom options. */
    std::size_t
    add(algos::AlgoKind kind, DatasetPtr dataset,
        const algos::RunOptions &options)
    {
        return runner_.add(kind, std::move(dataset), options);
    }

    /** Queue a registry workload's cell; @return its result index. */
    std::size_t
    add(const algos::Workload &workload, DatasetPtr dataset,
        algos::Variant variant, unsigned qzPorts = 8)
    {
        return runner_.add(workload, std::move(dataset),
                           cellOptions(variant, ~std::size_t{0},
                                       genomics::AlphabetKind::Dna,
                                       qzPorts));
    }

    /** Queue a registry workload's cell with fully custom options. */
    std::size_t
    add(const algos::Workload &workload, DatasetPtr dataset,
        const algos::RunOptions &options)
    {
        return runner_.add(workload, std::move(dataset), options);
    }

    /** Queue a streaming-source cell (store range or generator). */
    std::size_t
    add(algos::AlgoKind kind, SourcePtr source,
        algos::Variant variant, std::size_t maxLen = ~std::size_t{0},
        genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
        unsigned qzPorts = 8)
    {
        return runner_.add(
            kind, std::move(source),
            cellOptions(variant, maxLen, alphabet, qzPorts));
    }

    /** Streaming-source cell with fully custom options. */
    std::size_t
    add(const algos::Workload &workload, SourcePtr source,
        const algos::RunOptions &options)
    {
        return runner_.add(workload, std::move(source), options);
    }

    /** Run all queued cells; callable once per fill. */
    void
    run()
    {
        outcome_ = runner_.run();
        if (outcome_.shard)
            std::cout << "shard " << algos::shardName(*outcome_.shard)
                      << ": ran " << outcome_.ownedCells.size()
                      << " of " << outcome_.results.size()
                      << " cell(s)\n";
        if (outcome_.resumedCells > 0)
            std::cout << "resumed " << outcome_.resumedCells
                      << " cell(s) from checkpoint\n";
        for (const auto &failure : outcome_.failures)
            warn("cell {} [{}] failed after {} attempt(s): {} ({})",
                 failure.cell, failure.key, failure.attempts,
                 failure.message,
                 algos::failureKindName(failure.kind));
    }

    /**
     * Result slot for a cell. A failed cell's slot holds zeroed
     * metrics; tables render it as a zero row (check outcome()).
     */
    const algos::RunResult &
    operator[](std::size_t index) const
    {
        return outcome_.results.at(index);
    }

    const std::vector<algos::RunResult> &results() const
    {
        return outcome_.results;
    }

    const algos::BatchOutcome &outcome() const { return outcome_; }

  private:
    algos::BatchRunner runner_;
    algos::BatchOutcome outcome_;
};

/**
 * Machine-readable results emission: when QZ_BENCH_JSON is set, dump
 * the sweep's BenchReport JSON to that path ("-" = stdout). Called by
 * each bench binary after its human-readable table. Sharded runs emit
 * only the owned cells plus their global indices; qz-merge reassembles
 * the shard files into output byte-identical to an unsharded run
 * (both paths share the algos::toJson(BenchReport) serializer).
 */
inline void
maybeWriteJson(const std::string &benchName,
               const algos::BatchOutcome &outcome)
{
    const char *env = std::getenv("QZ_BENCH_JSON");
    if (!env || !*env)
        return;
    const algos::BenchReport report = algos::makeBenchReport(
        benchName, benchScale(), benchThreads(), outcome);
    const std::string json = algos::toJson(report);
    if (std::string_view(env) == "-") {
        std::cout << json << "\n";
        return;
    }
    std::ofstream out(env);
    if (!out) {
        warn("cannot open QZ_BENCH_JSON path '{}' for writing", env);
        return;
    }
    out << json << "\n";
    std::cout << "wrote JSON results to " << env << "\n";
}

/**
 * Legacy overload for benches that only have the result rows: wrap
 * them in a shard-less outcome so every emitter shares one format.
 */
inline void
maybeWriteJson(const std::string &benchName,
               const std::vector<algos::RunResult> &results)
{
    algos::BatchOutcome outcome;
    outcome.results = results;
    for (std::size_t i = 0; i < results.size(); ++i)
        outcome.ownedCells.push_back(i);
    maybeWriteJson(benchName, outcome);
}

/** Build the protein workload as a PairDataset (use case 4). */
inline genomics::PairDataset
proteinDataset(double scale)
{
    genomics::ProteinFamilyConfig config;
    config.familyCount =
        std::max<std::size_t>(1, static_cast<std::size_t>(2 * scale));
    config.membersPerFamily = 4;
    config.ancestorLength = 400;
    genomics::PairDataset ds;
    ds.name = "protein";
    ds.readLength = config.ancestorLength;
    ds.errorRate = config.divergence;
    ds.pairs = genomics::proteinPairWorkload(config);
    return ds;
}

} // namespace quetzal::bench

#endif // QUETZAL_BENCH_BENCH_COMMON_HPP
