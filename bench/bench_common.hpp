/**
 * @file
 * Shared plumbing for the per-figure/per-table bench binaries.
 *
 * Each binary regenerates one table or figure of the paper: it builds
 * the workload, queues the relevant (algorithm, variant, dataset)
 * cells on the batch engine, and prints the same rows/series the
 * paper reports.
 *
 * Environment knobs:
 *  - QZ_BENCH_SCALE   dataset scale (default 1.0; 0.2 quick, 4 long)
 *  - QZ_BENCH_THREADS harness workers (default hardware_concurrency)
 *  - QZ_BENCH_JSON    dump the RunResult rows as JSON: a path, or "-"
 *                     for stdout after the table
 *  - QZ_BENCH_CHECKPOINT  append completed cells to this file and skip
 *                     cells already in it on restart (resumable sweeps)
 *  - QZ_FAULT_INJECT  deterministic fault injection, CELL:KIND[:TIMES]
 *                     (docs/ROBUSTNESS.md)
 */
#ifndef QUETZAL_BENCH_BENCH_COMMON_HPP
#define QUETZAL_BENCH_BENCH_COMMON_HPP

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algos/batch.hpp"
#include "algos/report.hpp"
#include "algos/runner.hpp"
#include "common/table.hpp"
#include "common/threadpool.hpp"
#include "genomics/datasets.hpp"
#include "genomics/protein.hpp"

namespace quetzal::bench {

/** Dataset scale factor from QZ_BENCH_SCALE (default 1.0). */
inline double
benchScale()
{
    if (const char *env = std::getenv("QZ_BENCH_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0)
            return scale;
    }
    return 1.0;
}

/** Harness worker count from QZ_BENCH_THREADS (default: all cores). */
inline unsigned
benchThreads()
{
    if (const char *env = std::getenv("QZ_BENCH_THREADS")) {
        const long n = std::atol(env);
        if (n > 0)
            return static_cast<unsigned>(n);
        warn("ignoring QZ_BENCH_THREADS='{}' (want a positive integer)",
             env);
    }
    return ThreadPool::hardwareThreads();
}

/** Print the experiment banner with the Table I system summary. */
inline void
banner(const std::string &title)
{
    std::cout << "==================================================\n"
              << title << "\n"
              << "Simulated system (Table I): 2.0 GHz A64FX-like, "
                 "512-bit SVE,\n"
              << "  L1D 64KB/8w lt=4, L2 8MB/16w lt=37, HBM2; "
                 "QUETZAL 2x8KB QBUFFERs\n"
              << "Dataset scale: " << benchScale()
              << " (QZ_BENCH_SCALE), harness threads: "
              << benchThreads() << " (QZ_BENCH_THREADS)\n"
              << "==================================================\n";
}

/** Shared-ownership dataset handle for batch cells. */
using DatasetPtr = std::shared_ptr<const genomics::PairDataset>;

/** Materialize a catalog dataset behind a shared handle. */
inline DatasetPtr
makeDatasetPtr(std::string_view name, double scale = benchScale())
{
    return std::make_shared<const genomics::PairDataset>(
        genomics::makeDataset(name, scale));
}

/** RunOptions for one verification-free bench cell. */
inline algos::RunOptions
cellOptions(algos::Variant variant,
            std::size_t maxLen = ~std::size_t{0},
            genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
            unsigned qzPorts = 8)
{
    algos::RunOptions options;
    options.variant = variant;
    options.maxLen = maxLen;
    options.alphabet = alphabet;
    options.verify = false; // the test suite covers correctness
    if (algos::needsQuetzal(variant))
        options.system = sim::SystemParams::withQuetzal(qzPorts);
    return options;
}

/** Run one algorithm/variant/dataset cell without verification. */
inline algos::RunResult
runCell(algos::AlgoKind kind, const genomics::PairDataset &dataset,
        algos::Variant variant,
        std::size_t maxLen = ~std::size_t{0},
        genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
        unsigned qzPorts = 8)
{
    return algos::runAlgorithm(
        kind, dataset, cellOptions(variant, maxLen, alphabet, qzPorts));
}

/**
 * The bench binaries' front end to algos::BatchRunner: queue every
 * cell of the figure first, then run() once across QZ_BENCH_THREADS
 * workers and read results back by the indices add() returned.
 * Results are deterministic and bitwise identical to a serial run.
 */
class CellBatch
{
  public:
    CellBatch() : runner_(benchThreads())
    {
        if (const char *env = std::getenv("QZ_BENCH_CHECKPOINT");
            env && *env)
            runner_.setCheckpoint(env);
    }

    /** Queue a cell; @return its index into results(). */
    std::size_t
    add(algos::AlgoKind kind, DatasetPtr dataset,
        algos::Variant variant, std::size_t maxLen = ~std::size_t{0},
        genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna,
        unsigned qzPorts = 8)
    {
        return runner_.add(
            kind, std::move(dataset),
            cellOptions(variant, maxLen, alphabet, qzPorts));
    }

    /** Queue a cell with fully custom options. */
    std::size_t
    add(algos::AlgoKind kind, DatasetPtr dataset,
        const algos::RunOptions &options)
    {
        return runner_.add(kind, std::move(dataset), options);
    }

    /** Run all queued cells; callable once per fill. */
    void
    run()
    {
        outcome_ = runner_.run();
        if (outcome_.resumedCells > 0)
            std::cout << "resumed " << outcome_.resumedCells
                      << " cell(s) from checkpoint\n";
        for (const auto &failure : outcome_.failures)
            warn("cell {} [{}] failed after {} attempt(s): {} ({})",
                 failure.cell, failure.key, failure.attempts,
                 failure.message,
                 algos::failureKindName(failure.kind));
    }

    /**
     * Result slot for a cell. A failed cell's slot holds zeroed
     * metrics; tables render it as a zero row (check outcome()).
     */
    const algos::RunResult &
    operator[](std::size_t index) const
    {
        return outcome_.results.at(index);
    }

    const std::vector<algos::RunResult> &results() const
    {
        return outcome_.results;
    }

    const algos::BatchOutcome &outcome() const { return outcome_; }

  private:
    algos::BatchRunner runner_;
    algos::BatchOutcome outcome_;
};

/**
 * Machine-readable results emission: when QZ_BENCH_JSON is set, dump
 * @p results as {"bench", "threads", "scale", "results": [...]} to
 * that path ("-" = stdout). Called by each bench binary after its
 * human-readable table.
 */
inline void
maybeWriteJson(const std::string &benchName,
               const std::vector<algos::RunResult> &results,
               const algos::BatchOutcome *outcome = nullptr)
{
    const char *env = std::getenv("QZ_BENCH_JSON");
    if (!env || !*env)
        return;
    JsonWriter json;
    json.beginObject()
        .field("bench", benchName)
        .field("scale", benchScale())
        .field("threads", static_cast<std::uint64_t>(benchThreads()));
    if (outcome) {
        json.field("resumed_cells", outcome->resumedCells)
            .field("retries", outcome->retries);
    }
    json.beginArray("results");
    for (const auto &r : results)
        json.rawValue(algos::toJson(r));
    json.endArray();
    if (outcome) {
        json.beginArray("failures");
        for (const auto &failure : outcome->failures)
            json.rawValue(algos::toJson(failure));
        json.endArray();
    }
    json.endObject();
    if (std::string_view(env) == "-") {
        std::cout << json.str() << "\n";
        return;
    }
    std::ofstream out(env);
    if (!out) {
        warn("cannot open QZ_BENCH_JSON path '{}' for writing", env);
        return;
    }
    out << json.str() << "\n";
    std::cout << "wrote JSON results to " << env << "\n";
}

/**
 * Preferred overload: emit the whole BatchOutcome, including the
 * failures array and resume/retry counters.
 */
inline void
maybeWriteJson(const std::string &benchName,
               const algos::BatchOutcome &outcome)
{
    maybeWriteJson(benchName, outcome.results, &outcome);
}

/** Build the protein workload as a PairDataset (use case 4). */
inline genomics::PairDataset
proteinDataset(double scale)
{
    genomics::ProteinFamilyConfig config;
    config.familyCount =
        std::max<std::size_t>(1, static_cast<std::size_t>(2 * scale));
    config.membersPerFamily = 4;
    config.ancestorLength = 400;
    genomics::PairDataset ds;
    ds.name = "protein";
    ds.readLength = config.ancestorLength;
    ds.errorRate = config.divergence;
    ds.pairs = genomics::proteinPairWorkload(config);
    return ds;
}

} // namespace quetzal::bench

#endif // QUETZAL_BENCH_BENCH_COMMON_HPP
