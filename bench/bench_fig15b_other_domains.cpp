/**
 * @file
 * Fig. 15b reproduction: QUETZAL on other application domains —
 * histogram calculation and CSR SpMV.
 *
 * Paper: QUETZAL outperforms the vectorized kernels by 3.02x
 * (histogram) and 1.94x (SpMV).
 */
#include "bench_common.hpp"

#include <optional>

#include "kernels/histogram.hpp"
#include "kernels/spmv.hpp"

namespace {

struct Rig
{
    quetzal::sim::SimContext ctx;
    quetzal::isa::VectorUnit vpu;
    std::optional<quetzal::accel::QzUnit> qz;

    explicit Rig(bool quetzal)
        : ctx(quetzal ? quetzal::sim::SystemParams::withQuetzal()
                      : quetzal::sim::SystemParams::baseline()),
          vpu(ctx.pipeline())
    {
        if (quetzal)
            qz.emplace(vpu, ctx.params().quetzal);
    }
};

} // namespace

int
main()
{
    using namespace quetzal;
    using algos::Variant;
    bench::banner("Fig. 15b: other application domains "
                  "(QUETZAL vs VEC)");

    const double scale = bench::benchScale();
    TextTable table({"Kernel", "BASE cyc", "VEC cyc", "QUETZAL cyc",
                     "VEC/BASE", "QZ/VEC"});

    // Histogram: indexed read-modify-write of a 1K-bin table.
    {
        const auto input = kernels::makeHistogramInput(
            static_cast<std::size_t>(60000 * scale), 1024);
        std::uint64_t cycles[3];
        int i = 0;
        for (Variant v : {Variant::Base, Variant::Vec, Variant::Qz}) {
            Rig rig(algos::needsQuetzal(v));
            kernels::histogram(v, input, &rig.vpu,
                               rig.qz ? &*rig.qz : nullptr);
            cycles[i++] = rig.ctx.pipeline().totalCycles();
        }
        table.addRow({"histogram", std::to_string(cycles[0]),
                      std::to_string(cycles[1]),
                      std::to_string(cycles[2]),
                      TextTable::num(
                          static_cast<double>(cycles[0]) / cycles[1],
                          2) + "x",
                      TextTable::num(
                          static_cast<double>(cycles[1]) / cycles[2],
                          2) + "x"});
    }

    // SpMV: gather-dominated CSR kernel, x staged in the QBUFFERs.
    {
        const auto a = kernels::makeSparseMatrix(
            static_cast<std::size_t>(1500 * scale), 2000, 16);
        std::vector<std::int64_t> x(a.cols);
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<std::int64_t>((i * 7) % 127) - 63;
        std::uint64_t cycles[3];
        int i = 0;
        for (Variant v : {Variant::Base, Variant::Vec, Variant::Qz}) {
            Rig rig(algos::needsQuetzal(v));
            kernels::spmv(v, a, x, &rig.vpu,
                          rig.qz ? &*rig.qz : nullptr);
            cycles[i++] = rig.ctx.pipeline().totalCycles();
        }
        table.addRow({"spmv", std::to_string(cycles[0]),
                      std::to_string(cycles[1]),
                      std::to_string(cycles[2]),
                      TextTable::num(
                          static_cast<double>(cycles[0]) / cycles[1],
                          2) + "x",
                      TextTable::num(
                          static_cast<double>(cycles[1]) / cycles[2],
                          2) + "x"});
    }

    table.print(std::cout);
    std::cout << "\nPaper: histogram 3.02x, SpMV 1.94x over the "
                 "vectorized kernels.\n";
    return 0;
}
