/**
 * @file
 * Fig. 15b reproduction: QUETZAL on other application domains —
 * histogram calculation and CSR SpMV.
 *
 * The kernels run through the same registry/batch path as the
 * genomics algorithms: each (kernel, variant) cell is a registered
 * workload executed by the batch engine on a fresh simulated core,
 * so the sweep gets threads, JSON emission, checkpointing, sharding,
 * and fault isolation identically to every other figure.
 *
 * Paper: QUETZAL outperforms the vectorized kernels by 3.02x
 * (histogram) and 1.94x (SpMV).
 */
#include "bench_common.hpp"

#include <cmath>
#include <iterator>

#include "algos/workload.hpp"

int
main()
{
    using namespace quetzal;
    using algos::Variant;
    bench::banner("Fig. 15b: other application domains "
                  "(QUETZAL vs VEC)");

    const double scale = bench::benchScale();
    const char *kernelNames[] = {"histogram", "spmv"};

    bench::CellBatch batch;
    struct KernelRow
    {
        const algos::Workload *workload;
        std::size_t cell[3]; // Base, Vec, Qz
    };
    std::vector<KernelRow> rows;
    for (const char *name : kernelNames) {
        const algos::Workload &workload = algos::workloadByName(name);
        const auto dataset =
            std::make_shared<const genomics::PairDataset>(
                workload.makeDataset(name, scale));
        KernelRow row{&workload, {}};
        int i = 0;
        for (Variant v : {Variant::Base, Variant::Vec, Variant::Qz})
            row.cell[i++] = batch.add(workload, dataset, v);
        rows.push_back(row);
    }
    batch.run();

    // A failed cell leaves a zeroed slot; speedup() yields NaN there
    // and the table renders "n/a" — the bar itself is always emitted.
    const auto bar = [](const algos::RunResult &baseline,
                        const algos::RunResult &test) {
        const double s = algos::speedup(baseline, test);
        return std::isnan(s) ? std::string("n/a")
                             : TextTable::num(s, 2) + "x";
    };

    TextTable table({"Kernel", "BASE cyc", "VEC cyc", "QUETZAL cyc",
                     "VEC/BASE", "QZ/VEC"});
    std::size_t barsEmitted = 0;
    for (const KernelRow &row : rows) {
        const algos::RunResult &base = batch[row.cell[0]];
        const algos::RunResult &vec = batch[row.cell[1]];
        const algos::RunResult &qz = batch[row.cell[2]];
        table.addRow({std::string(row.workload->name()),
                      std::to_string(base.cycles),
                      std::to_string(vec.cycles),
                      std::to_string(qz.cycles), bar(base, vec),
                      bar(vec, qz)});
        ++barsEmitted;
    }
    panic_if_not(barsEmitted == std::size(kernelNames),
                 "fig15b must emit one speedup row per kernel");

    table.print(std::cout);
    std::cout << "\nPaper: histogram 3.02x, SpMV 1.94x over the "
                 "vectorized kernels.\n";
    bench::maybeWriteJson("fig15b_other_domains", batch.outcome());
    return 0;
}
