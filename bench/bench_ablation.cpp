/**
 * @file
 * Ablations of QUETZAL design choices (beyond the paper's port sweep):
 *
 *  1. Encoding width — the 2-bit DNA encoding quadruples both QBUFFER
 *     capacity and the bases each qzcount window covers (Section
 *     IV-A's rationale). Running DNA through the 8-bit path isolates
 *     that choice.
 *  2. Tiling window — Section VI's windowed path for ultra-long
 *     reads trades alignment accuracy (seam edits at window cuts)
 *     against WFA's quadratic per-window cost; the sweep exposes the
 *     trade and the 32.7 kbp capacity bound.
 */
#include "bench_common.hpp"

#include <optional>

#include "algos/tiled.hpp"
#include "algos/wfa_engine.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"

namespace {

quetzal::genomics::SequencePair
longRead(std::size_t length, double error, std::uint64_t seed)
{
    quetzal::genomics::ReadSimConfig config;
    config.readLength = length;
    config.errorRate = error;
    config.seed = seed;
    quetzal::genomics::ReadSimulator sim(config);
    return sim.generatePairs(1).front();
}

} // namespace

int
main()
{
    using namespace quetzal;
    using algos::Variant;
    bench::banner("Ablations: encoding width and tiling window");

    const double scale = bench::benchScale();

    // ---- 1. 2-bit vs 8-bit encoding on DNA (WFA, QUETZAL+C) -------
    {
        TextTable table({"Dataset", "2-bit cycles", "8-bit cycles",
                         "2-bit advantage"});
        struct Workload
        {
            const char *name;
            std::size_t length;
            double error;
            std::size_t count;
        };
        for (const Workload &w : {Workload{"250bp", 250, 0.05, 40},
                                  Workload{"6Kbp", 6000, 0.03, 2}}) {
            genomics::ReadSimConfig config;
            config.readLength = w.length;
            config.errorRate = w.error;
            config.seed = 17;
            genomics::ReadSimulator sim(config);
            const auto pairs = sim.generatePairs(std::max<std::size_t>(
                1, static_cast<std::size_t>(w.count * scale)));
            std::uint64_t cycles[2];
            int i = 0;
            for (auto esize : {genomics::ElementSize::Bits2,
                               genomics::ElementSize::Bits8}) {
                sim::SimContext ctx(sim::SystemParams::withQuetzal());
                isa::VectorUnit vpu(ctx.pipeline());
                accel::QzUnit qz(vpu, ctx.params().quetzal);
                auto engine =
                    algos::makeWfaEngine(Variant::QzC, &vpu, &qz);
                for (const auto &pair : pairs)
                    algos::wfaAlign(*engine, pair.pattern, pair.text,
                                    true, esize);
                cycles[i++] = ctx.pipeline().totalCycles();
            }
            table.addRow({w.name, std::to_string(cycles[0]),
                          std::to_string(cycles[1]),
                          TextTable::num(static_cast<double>(cycles[1]) /
                                             static_cast<double>(
                                                 cycles[0]),
                                         2) +
                              "x"});
        }
        std::cout << "\n[1] DNA through the 2-bit vs 8-bit encoder "
                     "(32 vs 8 bases per qzcount window):\n";
        table.print(std::cout);
    }

    // ---- 2. Tiling window sweep on an ultra-long read --------------
    {
        const auto pair = longRead(
            static_cast<std::size_t>(120000 * std::max(0.2, scale)),
            0.005, 7);
        TextTable table({"Window (bases)", "Windows", "Score",
                         "Cycles", "vs best"});
        struct Point
        {
            std::size_t window;
            std::uint64_t cycles;
            std::int64_t score;
            std::size_t count;
        };
        std::vector<Point> points;
        for (std::size_t window : {2000u, 8000u, 16000u, 30000u}) {
            sim::SimContext ctx(sim::SystemParams::withQuetzal());
            isa::VectorUnit vpu(ctx.pipeline());
            accel::QzUnit qz(vpu, ctx.params().quetzal);
            auto engine =
                algos::makeWfaEngine(Variant::QzC, &vpu, &qz);
            algos::TiledConfig config;
            config.windowBases = window;
            const auto result = algos::tiledAlign(
                *engine, pair.pattern, pair.text, config);
            points.push_back({window, ctx.pipeline().totalCycles(),
                              result.score,
                              algos::tiledWindowCount(
                                  pair.pattern.size(), config)});
        }
        std::uint64_t best = ~std::uint64_t{0};
        for (const auto &pt : points)
            best = std::min(best, pt.cycles);
        for (const auto &pt : points)
            table.addRow({std::to_string(pt.window),
                          std::to_string(pt.count),
                          std::to_string(pt.score),
                          std::to_string(pt.cycles),
                          TextTable::num(static_cast<double>(pt.cycles) /
                                             static_cast<double>(best),
                                         2) +
                              "x"});
        std::cout << "\n[2] Tiling-window sweep, "
                  << pair.pattern.size()
                  << " bp ONT-class read (QUETZAL+C):\n";
        table.print(std::cout);
        std::cout
            << "\nSmall windows are cheaper (WFA's wavefront work "
               "grows quadratically with the per-window score) but "
               "pay seam edits that inflate the reported distance; "
               "large windows approach the optimal score at higher "
               "cost, bounded by the 32.7 kbp QBUFFER capacity.\n";
    }
    return 0;
}
