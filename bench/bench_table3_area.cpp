/**
 * @file
 * Table III reproduction: area and power of the QUETZAL
 * configurations at 7 nm, plus core/SoC overhead percentages.
 */
#include "bench_common.hpp"

#include "quetzal/area_model.hpp"

int
main()
{
    using namespace quetzal;
    bench::banner("Table III: QUETZAL area/power (7nm, analytic model "
                  "anchored to the paper's place-and-route)");

    TextTable table({"Config", "Read ports", "Read latency", "Area",
                     "Power", "% of core", "% of SoC"});
    for (const auto &est : accel::tableIiiConfigs()) {
        table.addRow({est.config, std::to_string(est.readPorts),
                      std::to_string(est.readLatency) + " cycles",
                      TextTable::num(est.areaMm2, 3) + " mm^2",
                      TextTable::num(est.powerMw * 1000.0, 0) + " uW",
                      TextTable::num(est.corePercent, 2) + "%",
                      TextTable::num(est.socPercent, 2) + "%"});
    }
    table.print(std::cout);
    std::cout << "\nPaper anchors: QZ_8P = 0.097 mm^2, 746 uW, 1.41% "
                 "of the A64FX SoC.\n";
    return 0;
}
