/**
 * @file
 * Shouji filter tests: acceptance of alignable pairs, rejection of
 * divergent pairs, the no-false-reject property against the true edit
 * distance, and identical verdicts across timed variants.
 */
#include <gtest/gtest.h>

#include <optional>

#include "algos/shouji.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {
namespace {

TEST(Shouji, AcceptsIdenticalPair)
{
    const auto r = shouji(Variant::Ref, "ACGTACGTACGT",
                          "ACGTACGTACGT", 2);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.zeroCount, 0);
}

TEST(Shouji, RejectsGrosslyDifferentPair)
{
    const auto r = shouji(Variant::Ref, std::string(64, 'A'),
                          std::string(64, 'T'), 4);
    EXPECT_FALSE(r.accepted);
    EXPECT_GT(r.zeroCount, 4);
}

TEST(Shouji, NoFalseRejectsOnAlignablePairs)
{
    genomics::ReadSimConfig config;
    config.readLength = 200;
    config.errorRate = 0.03;
    config.seed = 12;
    genomics::ReadSimulator sim(config);
    auto ref = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (const auto &pair : sim.generatePairs(30)) {
        const std::int64_t dist =
            wfaScore(*ref, pair.pattern, pair.text);
        // Shouji's zero count is a lower bound on the edit distance,
        // so any pair within E must be accepted at threshold E.
        const std::int64_t e = std::max<std::int64_t>(dist, 2);
        const auto r =
            shouji(Variant::Ref, pair.pattern, pair.text, e);
        EXPECT_TRUE(r.accepted)
            << "dist " << dist << " zeros " << r.zeroCount;
        EXPECT_LE(r.zeroCount, dist + 3); // tight-ish estimate
    }
}

TEST(Shouji, FiltersDecoyWorkload)
{
    genomics::ReadSimConfig config;
    config.readLength = 150;
    config.errorRate = 0.03;
    config.seed = 21;
    genomics::ReadSimulator sim(config);
    const auto pairs = sim.generatePairs(12);
    int rejected = 0;
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        const auto r = shouji(Variant::Ref, pairs[i].pattern,
                              pairs[i + 1].text, 7);
        rejected += r.accepted ? 0 : 1;
    }
    EXPECT_GE(rejected, 5); // unrelated 150-mers get caught
}

TEST(Shouji, RejectsBadArguments)
{
    EXPECT_THROW(shouji(Variant::Ref, "", "ACG", 3), FatalError);
    EXPECT_THROW(shouji(Variant::Ref, "ACG", "ACG", 0), FatalError);
    EXPECT_THROW(shouji(Variant::Base, "ACG", "ACG", 2), PanicError);
}

class ShoujiVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(ShoujiVariants, VerdictsMatchReference)
{
    const Variant variant = GetParam();
    sim::SimContext ctx(needsQuetzal(variant)
                            ? sim::SystemParams::withQuetzal()
                            : sim::SystemParams::baseline());
    isa::VectorUnit vpu(ctx.pipeline());
    std::optional<accel::QzUnit> qz;
    if (needsQuetzal(variant))
        qz.emplace(vpu, ctx.params().quetzal);

    genomics::ReadSimConfig config;
    config.readLength = 120;
    config.errorRate = 0.05;
    config.seed = 33;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(6)) {
        const auto got = shouji(variant, pair.pattern, pair.text, 9,
                                &vpu, qz ? &*qz : nullptr);
        const auto want =
            shouji(Variant::Ref, pair.pattern, pair.text, 9);
        ASSERT_EQ(got.accepted, want.accepted);
        ASSERT_EQ(got.zeroCount, want.zeroCount);
    }
    EXPECT_GT(ctx.pipeline().instructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ShoujiVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::QzC),
                         [](const auto &info) {
                             std::string name(variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

TEST(ShoujiTiming, QuetzalBeatsBase)
{
    genomics::ReadSimConfig config;
    config.readLength = 250;
    config.errorRate = 0.04;
    genomics::ReadSimulator rs(config);
    const auto pairs = rs.generatePairs(4);

    auto measure = [&](Variant v) {
        sim::SimContext ctx(needsQuetzal(v)
                                ? sim::SystemParams::withQuetzal()
                                : sim::SystemParams::baseline());
        isa::VectorUnit vpu(ctx.pipeline());
        std::optional<accel::QzUnit> qz;
        if (needsQuetzal(v))
            qz.emplace(vpu, ctx.params().quetzal);
        for (const auto &pair : pairs)
            shouji(v, pair.pattern, pair.text, 12, &vpu,
                   qz ? &*qz : nullptr);
        return ctx.pipeline().totalCycles();
    };

    EXPECT_LT(measure(Variant::QzC), measure(Variant::Base));
}

} // namespace
} // namespace quetzal::algos
