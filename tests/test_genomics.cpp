/**
 * @file
 * Unit tests for the genomics substrate: alphabets, 2-bit/8-bit
 * encodings, FASTA/FASTQ I/O, the read simulator, the protein family
 * generator, and the Table II dataset catalog.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"
#include "common/bitutil.hpp"
#include "genomics/alphabet.hpp"
#include "genomics/datasets.hpp"
#include "genomics/encoding.hpp"
#include "genomics/fasta.hpp"
#include "genomics/protein.hpp"
#include "genomics/readsim.hpp"

namespace quetzal::genomics {
namespace {

TEST(Alphabet, LettersAndValidity)
{
    EXPECT_EQ(letters(AlphabetKind::Dna), "ACGT");
    EXPECT_EQ(letters(AlphabetKind::Rna), "ACGU");
    EXPECT_EQ(letters(AlphabetKind::Protein).size(), 20u);
    EXPECT_TRUE(isValid(AlphabetKind::Dna, 'G'));
    EXPECT_FALSE(isValid(AlphabetKind::Dna, 'U'));
    EXPECT_TRUE(isValid(AlphabetKind::Rna, 'U'));
    EXPECT_TRUE(isValid(AlphabetKind::Dna, std::string_view("ACGT")));
    EXPECT_FALSE(isValid(AlphabetKind::Dna, std::string_view("ACGX")));
}

TEST(Alphabet, ComplementAndReverseComplement)
{
    EXPECT_EQ(complement('A'), 'T');
    EXPECT_EQ(complement('G'), 'C');
    EXPECT_EQ(complement('N'), 'N');
    EXPECT_THROW(complement('Z'), FatalError);
    EXPECT_EQ(reverseComplement("ACGT"), "ACGT");
    EXPECT_EQ(reverseComplement("AACG"), "CGTT");
}

TEST(Encoding, TwoBitCodesMatchAsciiBits12)
{
    // The hardware extracts ASCII bits 1..2 (paper Fig. 9a).
    EXPECT_EQ(encodeBase2('A'), 0);
    EXPECT_EQ(encodeBase2('C'), 1);
    EXPECT_EQ(encodeBase2('T'), 2);
    EXPECT_EQ(encodeBase2('G'), 3);
    EXPECT_EQ(encodeBase2('U'), 2); // U shares T's slot
}

TEST(Encoding, DecodeInvertsEncodeOverDna)
{
    for (char base : {'A', 'C', 'G', 'T'})
        EXPECT_EQ(decodeBase2Dna(encodeBase2(base)), base);
    for (char base : {'A', 'C', 'G', 'U'})
        EXPECT_EQ(decodeBase2Rna(encodeBase2(base)), base);
}

TEST(Encoding, Pack2bitRoundTrips)
{
    const std::string seq = "ACGTACGTTTGGCCAAACGTACGTTTGGCCAAACG";
    const auto words = pack2bit(seq);
    EXPECT_EQ(words.size(), divCeil(seq.size() * 2, 64));
    EXPECT_EQ(unpack2bitDna(words, seq.size()), seq);
}

TEST(Encoding, Pack8bitRoundTrips)
{
    const std::string seq = "MKVLAARrandomPROTEIN";
    const auto words = pack8bit(seq);
    EXPECT_EQ(unpack8bit(words, seq.size()), seq);
}

TEST(Encoding, ExtractElementMatchesPacking)
{
    const std::string seq = "ACGTTGCA";
    const auto words = pack2bit(seq);
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(extractElement(words, i, ElementSize::Bits2),
                  encodeBase2(seq[i]));
    const auto words8 = pack8bit(seq);
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(extractElement(words8, i, ElementSize::Bits8),
                  static_cast<std::uint64_t>(seq[i]));
}

TEST(Fasta, ParsesMultiRecordMultiLine)
{
    std::istringstream in(">r1 描述 desc\nACGT\nacgt\n;comment\n>r2\nTTTT\n");
    const auto records = readFasta(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].id, "r1");
    EXPECT_EQ(records[0].bases, "ACGTACGT");
    EXPECT_EQ(records[1].bases, "TTTT");
}

TEST(Fasta, RoundTripsThroughWriter)
{
    std::vector<Sequence> records(2);
    records[0].id = "a";
    records[0].bases = std::string(130, 'A');
    records[1].id = "b";
    records[1].bases = "ACGT";
    std::ostringstream out;
    writeFasta(out, records, 60);
    std::istringstream in(out.str());
    const auto parsed = readFasta(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].bases, records[0].bases);
    EXPECT_EQ(parsed[1].bases, records[1].bases);
}

TEST(Fasta, RejectsGarbage)
{
    std::istringstream noHeader("ACGT\n");
    EXPECT_THROW(readFasta(noHeader), FatalError);
    std::istringstream emptyRecord(">x\n>y\nACGT\n");
    EXPECT_THROW(readFasta(emptyRecord), FatalError);
}

TEST(Fastq, ParsesAndValidates)
{
    std::istringstream in("@r1\nACGT\n+\nIIII\n@r2\nTT\n+r2\nII\n");
    const auto records = readFastq(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].seq.bases, "ACGT");
    EXPECT_EQ(records[0].quality, "IIII");

    std::istringstream bad("@r1\nACGT\n+\nII\n");
    EXPECT_THROW(readFastq(bad), FatalError);
}

TEST(Fastq, WriterRoundTrips)
{
    std::vector<FastqRecord> records(1);
    records[0].seq.id = "q";
    records[0].seq.bases = "ACGT";
    records[0].quality = "!!!!";
    std::ostringstream out;
    writeFastq(out, records);
    std::istringstream in(out.str());
    const auto parsed = readFastq(in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].quality, "!!!!");
}

TEST(PairFile, RoundTrips)
{
    std::vector<SequencePair> pairs(2);
    pairs[0].pattern = "ACGT";
    pairs[0].text = "ACGA";
    pairs[1].pattern = "TT";
    pairs[1].text = "TTT";
    std::ostringstream out;
    writePairFile(out, pairs);
    std::istringstream in(out.str());
    const auto parsed = readPairFile(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].pattern, "ACGT");
    EXPECT_EQ(parsed[1].text, "TTT");
}

TEST(ReadSim, DeterministicForSameSeed)
{
    ReadSimConfig config;
    config.readLength = 200;
    config.seed = 99;
    ReadSimulator a(config), b(config);
    const auto pa = a.generatePairs(5);
    const auto pb = b.generatePairs(5);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(pa[i].pattern, pb[i].pattern);
        EXPECT_EQ(pa[i].text, pb[i].text);
        EXPECT_EQ(pa[i].trueEdits, pb[i].trueEdits);
    }
}

TEST(ReadSim, ErrorRateRoughlyHonored)
{
    ReadSimConfig config;
    config.readLength = 10000;
    config.errorRate = 0.05;
    config.seed = 5;
    ReadSimulator sim(config);
    const auto pairs = sim.generatePairs(4);
    for (const auto &pair : pairs) {
        EXPECT_NEAR(static_cast<double>(pair.trueEdits) / 10000.0, 0.05,
                    0.015);
        EXPECT_TRUE(isValid(AlphabetKind::Dna, pair.pattern));
    }
}

TEST(ReadSim, ZeroErrorRateGivesIdenticalPair)
{
    ReadSimConfig config;
    config.readLength = 500;
    config.errorRate = 0.0;
    ReadSimulator sim(config);
    const auto pairs = sim.generatePairs(2);
    for (const auto &pair : pairs) {
        EXPECT_EQ(pair.pattern, pair.text);
        EXPECT_EQ(pair.trueEdits, 0);
    }
}

TEST(ReadSim, RejectsBadConfig)
{
    ReadSimConfig config;
    config.readLength = 0;
    EXPECT_THROW(ReadSimulator{config}, FatalError);
    config.readLength = 10;
    config.errorRate = 1.5;
    EXPECT_THROW(ReadSimulator{config}, FatalError);
}

TEST(Protein, FamiliesHaveRequestedShape)
{
    ProteinFamilyConfig config;
    config.familyCount = 3;
    config.membersPerFamily = 4;
    config.ancestorLength = 120;
    const auto families = generateProteinFamilies(config);
    ASSERT_EQ(families.size(), 3u);
    for (const auto &family : families) {
        ASSERT_EQ(family.members.size(), 4u);
        for (const auto &member : family.members) {
            EXPECT_TRUE(isValid(AlphabetKind::Protein, member.bases));
            EXPECT_GT(member.length(), 60u);
        }
        // All unordered pairs: 4 choose 2 = 6.
        EXPECT_EQ(family.allPairs().size(), 6u);
    }
}

TEST(Protein, WorkloadFlattensAllFamilies)
{
    ProteinFamilyConfig config;
    config.familyCount = 2;
    config.membersPerFamily = 3;
    const auto workload = proteinPairWorkload(config);
    EXPECT_EQ(workload.size(), 2u * 3u);
    for (const auto &pair : workload)
        EXPECT_EQ(pair.alphabet, AlphabetKind::Protein);
}

TEST(Datasets, CatalogMatchesTableII)
{
    const auto &catalog = datasetCatalog();
    ASSERT_EQ(catalog.size(), 4u);
    EXPECT_EQ(catalog[0].name, "100bp_1");
    EXPECT_EQ(catalog[0].readLength, 100u);
    EXPECT_EQ(catalog[1].name, "250bp_1");
    EXPECT_EQ(catalog[2].name, "10Kbp");
    EXPECT_EQ(catalog[2].readLength, 10000u);
    EXPECT_EQ(catalog[3].name, "30Kbp");
    EXPECT_EQ(catalog[3].readLength, 30000u);
    EXPECT_EQ(shortReadNames().size(), 2u);
    EXPECT_EQ(longReadNames().size(), 2u);
}

TEST(Datasets, MakeDatasetScalesAndSeedsDeterministically)
{
    const auto small = makeDataset("100bp_1", 0.01);
    EXPECT_EQ(small.size(),
              std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         datasetSpec("100bp_1").defaultPairs * 0.01)));
    EXPECT_EQ(small.readLength, 100u);
    const auto again = makeDataset("100bp_1", 0.01);
    EXPECT_EQ(small.pairs[3].pattern, again.pairs[3].pattern);
    EXPECT_THROW(makeDataset("nope"), FatalError);
    EXPECT_THROW(makeDataset("100bp_1", 0.0), FatalError);
}

} // namespace
} // namespace quetzal::genomics
