/**
 * @file
 * BiWFA tests: the bidirectional score must equal plain WFA's optimal
 * score on every input, the recursive alignment must be a valid
 * optimal transcript, and all timed variants must agree bitwise.
 */
#include <gtest/gtest.h>

#include <optional>

#include "algos/biwfa.hpp"
#include "algos/wfa_engine.hpp"
#include "common/rng.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {
namespace {

std::int64_t
refWfaScore(std::string_view p, std::string_view t)
{
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    return wfaScore(*engine, p, t);
}

TEST(BiWfaRef, ScoreMatchesWfaOnFixedCases)
{
    const std::pair<const char *, const char *> cases[] = {
        {"ACAG", "AAGT"},   {"ACGT", "ACGT"}, {"A", "T"},
        {"ACGTACGT", "ACGT"}, {"AAAA", "TTTT"}, {"GATTACA", "GCATGCU"},
    };
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (const auto &[p, t] : cases) {
        EXPECT_EQ(biwfaScore(*engine, p, t), refWfaScore(p, t))
            << p << " vs " << t;
    }
}

TEST(BiWfaRef, ScoreMatchesWfaOnRandomPairs)
{
    Rng rng(31337);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (int trial = 0; trial < 80; ++trial) {
        const auto la = 1 + rng.below(80);
        const auto lb = 1 + rng.below(80);
        std::string a, b;
        for (std::size_t i = 0; i < la; ++i)
            a += "ACGT"[rng.below(4)];
        for (std::size_t i = 0; i < lb; ++i)
            b += "ACGT"[rng.below(4)];
        ASSERT_EQ(biwfaScore(*engine, a, b), refWfaScore(a, b))
            << a << " / " << b;
    }
}

TEST(BiWfaRef, ScoreMatchesOnSimulatedReads)
{
    genomics::ReadSimConfig config;
    config.readLength = 600;
    config.errorRate = 0.06;
    config.seed = 8;
    genomics::ReadSimulator sim(config);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (const auto &pair : sim.generatePairs(10)) {
        ASSERT_EQ(biwfaScore(*engine, pair.pattern, pair.text),
                  refWfaScore(pair.pattern, pair.text));
    }
}

TEST(BiWfaRef, BreakpointSplitsTheProblem)
{
    genomics::ReadSimConfig config;
    config.readLength = 400;
    config.errorRate = 0.05;
    genomics::ReadSimulator sim(config);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (const auto &pair : sim.generatePairs(6)) {
        Breakpoint bp;
        const std::int64_t score =
            biwfaScore(*engine, pair.pattern, pair.text,
                       genomics::ElementSize::Bits2, &bp);
        ASSERT_GE(bp.i, 0);
        ASSERT_LE(bp.i, static_cast<std::int64_t>(pair.pattern.size()));
        ASSERT_GE(bp.j, 0);
        ASSERT_LE(bp.j, static_cast<std::int64_t>(pair.text.size()));
        EXPECT_EQ(bp.scoreF + bp.scoreR, score);
    }
}

TEST(BiWfaRef, AlignmentIsOptimalAndValid)
{
    genomics::ReadSimConfig config;
    config.readLength = 2500; // forces at least one recursion level
    config.errorRate = 0.04;
    config.seed = 5;
    genomics::ReadSimulator sim(config);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (const auto &pair : sim.generatePairs(3)) {
        const AlignResult got =
            biwfaAlign(*engine, pair.pattern, pair.text);
        const std::int64_t want =
            refWfaScore(pair.pattern, pair.text);
        EXPECT_EQ(got.score, want);
        EXPECT_EQ(got.cigar.edits(), want);
        EXPECT_TRUE(validateCigar(pair.pattern, pair.text, got.cigar));
    }
}

TEST(BiWfaRef, EmptyAndTinyInputs)
{
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    EXPECT_EQ(biwfaScore(*engine, "", ""), 0);
    EXPECT_EQ(biwfaScore(*engine, "", "ACG"), 3);
    EXPECT_EQ(biwfaScore(*engine, "ACG", ""), 3);
    EXPECT_EQ(biwfaScore(*engine, "A", "A"), 0);
    const AlignResult r = biwfaAlign(*engine, "ACGT", "ACGT");
    EXPECT_EQ(r.score, 0);
    EXPECT_EQ(r.cigar.ops, "MMMM");
}

class BiWfaVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(BiWfaVariants, MatchesReferenceScoreAndValidCigar)
{
    const Variant variant = GetParam();
    sim::SimContext ctx(needsQuetzal(variant)
                            ? sim::SystemParams::withQuetzal()
                            : sim::SystemParams::baseline());
    isa::VectorUnit vpu(ctx.pipeline());
    std::optional<accel::QzUnit> qz;
    if (needsQuetzal(variant))
        qz.emplace(vpu, ctx.params().quetzal);
    auto engine = makeWfaEngine(variant, &vpu, qz ? &*qz : nullptr);

    genomics::ReadSimConfig config;
    config.readLength = 1500; // above the BiWFA leaf size
    config.errorRate = 0.05;
    config.seed = 21;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(3)) {
        const AlignResult got =
            biwfaAlign(*engine, pair.pattern, pair.text);
        const std::int64_t want =
            refWfaScore(pair.pattern, pair.text);
        ASSERT_EQ(got.score, want);
        ASSERT_TRUE(validateCigar(pair.pattern, pair.text, got.cigar));
        ASSERT_EQ(got.cigar.edits(), want);
    }
    EXPECT_GT(ctx.pipeline().instructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BiWfaVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::Qz, Variant::QzC),
                         [](const auto &info) {
                             std::string name(variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

} // namespace
} // namespace quetzal::algos
