/**
 * @file
 * Classic-DP tests: NW full-table optimality against brute force, SWG
 * banded-affine internal consistency, traceback validity, and
 * bit-identical results across timed variants.
 */
#include <gtest/gtest.h>

#include <optional>

#include "algos/nw.hpp"
#include "algos/swg.hpp"
#include "common/rng.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {
namespace {

std::int64_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::int64_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = static_cast<std::int64_t>(j);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = static_cast<std::int64_t>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::int64_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

TEST(NwRef, MatchesBruteForce)
{
    Rng rng(404);
    for (int trial = 0; trial < 40; ++trial) {
        std::string a, b;
        const auto la = 1 + rng.below(50), lb = 1 + rng.below(50);
        for (std::size_t i = 0; i < la; ++i)
            a += "ACGT"[rng.below(4)];
        for (std::size_t i = 0; i < lb; ++i)
            b += "ACGT"[rng.below(4)];
        const AlignResult got = nwAlign(Variant::Ref, a, b);
        ASSERT_EQ(got.score, editDistance(a, b)) << a << "/" << b;
        ASSERT_TRUE(validateCigar(a, b, got.cigar));
        ASSERT_EQ(got.cigar.edits(), got.score);
    }
}

TEST(NwRef, EmptySidesAndIdentical)
{
    EXPECT_EQ(nwAlign(Variant::Ref, "", "ACG").score, 3);
    EXPECT_EQ(nwAlign(Variant::Ref, "ACG", "").score, 3);
    const AlignResult same = nwAlign(Variant::Ref, "ACGT", "ACGT");
    EXPECT_EQ(same.score, 0);
    EXPECT_EQ(same.cigar.ops, "MMMM");
}

class NwVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(NwVariants, BitIdenticalToReference)
{
    const Variant variant = GetParam();
    sim::SimContext ctx(needsQuetzal(variant)
                            ? sim::SystemParams::withQuetzal()
                            : sim::SystemParams::baseline());
    isa::VectorUnit vpu(ctx.pipeline());
    std::optional<accel::QzUnit> qz;
    if (needsQuetzal(variant))
        qz.emplace(vpu, ctx.params().quetzal);

    genomics::ReadSimConfig config;
    config.readLength = 90;
    config.errorRate = 0.08;
    config.seed = 1;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(5)) {
        const AlignResult got =
            nwAlign(variant, pair.pattern, pair.text, &vpu,
                    qz ? &*qz : nullptr);
        const AlignResult want =
            nwAlign(Variant::Ref, pair.pattern, pair.text);
        ASSERT_EQ(got.score, want.score);
        ASSERT_EQ(got.cigar.ops, want.cigar.ops);
    }
    EXPECT_GT(ctx.pipeline().instructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, NwVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::Qz),
                         [](const auto &info) {
                             std::string name(variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

TEST(SwgRef, PerfectMatchScoresMatchTimesLength)
{
    const std::string seq(100, 'A');
    const SwgResult r = swgAlign(Variant::Ref, seq, seq);
    EXPECT_EQ(r.score, 200); // 100 matches x (+2)
    EXPECT_EQ(r.cigar.ops, std::string(100, 'M'));
}

TEST(SwgRef, SingleMismatchCosts6)
{
    std::string a(50, 'A'), b = a;
    b[20] = 'C';
    const SwgResult r = swgAlign(Variant::Ref, a, b);
    // 49 matches (+98) + 1 mismatch (-4) = 94 ... unless a gap pair
    // is cheaper; with open 4 / extend 2 a mismatch (-4 vs +2 = -6
    // swing) beats two gaps.
    EXPECT_EQ(r.score, 94);
    EXPECT_TRUE(validateCigar(a, b, r.cigar));
}

TEST(SwgRef, SingleDeletionUsesGap)
{
    std::string a = "ACGTACGTACGTACGTACGT";
    std::string b = a;
    b.erase(10, 1); // pattern has one extra residue
    const SwgResult r = swgAlign(Variant::Ref, a, b);
    EXPECT_EQ(r.score, 19 * 2 - (4 + 2));
    EXPECT_TRUE(validateCigar(a, b, r.cigar));
    EXPECT_NE(r.cigar.ops.find('D'), std::string::npos);
}

TEST(SwgRef, GapExtensionCheaperThanReopen)
{
    std::string a = "AAAACCCCGGGGTTTTAAAA";
    std::string b = a;
    b.erase(8, 3); // 3-residue deletion
    const SwgResult r = swgAlign(Variant::Ref, a, b);
    EXPECT_EQ(r.score, 17 * 2 - (4 + 3 * 2));
    EXPECT_TRUE(validateCigar(a, b, r.cigar));
}

TEST(SwgRef, EmptyInputs)
{
    const SwgResult r = swgAlign(Variant::Ref, "", "ACG");
    EXPECT_EQ(r.score, -(4 + 3 * 2));
    EXPECT_EQ(r.cigar.ops, "III");
}

TEST(SwgRef, TracebackValidOnSimulatedReads)
{
    genomics::ReadSimConfig config;
    config.readLength = 400;
    config.errorRate = 0.04;
    config.seed = 17;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(6)) {
        const SwgResult r =
            swgAlign(Variant::Ref, pair.pattern, pair.text);
        ASSERT_TRUE(validateCigar(pair.pattern, pair.text, r.cigar));
    }
}

class SwgVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(SwgVariants, BitIdenticalToReference)
{
    const Variant variant = GetParam();
    sim::SimContext ctx(needsQuetzal(variant)
                            ? sim::SystemParams::withQuetzal()
                            : sim::SystemParams::baseline());
    isa::VectorUnit vpu(ctx.pipeline());
    std::optional<accel::QzUnit> qz;
    if (needsQuetzal(variant))
        qz.emplace(vpu, ctx.params().quetzal);

    genomics::ReadSimConfig config;
    config.readLength = 300;
    config.errorRate = 0.05;
    config.seed = 23;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(4)) {
        const SwgResult got =
            swgAlign(variant, pair.pattern, pair.text, SwgParams{},
                     &vpu, qz ? &*qz : nullptr);
        const SwgResult want =
            swgAlign(Variant::Ref, pair.pattern, pair.text);
        ASSERT_EQ(got.score, want.score);
        ASSERT_EQ(got.cigar.ops, want.cigar.ops);
    }
}

TEST(SwgAdaptiveBand, TracksAccumulatedIndelDrift)
{
    // Fifty single-base deletions spread over 800 bp: each is tiny,
    // but the accumulated drift (50 rows) far exceeds the static
    // 15-wide band. The adaptive band re-centers step by step and
    // keeps the path; the static band loses it a third of the way in.
    genomics::ReadSimConfig config;
    config.readLength = 800;
    config.errorRate = 0.0;
    config.seed = 3;
    genomics::ReadSimulator sim(config);
    auto pair = sim.generatePairs(1).front();
    // All the drift happens in the first quarter, so the straight
    // corner-to-corner line (which spreads it uniformly) is off by
    // ~19 rows mid-table — beyond the 15-wide static band.
    for (int g = 49; g >= 0; --g)
        pair.text.erase(static_cast<std::size_t>(4 * g + 2), 1);

    SwgParams fixed;
    SwgParams adaptive;
    adaptive.adaptiveBand = true;
    const auto fixedR =
        swgAlign(Variant::Ref, pair.pattern, pair.text, fixed);
    const auto adaptiveR =
        swgAlign(Variant::Ref, pair.pattern, pair.text, adaptive);
    // Near-optimal: 750 matches (+1500) minus ~50 one-base gaps
    // (6 each; chance adjacencies can shave a little more).
    EXPECT_GE(adaptiveR.score, 1500 - 50 * 6);
    EXPECT_GT(adaptiveR.score, fixedR.score + 200);
    EXPECT_TRUE(validateCigar(pair.pattern, pair.text,
                              adaptiveR.cigar));
}

TEST(SwgAdaptiveBand, VariantsStayBitIdentical)
{
    sim::SimContext ctx(sim::SystemParams::withQuetzal());
    isa::VectorUnit vpu(ctx.pipeline());
    accel::QzUnit qz(vpu, ctx.params().quetzal);
    genomics::ReadSimConfig config;
    config.readLength = 250;
    config.errorRate = 0.06;
    config.seed = 91;
    genomics::ReadSimulator sim(config);
    SwgParams params;
    params.adaptiveBand = true;
    for (const auto &pair : sim.generatePairs(3)) {
        const auto want =
            swgAlign(Variant::Ref, pair.pattern, pair.text, params);
        for (Variant v : {Variant::Base, Variant::Vec, Variant::Qz}) {
            const auto got = swgAlign(v, pair.pattern, pair.text,
                                      params, &vpu, &qz);
            ASSERT_EQ(got.score, want.score) << variantName(v);
            ASSERT_EQ(got.cigar.ops, want.cigar.ops);
        }
    }
}

TEST(SwgQbufferRows, Fig7PathIsBitIdentical)
{
    sim::SimContext ctx(sim::SystemParams::withQuetzal());
    isa::VectorUnit vpu(ctx.pipeline());
    accel::QzUnit qz(vpu, ctx.params().quetzal);
    genomics::ReadSimConfig config;
    config.readLength = 300;
    config.errorRate = 0.05;
    config.seed = 77;
    genomics::ReadSimulator sim(config);
    SwgParams params;
    params.qbufferRows = true; // the literal Fig. 7 flow
    for (const auto &pair : sim.generatePairs(3)) {
        const SwgResult got =
            swgAlign(Variant::Qz, pair.pattern, pair.text, params,
                     &vpu, &qz);
        const SwgResult want =
            swgAlign(Variant::Ref, pair.pattern, pair.text);
        ASSERT_EQ(got.score, want.score);
        ASSERT_EQ(got.cigar.ops, want.cigar.ops);
    }
    // The scratchpad actually carried traffic.
    EXPECT_GT(ctx.pipeline().opCount(sim::OpClass::QzLoad), 0u);
    EXPECT_GT(ctx.pipeline().opCount(sim::OpClass::QzStore), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SwgVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::Qz),
                         [](const auto &info) {
                             std::string name(variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

} // namespace
} // namespace quetzal::algos
