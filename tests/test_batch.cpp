/**
 * @file
 * Unit tests for the thread pool and the parallel batch experiment
 * engine: task completion, exception propagation, deterministic
 * submission-order results, and field-by-field equality between a
 * multi-threaded batch and the equivalent serial run.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "algos/batch.hpp"
#include "common/threadpool.hpp"
#include "genomics/readsim.hpp"

namespace quetzal {
namespace {

std::shared_ptr<const genomics::PairDataset>
tinyDataset(std::size_t length, double errorRate, std::size_t count,
            std::uint64_t seed)
{
    genomics::ReadSimConfig config;
    config.readLength = length;
    config.errorRate = errorRate;
    config.seed = seed;
    genomics::ReadSimulator sim(config);
    auto ds = std::make_shared<genomics::PairDataset>();
    ds->name = "tiny";
    ds->readLength = length;
    ds->errorRate = errorRate;
    ds->pairs = sim.generatePairs(count);
    return ds;
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    std::atomic<int> counter{0};
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossRounds)
{
    std::atomic<int> counter{0};
    ThreadPool pool(2);
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter] { ++counter; });
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, WaitRethrowsFirstWorkerException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("worker boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error was observed; the pool is usable again.
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    for (unsigned threads : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(37);
        parallelFor(threads, hits.size(),
                    [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads
                                         << " index=" << i;
    }
}

TEST(ThreadPool, ParallelForSerialPathRunsInOrder)
{
    std::vector<std::size_t> order;
    parallelFor(1, 5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(BatchRunner, RejectsCellsWithoutDataset)
{
    algos::BatchRunner batch(2);
    EXPECT_THROW(batch.add(algos::BatchCell{}), FatalError);
}

TEST(BatchRunner, ResultsLandAtSubmissionIndices)
{
    const auto ds = tinyDataset(120, 0.05, 2, 21);
    algos::BatchRunner batch(4);
    algos::RunOptions options;
    std::vector<algos::AlgoKind> kinds = {
        algos::AlgoKind::Wfa, algos::AlgoKind::SneakySnake,
        algos::AlgoKind::Nw, algos::AlgoKind::BiWfa};
    for (std::size_t i = 0; i < kinds.size(); ++i)
        EXPECT_EQ(batch.add(kinds[i], ds, options), i);
    EXPECT_EQ(batch.size(), kinds.size());

    const auto outcome = batch.run();
    EXPECT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.results.size(), kinds.size());
    for (std::size_t i = 0; i < kinds.size(); ++i)
        EXPECT_EQ(outcome.results[i].algo, algos::algoName(kinds[i]))
            << "slot " << i;
    // run() clears the queue for reuse.
    EXPECT_EQ(batch.size(), 0u);
}

TEST(BatchRunner, ParallelRunMatchesSerialFieldByField)
{
    const auto ds = tinyDataset(150, 0.05, 3, 42);
    std::vector<algos::BatchCell> cells;
    for (algos::AlgoKind kind :
         {algos::AlgoKind::Wfa, algos::AlgoKind::SneakySnake,
          algos::AlgoKind::Swg}) {
        for (algos::Variant v :
             {algos::Variant::Base, algos::Variant::Vec,
              algos::Variant::QzC}) {
            algos::RunOptions options;
            options.variant = v;
            cells.push_back({kind, ds, options});
        }
    }

    const auto serial = algos::runBatch(cells, 1);
    const auto parallel = algos::runBatch(cells, 4);
    EXPECT_TRUE(serial.ok());
    EXPECT_TRUE(parallel.ok());
    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        const auto &s = serial.results[i];
        const auto &p = parallel.results[i];
        EXPECT_EQ(s.algo, p.algo) << "cell " << i;
        EXPECT_EQ(s.variant, p.variant) << "cell " << i;
        EXPECT_EQ(s.cycles, p.cycles) << "cell " << i;
        EXPECT_EQ(s.instructions, p.instructions) << "cell " << i;
        EXPECT_EQ(s.memRequests, p.memRequests) << "cell " << i;
        EXPECT_EQ(s.totalScore, p.totalScore) << "cell " << i;
        EXPECT_EQ(s.accepted, p.accepted) << "cell " << i;
        EXPECT_EQ(s.dpCells, p.dpCells) << "cell " << i;
        EXPECT_EQ(s.outputsMatch, p.outputsMatch) << "cell " << i;
        EXPECT_EQ(s.degradedPairs, p.degradedPairs) << "cell " << i;
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(sim::StallKind::NumKinds);
             ++k)
            EXPECT_EQ(s.stalls[k], p.stalls[k])
                << "cell " << i << " stall " << k;
    }
}

TEST(BatchRunner, WorkerFatalBecomesFailureRecord)
{
    const auto ds = tinyDataset(80, 0.05, 1, 7);
    algos::BatchRunner batch(2);
    algos::RunOptions bad;
    bad.variant = algos::Variant::Ref; // runAlgorithm rejects Ref
    algos::RunOptions good;
    batch.add(algos::AlgoKind::Wfa, ds, bad);
    batch.add(algos::AlgoKind::Wfa, ds, good);

    const auto outcome = batch.run();
    EXPECT_FALSE(outcome.ok());
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].cell, 0u);
    EXPECT_EQ(outcome.failures[0].kind, algos::FailureKind::Fatal);
    EXPECT_EQ(outcome.failures[0].attempts, 1u);
    EXPECT_NE(outcome.failureFor(0), nullptr);
    EXPECT_EQ(outcome.failureFor(1), nullptr);
    // The healthy cell still produced a full result.
    ASSERT_EQ(outcome.results.size(), 2u);
    EXPECT_GT(outcome.results[1].cycles, 0u);
    // The failed slot keeps its identity with zeroed metrics.
    EXPECT_EQ(outcome.results[0].algo,
              algos::algoName(algos::AlgoKind::Wfa));
    EXPECT_EQ(outcome.results[0].cycles, 0u);
}

TEST(BatchRunner, FailFastModeRethrowsWorkerFatal)
{
    const auto ds = tinyDataset(80, 0.05, 1, 7);
    algos::BatchRunner batch(2);
    batch.policy().isolateFailures = false;
    algos::RunOptions bad;
    bad.variant = algos::Variant::Ref;
    batch.add(algos::AlgoKind::Wfa, ds, bad);
    EXPECT_THROW(batch.run(), FatalError);
}

TEST(ThreadPool, CountsExceptionsDroppedAfterTheFirst)
{
    ThreadPool pool(2);
    for (int i = 0; i < 5; ++i)
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // One rethrew; the other four were dropped but counted.
    EXPECT_EQ(pool.droppedExceptionTotal(), 4u);
}

TEST(Metrics, SpeedupOfZeroCycleRunIsNaN)
{
    algos::RunResult ref, test;
    ref.cycles = 100;
    test.cycles = 0;
    EXPECT_TRUE(std::isnan(algos::speedup(ref, test)));
    test.cycles = 50;
    EXPECT_DOUBLE_EQ(algos::speedup(ref, test), 2.0);
}

TEST(Metrics, CacheFractionIndexesCacheStall)
{
    algos::RunResult r;
    r.cycles = 100;
    r.stalls[static_cast<std::size_t>(sim::StallKind::Frontend)] = 5;
    r.stalls[static_cast<std::size_t>(sim::StallKind::Cache)] = 40;
    EXPECT_DOUBLE_EQ(r.cacheFraction(), 0.4);
    EXPECT_EQ(r.stallCycles(sim::StallKind::Frontend), 5u);
}

} // namespace
} // namespace quetzal
