/**
 * @file
 * Tiled (windowed) alignment tests — the Section VI software path for
 * ultra-long reads: transcripts must stay valid, error-free pairs must
 * tile to score 0, the score must never beat the true optimum, and the
 * seam overhead must stay small on indel-balanced data.
 */
#include <gtest/gtest.h>

#include <optional>

#include "algos/biwfa.hpp"
#include "algos/tiled.hpp"
#include "algos/wfa_engine.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {
namespace {

genomics::SequencePair
makePair(std::size_t length, double errorRate, std::uint64_t seed)
{
    genomics::ReadSimConfig config;
    config.readLength = length;
    config.errorRate = errorRate;
    config.seed = seed;
    genomics::ReadSimulator sim(config);
    return sim.generatePairs(1).front();
}

TEST(Tiled, WindowCount)
{
    TiledConfig config;
    config.windowBases = 1000;
    EXPECT_EQ(tiledWindowCount(1, config), 1u);
    EXPECT_EQ(tiledWindowCount(1000, config), 1u);
    EXPECT_EQ(tiledWindowCount(1001, config), 2u);
    EXPECT_EQ(tiledWindowCount(5500, config), 6u);
}

TEST(Tiled, SingleWindowEqualsPlainWfa)
{
    const auto pair = makePair(800, 0.04, 1);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    const auto tiled = tiledAlign(*engine, pair.pattern, pair.text);
    const auto plain = wfaAlign(*engine, pair.pattern, pair.text);
    EXPECT_EQ(tiled.score, plain.score);
    EXPECT_EQ(tiled.cigar.ops, plain.cigar.ops);
}

TEST(Tiled, ErrorFreePairTilesToZero)
{
    const auto pair = makePair(20000, 0.0, 2);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    TiledConfig config;
    config.windowBases = 3000;
    const auto tiled =
        tiledAlign(*engine, pair.pattern, pair.text, config);
    EXPECT_EQ(tiled.score, 0);
    EXPECT_TRUE(validateCigar(pair.pattern, pair.text, tiled.cigar));
}

TEST(Tiled, ValidAndNearOptimalOnLongReads)
{
    const auto pair = makePair(40000, 0.01, 3);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    TiledConfig config;
    config.windowBases = 8000;
    const auto tiled =
        tiledAlign(*engine, pair.pattern, pair.text, config);
    ASSERT_TRUE(validateCigar(pair.pattern, pair.text, tiled.cigar));
    EXPECT_EQ(tiled.cigar.edits(), tiled.score);

    const std::int64_t optimal =
        biwfaScore(*engine, pair.pattern, pair.text);
    EXPECT_GE(tiled.score, optimal);
    // Seam overhead on indel-balanced data stays small.
    EXPECT_LE(tiled.score, optimal + optimal / 2 + 64);
}

TEST(Tiled, RejectsOversizedWindows)
{
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    TiledConfig config;
    config.windowBases = 40000;
    EXPECT_THROW(tiledAlign(*engine, "ACGT", "ACGT", config),
                 FatalError);
    config.windowBases = 16000; // too big for the 8-bit encoding
    EXPECT_THROW(tiledAlign(*engine, "ACGT", "ACGT", config,
                            genomics::ElementSize::Bits8),
                 FatalError);
}

TEST(Tiled, QuetzalEngineHandlesUltraLongReads)
{
    // A 100 kbp ONT-class read: far beyond the QBUFFER capacity, so
    // only the windowed path can run it on the accelerator.
    const auto pair = makePair(100000, 0.005, 4);
    sim::SimContext ctx(sim::SystemParams::withQuetzal());
    isa::VectorUnit vpu(ctx.pipeline());
    accel::QzUnit qz(vpu, ctx.params().quetzal);
    auto engine = makeWfaEngine(Variant::QzC, &vpu, &qz);

    TiledConfig config;
    config.windowBases = 30000;
    const auto tiled =
        tiledAlign(*engine, pair.pattern, pair.text, config);
    ASSERT_TRUE(validateCigar(pair.pattern, pair.text, tiled.cigar));

    auto ref = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    const auto want =
        tiledAlign(*ref, pair.pattern, pair.text, config);
    EXPECT_EQ(tiled.score, want.score);
    EXPECT_EQ(tiled.cigar.ops, want.cigar.ops);
    EXPECT_GT(ctx.pipeline().totalCycles(), 0u);
}

TEST(Tiled, DriftRandomWalkStaysAligned)
{
    // Indel-heavy pair: tiling must still produce a valid transcript.
    genomics::ReadSimConfig config;
    config.readLength = 30000;
    config.errorRate = 0.04;
    config.substitutionFrac = 0.2; // 40% insertions, 40% deletions
    config.insertionFrac = 0.4;
    config.seed = 9;
    genomics::ReadSimulator sim(config);
    const auto pair = sim.generatePairs(1).front();

    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    TiledConfig tcfg;
    tcfg.windowBases = 5000;
    const auto tiled =
        tiledAlign(*engine, pair.pattern, pair.text, tcfg);
    EXPECT_TRUE(validateCigar(pair.pattern, pair.text, tiled.cigar));
}

} // namespace
} // namespace quetzal::algos
