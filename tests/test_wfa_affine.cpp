/**
 * @file
 * Gap-affine WFA tests: agreement with a brute-force affine DP,
 * degeneration to edit distance under unit penalties, CIGAR/penalty
 * consistency, and bit-identical variants.
 */
#include <gtest/gtest.h>

#include <optional>

#include "algos/wfa_affine.hpp"
#include "algos/wfa_engine.hpp"
#include "common/rng.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {
namespace {

/** O(mn) gap-affine DP (Gotoh) for cross-checking scores. */
std::int64_t
affineBruteForce(std::string_view a, std::string_view b,
                 const AffinePenalties &pen)
{
    const std::int64_t inf = 1 << 28;
    const std::size_t rows = a.size() + 1, cols = b.size() + 1;
    std::vector<std::int64_t> h(rows * cols, inf), e(rows * cols, inf),
        f(rows * cols, inf);
    auto idx = [cols](std::size_t i, std::size_t j) {
        return i * cols + j;
    };
    h[0] = 0;
    for (std::size_t j = 1; j < cols; ++j) {
        e[idx(0, j)] =
            pen.gapOpen + pen.gapExtend * static_cast<std::int64_t>(j);
        h[idx(0, j)] = e[idx(0, j)];
    }
    for (std::size_t i = 1; i < rows; ++i) {
        f[idx(i, 0)] =
            pen.gapOpen + pen.gapExtend * static_cast<std::int64_t>(i);
        h[idx(i, 0)] = f[idx(i, 0)];
    }
    for (std::size_t i = 1; i < rows; ++i) {
        for (std::size_t j = 1; j < cols; ++j) {
            e[idx(i, j)] = std::min(
                h[idx(i, j - 1)] + pen.gapOpen + pen.gapExtend,
                e[idx(i, j - 1)] + pen.gapExtend);
            f[idx(i, j)] = std::min(
                h[idx(i - 1, j)] + pen.gapOpen + pen.gapExtend,
                f[idx(i - 1, j)] + pen.gapExtend);
            const std::int64_t sub =
                h[idx(i - 1, j - 1)] +
                (a[i - 1] == b[j - 1] ? 0 : pen.mismatch);
            h[idx(i, j)] =
                std::min(sub, std::min(e[idx(i, j)], f[idx(i, j)]));
        }
    }
    return h[idx(rows - 1, cols - 1)];
}

AffineResult
refAlign(std::string_view p, std::string_view t,
         const AffinePenalties &pen = AffinePenalties{})
{
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    return affineWfaAlign(*engine, p, t, pen);
}

TEST(AffineWfa, FixedCases)
{
    const AffinePenalties pen{4, 6, 2};
    // Identical strings: score 0.
    EXPECT_EQ(refAlign("ACGTACGT", "ACGTACGT", pen).score, 0);
    // One mismatch: x = 4 (cheaper than two gaps: 2*(6+2)=16).
    EXPECT_EQ(refAlign("ACGTACGT", "ACGAACGT", pen).score, 4);
    // One deletion: o + e = 8.
    EXPECT_EQ(refAlign("ACGTACGT", "ACGACGT", pen).score, 8);
    // A 3-gap: o + 3e = 12 (affine, not 3*(o+e) = 24).
    EXPECT_EQ(refAlign("ACGTTTACGT", "ACGACGT", pen).score, 12);
}

TEST(AffineWfa, MatchesBruteForceOnRandomPairs)
{
    Rng rng(777);
    const AffinePenalties pen{4, 6, 2};
    for (int trial = 0; trial < 40; ++trial) {
        std::string a, b;
        const auto la = 1 + rng.below(40), lb = 1 + rng.below(40);
        for (std::size_t i = 0; i < la; ++i)
            a += "ACGT"[rng.below(4)];
        for (std::size_t i = 0; i < lb; ++i)
            b += "ACGT"[rng.below(4)];
        const auto got = refAlign(a, b, pen);
        ASSERT_EQ(got.score, affineBruteForce(a, b, pen))
            << a << " / " << b;
        ASSERT_TRUE(validateCigar(a, b, got.cigar));
        ASSERT_EQ(affinePenaltyOf(got.cigar, pen), got.score);
    }
}

TEST(AffineWfa, UnitPenaltiesDegenerateToEditDistance)
{
    genomics::ReadSimConfig config;
    config.readLength = 200;
    config.errorRate = 0.06;
    config.seed = 4;
    genomics::ReadSimulator sim(config);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (const auto &pair : sim.generatePairs(8)) {
        const auto affine =
            affineWfaAlign(*engine, pair.pattern, pair.text,
                           AffinePenalties::edit());
        const auto edit = wfaAlign(*engine, pair.pattern, pair.text);
        ASSERT_EQ(affine.score, edit.score);
        ASSERT_TRUE(
            validateCigar(pair.pattern, pair.text, affine.cigar));
    }
}

TEST(AffineWfa, EmptyAndDegenerateInputs)
{
    const AffinePenalties pen{4, 6, 2};
    EXPECT_EQ(refAlign("", "", pen).score, 0);
    const auto ins = refAlign("", "ACG", pen);
    EXPECT_EQ(ins.score, 6 + 3 * 2);
    EXPECT_EQ(ins.cigar.ops, "III");
    EXPECT_THROW(refAlign("A", "A", AffinePenalties{0, 1, 1}),
                 FatalError);
}

TEST(AffineWfa, PenaltyAccountingHelper)
{
    const AffinePenalties pen{4, 6, 2};
    Cigar cigar;
    cigar.ops = "MMXMMIIMDM";
    // 1 mismatch (4) + a 2-gap I (6+4) + a 1-gap D (6+2) = 22.
    EXPECT_EQ(affinePenaltyOf(cigar, pen), 22);
}

class AffineVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(AffineVariants, BitIdenticalToReference)
{
    const Variant variant = GetParam();
    sim::SimContext ctx(needsQuetzal(variant)
                            ? sim::SystemParams::withQuetzal()
                            : sim::SystemParams::baseline());
    isa::VectorUnit vpu(ctx.pipeline());
    std::optional<accel::QzUnit> qz;
    if (needsQuetzal(variant))
        qz.emplace(vpu, ctx.params().quetzal);
    auto engine = makeWfaEngine(variant, &vpu, qz ? &*qz : nullptr);
    auto ref = makeWfaEngine(Variant::Ref, nullptr, nullptr);

    genomics::ReadSimConfig config;
    config.readLength = 250;
    config.errorRate = 0.05;
    config.seed = 31;
    genomics::ReadSimulator sim(config);
    const AffinePenalties pen{4, 6, 2};
    for (const auto &pair : sim.generatePairs(4)) {
        const auto got =
            affineWfaAlign(*engine, pair.pattern, pair.text, pen);
        const auto want =
            affineWfaAlign(*ref, pair.pattern, pair.text, pen);
        ASSERT_EQ(got.score, want.score);
        ASSERT_EQ(got.cigar.ops, want.cigar.ops);
        ASSERT_TRUE(validateCigar(pair.pattern, pair.text, got.cigar));
    }
    EXPECT_GT(ctx.pipeline().instructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, AffineVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::Qz, Variant::QzC),
                         [](const auto &info) {
                             std::string name(variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

TEST(AffineWfaTiming, QuetzalAcceleratesAffineToo)
{
    genomics::ReadSimConfig config;
    config.readLength = 500;
    config.errorRate = 0.04;
    genomics::ReadSimulator rs(config);
    const auto pairs = rs.generatePairs(3);
    const AffinePenalties pen{4, 6, 2};

    auto measure = [&](Variant v) {
        sim::SimContext ctx(needsQuetzal(v)
                                ? sim::SystemParams::withQuetzal()
                                : sim::SystemParams::baseline());
        isa::VectorUnit vpu(ctx.pipeline());
        std::optional<accel::QzUnit> qz;
        if (needsQuetzal(v))
            qz.emplace(vpu, ctx.params().quetzal);
        auto engine = makeWfaEngine(v, &vpu, qz ? &*qz : nullptr);
        for (const auto &pair : pairs)
            affineWfaAlign(*engine, pair.pattern, pair.text, pen);
        return ctx.pipeline().totalCycles();
    };

    EXPECT_LT(measure(Variant::QzC), measure(Variant::Vec));
}

} // namespace
} // namespace quetzal::algos
