/**
 * @file
 * Unit tests for the QUETZAL accelerator model: QBUFFER geometry and
 * read/write logic (incl. unaligned windows), the data encoder, the
 * count ALU, the QzUnit instruction semantics, and the Table III
 * area/power model.
 */
#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "genomics/encoding.hpp"
#include "isa/vectorunit.hpp"
#include "quetzal/area_model.hpp"
#include "quetzal/countalu.hpp"
#include "quetzal/encoder.hpp"
#include "quetzal/qbuffer.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::accel {
namespace {

using genomics::ElementSize;
using isa::Pred;
using isa::VReg;

sim::QuetzalParams
params8P()
{
    sim::QuetzalParams params;
    params.present = true;
    params.readPorts = 8;
    return params;
}

// ====================================================================
// QBUFFER
// ====================================================================

TEST(QBuffer, CapacityMatchesPaperSizing)
{
    QBuffer buf(params8P());
    EXPECT_EQ(buf.words(), 1024u); // 8 KB of 64-bit words
    // Section VI: with 2-bit encoding one QBUFFER holds up to ~32.7 kbp.
    EXPECT_EQ(buf.capacityElements(ElementSize::Bits2), 32768u);
    EXPECT_EQ(buf.capacityElements(ElementSize::Bits8), 8192u);
    EXPECT_EQ(buf.capacityElements(ElementSize::Bits64), 1024u);
}

TEST(QBuffer, ReadLatencyFollowsPortFormula)
{
    for (unsigned ports : {1u, 2u, 4u, 8u}) {
        sim::QuetzalParams params = params8P();
        params.readPorts = ports;
        QBuffer buf(params);
        // Section IV-C1: 8/(num ports) + 1 cycles for 8 requests.
        EXPECT_EQ(buf.vectorReadCycles(8), 8 / ports + 1)
            << ports << " ports";
    }
}

TEST(QBuffer, EncodedPairWriteAndElementReads)
{
    QBuffer buf(params8P());
    const std::string seq = "ACGTTGCAACGTTGCAACGTTGCAACGTTGCA"
                            "GGGGCCCCTTTTAAAACGCGCGCGATATATAT";
    const auto packed = genomics::pack2bit(seq);
    ASSERT_EQ(packed.size(), 2u);
    EXPECT_EQ(buf.writeEncodedPair(0, packed[0], packed[1]), 1u);
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(buf.readElement(i, ElementSize::Bits2),
                  genomics::encodeBase2(seq[i]));
}

TEST(QBuffer, DirectWriteBankConflictsSerialize)
{
    QBuffer buf(params8P());
    // Eight 64-bit elements, one per bank: single cycle.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> spread;
    for (std::uint64_t i = 0; i < 8; ++i)
        spread.emplace_back(i, 100 + i);
    EXPECT_EQ(buf.writeDirect(spread, ElementSize::Bits64), 1u);
    // Eight elements in the same bank (stride 8): eight cycles.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> clash;
    for (std::uint64_t i = 0; i < 8; ++i)
        clash.emplace_back(i * 8, 200 + i);
    EXPECT_EQ(buf.writeDirect(clash, ElementSize::Bits64), 8u);
    EXPECT_EQ(buf.readElement(16, ElementSize::Bits64), 202u);
}

TEST(QBuffer, UnalignedWindowReadCrossesWords)
{
    QBuffer buf(params8P());
    const std::string seq(64, 'A');
    std::string varied = seq;
    for (std::size_t i = 0; i < varied.size(); ++i)
        varied[i] = "ACGT"[i % 4];
    const auto packed = genomics::pack2bit(varied);
    buf.writeEncodedPair(0, packed[0], packed[1]);
    // Window starting at element 5 spans SRAM words 0 and 1; check it
    // equals manual repacking.
    const std::uint64_t window =
        buf.readWindow64(5, ElementSize::Bits2);
    for (unsigned e = 0; e < 32; ++e) {
        const auto expect = genomics::encodeBase2(varied[5 + e]);
        EXPECT_EQ((window >> (2 * e)) & 0x3, expect) << "element " << e;
    }
}

TEST(QBuffer, ReverseWindowEndsAtElement)
{
    QBuffer buf(params8P());
    std::string varied(64, 'A');
    for (std::size_t i = 0; i < varied.size(); ++i)
        varied[i] = "ACGT"[(i * 7) % 4];
    const auto packed = genomics::pack2bit(varied);
    buf.writeEncodedPair(0, packed[0], packed[1]);
    const std::size_t end = 40;
    const std::uint64_t window =
        buf.readWindow64Ending(end, ElementSize::Bits2);
    // Top element slot (bits 62..63) must be element `end`.
    for (unsigned e = 0; e < 32; ++e) {
        const auto expect =
            genomics::encodeBase2(varied[end - 31 + e]);
        EXPECT_EQ((window >> (2 * e)) & 0x3, expect) << "slot " << e;
    }
}

TEST(QBuffer, ReverseWindowPadsBelowStart)
{
    QBuffer buf(params8P());
    const auto packed = genomics::pack2bit(std::string(32, 'G'));
    buf.writeEncodedPair(0, packed[0],
                         packed.size() > 1 ? packed[1] : 0);
    // Window ending at element 3: only 4 real elements; the bottom
    // 28 slots pad with zero.
    const std::uint64_t window =
        buf.readWindow64Ending(3, ElementSize::Bits2);
    EXPECT_EQ(window >> 56,
              0x3u * 0x55u & 0xFFu); // top 4 G codes (11 each)
    EXPECT_EQ(window & 0xFFFFFF, 0u);
}

TEST(QBuffer, ReverseWindowAtElementZeroKeepsOnlyTopSlot)
{
    QBuffer buf(params8P());
    // Element 0 is 0b10 (C); a window *ending* at element 0 has 31
    // zero-padded slots below it and element 0 in the top slot.
    const auto packed = genomics::pack2bit("CAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA");
    buf.writeEncodedPair(0, packed[0], packed.size() > 1 ? packed[1] : 0);
    const std::uint64_t window =
        buf.readWindow64Ending(0, ElementSize::Bits2);
    EXPECT_EQ(window >> 62, genomics::encodeBase2('C'));
    EXPECT_EQ(window & ~(0x3ULL << 62), 0u);
}

TEST(QBuffer, ReverseWindowUnderrunPadsFor8BitElements)
{
    QBuffer buf(params8P());
    buf.writeWord(0, 0x1122334455667788ULL);
    // Window ending at 8-bit element 2: three real bytes at the top,
    // five zero bytes of padding below.
    const std::uint64_t window =
        buf.readWindow64Ending(2, ElementSize::Bits8);
    EXPECT_EQ(window, 0x6677880000000000ULL);
}

TEST(QBuffer, EncodedPairWriteAcceptsLastValidPair)
{
    QBuffer buf(params8P());
    // words() - 2 is the last wordIdx whose pair fits; one past it
    // must panic (covered in OutOfRangePanics).
    const std::size_t last = buf.words() - 2;
    EXPECT_EQ(buf.writeEncodedPair(last, 0xAAAA, 0xBBBB), 1u);
    EXPECT_EQ(buf.readWord(last), 0xAAAAu);
    EXPECT_EQ(buf.readWord(last + 1), 0xBBBBu);
}

TEST(QBuffer, SaveRestoreArchitecturalState)
{
    QBuffer buf(params8P());
    buf.writeWord(7, 0xDEADBEEF);
    const auto snapshot = buf.save();
    buf.clear();
    EXPECT_EQ(buf.readWord(7), 0u);
    buf.restore(snapshot);
    EXPECT_EQ(buf.readWord(7), 0xDEADBEEFu);
}

TEST(QBuffer, OutOfRangePanics)
{
    QBuffer buf(params8P());
    EXPECT_THROW(buf.writeWord(1024, 1), PanicError);
    EXPECT_THROW(buf.readWord(2048), PanicError);
    EXPECT_THROW(buf.writeEncodedPair(1023, 0, 0), PanicError);
}

// ====================================================================
// Data encoder
// ====================================================================

TEST(DataEncoder, MatchesSoftwarePacking)
{
    std::string seq(64, 'A');
    for (std::size_t i = 0; i < 64; ++i)
        seq[i] = "ACGT"[(i * 5) % 4];
    VReg chars;
    for (unsigned i = 0; i < 64; ++i)
        chars.setU8(i, static_cast<std::uint8_t>(seq[i]));
    const auto [segA, segB] = DataEncoder::encode(chars);
    const auto packed = genomics::pack2bit(seq);
    EXPECT_EQ(segA, packed[0]);
    EXPECT_EQ(segB, packed[1]);
}

// ====================================================================
// Count ALU
// ====================================================================

TEST(CountAlu, CountsMatchingPrefix2bit)
{
    const std::string a = "ACGTACGTACGTACGTACGTACGTACGTACGT";
    std::string b = a;
    b[5] = b[5] == 'A' ? 'C' : 'A';
    const std::uint64_t wa = genomics::pack2bit(a)[0];
    const std::uint64_t wb = genomics::pack2bit(b)[0];
    EXPECT_EQ(CountAlu::count(wa, wa, ElementSize::Bits2), 32u);
    EXPECT_EQ(CountAlu::count(wa, wb, ElementSize::Bits2), 5u);
}

TEST(CountAlu, PartialBitMatchDoesNotCountElement)
{
    // Codes 01 and 11 share bit 0: one matching bit is only half an
    // element, so the shift truncates it away.
    const std::uint64_t a = 0b01; // C
    const std::uint64_t b = 0b11; // G
    EXPECT_EQ(CountAlu::count(a, b, ElementSize::Bits2), 0u);
}

TEST(CountAlu, CountsMatchingPrefix8bit)
{
    const std::uint64_t a = genomics::pack8bit("ABCDEFGH")[0];
    const std::uint64_t b = genomics::pack8bit("ABCXEFGH")[0];
    EXPECT_EQ(CountAlu::count(a, a, ElementSize::Bits8), 8u);
    EXPECT_EQ(CountAlu::count(a, b, ElementSize::Bits8), 3u);
}

TEST(CountAlu, Count64BitElements)
{
    EXPECT_EQ(CountAlu::count(5, 5, ElementSize::Bits64), 1u);
    EXPECT_EQ(CountAlu::count(5, 6, ElementSize::Bits64), 0u);
}

TEST(CountAlu, ReverseCountsFromTop)
{
    const std::string a = "ACGTACGTACGTACGTACGTACGTACGTACGT";
    std::string b = a;
    b[29] = b[29] == 'A' ? 'C' : 'A'; // mismatch near the top
    const std::uint64_t wa = genomics::pack2bit(a)[0];
    const std::uint64_t wb = genomics::pack2bit(b)[0];
    EXPECT_EQ(CountAlu::countReverse(wa, wa, ElementSize::Bits2), 32u);
    EXPECT_EQ(CountAlu::countReverse(wa, wb, ElementSize::Bits2), 2u);
}

TEST(CountAlu, ElementsPerSegment)
{
    EXPECT_EQ(CountAlu::elementsPerSegment(ElementSize::Bits2), 32u);
    EXPECT_EQ(CountAlu::elementsPerSegment(ElementSize::Bits8), 8u);
    EXPECT_EQ(CountAlu::elementsPerSegment(ElementSize::Bits64), 1u);
}

// ====================================================================
// QzUnit (instruction semantics)
// ====================================================================

class QzUnitTest : public ::testing::Test
{
  protected:
    QzUnitTest()
        : ctx(sim::SystemParams::withQuetzal()), vpu(ctx.pipeline()),
          qz(vpu, ctx.params().quetzal)
    {}

    sim::SimContext ctx;
    isa::VectorUnit vpu;
    QzUnit qz;
};

TEST_F(QzUnitTest, RequiresQuetzalHardware)
{
    sim::SimContext plain;
    isa::VectorUnit v(plain.pipeline());
    sim::QuetzalParams absent;
    EXPECT_THROW(QzUnit(v, absent), FatalError);
}

TEST_F(QzUnitTest, StageAndLoad2bit)
{
    const std::string seq = "ACGTTGCATTTTGGGGACGTACGTACGTTGCA";
    qz.qzconf(seq.size(), seq.size(), ElementSize::Bits2);
    qz.stageSequence2bit(QzSel::Buf0, seq);
    VReg idx;
    for (unsigned l = 0; l < 8; ++l)
        idx.setU64(l, 4 * l);
    const VReg got = qz.qzload(idx, QzSel::Buf0, vpu.pTrue(8), 8);
    for (unsigned l = 0; l < 8; ++l)
        EXPECT_EQ(got.u64(l), genomics::encodeBase2(seq[4 * l]));
}

TEST_F(QzUnitTest, StageAndLoad8bit)
{
    const std::string seq = "MKVLAARWQEHNIGHTPROTEINSEQVVNCEE";
    qz.qzconf(seq.size(), seq.size(), ElementSize::Bits8);
    qz.stageSequence8bit(QzSel::Buf1, seq);
    VReg idx;
    for (unsigned l = 0; l < 8; ++l)
        idx.setU64(l, 3 * l);
    const VReg got = qz.qzload(idx, QzSel::Buf1, vpu.pTrue(8), 8);
    for (unsigned l = 0; l < 8; ++l)
        EXPECT_EQ(got.u64(l),
                  static_cast<std::uint64_t>(seq[3 * l]));
}

TEST_F(QzUnitTest, QzStoreDirectMode64)
{
    qz.qzconf(64, 64, ElementSize::Bits64);
    VReg idx, val;
    for (unsigned l = 0; l < 8; ++l) {
        idx.setU64(l, 8 * l); // all in bank 0: serialized write
        val.setU64(l, 1000 + l);
    }
    qz.qzstore(val, idx, QzSel::Buf0, vpu.pTrue(8), 8);
    const VReg got = qz.qzload(idx, QzSel::Buf0, vpu.pTrue(8), 8);
    for (unsigned l = 0; l < 8; ++l)
        EXPECT_EQ(got.u64(l), 1000 + l);
}

TEST_F(QzUnitTest, QzMhmCmpEqAndArith)
{
    const std::string a = "ACGTACGTACGTACGTACGTACGTACGTACGT";
    const std::string b = "ACGAACGTACGTACGTACGTACGTACGTACGT";
    qz.qzconf(a.size(), b.size(), ElementSize::Bits2);
    qz.stageSequence2bit(QzSel::Buf0, a);
    qz.stageSequence2bit(QzSel::Buf1, b);
    VReg idx;
    for (unsigned l = 0; l < 8; ++l)
        idx.setU64(l, l);
    const VReg eq =
        qz.qzmhm(QzOpn::CmpEq, idx, idx, vpu.pTrue(8), 8);
    EXPECT_EQ(eq.u64(0), 1u);
    EXPECT_EQ(eq.u64(3), 0u); // a[3]='T' vs b[3]='A'
    const VReg add = qz.qzmhm(QzOpn::Add, idx, idx, vpu.pTrue(8), 8);
    EXPECT_EQ(add.u64(1),
              2u * genomics::encodeBase2('C'));
}

TEST_F(QzUnitTest, QzMhmCountMatchesScalarRun)
{
    std::string a(128, 'A'), b(128, 'A');
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = b[i] = "ACGT"[(i * 3) % 4];
    b[40] = b[40] == 'A' ? 'C' : 'A';
    qz.qzconf(a.size(), b.size(), ElementSize::Bits2);
    qz.stageSequence2bit(QzSel::Buf0, a);
    qz.stageSequence2bit(QzSel::Buf1, b);
    VReg idx;
    idx.setU64(0, 10);
    idx.setU64(1, 39);
    idx.setU64(2, 41);
    const Pred p = vpu.whilelt(0, 3, 8);
    const VReg counts = qz.qzmhm(QzOpn::Count, idx, idx, p, 8);
    EXPECT_EQ(counts.u64(0), 30u); // elements 10..39 match, 40 differs
    EXPECT_EQ(counts.u64(1), 1u);
    EXPECT_EQ(counts.u64(2), 32u); // full window beyond the mismatch
}

TEST_F(QzUnitTest, QzMmCombinesRegisterAndBuffer)
{
    qz.qzconf(64, 64, ElementSize::Bits64);
    std::vector<std::uint64_t> words(16);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] = 10 * i;
    qz.stageWords64(QzSel::Buf0, words);
    VReg idx, val;
    for (unsigned l = 0; l < 8; ++l) {
        idx.setU64(l, l);
        val.setU64(l, 7);
    }
    const VReg sum =
        qz.qzmm(QzOpn::Add, val, idx, QzSel::Buf0, vpu.pTrue(8), 8);
    EXPECT_EQ(sum.u64(3), 37u);
    const VReg mx =
        qz.qzmm(QzOpn::Max, val, idx, QzSel::Buf0, vpu.pTrue(8), 8);
    EXPECT_EQ(mx.u64(0), 7u);
    EXPECT_EQ(mx.u64(2), 20u);
}

TEST_F(QzUnitTest, QzCountStandalone)
{
    qz.qzconf(32, 32, ElementSize::Bits2);
    const std::uint64_t wa =
        genomics::pack2bit("ACGTACGTACGTACGTACGTACGTACGTACGT")[0];
    const std::uint64_t wb =
        genomics::pack2bit("ACGTACCTACGTACGTACGTACGTACGTACGT")[0];
    VReg a = vpu.dup64(wa);
    VReg b = vpu.dup64(wb);
    const VReg counts = qz.qzcount(a, b);
    for (unsigned l = 0; l < 8; ++l)
        EXPECT_EQ(counts.u64(l), 6u);
}

TEST_F(QzUnitTest, IndexBeyondConfiguredCountPanics)
{
    qz.qzconf(8, 8, ElementSize::Bits64);
    VReg idx;
    idx.setU64(0, 8);
    EXPECT_THROW(qz.qzload(idx, QzSel::Buf0, vpu.pTrue(1), 1),
                 PanicError);
}

TEST_F(QzUnitTest, QzConfRejectsOversizedCounts)
{
    EXPECT_THROW(qz.qzconf(40000, 8, ElementSize::Bits2), FatalError);
    EXPECT_THROW(qz.qzconf(8, 9000, ElementSize::Bits8), FatalError);
}

TEST_F(QzUnitTest, ReadsDependOnPriorWrites)
{
    // Timing property: a qzload issued right after staging cannot be
    // ready before the staging writes completed.
    const std::string seq(64, 'A');
    qz.qzconf(seq.size(), seq.size(), ElementSize::Bits2);
    qz.stageSequence2bit(QzSel::Buf0, seq);
    VReg idx;
    const VReg got = qz.qzload(idx, QzSel::Buf0, vpu.pTrue(1), 1);
    EXPECT_GT(got.tag.ready, 0u);
}

TEST_F(QzUnitTest, QzMhmCountRevCountsBackward)
{
    std::string a(96, 'A'), b(96, 'A');
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = b[i] = "ACGT"[(i * 5) % 4];
    b[40] = b[40] == 'A' ? 'C' : 'A';
    qz.qzconf(a.size(), b.size(), ElementSize::Bits2);
    qz.stageSequence2bit(QzSel::Buf0, a);
    qz.stageSequence2bit(QzSel::Buf1, b);
    VReg idx;
    idx.setU64(0, 60); // counting down from 60: mismatch at 40
    idx.setU64(1, 39); // all 32 below 39 match
    const Pred p = vpu.whilelt(0, 2, 8);
    const VReg counts =
        qz.qzmhm(QzOpn::CountRev, idx, idx, p, 8);
    EXPECT_EQ(counts.u64(0), 20u);
    EXPECT_EQ(counts.u64(1), 32u);
}

TEST_F(QzUnitTest, QzMhmXorWindowsMatchCountSemantics)
{
    std::string a(64, 'G'), b = a;
    b[10] = 'C';
    qz.qzconf(a.size(), b.size(), ElementSize::Bits2);
    qz.stageSequence2bit(QzSel::Buf0, a);
    qz.stageSequence2bit(QzSel::Buf1, b);
    VReg idx;
    idx.setU64(0, 2);
    const Pred p = vpu.whilelt(0, 1, 8);
    const VReg x = qz.qzmhm(QzOpn::XorWin, idx, idx, p, 8);
    // ctz(xor) >> 1 must equal the count ALU's answer (8 matches
    // from element 2 up to the mismatch at 10).
    EXPECT_EQ(std::countr_zero(x.u64(0)) >> 1, 8);
    const VReg counts = qz.qzmhm(QzOpn::Count, idx, idx, p, 8);
    EXPECT_EQ(counts.u64(0), 8u);
    const VReg xr = qz.qzmhm(QzOpn::XorWinRev, idx, idx, p, 8);
    EXPECT_EQ(static_cast<unsigned>(std::countl_zero(xr.u64(0))) >> 1,
              qz.qzmhm(QzOpn::CountRev, idx, idx, p, 8).u64(0));
}

TEST_F(QzUnitTest, QzMmMultiplyForSpmv)
{
    qz.qzconf(16, 0, ElementSize::Bits64);
    std::vector<std::uint64_t> xs(16);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = 3 + i;
    qz.stageWords64(QzSel::Buf0, xs);
    VReg idx, val;
    for (unsigned l = 0; l < 8; ++l) {
        idx.setU64(l, 2 * l);
        val.setU64(l, 10);
    }
    const VReg prod =
        qz.qzmm(QzOpn::Mul, val, idx, QzSel::Buf0, vpu.pTrue(8), 8);
    EXPECT_EQ(prod.u64(0), 30u);
    EXPECT_EQ(prod.u64(3), 90u);
}

TEST_F(QzUnitTest, ReadLatencyScalesWithActiveLanes)
{
    sim::QuetzalParams p2;
    p2.present = true;
    p2.readPorts = 2;
    QBuffer buf(p2);
    EXPECT_EQ(buf.vectorReadCycles(0), 1u);
    EXPECT_EQ(buf.vectorReadCycles(2), 2u);
    EXPECT_EQ(buf.vectorReadCycles(8), 5u);
}

TEST_F(QzUnitTest, ArchitecturalStateRoundTripsThroughQzUnit)
{
    qz.qzconf(8, 8, ElementSize::Bits64);
    VReg idx, val;
    for (unsigned l = 0; l < 8; ++l) {
        idx.setU64(l, l);
        val.setU64(l, 0xA0 + l);
    }
    qz.qzstore(val, idx, QzSel::Buf0, vpu.pTrue(8), 8);
    const auto snapshot = qz.buffer(QzSel::Buf0).save();
    qz.buffer(QzSel::Buf0).clear();
    qz.buffer(QzSel::Buf0).restore(snapshot);
    const VReg got = qz.qzload(idx, QzSel::Buf0, vpu.pTrue(8), 8);
    EXPECT_EQ(got.u64(5), 0xA5u);
}

// ====================================================================
// Area / power model (Table III)
// ====================================================================

TEST(AreaModel, MatchesTableIIIAnchors)
{
    const auto configs = tableIiiConfigs();
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0].config, "QZ_1P");
    EXPECT_NEAR(configs[0].areaMm2, 0.013, 0.002);
    EXPECT_EQ(configs[3].config, "QZ_8P");
    EXPECT_NEAR(configs[3].areaMm2, 0.097, 0.002);
    EXPECT_NEAR(configs[3].powerMw, 0.746, 0.02);
    // Paper headline: <= 1.41% SoC overhead at 8 ports.
    EXPECT_NEAR(configs[3].socPercent, 1.41, 0.1);
    EXPECT_EQ(configs[0].readLatency, 9u);
    EXPECT_EQ(configs[1].readLatency, 5u);
    EXPECT_EQ(configs[3].readLatency, 2u);
}

TEST(AreaModel, AreaGrowsWithPorts)
{
    double prev = 0;
    for (unsigned ports : {1u, 2u, 4u, 8u}) {
        const auto est = estimateAreaPower(ports);
        EXPECT_GT(est.areaMm2, prev);
        prev = est.areaMm2;
    }
    EXPECT_THROW(estimateAreaPower(0), FatalError);
    EXPECT_THROW(estimateAreaPower(16), FatalError);
}

TEST(AreaModel, GcupsAccounting)
{
    // 1e9 cells in 2e9 cycles at 2 GHz = 1 second -> 1 GCUPS.
    EXPECT_NEAR(gcups(1000000000ull, 2000000000ull, 2.0), 1.0, 1e-9);
    EXPECT_EQ(gcups(100, 0, 2.0), 0.0);
    EXPECT_EQ(dpCellsClassic(100, 200), 20000u);
}

TEST(AreaModel, PublishedAcceleratorRows)
{
    const auto rows = publishedAccelerators();
    ASSERT_GE(rows.size(), 5u);
    for (const auto &row : rows) {
        EXPECT_GT(row.areaMm2, 0.0);
        EXPECT_GT(row.pgcupsPerMm2(), 0.0);
    }
}

} // namespace
} // namespace quetzal::accel
