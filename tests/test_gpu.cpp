/**
 * @file
 * GPU analytic-model tests: the occupancy cliff that drives the
 * Fig. 15a crossover must be present and monotone.
 */
#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "gpu/gpu_model.hpp"

namespace quetzal::gpu {
namespace {

TEST(GpuModel, OccupancyFullForShortReads)
{
    GpuDeviceParams device;
    const auto wfa = wfaGpuModel();
    EXPECT_DOUBLE_EQ(gpuOccupancy(device, wfa, 100, 0.03),
                     device.maxResidentPerSm);
}

TEST(GpuModel, OccupancyCollapsesForLongReads)
{
    GpuDeviceParams device;
    const auto wfa = wfaGpuModel();
    const double occShort = gpuOccupancy(device, wfa, 250, 0.03);
    const double occLong = gpuOccupancy(device, wfa, 30000, 0.05);
    EXPECT_GT(occShort, occLong);
    EXPECT_DOUBLE_EQ(occLong, 1.0); // floor: one worker per SM
}

TEST(GpuModel, ThroughputMonotoneDecreasingInLength)
{
    GpuDeviceParams device;
    for (const auto &tool : {wfaGpuModel(), gasal2Model()}) {
        double prev = 1e18;
        for (std::size_t len : {100u, 250u, 10000u, 30000u}) {
            const double t =
                gpuThroughput(device, tool, len, 0.04);
            EXPECT_LT(t, prev) << tool.name << " at " << len;
            prev = t;
        }
    }
}

TEST(GpuModel, SpillPenaltyKicksInPastOnChipCapacity)
{
    GpuDeviceParams device;
    const auto wfa = wfaGpuModel();
    // At 30 kbp / 5% the wavefront state alone is ~9 MB >> 128 KB.
    const double t30 = gpuThroughput(device, wfa, 30000, 0.05);
    const double t10 = gpuThroughput(device, wfa, 10000, 0.05);
    EXPECT_GT(t10 / t30, 4.0);
}

TEST(GpuModel, RejectsZeroLength)
{
    GpuDeviceParams device;
    EXPECT_THROW(gpuThroughput(device, wfaGpuModel(), 0, 0.01),
                 FatalError);
}

TEST(GpuModel, AreaClaimMatchesPaper)
{
    // Section VII-D: the A40 consumes >10x more area than QUETZAL's
    // host core + accelerator (2.89 mm^2, Table IV).
    GpuDeviceParams device;
    EXPECT_GT(device.areaMm2 / (16 * 2.89), 10.0);
}

} // namespace
} // namespace quetzal::gpu
