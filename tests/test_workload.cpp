/**
 * @file
 * Unit tests for the workload registry and the sharded sweep path:
 * name round-trips, kind mapping, kernel cells flowing through the
 * batch engine, round-robin shard partitioning, and the qz-merge
 * guarantee that three merged shard reports serialize byte-identical
 * to the unsharded run — including with an injected fault.
 */
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "algos/batch.hpp"
#include "algos/report.hpp"
#include "algos/workload.hpp"
#include "common/json.hpp"

namespace quetzal {
namespace {

using algos::Variant;

/** The kernel cells of Fig. 15b at test scale, verification on. */
std::vector<algos::BatchCell>
kernelCells(double scale)
{
    std::vector<algos::BatchCell> cells;
    for (const char *name : {"histogram", "spmv"}) {
        const algos::Workload &workload = algos::workloadByName(name);
        const auto ds = std::make_shared<const genomics::PairDataset>(
            workload.makeDataset(name, scale));
        for (Variant v : workload.variants()) {
            algos::RunOptions options;
            options.variant = v;
            options.verify = true;
            if (algos::needsQuetzal(v))
                options.system = sim::SystemParams::withQuetzal();
            cells.emplace_back(workload, ds, options);
        }
    }
    return cells;
}

/** Run @p cells as shard @p k of @p n on @p threads workers. */
algos::BatchOutcome
runShard(const std::vector<algos::BatchCell> &cells, unsigned threads,
         std::optional<algos::ShardSpec> shard,
         std::optional<algos::FaultInjection> inject = std::nullopt)
{
    algos::BatchRunner runner(threads);
    runner.setShard(shard);
    runner.setFaultInjection(inject);
    for (const auto &cell : cells)
        runner.add(cell);
    return runner.run();
}

TEST(WorkloadRegistry, EveryRegisteredNameRoundTrips)
{
    const auto all = algos::WorkloadRegistry::instance().all();
    EXPECT_GE(all.size(), 8u); // 6 genomics algorithms + 2 kernels
    for (const algos::Workload *workload : all) {
        EXPECT_EQ(&algos::workloadByName(workload->name()), workload)
            << workload->name();
        // Lookup is case-insensitive after the exact pass.
        std::string upper(workload->name());
        for (char &c : upper)
            c = static_cast<char>(std::toupper(
                static_cast<unsigned char>(c)));
        EXPECT_EQ(&algos::workloadByName(upper), workload) << upper;
    }
}

TEST(WorkloadRegistry, UnknownNameListsValidNames)
{
    try {
        algos::workloadByName("no-such-workload");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("no-such-workload"), std::string::npos);
        EXPECT_NE(message.find("valid names"), std::string::npos);
        // The diagnostic names the actual catalog.
        EXPECT_NE(message.find("WFA"), std::string::npos);
        EXPECT_NE(message.find("histogram"), std::string::npos);
        EXPECT_NE(message.find("spmv"), std::string::npos);
    }
}

TEST(WorkloadRegistry, KindMappingCoversEveryAlgoKind)
{
    for (algos::AlgoKind kind :
         {algos::AlgoKind::Wfa, algos::AlgoKind::BiWfa,
          algos::AlgoKind::SneakySnake, algos::AlgoKind::Nw,
          algos::AlgoKind::Swg, algos::AlgoKind::SsWfa}) {
        const algos::Workload &workload = algos::workloadFor(kind);
        ASSERT_TRUE(workload.kind().has_value());
        EXPECT_EQ(*workload.kind(), kind);
        EXPECT_EQ(workload.name(), algos::algoName(kind));
    }
}

TEST(WorkloadRegistry, ListingMentionsEveryWorkload)
{
    const std::string listing = algos::workloadListing();
    for (const algos::Workload *workload :
         algos::WorkloadRegistry::instance().all())
        EXPECT_NE(listing.find(std::string(workload->name())),
                  std::string::npos)
            << workload->name();
}

TEST(WorkloadRegistry, KernelsDeclareNoCountVariant)
{
    for (const char *name : {"histogram", "spmv"}) {
        const algos::Workload &workload = algos::workloadByName(name);
        EXPECT_FALSE(workload.kind().has_value());
        EXPECT_TRUE(workload.supports(Variant::Base));
        EXPECT_TRUE(workload.supports(Variant::Vec));
        EXPECT_TRUE(workload.supports(Variant::Qz));
        EXPECT_FALSE(workload.supports(Variant::QzC));
    }
}

TEST(KernelWorkloads, BatchCellsMatchSerialBitwise)
{
    const auto cells = kernelCells(0.02);
    const auto serial = runShard(cells, 1, std::nullopt);
    const auto parallel = runShard(cells, 4, std::nullopt);
    EXPECT_TRUE(serial.ok());
    EXPECT_TRUE(parallel.ok());
    ASSERT_EQ(serial.results.size(), cells.size());
    ASSERT_EQ(parallel.results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto &s = serial.results[i];
        const auto &p = parallel.results[i];
        EXPECT_GT(s.cycles, 0u) << "cell " << i;
        EXPECT_TRUE(s.outputsMatch) << "cell " << i;
        EXPECT_EQ(algos::toJson(s), algos::toJson(p)) << "cell " << i;
    }
}

TEST(ShardSpec, ParsesAndRejects)
{
    const auto shard = algos::parseShardSpec("2/3");
    ASSERT_TRUE(shard.has_value());
    EXPECT_EQ(shard->index, 2u);
    EXPECT_EQ(shard->count, 3u);
    EXPECT_EQ(algos::shardName(*shard), "2/3");
    EXPECT_FALSE(algos::parseShardSpec("").has_value());
    EXPECT_THROW(algos::parseShardSpec("0/3"), FatalError);
    EXPECT_THROW(algos::parseShardSpec("4/3"), FatalError);
    EXPECT_THROW(algos::parseShardSpec("a/3"), FatalError);
    EXPECT_THROW(algos::parseShardSpec("1/0"), FatalError);
    EXPECT_THROW(algos::parseShardSpec("1"), FatalError);
}

TEST(ShardSpec, RoundRobinOwnership)
{
    algos::ShardSpec shard;
    shard.index = 2;
    shard.count = 3;
    std::vector<std::size_t> owned;
    for (std::size_t i = 0; i < 8; ++i)
        if (shard.owns(i))
            owned.push_back(i);
    EXPECT_EQ(owned, (std::vector<std::size_t>{1, 4, 7}));
}

TEST(ShardedSweep, OwnedCellsPartitionTheMatrix)
{
    const auto cells = kernelCells(0.01);
    ASSERT_EQ(cells.size(), 6u);
    std::vector<char> covered(cells.size(), 0);
    for (unsigned k = 1; k <= 3; ++k) {
        const auto outcome = runShard(
            cells, 2, algos::ShardSpec{k, 3});
        ASSERT_TRUE(outcome.shard.has_value());
        EXPECT_EQ(outcome.shard->index, k);
        EXPECT_EQ(outcome.results.size(), cells.size());
        for (const std::size_t cell : outcome.ownedCells) {
            EXPECT_EQ(cell % 3, k - 1) << "shard " << k;
            EXPECT_FALSE(covered[cell]);
            covered[cell] = 1;
            EXPECT_GT(outcome.results[cell].cycles, 0u);
        }
        // Unowned slots keep their identity with zeroed metrics.
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (outcome.shard->owns(i))
                continue;
            EXPECT_EQ(outcome.results[i].cycles, 0u);
            EXPECT_EQ(outcome.results[i].algo,
                      cells[i].workload->name());
        }
    }
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_TRUE(covered[i]) << "cell " << i;
}

/** Merge three shard runs of @p cells and compare against unsharded. */
void
expectMergeByteIdentical(
    const std::vector<algos::BatchCell> &cells,
    std::optional<algos::FaultInjection> inject)
{
    const auto unsharded =
        runShard(cells, 2, std::nullopt, inject);
    const std::string expected = algos::toJson(algos::makeBenchReport(
        "merge_test", 0.02, 2, unsharded));

    // In-memory merge of the three shard reports.
    std::vector<algos::BenchReport> shardReports;
    for (unsigned k = 1; k <= 3; ++k) {
        const auto outcome =
            runShard(cells, 2, algos::ShardSpec{k, 3}, inject);
        shardReports.push_back(algos::makeBenchReport(
            "merge_test", 0.02, 2, outcome));
    }

    // Full JSON-text round trip, the same path qz-merge takes:
    // serialize each shard, parse it back, merge, serialize.
    std::vector<algos::BenchReport> parsed;
    for (const auto &report : shardReports) {
        const auto json = parseJson(algos::toJson(report));
        ASSERT_TRUE(json.has_value());
        auto back = algos::benchReportFromJson(*json);
        ASSERT_TRUE(back.has_value());
        parsed.push_back(std::move(*back));
    }

    EXPECT_EQ(algos::toJson(algos::mergeShardReports(
                  std::move(shardReports))),
              expected);
    EXPECT_EQ(
        algos::toJson(algos::mergeShardReports(std::move(parsed))),
        expected);
}

TEST(ShardedSweep, MergedReportIsByteIdenticalToUnsharded)
{
    expectMergeByteIdentical(kernelCells(0.02), std::nullopt);
}

TEST(ShardedSweep, MergedReportIsByteIdenticalWithInjectedFault)
{
    // Cell 1 fails fatally; the injection spec is global, so in the
    // sharded run it fires in exactly the shard owning cell 1 and the
    // failure record (with its global index) survives the merge.
    algos::FaultInjection inject;
    inject.cell = 1;
    inject.kind = algos::FailureKind::Fatal;
    inject.times = 1;
    expectMergeByteIdentical(kernelCells(0.02), inject);
}

TEST(ShardedSweep, MergeRejectsBadInputs)
{
    EXPECT_THROW(algos::mergeShardReports({}), FatalError);

    algos::BenchReport unsharded;
    unsharded.bench = "x";
    EXPECT_THROW(algos::mergeShardReports({unsharded}), FatalError);

    // Two shards of a 3-way split: incomplete.
    const auto cells = kernelCells(0.01);
    std::vector<algos::BenchReport> partial;
    for (unsigned k = 1; k <= 2; ++k)
        partial.push_back(algos::makeBenchReport(
            "x", 1.0, 1,
            runShard(cells, 1, algos::ShardSpec{k, 3})));
    EXPECT_THROW(algos::mergeShardReports(partial), FatalError);

    // Mismatched bench names across shards.
    std::vector<algos::BenchReport> mismatched;
    for (unsigned k = 1; k <= 3; ++k)
        mismatched.push_back(algos::makeBenchReport(
            k == 2 ? "other" : "x", 1.0, 1,
            runShard(cells, 1, algos::ShardSpec{k, 3})));
    EXPECT_THROW(algos::mergeShardReports(mismatched), FatalError);
}

} // namespace
} // namespace quetzal
