/**
 * @file
 * Regression tests for the command-line option parser: negative
 * numeric values must bind as option values (not become flags), and
 * malformed numeric input must be a fatal diagnostic instead of
 * silently parsing as 0.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../tools/cli_common.hpp"

namespace quetzal::cli {
namespace {

/** Build an Args from a brace list, faking argv[0]. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage_(std::move(args))
    {
        ptrs_.push_back(const_cast<char *>("test"));
        for (auto &arg : storage_)
            ptrs_.push_back(arg.data());
    }

    int argc() const { return static_cast<int>(ptrs_.size()); }
    char **argv() { return ptrs_.data(); }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> ptrs_;
};

Args
parse(std::vector<std::string> args)
{
    Argv argv(std::move(args));
    return Args(argv.argc(), argv.argv());
}

TEST(Cli, LooksLikeNumberClassifiesLiterals)
{
    EXPECT_TRUE(looksLikeNumber("-5"));
    EXPECT_TRUE(looksLikeNumber("-0.3"));
    EXPECT_TRUE(looksLikeNumber("+1e6"));
    EXPECT_TRUE(looksLikeNumber("42"));
    EXPECT_FALSE(looksLikeNumber("--verbose"));
    EXPECT_FALSE(looksLikeNumber("-lag"));
    EXPECT_FALSE(looksLikeNumber(""));
    EXPECT_FALSE(looksLikeNumber("5x"));
}

TEST(Cli, NegativeIntegerBindsAsOptionValue)
{
    // Regression: "--ssthreshold -5" used to turn into a boolean flag
    // plus a stray "-5" positional.
    const Args args = parse({"pairs.txt", "--ssthreshold", "-5"});
    EXPECT_EQ(args.getInt("ssthreshold", 0), -5);
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional().front(), "pairs.txt");
}

TEST(Cli, NegativeDoubleBindsAsOptionValue)
{
    const Args args = parse({"--bias", "-0.25"});
    EXPECT_DOUBLE_EQ(args.getDouble("bias", 0.0), -0.25);
    EXPECT_TRUE(args.positional().empty());
}

TEST(Cli, OptionFollowedByOptionStaysAFlag)
{
    const Args args = parse({"--verbose", "--threads", "4"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_EQ(args.get("verbose"), "1");
    EXPECT_EQ(args.getInt("threads", 1), 4);
}

TEST(Cli, TrailingOptionIsAFlag)
{
    const Args args = parse({"input.txt", "--cigar"});
    EXPECT_TRUE(args.has("cigar"));
    EXPECT_EQ(args.get("cigar"), "1");
}

TEST(Cli, MissingOptionFallsBack)
{
    const Args args = parse({"input.txt"});
    EXPECT_EQ(args.getInt("threads", 3), 3);
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.5), 0.5);
    EXPECT_EQ(args.get("variant", "qzc"), "qzc");
}

TEST(Cli, MalformedIntegerIsFatal)
{
    // Regression: atol() silently returned 0 for garbage.
    const Args args = parse({"--threads", "abc"});
    EXPECT_THROW(args.getInt("threads", 1), FatalError);
    const Args trailing = parse({"--threads", "4x"});
    EXPECT_THROW(trailing.getInt("threads", 1), FatalError);
}

TEST(Cli, MalformedDoubleIsFatal)
{
    const Args args = parse({"--rate", "fast"});
    EXPECT_THROW(args.getDouble("rate", 0.0), FatalError);
    const Args trailing = parse({"--rate", "0.5pct"});
    EXPECT_THROW(trailing.getDouble("rate", 0.0), FatalError);
}

TEST(Cli, OutOfRangeIntegerIsFatal)
{
    const Args args =
        parse({"--big", "999999999999999999999999999999"});
    EXPECT_THROW(args.getInt("big", 0), FatalError);
}

TEST(Cli, WellFormedValuesStillParse)
{
    const Args args = parse({"--threads", "8", "--rate", "1.5e-2"});
    EXPECT_EQ(args.getInt("threads", 1), 8);
    EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), 0.015);
}

} // namespace
} // namespace quetzal::cli
