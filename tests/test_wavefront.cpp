/**
 * @file
 * Unit tests for the shared data structures of the algorithm layer:
 * Wave (padded wavefront rows) and the CIGAR utilities.
 */
#include <gtest/gtest.h>

#include "algos/cigar.hpp"
#include "algos/sam.hpp"
#include "algos/wavefront.hpp"

namespace quetzal::algos {
namespace {

TEST(Wave, InitializesToSentinels)
{
    Wave wave(-3, 3);
    EXPECT_EQ(wave.lo(), -3);
    EXPECT_EQ(wave.hi(), 3);
    for (int k = -3; k <= 3; ++k)
        EXPECT_EQ(wave.at(k), kOffNone);
    // The padding is sentinel too (vector kernels rely on it).
    EXPECT_EQ(wave.at(-3 - Wave::kPad + 1), kOffNone);
    EXPECT_EQ(wave.at(3 + Wave::kPad - 1), kOffNone);
}

TEST(Wave, SetAndReadBack)
{
    Wave wave(-2, 2);
    wave.set(0, 42);
    wave.set(-2, 7);
    EXPECT_EQ(wave.at(0), 42);
    EXPECT_EQ(wave.at(-2), 7);
    EXPECT_TRUE(wave.contains(0));
    EXPECT_FALSE(wave.contains(3));
}

TEST(Wave, PointerArithmeticMatchesAt)
{
    Wave wave(-5, 5);
    wave.set(-5, 1);
    wave.set(5, 11);
    EXPECT_EQ(*wave.ptr(-5), 1);
    EXPECT_EQ(*wave.ptr(5), 11);
    EXPECT_EQ(wave.ptr(5) - wave.ptr(-5), 10);
}

TEST(Wave, ResetReconfiguresRange)
{
    Wave wave(0, 0);
    wave.set(0, 9);
    wave.reset(-10, 10);
    EXPECT_EQ(wave.lo(), -10);
    EXPECT_EQ(wave.at(0), kOffNone);
}

TEST(Wave, AccessBeyondPaddingPanics)
{
    Wave wave(0, 0);
    EXPECT_THROW(wave.at(Wave::kPad + 1), PanicError);
    EXPECT_THROW(wave.reset(3, 1), PanicError);
}

TEST(Cigar, EditsCountNonMatches)
{
    Cigar cigar;
    cigar.ops = "MMMXMMIMD";
    EXPECT_EQ(cigar.edits(), 3);
}

TEST(Cigar, RleCompresses)
{
    Cigar cigar;
    cigar.ops = "MMMMXXIM";
    EXPECT_EQ(cigar.rle(), "4M2X1I1M");
    Cigar empty;
    EXPECT_EQ(empty.rle(), "");
}

TEST(Cigar, AppendRuns)
{
    Cigar cigar;
    cigar.append('M', 3);
    cigar.append('X');
    EXPECT_EQ(cigar.ops, "MMMX");
}

TEST(ValidateCigar, AcceptsExactTranscripts)
{
    Cigar cigar;
    cigar.ops = "MMXMI";
    //            pattern ACGA vs text ACTAG
    EXPECT_TRUE(validateCigar("ACGA", "ACTAG", cigar));
}

TEST(ValidateCigar, RejectsWrongColumns)
{
    Cigar m;
    m.ops = "MM";
    EXPECT_FALSE(validateCigar("AC", "AT", m)); // X claimed as M
    Cigar x;
    x.ops = "XX";
    EXPECT_FALSE(validateCigar("AC", "AC", x)); // M claimed as X
    Cigar shortOps;
    shortOps.ops = "M";
    EXPECT_FALSE(validateCigar("AC", "AC", shortOps)); // leftovers
    Cigar overrun;
    overrun.ops = "MMM";
    EXPECT_FALSE(validateCigar("AC", "AC", overrun));
    Cigar bogus;
    bogus.ops = "MZ";
    EXPECT_FALSE(validateCigar("AC", "AC", bogus));
}

TEST(ValidateCigar, HandlesIndelOnlyTranscripts)
{
    Cigar ins;
    ins.ops = "III";
    EXPECT_TRUE(validateCigar("", "ACG", ins));
    Cigar del;
    del.ops = "DD";
    EXPECT_TRUE(validateCigar("AC", "", del));
}

TEST(Sam, CigarConversionFoldsAndExtends)
{
    Cigar cigar;
    cigar.ops = "MMMXMIDD";
    // Internal I consumes reference -> SAM 'D'; internal D -> SAM 'I'.
    EXPECT_EQ(toSamCigar(cigar, /*extended=*/true), "3=1X1=1D2I");
    EXPECT_EQ(toSamCigar(cigar, /*extended=*/false), "5M1D2I");
    EXPECT_EQ(toSamCigar(Cigar{}, true), "*");
}

TEST(Sam, HeaderAndRecordFormat)
{
    std::ostringstream out;
    writeSamHeader(out, "chr1", 1000);
    SamRecord record;
    record.qname = "read7";
    record.rname = "chr1";
    record.pos = 42;
    record.cigar = "10=";
    record.seq = "ACGTACGTAC";
    writeSamRecord(out, record);
    const std::string text = out.str();
    EXPECT_NE(text.find("@SQ\tSN:chr1\tLN:1000"), std::string::npos);
    EXPECT_NE(text.find("read7\t0\tchr1\t42\t60\t10=\t*\t0\t0\t"
                        "ACGTACGTAC\t*"),
              std::string::npos);
    SamRecord anonymous;
    EXPECT_THROW(writeSamRecord(out, anonymous), FatalError);
}

} // namespace
} // namespace quetzal::algos
