/**
 * @file
 * Integration tests of the experiment runner: full algorithm x variant
 * x dataset cells on small workloads, with the paper's qualitative
 * orderings asserted (VEC > BASE, QUETZAL > VEC, QUETZAL+C >= QUETZAL
 * on modern algorithms; fewer memory requests with QUETZAL).
 */
#include <gtest/gtest.h>

#include "algos/report.hpp"
#include "algos/runner.hpp"
#include "genomics/readsim.hpp"
#include "common/logging.hpp"

namespace quetzal::algos {
namespace {

genomics::PairDataset
tinyDataset(std::size_t length, double errorRate, std::size_t count,
            std::uint64_t seed)
{
    genomics::ReadSimConfig config;
    config.readLength = length;
    config.errorRate = errorRate;
    config.seed = seed;
    genomics::ReadSimulator sim(config);
    genomics::PairDataset ds;
    ds.name = "tiny";
    ds.readLength = length;
    ds.errorRate = errorRate;
    ds.pairs = sim.generatePairs(count);
    return ds;
}

RunResult
run(AlgoKind kind, const genomics::PairDataset &ds, Variant v,
    std::size_t maxLen = ~std::size_t{0})
{
    RunOptions options;
    options.variant = v;
    options.maxLen = maxLen;
    return runAlgorithm(kind, ds, options);
}

TEST(Runner, RefVariantIsRejected)
{
    const auto ds = tinyDataset(50, 0.05, 1, 1);
    RunOptions options;
    options.variant = Variant::Ref;
    EXPECT_THROW(runAlgorithm(AlgoKind::Wfa, ds, options), FatalError);
}

TEST(Runner, WfaOrderingMatchesPaper)
{
    const auto ds = tinyDataset(400, 0.05, 4, 2);
    const auto base = run(AlgoKind::Wfa, ds, Variant::Base);
    const auto vec = run(AlgoKind::Wfa, ds, Variant::Vec);
    const auto qz = run(AlgoKind::Wfa, ds, Variant::Qz);
    const auto qzc = run(AlgoKind::Wfa, ds, Variant::QzC);

    EXPECT_TRUE(base.outputsMatch);
    EXPECT_TRUE(vec.outputsMatch);
    EXPECT_TRUE(qz.outputsMatch);
    EXPECT_TRUE(qzc.outputsMatch);

    // Same functional work -> same total score everywhere.
    EXPECT_EQ(base.totalScore, vec.totalScore);
    EXPECT_EQ(vec.totalScore, qzc.totalScore);

    // Fig. 13a qualitative ordering: QUETZAL beats VEC, the count
    // hardware adds on top, and QUETZAL+C beats the scalar baseline.
    EXPECT_GT(speedup(vec, qz), 1.0);
    EXPECT_GT(speedup(vec, qzc), speedup(vec, qz) * 0.99);
    EXPECT_GT(speedup(base, qzc), 1.0);

    // Fig. 14a: QUETZAL slashes memory requests.
    EXPECT_LT(qzc.memRequests, vec.memRequests);
}

TEST(Runner, SneakySnakeOrderingMatchesPaper)
{
    const auto ds = tinyDataset(500, 0.04, 4, 3);
    const auto base = run(AlgoKind::SneakySnake, ds, Variant::Base);
    const auto vec = run(AlgoKind::SneakySnake, ds, Variant::Vec);
    const auto qzc = run(AlgoKind::SneakySnake, ds, Variant::QzC);
    EXPECT_TRUE(vec.outputsMatch);
    EXPECT_TRUE(qzc.outputsMatch);
    EXPECT_EQ(base.accepted, vec.accepted);
    EXPECT_EQ(vec.accepted, qzc.accepted);
    EXPECT_GT(speedup(base, qzc), 1.0);
    EXPECT_GT(speedup(vec, qzc), 1.0);
}

TEST(Runner, BiWfaRunsAllVariants)
{
    const auto ds = tinyDataset(600, 0.04, 2, 4);
    for (Variant v :
         {Variant::Base, Variant::Vec, Variant::Qz, Variant::QzC}) {
        const auto r = run(AlgoKind::BiWfa, ds, v);
        EXPECT_TRUE(r.outputsMatch) << variantName(v);
        EXPECT_EQ(r.pairs, 2u);
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(Runner, ClassicAlgorithmsVerifyAndCapLength)
{
    const auto ds = tinyDataset(300, 0.03, 2, 5);
    const auto nw = run(AlgoKind::Nw, ds, Variant::Vec, 120);
    EXPECT_TRUE(nw.outputsMatch);
    EXPECT_GT(nw.dpCells, 0u);
    // maxLen cap: cells bounded by 120^2-ish per pair.
    EXPECT_LE(nw.dpCells, 2u * 125u * 125u);

    const auto sw = run(AlgoKind::Swg, ds, Variant::Qz);
    EXPECT_TRUE(sw.outputsMatch);
}

TEST(Runner, SsWfaPipelineFiltersDecoys)
{
    auto ds = tinyDataset(250, 0.03, 8, 6);
    const auto mixed = mixWithDecoys(ds);
    EXPECT_EQ(mixed.size(), ds.size());
    const auto r = run(AlgoKind::SsWfa, mixed, Variant::QzC);
    EXPECT_TRUE(r.outputsMatch);
    // Decoys (half the pairs) should mostly be rejected.
    EXPECT_LT(r.accepted, r.pairs);
    EXPECT_GE(r.accepted, r.pairs / 2 - 1);
}

TEST(Runner, StallBreakdownCoversMostCycles)
{
    const auto ds = tinyDataset(400, 0.05, 2, 7);
    const auto vec = run(AlgoKind::Wfa, ds, Variant::Vec);
    const std::uint64_t attributed = vec.stalls[0] + vec.stalls[1] +
                                     vec.stalls[2] + vec.stalls[3];
    EXPECT_GT(attributed, vec.cycles / 2);
    // Long-ish reads on VEC: cache share should be substantial
    // (Fig. 4 reports 32-65%).
    EXPECT_GT(vec.cacheFraction(), 0.1);
}

TEST(Runner, ProteinWorkloadRuns)
{
    genomics::ReadSimConfig config;
    config.readLength = 200;
    config.errorRate = 0.1;
    config.alphabet = genomics::AlphabetKind::Protein;
    config.seed = 8;
    genomics::ReadSimulator sim(config);
    genomics::PairDataset ds;
    ds.name = "protein";
    ds.readLength = 200;
    ds.errorRate = 0.1;
    ds.pairs = sim.generatePairs(2);

    RunOptions options;
    options.variant = Variant::QzC;
    options.alphabet = genomics::AlphabetKind::Protein;
    const auto r = runAlgorithm(AlgoKind::Wfa, ds, options);
    EXPECT_TRUE(r.outputsMatch);
    EXPECT_GT(r.totalScore, 0);
}

TEST(Runner, DemandFeedsMulticoreModel)
{
    const auto ds = tinyDataset(300, 0.05, 2, 9);
    const auto r = run(AlgoKind::Wfa, ds, Variant::Vec);
    const auto demand = r.demand();
    EXPECT_EQ(demand.cycles, r.cycles);
    const double s16 =
        sim::multicoreSpeedup(demand, 16, sim::SystemParams::baseline());
    EXPECT_GT(s16, 1.0);
    EXPECT_LE(s16, 16.0);
}

// ====================================================================
// Full-matrix integration sweep: every algorithm x variant on a small
// workload, with verification against the golden models on.
// ====================================================================

struct MatrixCase
{
    AlgoKind kind;
    Variant variant;
};

class EvaluationMatrix : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(EvaluationMatrix, VerifiesAndProgresses)
{
    const MatrixCase mc = GetParam();
    const auto ds = tinyDataset(180, 0.05, 3, 99);
    RunOptions options;
    options.variant = mc.variant;
    options.maxLen = 150;
    const auto r = runAlgorithm(mc.kind, ds, options);
    EXPECT_TRUE(r.outputsMatch)
        << algoName(mc.kind) << "/" << variantName(mc.variant);
    EXPECT_EQ(r.pairs, 3u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"cycles\""), std::string::npos);
}

std::vector<MatrixCase>
allMatrixCases()
{
    std::vector<MatrixCase> cases;
    for (AlgoKind kind :
         {AlgoKind::Wfa, AlgoKind::BiWfa, AlgoKind::SneakySnake,
          AlgoKind::Nw, AlgoKind::Swg, AlgoKind::SsWfa}) {
        for (Variant v : {Variant::Base, Variant::Vec, Variant::Qz,
                          Variant::QzC})
            cases.push_back({kind, v});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, EvaluationMatrix, ::testing::ValuesIn(allMatrixCases()),
    [](const auto &info) {
        std::string name = std::string(algoName(info.param.kind)) +
                           "_" +
                           std::string(variantName(info.param.variant));
        for (auto &c : name)
            if (c == '+' || c == '-')
                c = 'C';
        return name;
    });

TEST(Report, RunResultSerializesToJson)
{
    const auto ds = tinyDataset(80, 0.05, 2, 11);
    const auto r = run(AlgoKind::Wfa, ds, Variant::QzC);
    const std::string json = toJson(r);
    EXPECT_NE(json.find("\"algo\":\"WFA\""), std::string::npos);
    EXPECT_NE(json.find("\"variant\":\"QUETZAL+C\""),
              std::string::npos);
    EXPECT_NE(json.find("\"outputs_match\":true"), std::string::npos);
    EXPECT_NE(json.find("\"stalls\""), std::string::npos);
}

TEST(Report, InstructionProfileListsUsedClasses)
{
    sim::SimContext ctx;
    ctx.pipeline().executeOp(sim::OpClass::VecAlu, {});
    const std::string json = instructionProfileJson(ctx.pipeline());
    EXPECT_NE(json.find("\"VecAlu\":1"), std::string::npos);
    EXPECT_EQ(json.find("\"VecGather\""), std::string::npos);
}

} // namespace
} // namespace quetzal::algos
