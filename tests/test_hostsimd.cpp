/**
 * @file
 * Host-SIMD backend equivalence tests.
 *
 * The scalar HostSimdOps table is the reference model; the AVX2 and
 * AVX-512 tables must be drop-in replacements, bit for bit, or the
 * "simulated metrics are backend-independent" invariant dies in some
 * data-dependent corner. Randomized lockstep drives every kernel of
 * every table this build compiled in (and this CPU supports) against
 * the scalar table over adversarial inputs — equal registers, all-zero
 * and all-one lanes, degenerate masks, unaligned sources — plus
 * explicit boundary checks of the scalar reference itself (the SIMD
 * tables then inherit them through lockstep). On a scalar-only build
 * (QZ_HOST_SIMD=scalar, or a host without AVX) the lockstep loops see
 * an empty table list and the reference checks still run, so the test
 * compiles and passes everywhere.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <random>
#include <vector>

#include "isa/hostsimd.hpp"

namespace quetzal::isa {
namespace {

using W = HostSimdOps::W;

constexpr unsigned kL64 = 8;
constexpr unsigned kL32 = 16;

/** Every compiled-in, CPU-supported table other than the reference. */
std::vector<const HostSimdOps *>
simdTables()
{
    std::vector<const HostSimdOps *> tables;
    if (const HostSimdOps *avx2 = hostSimdAvx2Ops())
        tables.push_back(avx2);
    if (const HostSimdOps *avx512 = hostSimdAvx512Ops())
        tables.push_back(avx512);
    return tables;
}

/**
 * Adversarial register generator: mostly random bits, but with fat
 * probability mass on the values where kernel corner cases live —
 * all-zero, all-one, equal-to-partner lanes (byte-run and count
 * kernels), and small counting patterns (signed compare boundaries).
 */
class Gen
{
  public:
    explicit Gen(std::uint64_t seed) : rng_(seed) {}

    std::uint64_t
    word()
    {
        switch (rng_() % 8) {
          case 0:
            return 0;
          case 1:
            return ~std::uint64_t{0};
          case 2:
            return rng_() % 3;
          default:
            return rng_();
        }
    }

    void
    fill(W *reg)
    {
        for (unsigned i = 0; i < kL64; ++i)
            reg[i] = word();
    }

    /** Fill @p b equal to @p a in a random prefix of each lane's bytes. */
    void
    fillPartner(const W *a, W *b)
    {
        for (unsigned i = 0; i < kL64; ++i) {
            b[i] = word();
            if (rng_() % 2) {
                const unsigned matchBytes = rng_() % 9;
                const std::uint64_t keep =
                    matchBytes >= 8
                        ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << (matchBytes * 8)) - 1);
                b[i] = (a[i] & keep) | (b[i] & ~keep);
            }
        }
    }

    std::uint64_t
    mask()
    {
        switch (rng_() % 5) {
          case 0:
            return 0;
          case 1:
            return ~std::uint64_t{0};
          case 2:
            return (std::uint64_t{1} << kL32) - 1;
          default:
            return rng_();
        }
    }

    std::uint64_t raw() { return rng_(); }

  private:
    std::mt19937_64 rng_;
};

#define EXPECT_REGS_EQ(ref, got, table, op)                            \
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof(W) * kL64))              \
        << "table " << (table)->name << " diverges on " op

TEST(HostSimdLockstep, BinaryAndUnaryKernels)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    const auto tables = simdTables();
    Gen gen(0x5eed0001);
    for (int iter = 0; iter < 2000; ++iter) {
        W a[kL64], b[kL64], refOut[kL64], simdOut[kL64];
        gen.fill(a);
        gen.fillPartner(a, b);
        for (const HostSimdOps *t : tables) {
#define CHECK_BIN(op)                                                  \
    do {                                                               \
        ref.op(a, b, refOut);                                          \
        t->op(a, b, simdOut);                                          \
        EXPECT_REGS_EQ(refOut, simdOut, t, #op);                       \
    } while (0)
            CHECK_BIN(and64);
            CHECK_BIN(or64);
            CHECK_BIN(xor64);
            CHECK_BIN(xnor64);
            CHECK_BIN(add64);
            CHECK_BIN(sub64);
            CHECK_BIN(min64);
            CHECK_BIN(max64);
            CHECK_BIN(add32);
            CHECK_BIN(sub32);
            CHECK_BIN(min32);
            CHECK_BIN(max32);
            CHECK_BIN(matchBytes32);
            CHECK_BIN(matchBytes32Rev);
            CHECK_BIN(pack64to32);
#undef CHECK_BIN
#define CHECK_UN(op)                                                   \
    do {                                                               \
        ref.op(a, refOut);                                             \
        t->op(a, simdOut);                                             \
        EXPECT_REGS_EQ(refOut, simdOut, t, #op);                       \
    } while (0)
            CHECK_UN(widenLo32to64);
            CHECK_UN(widenHi32to64);
            CHECK_UN(ctz64);
            CHECK_UN(clz64);
#undef CHECK_UN
        }
    }
}

TEST(HostSimdLockstep, ImmediatePredicatedAndSelectKernels)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    const auto tables = simdTables();
    Gen gen(0x5eed0002);
    for (int iter = 0; iter < 2000; ++iter) {
        W a[kL64], b[kL64], refOut[kL64], simdOut[kL64];
        gen.fill(a);
        gen.fillPartner(a, b);
        const auto imm64 = static_cast<std::int64_t>(gen.word());
        const auto imm32 = static_cast<std::int32_t>(gen.raw());
        const std::uint64_t mask = gen.mask();
        for (const HostSimdOps *t : tables) {
#define CHECK(call_ref, call_t, op)                                    \
    do {                                                               \
        call_ref;                                                      \
        call_t;                                                        \
        EXPECT_REGS_EQ(refOut, simdOut, t, op);                        \
    } while (0)
            CHECK(ref.addImm64(a, imm64, refOut),
                  t->addImm64(a, imm64, simdOut), "addImm64");
            CHECK(ref.addImm32(a, imm32, refOut),
                  t->addImm32(a, imm32, simdOut), "addImm32");
            CHECK(ref.addImmPred64(a, imm64, mask, refOut),
                  t->addImmPred64(a, imm64, mask, simdOut),
                  "addImmPred64");
            CHECK(ref.addImmPred32(a, imm32, mask, refOut),
                  t->addImmPred32(a, imm32, mask, simdOut),
                  "addImmPred32");
            CHECK(ref.addPred64(a, b, mask, refOut),
                  t->addPred64(a, b, mask, simdOut), "addPred64");
            CHECK(ref.addPred32(a, b, mask, refOut),
                  t->addPred32(a, b, mask, simdOut), "addPred32");
            CHECK(ref.sel64(mask, a, b, refOut),
                  t->sel64(mask, a, b, simdOut), "sel64");
            CHECK(ref.sel32(mask, a, b, refOut),
                  t->sel32(mask, a, b, simdOut), "sel32");
#undef CHECK
        }
    }
}

TEST(HostSimdLockstep, CompareShiftAndCountKernels)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    const auto tables = simdTables();
    Gen gen(0x5eed0003);
    for (int iter = 0; iter < 2000; ++iter) {
        W a[kL64], b[kL64], refOut[kL64], simdOut[kL64];
        gen.fill(a);
        gen.fillPartner(a, b);
        for (const HostSimdOps *t : tables) {
#define CHECK_CMP(op)                                                  \
    EXPECT_EQ(ref.op(a, b), t->op(a, b))                               \
        << "table " << t->name << " diverges on " #op
            CHECK_CMP(cmpEq32);
            CHECK_CMP(cmpNe32);
            CHECK_CMP(cmpGt32);
            CHECK_CMP(cmpLt32);
            CHECK_CMP(cmpEq64);
            CHECK_CMP(cmpNe64);
            CHECK_CMP(cmpGt64);
            CHECK_CMP(cmpLt64);
#undef CHECK_CMP
            // Shift 64/65: the documented contract is all-zero lanes,
            // which the variable-shift instructions deliver but a
            // naive scalar `>>` would turn into UB.
            for (const unsigned shift : {0u, 1u, 31u, 63u, 64u, 65u}) {
                ref.shr64(a, shift, refOut);
                t->shr64(a, shift, simdOut);
                EXPECT_REGS_EQ(refOut, simdOut, t, "shr64");
                ref.shl64(a, shift, refOut);
                t->shl64(a, shift, simdOut);
                EXPECT_REGS_EQ(refOut, simdOut, t, "shl64");
            }
            // Every element-size shift the CountAlu uses (2/8/32/64-bit
            // elements) plus the in-between values.
            for (const unsigned shift : {1u, 2u, 3u, 4u, 5u, 6u}) {
                ref.qzcount(a, b, shift, refOut);
                t->qzcount(a, b, shift, simdOut);
                EXPECT_REGS_EQ(refOut, simdOut, t, "qzcount");
                ref.qzcountRev(a, b, shift, refOut);
                t->qzcountRev(a, b, shift, simdOut);
                EXPECT_REGS_EQ(refOut, simdOut, t, "qzcountRev");
            }
        }
    }
}

TEST(HostSimdLockstep, WidenFromUnalignedTailsWithoutOverread)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    const auto tables = simdTables();
    Gen gen(0x5eed0004);
    for (int iter = 0; iter < 500; ++iter) {
        for (unsigned n = 0; n <= 16; ++n) {
            for (unsigned misalign = 0; misalign < 4; ++misalign) {
                // Exact-length heap block: the kernel contract says
                // "must not read past src + n", so give it nothing
                // past src + n to read. An over-reading kernel shows
                // up under valgrind/ASan runs of this test; a
                // mis-widening one fails the memcmp below either way.
                std::vector<std::uint8_t> buf(misalign + n);
                for (auto &byte : buf)
                    byte = static_cast<std::uint8_t>(gen.raw());
                const std::uint8_t *src = buf.data() + misalign;
                W refOut[kL64], simdOut[kL64];
                ref.widen8to32(src, n, refOut);
                for (const HostSimdOps *t : tables) {
                    t->widen8to32(src, n, simdOut);
                    EXPECT_REGS_EQ(refOut, simdOut, t, "widen8to32");
                }
            }
        }
    }
}

TEST(HostSimdLockstep, CompactAddressKernels)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    const auto tables = simdTables();
    Gen gen(0x5eed0005);
    for (int iter = 0; iter < 2000; ++iter) {
        W idx[kL64];
        gen.fill(idx);
        const std::uint64_t base = gen.raw();
        const std::uint64_t mask = gen.mask();
        const unsigned log2Scale = static_cast<unsigned>(gen.raw() % 4);
        std::uint64_t refAddrs[kL32], simdAddrs[kL32];
        for (const HostSimdOps *t : tables) {
#define CHECK_COMPACT(call_ref, call_t, op, lanes)                     \
    do {                                                               \
        std::memset(refAddrs, 0, sizeof(refAddrs));                    \
        std::memset(simdAddrs, 0, sizeof(simdAddrs));                  \
        const unsigned refCount = call_ref;                            \
        const unsigned simdCount = call_t;                             \
        EXPECT_EQ(refCount, simdCount)                                 \
            << "table " << t->name << " diverges on " op " count";     \
        EXPECT_EQ(0, std::memcmp(refAddrs, simdAddrs,                  \
                                 sizeof(std::uint64_t) * (lanes)))     \
            << "table " << t->name << " diverges on " op;              \
    } while (0)
            CHECK_COMPACT(
                ref.compactAddrU32(base, idx, log2Scale, mask, refAddrs),
                t->compactAddrU32(base, idx, log2Scale, mask, simdAddrs),
                "compactAddrU32", kL32);
            CHECK_COMPACT(
                ref.compactAddrI32(base, idx, mask, refAddrs),
                t->compactAddrI32(base, idx, mask, simdAddrs),
                "compactAddrI32", kL32);
            CHECK_COMPACT(
                ref.compactAddr64(base, idx, log2Scale,
                                  mask & ((1u << kL64) - 1), refAddrs),
                t->compactAddr64(base, idx, log2Scale,
                                 mask & ((1u << kL64) - 1), simdAddrs),
                "compactAddr64", kL64);
#undef CHECK_COMPACT
        }
    }
}

// ---- scalar-reference boundary semantics ---------------------------
// These pin the reference model itself (the lockstep tests above then
// carry the guarantees to every SIMD table). They run on every build,
// including scalar-only ones.

TEST(HostSimdReference, MatchBytesBoundaries)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    W a[kL64], b[kL64], out[kL64];
    std::uint32_t av[kL32], bv[kL32], ov[kL32];

    // All four bytes equal -> 4; first byte differs -> 0 — in both
    // directions, including sign-bit-only differences (countl_zero
    // territory) and the all-zero lane.
    for (unsigned i = 0; i < kL32; ++i) {
        av[i] = 0xA1B2C3D4;
        bv[i] = 0xA1B2C3D4;
    }
    std::memcpy(a, av, sizeof(av));
    std::memcpy(b, bv, sizeof(bv));
    ref.matchBytes32(a, b, out);
    std::memcpy(ov, out, sizeof(ov));
    for (unsigned i = 0; i < kL32; ++i)
        EXPECT_EQ(4u, ov[i]) << "element " << i;
    ref.matchBytes32Rev(a, b, out);
    std::memcpy(ov, out, sizeof(ov));
    for (unsigned i = 0; i < kL32; ++i)
        EXPECT_EQ(4u, ov[i]) << "element " << i;

    // Forward: byte k is the first mismatch -> k matching bytes.
    // Reverse: byte 3-k is the first mismatch from the top -> k.
    for (unsigned k = 0; k < 4; ++k) {
        for (unsigned i = 0; i < kL32; ++i) {
            av[i] = 0x01020304;
            bv[i] = av[i] ^ (0x80u << (8 * k)); // flip byte k's MSB
        }
        std::memcpy(a, av, sizeof(av));
        std::memcpy(b, bv, sizeof(bv));
        ref.matchBytes32(a, b, out);
        std::memcpy(ov, out, sizeof(ov));
        for (unsigned i = 0; i < kL32; ++i)
            EXPECT_EQ(k, ov[i]) << "forward, mismatch at byte " << k;
        ref.matchBytes32Rev(a, b, out);
        std::memcpy(ov, out, sizeof(ov));
        for (unsigned i = 0; i < kL32; ++i)
            EXPECT_EQ(3 - k, ov[i])
                << "reverse, mismatch at byte " << k;
    }
}

TEST(HostSimdReference, CountBoundaries)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    W a[kL64], b[kL64], out[kL64];

    // ctz/clz of 0 is 64 (whole register matches); of ~0 it is 0.
    for (unsigned i = 0; i < kL64; ++i)
        a[i] = 0;
    ref.ctz64(a, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(64u, out[i]);
    ref.clz64(a, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(64u, out[i]);
    for (unsigned i = 0; i < kL64; ++i)
        a[i] = ~W{0};
    ref.ctz64(a, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(0u, out[i]);
    ref.clz64(a, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(0u, out[i]);

    // qzcount on identical lanes: 64 matching bits >> shift gives the
    // full element count at every element size the CountAlu supports.
    for (unsigned i = 0; i < kL64; ++i)
        b[i] = a[i];
    for (const unsigned shift : {1u, 3u, 6u}) {
        ref.qzcount(a, b, shift, out);
        for (unsigned i = 0; i < kL64; ++i)
            EXPECT_EQ(W{64} >> shift, out[i]) << "shift " << shift;
        ref.qzcountRev(a, b, shift, out);
        for (unsigned i = 0; i < kL64; ++i)
            EXPECT_EQ(W{64} >> shift, out[i]) << "shift " << shift;
    }

    // A mismatch in bit 0 / bit 63 zeroes the respective direction.
    for (unsigned i = 0; i < kL64; ++i) {
        a[i] = 0x0123456789ABCDEF;
        b[i] = a[i] ^ 1;
    }
    ref.qzcount(a, b, 3, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(0u, out[i]);
    for (unsigned i = 0; i < kL64; ++i)
        b[i] = a[i] ^ (W{1} << 63);
    ref.qzcountRev(a, b, 3, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(0u, out[i]);
}

TEST(HostSimdReference, ShiftBoundaries)
{
    const HostSimdOps &ref = hostSimdScalarOps();
    W a[kL64], out[kL64];
    for (unsigned i = 0; i < kL64; ++i)
        a[i] = ~W{0};

    ref.shr64(a, 0, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(~W{0}, out[i]);
    ref.shr64(a, 63, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(W{1}, out[i]);
    ref.shl64(a, 63, out);
    for (unsigned i = 0; i < kL64; ++i)
        EXPECT_EQ(W{1} << 63, out[i]);
    // Past the lane width the contract is all-zero, not UB.
    for (const unsigned shift : {64u, 65u}) {
        ref.shr64(a, shift, out);
        for (unsigned i = 0; i < kL64; ++i)
            EXPECT_EQ(W{0}, out[i]) << "shr64 by " << shift;
        ref.shl64(a, shift, out);
        for (unsigned i = 0; i < kL64; ++i)
            EXPECT_EQ(W{0}, out[i]) << "shl64 by " << shift;
    }
}

TEST(HostSimdDispatch, ResolvedBackendIsACompiledTable)
{
    const HostSimdOps &active = hostSimd();
    EXPECT_NE(nullptr, active.name);
    const std::string name = active.name;
    EXPECT_TRUE(name == "scalar" || name == "avx2" || name == "avx512")
        << "unexpected backend " << name;
    // Whatever was resolved must be one of the tables this build owns.
    const bool isScalar = &active == &hostSimdScalarOps();
    const bool isAvx2 = hostSimdAvx2Ops() && &active == hostSimdAvx2Ops();
    const bool isAvx512 =
        hostSimdAvx512Ops() && &active == hostSimdAvx512Ops();
    EXPECT_TRUE(isScalar || isAvx2 || isAvx512);
    EXPECT_NE(nullptr, hostSimdCompiler());
    EXPECT_NE(nullptr, hostSimdBuildFlags());
}

} // namespace
} // namespace quetzal::isa
