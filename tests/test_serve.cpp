/**
 * @file
 * Unit tests for the qz-serve alignment service: pipe framing,
 * request/response wire schema, and the self-healing worker pool —
 * crash respawn without queue loss, deadline kills of hung workers,
 * admission-control shedding, graceful stop, and byte-identity of
 * served results against direct in-process / BatchRunner runs.
 *
 * Every pool test runs in fork-only mode (empty workerCommand), so
 * the worker is this test binary's forked image running workerMain()
 * directly — no external binary needed, same recovery machinery.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "algos/batch.hpp"
#include "algos/report.hpp"
#include "genomics/readsim.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace quetzal {
namespace {

/** RAII pipe for the framing tests. */
struct Pipe
{
    int fds[2] = {-1, -1};

    Pipe() { EXPECT_EQ(::pipe(fds), 0); }

    ~Pipe()
    {
        closeRead();
        closeWrite();
    }

    void closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }

    void closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

std::vector<genomics::SequencePair>
tinyPairs(std::size_t length, std::size_t count, std::uint64_t seed)
{
    genomics::ReadSimConfig config;
    config.readLength = length;
    config.errorRate = 0.05;
    config.seed = seed;
    genomics::ReadSimulator sim(config);
    return sim.generatePairs(count);
}

/** A cheap inline-pair request the fork-only workers finish fast. */
serve::ServeRequest
tinyRequest(std::uint64_t id, const std::string &workload = "WFA",
            const std::string &variant = "qzc")
{
    serve::ServeRequest request;
    request.id = id;
    request.workload = workload;
    request.variant = variant;
    if (workload == "SS")
        request.ssThreshold = 5;
    request.pairs = tinyPairs(40, 3, 7 + id);
    return request;
}

struct ServeRun
{
    std::vector<serve::ServeResponse> responses;
    serve::ServeStats stats;

    const serve::ServeResponse *
    byId(std::uint64_t id) const
    {
        for (const auto &response : responses)
            if (response.id == id)
                return &response;
        return nullptr;
    }
};

/** Construct a fork-only pool, serve every request, and shut down. */
ServeRun
serveAllCollect(serve::ServeConfig config,
                std::vector<serve::ServeRequest> requests)
{
    ServeRun run;
    serve::AlignService service(
        config, [&](const serve::ServeResponse &response) {
            run.responses.push_back(response);
        });
    service.serveAll(std::move(requests));
    service.shutdown();
    run.stats = service.stats();
    return run;
}

std::string
encodeFrame(const std::string &payload)
{
    const auto n = static_cast<std::uint32_t>(payload.size());
    std::string raw;
    raw.push_back(static_cast<char>(n & 0xff));
    raw.push_back(static_cast<char>((n >> 8) & 0xff));
    raw.push_back(static_cast<char>((n >> 16) & 0xff));
    raw.push_back(static_cast<char>((n >> 24) & 0xff));
    raw += payload;
    return raw;
}

TEST(ServeFraming, RoundTripsFramesThroughARealPipe)
{
    Pipe pipe;
    // All frames must fit the default pipe buffer (64 KiB): they are
    // written before anything reads, so a larger payload would block.
    const std::vector<std::string> payloads = {
        "{\"hello\":1}", "", std::string(30000, 'x')};
    for (const auto &payload : payloads)
        ASSERT_TRUE(serve::writeFrame(pipe.fds[1], payload));
    pipe.closeWrite();

    std::string got;
    for (const auto &payload : payloads) {
        ASSERT_EQ(serve::readFrame(pipe.fds[0], got),
                  serve::FrameRead::Frame);
        EXPECT_EQ(got, payload);
    }
    // Clean EOF lands exactly on the frame boundary.
    EXPECT_EQ(serve::readFrame(pipe.fds[0], got),
              serve::FrameRead::Eof);
}

TEST(ServeFraming, EofMidFrameIsAnError)
{
    Pipe pipe;
    const std::string raw = encodeFrame("full payload");
    // Writer dies mid-message: prefix promises 12 bytes, 4 arrive.
    ASSERT_EQ(::write(pipe.fds[1], raw.data(), 8),
              static_cast<ssize_t>(8));
    pipe.closeWrite();
    std::string got;
    EXPECT_EQ(serve::readFrame(pipe.fds[0], got),
              serve::FrameRead::Error);
}

TEST(ServeFraming, DecoderReassemblesFramesFedByteByByte)
{
    const std::vector<std::string> payloads = {"a", "",
                                               "second frame"};
    std::string raw;
    for (const auto &payload : payloads)
        raw += encodeFrame(payload);

    serve::FrameDecoder decoder;
    std::vector<std::string> got;
    std::string frame;
    for (const char byte : raw) {
        decoder.feed(&byte, 1);
        while (decoder.next(frame))
            got.push_back(frame);
    }
    EXPECT_EQ(got, payloads);
    EXPECT_EQ(decoder.pending(), 0u);
    EXPECT_FALSE(decoder.corrupt());
}

TEST(ServeFraming, DecoderFlagsOversizedLengthAsCorrupt)
{
    serve::FrameDecoder decoder;
    const char hostile[4] = {'\xff', '\xff', '\xff', '\xff'};
    decoder.feed(hostile, sizeof hostile);
    std::string frame;
    EXPECT_FALSE(decoder.next(frame));
    EXPECT_TRUE(decoder.corrupt());
}

TEST(ServeProtocol, RequestJsonRoundTripsEveryField)
{
    serve::ServeRequest request = tinyRequest(42, "SS");
    request.attempt = 2;
    request.maxLen = 512;
    const auto json = parseJson(serve::toJson(request));
    ASSERT_TRUE(json.has_value());
    const auto back = serve::requestFromJson(*json);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->id, 42u);
    EXPECT_EQ(back->attempt, 2u);
    EXPECT_EQ(back->workload, "SS");
    EXPECT_EQ(back->variant, "qzc");
    EXPECT_EQ(back->maxLen, 512u);
    EXPECT_EQ(back->ssThreshold, 5);
    EXPECT_FALSE(back->protein);
    ASSERT_EQ(back->pairs.size(), request.pairs.size());
    for (std::size_t i = 0; i < request.pairs.size(); ++i) {
        EXPECT_EQ(back->pairs[i].pattern, request.pairs[i].pattern);
        EXPECT_EQ(back->pairs[i].text, request.pairs[i].text);
    }
}

TEST(ServeProtocol, RequestJsonRejectsIncompleteDocuments)
{
    // Missing workload.
    auto json = parseJson("{\"dataset\":\"100bp_1\"}");
    ASSERT_TRUE(json.has_value());
    EXPECT_FALSE(serve::requestFromJson(*json).has_value());
    // A workload but neither dataset nor pairs.
    json = parseJson("{\"workload\":\"WFA\"}");
    ASSERT_TRUE(json.has_value());
    EXPECT_FALSE(serve::requestFromJson(*json).has_value());
}

TEST(ServeProtocol, ResponseJsonRoundTripsOkAndError)
{
    serve::ServeResponse ok;
    ok.id = 3;
    ok.status = serve::ResponseStatus::Ok;
    ok.attempts = 2;
    ok.result = serve::runRequestInProcess(tinyRequest(3));
    const auto okJson = parseJson(serve::toJson(ok));
    ASSERT_TRUE(okJson.has_value());
    const auto okBack = serve::responseFromJson(*okJson);
    ASSERT_TRUE(okBack.has_value());
    EXPECT_EQ(okBack->id, 3u);
    EXPECT_EQ(okBack->attempts, 2u);
    ASSERT_TRUE(okBack->result.has_value());
    EXPECT_EQ(algos::toJson(*okBack->result),
              algos::toJson(*ok.result));

    serve::ServeResponse error;
    error.id = 4;
    error.status = serve::ResponseStatus::Error;
    error.kind = algos::FailureKind::Panic;
    error.message = "worker died";
    const auto errJson = parseJson(serve::toJson(error));
    ASSERT_TRUE(errJson.has_value());
    const auto errBack = serve::responseFromJson(*errJson);
    ASSERT_TRUE(errBack.has_value());
    EXPECT_EQ(errBack->status, serve::ResponseStatus::Error);
    EXPECT_EQ(errBack->kind, algos::FailureKind::Panic);
    EXPECT_EQ(errBack->message, "worker died");

    // An Ok without its result is a protocol violation.
    const auto bare = parseJson("{\"id\":1,\"status\":\"ok\"}");
    ASSERT_TRUE(bare.has_value());
    EXPECT_FALSE(serve::responseFromJson(*bare).has_value());
}

TEST(ServeProtocol, StatusAndStateNamesRoundTrip)
{
    using serve::ResponseStatus;
    for (const auto status :
         {ResponseStatus::Ok, ResponseStatus::Error,
          ResponseStatus::Overloaded, ResponseStatus::Shutdown}) {
        const auto name = serve::responseStatusName(status);
        const auto back = serve::responseStatusFromName(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, status);
    }
    EXPECT_FALSE(serve::responseStatusFromName("bogus").has_value());

    using serve::WorkerState;
    EXPECT_EQ(serve::workerStateName(WorkerState::Idle), "idle");
    EXPECT_EQ(serve::workerStateName(WorkerState::Working),
              "working");
    EXPECT_EQ(serve::workerStateName(WorkerState::Draining),
              "draining");
    EXPECT_EQ(serve::workerStateName(WorkerState::Dead), "dead");
}

TEST(ServePool, ServedResultsAreByteIdenticalToDirectRuns)
{
    std::vector<serve::ServeRequest> requests = {
        tinyRequest(0, "WFA", "qzc"), tinyRequest(1, "WFA", "base"),
        tinyRequest(2, "SS"), tinyRequest(3, "NW")};

    serve::ServeConfig config;
    config.workers = 2;
    const ServeRun run = serveAllCollect(config, requests);

    ASSERT_EQ(run.responses.size(), requests.size());
    EXPECT_EQ(run.stats.served, requests.size());
    EXPECT_EQ(run.stats.respawns, 0u);
    for (const auto &request : requests) {
        const auto *response = run.byId(request.id);
        ASSERT_NE(response, nullptr) << "request " << request.id;
        ASSERT_EQ(response->status, serve::ResponseStatus::Ok)
            << response->message;
        EXPECT_EQ(response->attempts, 1u);
        ASSERT_TRUE(response->result.has_value());

        // The worker-process result must match both reference
        // execution paths bit for bit: the shared in-process helper
        // and a plain BatchRunner cell built from the same identity.
        const std::string served = algos::toJson(*response->result);
        EXPECT_EQ(served, algos::toJson(
                              serve::runRequestInProcess(request)));
        algos::BatchRunner runner(1);
        runner.setFaultInjection(std::nullopt);
        runner.setShard(std::nullopt);
        runner.add(algos::workloadByName(request.workload),
                   std::make_shared<genomics::PairDataset>(
                       serve::datasetFor(request)),
                   serve::optionsFor(request));
        const auto outcome = runner.run();
        ASSERT_TRUE(outcome.ok());
        EXPECT_EQ(served, algos::toJson(outcome.results.front()));
    }
}

TEST(ServePool, CrashedWorkerRespawnsWithoutQueueLoss)
{
    std::vector<serve::ServeRequest> requests = {
        tinyRequest(0), tinyRequest(1), tinyRequest(2),
        tinyRequest(3)};

    serve::ServeConfig config;
    config.workers = 2;
    algos::FaultInjection inject;
    inject.cell = 1; // request id, not batch index, under qz-serve
    inject.kind = algos::FailureKind::Panic;
    inject.action = algos::FaultAction::Crash;
    inject.times = 1;
    config.inject = inject;

    const ServeRun run = serveAllCollect(config, requests);

    // Zero dropped, zero duplicated: one Ok per request id.
    ASSERT_EQ(run.responses.size(), requests.size());
    for (const auto &request : requests) {
        const auto *response = run.byId(request.id);
        ASSERT_NE(response, nullptr);
        ASSERT_EQ(response->status, serve::ResponseStatus::Ok)
            << response->message;
        EXPECT_EQ(response->attempts, request.id == 1 ? 2u : 1u);
        ASSERT_TRUE(response->result.has_value());
        EXPECT_EQ(algos::toJson(*response->result),
                  algos::toJson(
                      serve::runRequestInProcess(request)));
    }
    EXPECT_EQ(run.stats.redispatches, 1u);
    EXPECT_GE(run.stats.respawns, 1u);
    EXPECT_EQ(run.stats.errors, 0u);
}

TEST(ServePool, RepeatedCrashIsTerminalPanic)
{
    std::vector<serve::ServeRequest> requests = {tinyRequest(0),
                                                 tinyRequest(1)};

    serve::ServeConfig config;
    config.workers = 1;
    config.maxDispatchAttempts = 2;
    algos::FaultInjection inject;
    inject.cell = 1;
    inject.kind = algos::FailureKind::Panic;
    inject.action = algos::FaultAction::Crash;
    inject.times = 2; // outlives the retry budget
    config.inject = inject;

    const ServeRun run = serveAllCollect(config, requests);

    ASSERT_EQ(run.responses.size(), 2u);
    const auto *healthy = run.byId(0);
    ASSERT_NE(healthy, nullptr);
    EXPECT_EQ(healthy->status, serve::ResponseStatus::Ok);
    const auto *doomed = run.byId(1);
    ASSERT_NE(doomed, nullptr);
    EXPECT_EQ(doomed->status, serve::ResponseStatus::Error);
    EXPECT_EQ(doomed->kind, algos::FailureKind::Panic);
    EXPECT_EQ(doomed->attempts, 2u);
    EXPECT_EQ(run.stats.errors, 1u);
    EXPECT_EQ(run.stats.redispatches, 1u);
}

TEST(ServePool, DeadlineKillRecoversAHungWorker)
{
    std::vector<serve::ServeRequest> requests = {tinyRequest(0),
                                                 tinyRequest(1)};

    serve::ServeConfig config;
    config.workers = 1;
    config.deadlineMs = 300;
    algos::FaultInjection inject;
    inject.cell = 0;
    inject.kind = algos::FailureKind::Resource;
    inject.action = algos::FaultAction::Hang;
    inject.times = 1; // only the first delivery hangs
    config.inject = inject;

    const ServeRun run = serveAllCollect(config, requests);

    ASSERT_EQ(run.responses.size(), 2u);
    for (const auto &request : requests) {
        const auto *response = run.byId(request.id);
        ASSERT_NE(response, nullptr);
        ASSERT_EQ(response->status, serve::ResponseStatus::Ok)
            << response->message;
        EXPECT_EQ(response->attempts, request.id == 0 ? 2u : 1u);
    }
    EXPECT_EQ(run.stats.deadlineKills, 1u);
    EXPECT_EQ(run.stats.redispatches, 1u);
    EXPECT_GE(run.stats.respawns, 1u);
}

TEST(ServePool, HangExhaustionReportsResource)
{
    std::vector<serve::ServeRequest> requests = {tinyRequest(0)};

    serve::ServeConfig config;
    config.workers = 1;
    config.deadlineMs = 300;
    config.maxDispatchAttempts = 2;
    algos::FaultInjection inject;
    inject.cell = 0;
    inject.kind = algos::FailureKind::Resource;
    inject.action = algos::FaultAction::Hang;
    inject.times = 2; // hang every delivery the budget allows
    config.inject = inject;

    const ServeRun run = serveAllCollect(config, requests);

    ASSERT_EQ(run.responses.size(), 1u);
    EXPECT_EQ(run.responses.front().status,
              serve::ResponseStatus::Error);
    EXPECT_EQ(run.responses.front().kind,
              algos::FailureKind::Resource);
    EXPECT_EQ(run.responses.front().attempts, 2u);
    EXPECT_EQ(run.stats.deadlineKills, 2u);
}

TEST(ServePool, AdmissionControlShedsBeyondTheQueueBound)
{
    serve::ServeConfig config;
    config.workers = 1;
    config.queueBound = 2;

    std::vector<serve::ServeResponse> responses;
    serve::AlignService service(
        config, [&](const serve::ServeResponse &response) {
            responses.push_back(response);
        });

    // submit() only queues (dispatch happens in the event loop), so
    // the shed count is exact: 2 admitted, 3 rejected immediately.
    std::vector<bool> admitted;
    for (std::uint64_t id = 0; id < 5; ++id)
        admitted.push_back(service.submit(tinyRequest(id)));
    EXPECT_EQ(admitted,
              (std::vector<bool>{true, true, false, false, false}));
    EXPECT_EQ(responses.size(), 3u);
    for (const auto &response : responses) {
        EXPECT_EQ(response.status, serve::ResponseStatus::Overloaded);
        EXPECT_EQ(response.attempts, 0u);
    }

    service.drain();
    service.shutdown();
    EXPECT_EQ(service.stats().shed, 3u);
    EXPECT_EQ(service.stats().served, 2u);
    EXPECT_EQ(responses.size(), 5u);
}

TEST(ServePool, GracefulStopFinishesInFlightAndShedsTheQueue)
{
    serve::ServeConfig config;
    config.workers = 1;
    config.queueBound = 8;

    std::vector<serve::ServeResponse> responses;
    serve::AlignService *self = nullptr;
    serve::AlignService service(
        config, [&](const serve::ServeResponse &response) {
            responses.push_back(response);
            // First completion pulls the plug, like a signal would.
            if (response.status == serve::ResponseStatus::Ok)
                self->requestStop();
        });
    self = &service;

    for (std::uint64_t id = 0; id < 3; ++id)
        ASSERT_TRUE(service.submit(tinyRequest(id)));
    service.drain();

    // One request finished; the two still queued were shed with a
    // structured Shutdown response, not silently dropped.
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(service.stats().served, 1u);
    EXPECT_EQ(service.stats().shutdownShed, 2u);
    std::size_t shutdown = 0;
    for (const auto &response : responses)
        if (response.status == serve::ResponseStatus::Shutdown)
            ++shutdown;
    EXPECT_EQ(shutdown, 2u);

    // Late arrivals bounce straight off the draining service.
    EXPECT_FALSE(service.submit(tinyRequest(9)));
    EXPECT_EQ(responses.back().status,
              serve::ResponseStatus::Shutdown);
    service.shutdown();
}

TEST(ServePool, RoundTripCheckMatchesInProcessRun)
{
    std::ostringstream out;
    EXPECT_TRUE(serve::serveRoundTripCheck(tinyRequest(0), out));
    EXPECT_NE(out.str().find("byte-identical"), std::string::npos)
        << out.str();
}

} // namespace
} // namespace quetzal
