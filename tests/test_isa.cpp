/**
 * @file
 * Unit tests for the vector ISA facade: VReg/Pred views, functional
 * semantics of every operation, and the timing side effects the
 * scoreboard should observe.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "isa/scalarunit.hpp"
#include "isa/vectorunit.hpp"
#include "sim/context.hpp"

namespace quetzal::isa {
namespace {

class IsaTest : public ::testing::Test
{
  protected:
    sim::SimContext ctx;
    VectorUnit vpu{ctx.pipeline()};
};

TEST(VRegViews, ElementAccessorsOverlayCorrectly)
{
    VReg r;
    r.setU32(0, 0x11223344);
    r.setU32(1, 0x55667788);
    EXPECT_EQ(r.u64(0), 0x5566778811223344ull);
    r.setU8(0, 0xAB);
    EXPECT_EQ(r.u32(0), 0x112233ABu);
    EXPECT_EQ(r.u8(3), 0x11);
    r.setU64(7, ~0ull);
    EXPECT_EQ(r.u32(15), 0xFFFFFFFFu);
    EXPECT_THROW(r.u32(16), PanicError);
    EXPECT_THROW(r.u64(8), PanicError);
}

TEST(PredViews, SetAndCount)
{
    Pred p;
    EXPECT_TRUE(p.none());
    p.set(3, true);
    p.set(10, true);
    EXPECT_TRUE(p.active(3));
    EXPECT_FALSE(p.active(4));
    EXPECT_EQ(p.count(), 2u);
    p.set(3, false);
    EXPECT_EQ(p.count(), 1u);
    EXPECT_THROW(p.set(64, true), PanicError);
}

TEST_F(IsaTest, DupAndIndex)
{
    const VReg d = vpu.dup32(-7);
    for (unsigned i = 0; i < kLanes32; ++i)
        EXPECT_EQ(d.i32(i), -7);
    const VReg ix = vpu.index32(5, 3);
    for (unsigned i = 0; i < kLanes32; ++i)
        EXPECT_EQ(ix.i32(i), 5 + 3 * static_cast<int>(i));
}

TEST_F(IsaTest, LoadStoreRoundTrip)
{
    std::int32_t src[16], dst[16] = {};
    for (int i = 0; i < 16; ++i)
        src[i] = i * i - 5;
    const VReg v = vpu.load(1, src, 64);
    vpu.store(2, dst, v, 64);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(dst[i], src[i]);
}

TEST_F(IsaTest, PartialLoadLeavesRestZero)
{
    std::int32_t src[4] = {1, 2, 3, 4};
    const VReg v = vpu.load(1, src, 16);
    EXPECT_EQ(v.i32(3), 4);
    EXPECT_EQ(v.i32(4), 0);
}

TEST_F(IsaTest, Load8to32Widens)
{
    const char buf[8] = {'A', 'C', 'G', 'T', 'z', 0, 1, 127};
    const VReg v = vpu.load8to32(1, buf, 8);
    EXPECT_EQ(v.u32(0), static_cast<std::uint32_t>('A'));
    EXPECT_EQ(v.u32(4), static_cast<std::uint32_t>('z'));
    EXPECT_EQ(v.u32(7), 127u);
}

TEST_F(IsaTest, GatherRespectsPredicateAndIndices)
{
    const char data[32] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ01234";
    VReg idx;
    for (unsigned i = 0; i < 16; ++i)
        idx.setU32(i, 2 * i);
    Pred p = vpu.pTrue(16);
    p.set(5, false);
    const VReg got = vpu.gather8(1, data, idx, p, 16);
    EXPECT_EQ(got.u32(0), static_cast<std::uint32_t>('A'));
    EXPECT_EQ(got.u32(1), static_cast<std::uint32_t>('C'));
    EXPECT_EQ(got.u32(5), 0u); // inactive lane untouched
    EXPECT_EQ(got.u32(15), static_cast<std::uint32_t>('4'));
}

TEST_F(IsaTest, Gather32Scatter32RoundTrip)
{
    std::int32_t table[64];
    for (int i = 0; i < 64; ++i)
        table[i] = 1000 + i;
    VReg idx;
    for (unsigned i = 0; i < 16; ++i)
        idx.setU32(i, 63 - 4 * i);
    const Pred p = vpu.pTrue(16);
    const VReg got = vpu.gather32(1, table, idx, p, 16);
    EXPECT_EQ(got.i32(0), 1063);
    EXPECT_EQ(got.i32(15), 1003);
    const VReg updated = vpu.add32i(got, 1);
    vpu.scatter32(2, table, idx, updated, p, 16);
    EXPECT_EQ(table[63], 1064);
    EXPECT_EQ(table[3], 1004);
}

TEST_F(IsaTest, Gather64Scatter64RoundTrip)
{
    std::uint64_t table[16];
    for (int i = 0; i < 16; ++i)
        table[i] = 100 + i;
    VReg idx;
    for (unsigned l = 0; l < 8; ++l)
        idx.setU64(l, 15 - l);
    const Pred p = vpu.pTrue(8);
    const VReg got = vpu.gather64(1, table, idx, p, 8);
    EXPECT_EQ(got.u64(0), 115u);
    vpu.scatter64(2, table, idx, vpu.add64i(got, 5), p, 8);
    EXPECT_EQ(table[15], 120u);
}

TEST_F(IsaTest, Arithmetic32)
{
    const VReg a = vpu.index32(0, 1);
    const VReg b = vpu.dup32(10);
    EXPECT_EQ(vpu.add32(a, b).i32(3), 13);
    EXPECT_EQ(vpu.sub32(b, a).i32(4), 6);
    EXPECT_EQ(vpu.max32(a, b).i32(12), 12);
    EXPECT_EQ(vpu.min32(a, b).i32(12), 10);
    EXPECT_EQ(vpu.add32i(a, -2).i32(1), -1);
}

TEST_F(IsaTest, PredicatedOps32)
{
    const VReg a = vpu.dup32(5);
    Pred p = vpu.pTrue(16);
    p.set(2, false);
    const VReg r = vpu.addUnderPred32(a, 3, p);
    EXPECT_EQ(r.i32(1), 8);
    EXPECT_EQ(r.i32(2), 5);
    const VReg s = vpu.sel32(p, vpu.dup32(1), vpu.dup32(0));
    EXPECT_EQ(s.i32(1), 1);
    EXPECT_EQ(s.i32(2), 0);
}

TEST_F(IsaTest, Compare32ProducesGoverningPredicatedResult)
{
    const VReg a = vpu.index32(0, 1);
    const VReg b = vpu.dup32(8);
    Pred gov = vpu.pTrue(16);
    gov.set(8, false);
    const Pred eq = vpu.cmpeq32(a, b, gov, 16);
    EXPECT_TRUE(eq.none()); // lane 8 matches but is governed off
    const Pred lt = vpu.cmplt32(a, b, gov, 16);
    EXPECT_EQ(lt.count(), 8u);
    const Pred gt = vpu.cmpgt32(a, b, gov, 16);
    EXPECT_EQ(gt.count(), 7u);
    const Pred ne = vpu.cmpne32(a, b, gov, 16);
    EXPECT_EQ(ne.count(), 15u);
}

TEST_F(IsaTest, Arithmetic64AndCompare64)
{
    const VReg a = vpu.widenLo32to64(vpu.index32(-2, 1));
    EXPECT_EQ(a.i64(0), -2);
    EXPECT_EQ(a.i64(7), 5);
    const VReg b = vpu.dup64(3);
    EXPECT_EQ(vpu.sub64(b, a).i64(0), 5);
    EXPECT_EQ(vpu.min64(a, b).i64(7), 3);
    EXPECT_EQ(vpu.max64(a, b).i64(0), 3);
    const Pred p = vpu.pTrue(8);
    EXPECT_EQ(vpu.cmplt64(a, b, p, 8).count(), 5u);
    EXPECT_EQ(vpu.cmpeq64(a, b, p, 8).count(), 1u);
    const VReg nar = vpu.narrow64to32(a);
    EXPECT_EQ(nar.i32(0), -2);
    EXPECT_EQ(nar.i32(7), 5);
}

TEST_F(IsaTest, PredicateCombinators)
{
    const Pred a = vpu.whilelt(0, 10, 16);
    EXPECT_EQ(a.count(), 10u);
    const Pred b = vpu.whilelt(4, 10, 16);
    EXPECT_EQ(b.count(), 6u);
    EXPECT_EQ(vpu.pAnd(a, b).count(), 6u);
    EXPECT_EQ(vpu.pOr(a, b).count(), 10u);
    EXPECT_EQ(vpu.pBic(a, b).count(), 4u);
}

TEST_F(IsaTest, AnyActiveChargesExitBubble)
{
    Pred empty;
    empty.tag = sim::Tag{};
    const auto before =
        ctx.pipeline().stallCycles(sim::StallKind::Frontend);
    EXPECT_FALSE(vpu.anyActive(empty));
    EXPECT_GT(ctx.pipeline().stallCycles(sim::StallKind::Frontend),
              before);
    Pred some = vpu.pTrue(4);
    EXPECT_TRUE(vpu.anyActive(some));
}

TEST_F(IsaTest, Reductions)
{
    VReg v = vpu.index32(1, 2); // 1, 3, 5, ...
    const Pred p = vpu.whilelt(0, 5, 16);
    EXPECT_EQ(vpu.reduceMax32(v, p, 16), 9);
    EXPECT_EQ(vpu.reduceMin32(v, p, 16), 1);
    EXPECT_EQ(vpu.reduceAdd32(v, p, 16), 25);
    const VReg w = vpu.widenLo32to64(v);
    EXPECT_EQ(vpu.reduceMax64(w, vpu.pTrue(8), 8), 15);
}

TEST_F(IsaTest, Bitwise64)
{
    const VReg a = vpu.dup64(0xF0F0);
    const VReg b = vpu.dup64(0x0FF0);
    EXPECT_EQ(vpu.and64(a, b).u64(0), 0x00F0u);
    EXPECT_EQ(vpu.or64(a, b).u64(0), 0xFFF0u);
    EXPECT_EQ(vpu.xor64(a, b).u64(0), 0xFF00u);
    EXPECT_EQ(vpu.xnor64(a, b).u64(0), ~std::uint64_t{0xFF00});
    EXPECT_EQ(vpu.shl64i(a, 4).u64(0), 0xF0F00u);
    EXPECT_EQ(vpu.shr64i(a, 4).u64(0), 0xF0Fu);
}

TEST_F(IsaTest, WidenHiAndPackRoundTrip)
{
    const VReg v = vpu.index32(-8, 1); // -8..7
    const VReg lo = vpu.widenLo32to64(v);
    const VReg hi = vpu.widenHi32to64(v);
    EXPECT_EQ(lo.i64(0), -8);
    EXPECT_EQ(hi.i64(0), 0);
    EXPECT_EQ(hi.i64(7), 7);
    const VReg packed = vpu.pack64to32(lo, hi);
    for (unsigned i = 0; i < kLanes32; ++i)
        EXPECT_EQ(packed.i32(i), v.i32(i));
}

TEST_F(IsaTest, PredicateUnpackHalves)
{
    Pred p = vpu.whilelt(0, 11, 16);
    const Pred lo = vpu.punpkLo(p);
    const Pred hi = vpu.punpkHi(p);
    EXPECT_EQ(lo.count(), 8u);
    EXPECT_EQ(hi.count(), 3u);
    EXPECT_TRUE(hi.active(2));
    EXPECT_FALSE(hi.active(3));
}

TEST_F(IsaTest, GatherU32ReadsUnalignedWords)
{
    const char data[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdef";
    VReg idx;
    for (unsigned i = 0; i < 16; ++i)
        idx.setI32(i, static_cast<std::int32_t>(i));
    const VReg got = vpu.gatherU32(1, data, idx, vpu.pTrue(16), 16);
    // Word at byte offset 1 is "BCDE" little-endian.
    EXPECT_EQ(got.u32(1), 0x45444342u);
}

TEST_F(IsaTest, MatchBytesCountsPrefix)
{
    VReg a = vpu.dup32(0);
    VReg b = vpu.dup32(0);
    a.setU32(0, 0x41424344);
    b.setU32(0, 0x41FF4344); // bytes 0,1 match; byte 2 differs
    a.setU32(1, 0x11111111);
    b.setU32(1, 0x11111111);
    const VReg mb = vpu.matchBytes32(a, b);
    EXPECT_EQ(mb.u32(0), 2u);
    EXPECT_EQ(mb.u32(1), 4u);
    const VReg mr = vpu.matchBytes32Rev(a, b);
    EXPECT_EQ(mr.u32(0), 1u); // only the top byte matches
}

TEST_F(IsaTest, Ctz64AndClz64)
{
    const VReg v = vpu.dup64(0x0000000000F0'0000ull);
    EXPECT_EQ(vpu.ctz64(v).u64(0), 20u);
    EXPECT_EQ(vpu.clz64(v).u64(0), 40u);
    const VReg z = vpu.dup64(0);
    EXPECT_EQ(vpu.ctz64(z).u64(0), 64u);
    EXPECT_EQ(vpu.clz64(z).u64(0), 64u);
}

TEST_F(IsaTest, PredicatedAdd64Vector)
{
    const VReg a = vpu.dup64(10);
    const VReg b = vpu.widenLo32to64(vpu.index32(0, 1));
    Pred p = vpu.pTrue(8);
    p.set(2, false);
    const VReg r = vpu.addvUnderPred64(a, b, p);
    EXPECT_EQ(r.u64(1), 11u);
    EXPECT_EQ(r.u64(2), 10u);
    const VReg r32 = vpu.addvUnderPred32(vpu.dup32(5),
                                         vpu.index32(0, 1), p);
    EXPECT_EQ(r32.i32(1), 6);
    EXPECT_EQ(r32.i32(2), 5);
}

TEST_F(IsaTest, TimingFlowsThroughTags)
{
    // A value gated by a DRAM-latency load is not ready before it.
    static std::int32_t coldData[16] = {};
    const VReg slow = vpu.load(1, coldData, 64); // cold address
    const VReg sum = vpu.add32(slow, slow);
    EXPECT_GE(sum.tag.ready, slow.tag.ready);
    EXPECT_TRUE(slow.tag.mem);
    EXPECT_FALSE(sum.tag.mem);
}

TEST(BaseUnitTest, LoadsOverlapButAluWaits)
{
    sim::SimContext ctx;
    BaseUnit bu(ctx.pipeline());
    char buf[2] = {'a', 'b'};
    bu.loadChar(1, &buf[0]);
    bu.loadChar(2, &buf[1]);
    bu.alu();
    bu.branch();
    EXPECT_EQ(ctx.pipeline().instructions(), 4u);
    EXPECT_GT(ctx.pipeline().totalCycles(), 0u);
}

TEST(BaseUnitTest, BranchMissCostsMoreThanBranch)
{
    sim::SimContext a, b;
    BaseUnit ua(a.pipeline()), ub(b.pipeline());
    for (int i = 0; i < 20; ++i)
        ua.branch();
    for (int i = 0; i < 20; ++i)
        ub.branchMiss();
    EXPECT_GT(b.pipeline().totalCycles(), a.pipeline().totalCycles());
}

} // namespace
} // namespace quetzal::isa
