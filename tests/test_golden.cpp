/**
 * @file
 * Golden-metrics regression: the tiny perf-matrix sweep's BenchReport
 * JSON must be byte-identical to the snapshot in tests/data/ —
 * pinning every simulated metric (cycles, instructions, requests,
 * DRAM bytes, scores, stall breakdowns) against drift from host-side
 * optimization work. Host wall-clock fields are excluded by
 * construction: they are only serialized when recorded, and this
 * sweep never records them.
 *
 * Regenerate deliberately with QZ_UPDATE_GOLDEN=1 after a change that
 * is *supposed* to alter simulated behavior, and say why in the PR.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "algos/batch.hpp"
#include "algos/report.hpp"
#include "../tools/perf_matrix.hpp"

namespace quetzal {
namespace {

std::string
goldenPath(const char *file)
{
    return std::string(QZ_TESTS_DATA_DIR) + "/" + file;
}

/** A runner whose report bytes cannot depend on ambient QZ_* config. */
algos::BatchRunner
pinnedRunner()
{
    algos::BatchRunner runner(1);
    runner.setShard(std::nullopt);
    runner.setFaultInjection(std::nullopt);
    runner.setHostPerf(false);
    return runner;
}

/** The exact bytes `qz-perf --tiny --metrics` writes (sans newline). */
std::string
tinyMatrixReportJson()
{
    algos::BatchRunner runner = pinnedRunner();
    const std::size_t cells =
        perf::addPerfMatrix(runner, perf::kTinyScale, /*tiny=*/true);
    EXPECT_EQ(cells, 12u);
    const algos::BatchOutcome outcome = runner.run();
    EXPECT_TRUE(outcome.ok());
    return algos::toJson(algos::makeBenchReport(
        "qz-perf", perf::kTinyScale, 1, outcome));
}

/** The exact bytes `qz-perf --kernels --metrics` writes. */
std::string
kernelMatrixReportJson()
{
    algos::BatchRunner runner = pinnedRunner();
    const std::size_t cells = perf::addKernelMatrix(runner);
    EXPECT_EQ(cells, 6u);
    const algos::BatchOutcome outcome = runner.run();
    EXPECT_TRUE(outcome.ok());
    return algos::toJson(algos::makeBenchReport(
        "qz-perf", perf::kTinyScale, 1, outcome));
}

/** Byte-compare @p json against the snapshot file @p file. */
void
expectMatchesGolden(const std::string &json, const char *file)
{
    const std::string path = goldenPath(file);
    if (const char *update = std::getenv("QZ_UPDATE_GOLDEN");
        update && *update && std::string_view(update) != "0") {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << json << "\n";
        GTEST_SKIP() << "golden snapshot regenerated at " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden snapshot " << path
                    << " (generate with QZ_UPDATE_GOLDEN=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), json + "\n")
        << "simulated metrics drifted from tests/data/" << file
        << "; if the change is intentional, regenerate with "
           "QZ_UPDATE_GOLDEN=1 and explain why";
}

TEST(GoldenMetrics, TinyMatrixIsByteIdenticalToSnapshot)
{
    expectMatchesGolden(tinyMatrixReportJson(), "golden_cells.json");
}

TEST(GoldenMetrics, KernelMatrixIsByteIdenticalToSnapshot)
{
    // Histogram (scatter-heavy) and SpMV (gather-heavy) pin the
    // Fig. 15b ISA-layer paths the genomics matrix exercises lightly.
    expectMatchesGolden(kernelMatrixReportJson(),
                        "golden_kernels.json");
}

TEST(GoldenMetrics, HostTimingStaysOutOfDefaultReports)
{
    // The serializer must keep wall-clock out of untimed results (the
    // byte-identity above, CI's shard-merge diff, and checkpoint
    // replay all depend on it) and include it once recorded.
    algos::RunResult result;
    result.algo = "WFA";
    result.variant = "BASE";
    result.dataset = "d";
    EXPECT_EQ(algos::toJson(result).find("host_ns"),
              std::string::npos);
    result.hostNanos = 123456789;
    const std::string timed = algos::toJson(result);
    EXPECT_NE(timed.find("\"host_ns\":123456789"), std::string::npos);
    // And it round-trips through the checkpoint parser.
    const auto parsed = parseJson(timed);
    ASSERT_TRUE(parsed.has_value());
    const auto back = algos::runResultFromJson(*parsed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->hostNanos, 123456789u);
    EXPECT_NEAR(back->hostInstructionRate(), 0.0, 1e-12);
}

TEST(GoldenMetrics, HostRatesDeriveFromNanos)
{
    algos::RunResult result;
    result.instructions = 2'000'000;
    result.memRequests = 500'000;
    EXPECT_EQ(result.hostInstructionRate(), 0.0);
    EXPECT_EQ(result.hostAccessRate(), 0.0);
    result.hostNanos = 1'000'000'000; // one second
    EXPECT_DOUBLE_EQ(result.hostInstructionRate(), 2e6);
    EXPECT_DOUBLE_EQ(result.hostAccessRate(), 5e5);
}

} // namespace
} // namespace quetzal
