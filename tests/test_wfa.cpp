/**
 * @file
 * WFA tests: reference correctness against brute-force edit distance,
 * traceback validity, and bit-identical results across every timed
 * variant (the paper validates each QUETZAL implementation by bitwise
 * output comparison, Section V-B).
 */
#include <gtest/gtest.h>

#include <optional>

#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "common/rng.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {
namespace {

/** O(mn) reference edit distance for cross-checking. */
std::int64_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::int64_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = static_cast<std::int64_t>(j);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = static_cast<std::int64_t>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::int64_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

AlignResult
refAlign(std::string_view p, std::string_view t, bool tb = true)
{
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    return wfaAlign(*engine, p, t, tb);
}

TEST(WfaRef, MatchesBruteForceOnFixedCases)
{
    struct Case
    {
        const char *p, *t;
        std::int64_t score;
    };
    const Case cases[] = {
        {"ACAG", "AAGT", 2}, // the paper's Fig. 1 example pair
        {"ACGT", "ACGT", 0},
        {"A", "T", 1},
        {"ACGT", "AGT", 1},
        {"AGT", "ACGT", 1},
        {"AAAA", "TTTT", 4},
        {"GATTACA", "GCATGCU", 4},
    };
    for (const auto &c : cases) {
        const AlignResult got = refAlign(c.p, c.t);
        EXPECT_EQ(got.score, c.score) << c.p << " vs " << c.t;
        EXPECT_EQ(got.score, editDistance(c.p, c.t));
        EXPECT_TRUE(validateCigar(c.p, c.t, got.cigar));
        EXPECT_EQ(got.cigar.edits(), got.score);
    }
}

TEST(WfaRef, EmptySides)
{
    EXPECT_EQ(refAlign("", "").score, 0);
    const AlignResult ins = refAlign("", "ACG");
    EXPECT_EQ(ins.score, 3);
    EXPECT_EQ(ins.cigar.ops, "III");
    const AlignResult del = refAlign("ACG", "");
    EXPECT_EQ(del.score, 3);
    EXPECT_EQ(del.cigar.ops, "DDD");
}

TEST(WfaRef, RandomPairsMatchBruteForce)
{
    Rng rng(2024);
    for (int trial = 0; trial < 60; ++trial) {
        const auto la = 1 + rng.below(60);
        const auto lb = 1 + rng.below(60);
        std::string a, b;
        for (std::size_t i = 0; i < la; ++i)
            a += "ACGT"[rng.below(4)];
        for (std::size_t i = 0; i < lb; ++i)
            b += "ACGT"[rng.below(4)];
        const AlignResult got = refAlign(a, b);
        ASSERT_EQ(got.score, editDistance(a, b)) << a << " / " << b;
        ASSERT_TRUE(validateCigar(a, b, got.cigar));
        ASSERT_EQ(got.cigar.edits(), got.score);
    }
}

TEST(WfaRef, ScoreNeverExceedsInjectedEdits)
{
    genomics::ReadSimConfig config;
    config.readLength = 300;
    config.errorRate = 0.05;
    config.seed = 77;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(20)) {
        const std::int64_t score =
            refAlign(pair.pattern, pair.text, false).score;
        EXPECT_LE(score, pair.trueEdits);
    }
}

TEST(WfaRef, ScoreOnlyAgreesWithAlign)
{
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    genomics::ReadSimConfig config;
    config.readLength = 150;
    config.errorRate = 0.08;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(10)) {
        const auto full = wfaAlign(*engine, pair.pattern, pair.text);
        const auto scoreOnly =
            wfaScore(*engine, pair.pattern, pair.text);
        EXPECT_EQ(full.score, scoreOnly);
    }
}

TEST(WfaRef, CellCountQuadraticInScore)
{
    EXPECT_EQ(wfaCellCount(0), 1u);
    EXPECT_EQ(wfaCellCount(3), 16u);
}

// ====================================================================
// Timed variants: parameterized over Variant and dataset shape.
// ====================================================================

struct TimedCase
{
    Variant variant;
    std::size_t readLength;
    double errorRate;
};

class WfaVariants : public ::testing::TestWithParam<TimedCase>
{
};

TEST_P(WfaVariants, BitIdenticalToReference)
{
    const TimedCase tc = GetParam();
    sim::SimContext ctx(needsQuetzal(tc.variant)
                            ? sim::SystemParams::withQuetzal()
                            : sim::SystemParams::baseline());
    isa::VectorUnit vpu(ctx.pipeline());
    std::optional<accel::QzUnit> qz;
    if (needsQuetzal(tc.variant))
        qz.emplace(vpu, ctx.params().quetzal);

    auto engine = makeWfaEngine(tc.variant, &vpu, qz ? &*qz : nullptr);
    auto ref = makeWfaEngine(Variant::Ref, nullptr, nullptr);

    genomics::ReadSimConfig config;
    config.readLength = tc.readLength;
    config.errorRate = tc.errorRate;
    config.seed = 11 + tc.readLength;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(6)) {
        const AlignResult got =
            wfaAlign(*engine, pair.pattern, pair.text);
        const AlignResult want =
            wfaAlign(*ref, pair.pattern, pair.text);
        ASSERT_EQ(got.score, want.score);
        ASSERT_EQ(got.cigar.ops, want.cigar.ops);
        ASSERT_TRUE(validateCigar(pair.pattern, pair.text, got.cigar));
    }
    EXPECT_GT(ctx.pipeline().totalCycles(), 0u);
    EXPECT_GT(ctx.pipeline().instructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, WfaVariants,
    ::testing::Values(TimedCase{Variant::Base, 120, 0.05},
                      TimedCase{Variant::Vec, 120, 0.05},
                      TimedCase{Variant::Qz, 120, 0.05},
                      TimedCase{Variant::QzC, 120, 0.05},
                      TimedCase{Variant::Base, 400, 0.03},
                      TimedCase{Variant::Vec, 400, 0.03},
                      TimedCase{Variant::Qz, 400, 0.03},
                      TimedCase{Variant::QzC, 400, 0.03}),
    [](const auto &info) {
        std::string name(variantName(info.param.variant));
        for (auto &c : name)
            if (c == '+')
                c = 'C';
        return name + "_len" + std::to_string(info.param.readLength);
    });

TEST(WfaVariantsProtein, EightBitEncodingWorks)
{
    sim::SimContext ctx(sim::SystemParams::withQuetzal());
    isa::VectorUnit vpu(ctx.pipeline());
    accel::QzUnit qz(vpu, ctx.params().quetzal);
    auto engine = makeWfaEngine(Variant::QzC, &vpu, &qz);
    auto ref = makeWfaEngine(Variant::Ref, nullptr, nullptr);

    genomics::ReadSimConfig config;
    config.readLength = 200;
    config.errorRate = 0.1;
    config.alphabet = genomics::AlphabetKind::Protein;
    genomics::ReadSimulator sim(config);
    for (const auto &pair : sim.generatePairs(4)) {
        const AlignResult got =
            wfaAlign(*engine, pair.pattern, pair.text, true,
                     genomics::ElementSize::Bits8);
        const AlignResult want =
            wfaAlign(*ref, pair.pattern, pair.text);
        ASSERT_EQ(got.score, want.score);
        ASSERT_EQ(got.cigar.ops, want.cigar.ops);
    }
}

TEST(WfaHeuristicMode, GenerousLagStaysOptimal)
{
    genomics::ReadSimConfig config;
    config.readLength = 300;
    config.errorRate = 0.06;
    config.seed = 5;
    genomics::ReadSimulator sim(config);
    auto engine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    WfaHeuristic heuristic;
    heuristic.maxLag = 100; // generous: never prunes the true path
    for (const auto &pair : sim.generatePairs(8)) {
        const auto exact = wfaAlign(*engine, pair.pattern, pair.text);
        const auto pruned =
            wfaAlign(*engine, pair.pattern, pair.text, true,
                     genomics::ElementSize::Bits2, heuristic);
        ASSERT_EQ(pruned.score, exact.score);
        ASSERT_TRUE(validateCigar(pair.pattern, pair.text,
                                  pruned.cigar));
    }
}

TEST(WfaHeuristicMode, TightLagPrunesWorkAtBoundedCost)
{
    genomics::ReadSimConfig config;
    config.readLength = 800;
    config.errorRate = 0.08;
    config.seed = 6;
    genomics::ReadSimulator sim(config);
    const auto pair = sim.generatePairs(1).front();

    sim::SimContext exactCtx, prunedCtx;
    isa::VectorUnit exactVpu(exactCtx.pipeline());
    isa::VectorUnit prunedVpu(prunedCtx.pipeline());
    auto exactEngine = makeWfaEngine(Variant::Vec, &exactVpu, nullptr);
    auto prunedEngine = makeWfaEngine(Variant::Vec, &prunedVpu, nullptr);

    const auto exact =
        wfaAlign(*exactEngine, pair.pattern, pair.text);
    WfaHeuristic heuristic;
    heuristic.maxLag = 30;
    const auto pruned =
        wfaAlign(*prunedEngine, pair.pattern, pair.text, true,
                 genomics::ElementSize::Bits2, heuristic);

    // Heuristic results are still valid alignments, never better
    // than optimal, and cost fewer simulated cycles.
    EXPECT_GE(pruned.score, exact.score);
    EXPECT_LE(pruned.score, exact.score + exact.score / 2);
    EXPECT_TRUE(validateCigar(pair.pattern, pair.text, pruned.cigar));
    EXPECT_LT(prunedCtx.pipeline().totalCycles(),
              exactCtx.pipeline().totalCycles());
}

TEST(WfaTiming, QuetzalVariantsReduceMemoryRequests)
{
    genomics::ReadSimConfig config;
    config.readLength = 500;
    config.errorRate = 0.05;
    genomics::ReadSimulator rs(config);
    const auto pairs = rs.generatePairs(3);

    auto measure = [&](Variant v) {
        sim::SimContext ctx(needsQuetzal(v)
                                ? sim::SystemParams::withQuetzal()
                                : sim::SystemParams::baseline());
        isa::VectorUnit vpu(ctx.pipeline());
        std::optional<accel::QzUnit> qz;
        if (needsQuetzal(v))
            qz.emplace(vpu, ctx.params().quetzal);
        auto engine = makeWfaEngine(v, &vpu, qz ? &*qz : nullptr);
        for (const auto &pair : pairs)
            wfaAlign(*engine, pair.pattern, pair.text);
        return std::pair{ctx.pipeline().totalCycles(),
                         ctx.mem().totalRequests()};
    };

    const auto [vecCycles, vecReqs] = measure(Variant::Vec);
    const auto [qzcCycles, qzcReqs] = measure(Variant::QzC);
    // QUETZAL+C must beat VEC in cycles and issue fewer memory
    // requests (Fig. 13a / Fig. 14a shapes).
    EXPECT_LT(qzcCycles, vecCycles);
    EXPECT_LT(qzcReqs, vecReqs);
}

} // namespace
} // namespace quetzal::algos
