/**
 * @file
 * Other-domain kernel tests (Fig. 15b workloads): histogram and CSR
 * SpMV, functional agreement across variants and the QUETZAL timing
 * advantage over scatter/gather.
 */
#include <gtest/gtest.h>

#include <optional>

#include "kernels/histogram.hpp"
#include "kernels/spmv.hpp"
#include "sim/context.hpp"

namespace quetzal::kernels {
namespace {

using algos::Variant;

struct Rig
{
    sim::SimContext ctx;
    isa::VectorUnit vpu;
    std::optional<accel::QzUnit> qz;

    explicit Rig(bool quetzal)
        : ctx(quetzal ? sim::SystemParams::withQuetzal()
                      : sim::SystemParams::baseline()),
          vpu(ctx.pipeline())
    {
        if (quetzal)
            qz.emplace(vpu, ctx.params().quetzal);
    }
};

class HistogramVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(HistogramVariants, MatchesReference)
{
    const Variant v = GetParam();
    const auto input = makeHistogramInput(4000, 256, 1);
    const auto want = histogram(Variant::Ref, input);
    Rig rig(algos::needsQuetzal(v));
    const auto got =
        histogram(v, input, &rig.vpu, rig.qz ? &*rig.qz : nullptr);
    ASSERT_EQ(got, want);
    EXPECT_GT(rig.ctx.pipeline().instructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, HistogramVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::Qz),
                         [](const auto &info) {
                             std::string name(
                                 algos::variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

TEST(Histogram, TotalMassPreserved)
{
    const auto input = makeHistogramInput(10000, 64, 2);
    const auto bins = histogram(Variant::Ref, input);
    std::uint64_t total = 0;
    for (auto b : bins)
        total += b;
    EXPECT_EQ(total, input.data.size());
}

TEST(Histogram, DuplicateHeavyInputStaysCorrect)
{
    HistogramInput input;
    input.bins = 16;
    input.data.assign(500, 7); // every sample hits bin 7
    const auto want = histogram(Variant::Ref, input);
    EXPECT_EQ(want[7], 500u);
    Rig rig(true);
    const auto got = histogram(Variant::Qz, input, &rig.vpu, &*rig.qz);
    EXPECT_EQ(got, want);
    Rig rig2(false);
    const auto got2 =
        histogram(Variant::Vec, input, &rig2.vpu, nullptr);
    EXPECT_EQ(got2, want);
}

TEST(Histogram, RejectsNonPowerOfTwoBins)
{
    EXPECT_THROW(makeHistogramInput(10, 100), FatalError);
}

TEST(Histogram, QuetzalBeatsVec)
{
    const auto input = makeHistogramInput(20000, 1024, 3);
    Rig vecRig(false), qzRig(true);
    histogram(Variant::Vec, input, &vecRig.vpu, nullptr);
    histogram(Variant::Qz, input, &qzRig.vpu, &*qzRig.qz);
    // Fig. 15b: histogram gains ~3x from QBUFFER-resident tables.
    EXPECT_GT(vecRig.ctx.pipeline().totalCycles(),
              qzRig.ctx.pipeline().totalCycles());
}

class SpmvVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(SpmvVariants, MatchesReference)
{
    const Variant v = GetParam();
    const auto a = makeSparseMatrix(200, 1500, 12, 4);
    std::vector<std::int64_t> x(a.cols);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<std::int64_t>(i % 97) - 48;
    const auto want = spmv(Variant::Ref, a, x);
    Rig rig(algos::needsQuetzal(v));
    const auto got =
        spmv(v, a, x, &rig.vpu, rig.qz ? &*rig.qz : nullptr);
    ASSERT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SpmvVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::Qz),
                         [](const auto &info) {
                             std::string name(
                                 algos::variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

TEST(Spmv, EmptyRowsYieldZero)
{
    CsrMatrix a;
    a.rows = 3;
    a.cols = 4;
    a.rowPtr = {0, 0, 0, 0};
    std::vector<std::int64_t> x(4, 5);
    const auto y = spmv(Variant::Ref, a, x);
    EXPECT_EQ(y, (std::vector<std::int64_t>{0, 0, 0}));
}

TEST(Spmv, RejectsMismatchedVector)
{
    const auto a = makeSparseMatrix(4, 8, 2);
    std::vector<std::int64_t> x(7, 1);
    EXPECT_THROW(spmv(Variant::Ref, a, x), FatalError);
}

TEST(Spmv, VectorTooWideForBuffersIsFatal)
{
    const auto a = makeSparseMatrix(2, 3000, 2);
    std::vector<std::int64_t> x(a.cols, 1);
    Rig rig(true);
    EXPECT_THROW(spmv(Variant::Qz, a, x, &rig.vpu, &*rig.qz),
                 FatalError);
}

TEST(Spmv, QuetzalBeatsVec)
{
    const auto a = makeSparseMatrix(400, 2000, 16, 6);
    std::vector<std::int64_t> x(a.cols);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<std::int64_t>((i * 13) % 101) - 50;
    Rig vecRig(false), qzRig(true);
    spmv(Variant::Vec, a, x, &vecRig.vpu, nullptr);
    spmv(Variant::Qz, a, x, &qzRig.vpu, &*qzRig.qz);
    EXPECT_GT(vecRig.ctx.pipeline().totalCycles(),
              qzRig.ctx.pipeline().totalCycles());
}

} // namespace
} // namespace quetzal::kernels
