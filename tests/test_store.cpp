/**
 * @file
 * Tests for the indexed on-disk read store (docs/STORE.md): 2-bit
 * pack/unpack round trips (with the raw escape for 'N' and protein),
 * header/checksum rejection of truncated or corrupted files, slice
 * boundary behavior, mmap-vs-pread equality, and the tentpole safety
 * invariant — store-backed sweeps report byte-identically to in-RAM
 * sweeps, unsharded and through a 3-shard merge.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algos/batch.hpp"
#include "algos/report.hpp"
#include "algos/workload.hpp"
#include "common/logging.hpp"
#include "genomics/datasets.hpp"
#include "genomics/pairsource.hpp"
#include "genomics/store.hpp"

namespace quetzal {
namespace {

using genomics::AlphabetKind;
using genomics::PairBatch;
using genomics::ReadStore;
using genomics::SequencePair;
using genomics::StorePairSource;
using genomics::StoreProvenance;
using genomics::StoreWriter;

/** Temp file path that removes itself. */
class ScopedPath
{
  public:
    explicit ScopedPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~ScopedPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** Hand-built pairs covering every encoding path. */
std::vector<SequencePair>
mixedPairs()
{
    std::vector<SequencePair> pairs;
    pairs.push_back({"ACGTACGTACGT", "ACGTACGAACGT",
                     AlphabetKind::Dna, 1});
    // Length not divisible by 4: the tail byte is partially filled.
    pairs.push_back({"ACGTA", "TGCAT", AlphabetKind::Dna, -1});
    // 'N' forces the raw 8-bit escape for that sequence only.
    pairs.push_back({"ACGTNACGT", "ACGTACGTA", AlphabetKind::Dna, 2});
    pairs.push_back({"ACGUACGU", "ACGUACGG", AlphabetKind::Rna, 1});
    // Protein never packs into 2 bits.
    pairs.push_back({"MKVLITGAGG", "MKVLITGAGA",
                     AlphabetKind::Protein, 1});
    // Empty-ish extremes (single base each side).
    pairs.push_back({"A", "T", AlphabetKind::Dna, 1});
    return pairs;
}

void
writeStore(const std::string &path,
           const std::vector<SequencePair> &pairs,
           StoreProvenance provenance = {})
{
    StoreWriter writer(path, std::move(provenance));
    for (const auto &pair : pairs)
        writer.add(pair);
    writer.finish();
}

/** Flip one byte at @p offset of the file at @p path. */
void
corruptByte(const std::string &path, std::uint64_t offset)
{
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
}

TEST(Store, RoundTripsEveryEncodingPath)
{
    ScopedPath path("store_roundtrip.qzs");
    const auto pairs = mixedPairs();
    StoreProvenance provenance;
    provenance.name = "mixed";
    provenance.scale = 2.5;
    provenance.seed = 1234;
    provenance.readLength = 12;
    provenance.errorRate = 0.04;
    writeStore(path.str(), pairs, provenance);

    const auto store = ReadStore::open(path.str());
    ASSERT_EQ(store->size(), pairs.size());
    EXPECT_EQ(store->provenance().name, "mixed");
    EXPECT_EQ(store->provenance().scale, 2.5);
    EXPECT_EQ(store->provenance().seed, 1234u);
    EXPECT_EQ(store->provenance().readLength, 12u);
    EXPECT_EQ(store->provenance().errorRate, 0.04);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const SequencePair got = store->pair(i);
        EXPECT_EQ(got.pattern, pairs[i].pattern) << "pair " << i;
        EXPECT_EQ(got.text, pairs[i].text) << "pair " << i;
        EXPECT_EQ(got.alphabet, pairs[i].alphabet) << "pair " << i;
        EXPECT_EQ(got.trueEdits, pairs[i].trueEdits) << "pair " << i;
    }
}

TEST(Store, PreadFallbackDecodesIdentically)
{
    ScopedPath path("store_pread.qzs");
    const auto pairs = mixedPairs();
    writeStore(path.str(), pairs);

    genomics::StoreOpenOptions noMmap;
    noMmap.disableMmap = true;
    const auto viaPread = ReadStore::open(path.str(), noMmap);
    const auto viaMmap = ReadStore::open(path.str());
    EXPECT_FALSE(viaPread->mapped());
    ASSERT_EQ(viaPread->size(), viaMmap->size());
    EXPECT_EQ(viaPread->checksum(), viaMmap->checksum());
    for (std::size_t i = 0; i < viaPread->size(); ++i) {
        const SequencePair a = viaPread->pair(i);
        const SequencePair b = viaMmap->pair(i);
        EXPECT_EQ(a.pattern, b.pattern);
        EXPECT_EQ(a.text, b.text);
        EXPECT_EQ(a.trueEdits, b.trueEdits);
    }
}

TEST(Store, RejectsCorruptedPayload)
{
    ScopedPath path("store_corrupt.qzs");
    writeStore(path.str(), mixedPairs());
    // The header is ~100 bytes; byte 120 is payload territory.
    corruptByte(path.str(), 120);
    EXPECT_THROW(ReadStore::open(path.str()), FatalError);
    // Skipping verification defers detection (decode still works on
    // the untouched pairs) — the option exists for huge stores.
    genomics::StoreOpenOptions lax;
    lax.verifyChecksum = false;
    EXPECT_NO_THROW(ReadStore::open(path.str(), lax));
}

TEST(Store, RejectsTruncation)
{
    ScopedPath path("store_truncated.qzs");
    writeStore(path.str(), mixedPairs());
    std::ifstream in(path.str(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path.str(),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamoff>(bytes.size() - 16));
    out.close();
    EXPECT_THROW(ReadStore::open(path.str()), FatalError);
}

TEST(Store, RejectsBadMagicAndUnfinishedWriter)
{
    ScopedPath path("store_magic.qzs");
    writeStore(path.str(), mixedPairs());
    corruptByte(path.str(), 0); // magic
    EXPECT_THROW(ReadStore::open(path.str()), FatalError);

    // A writer that never finish()ed leaves the zeroed placeholder
    // header, which must be rejected like any other torn write.
    ScopedPath torn("store_torn.qzs");
    {
        StoreWriter writer(torn.str(), StoreProvenance{});
        writer.add({"ACGT", "ACGT", AlphabetKind::Dna, 0});
        // no finish()
    }
    EXPECT_THROW(ReadStore::open(torn.str()), FatalError);
}

TEST(Store, SliceBoundariesClampAndCompose)
{
    ScopedPath path("store_slice.qzs");
    const auto pairs = mixedPairs();
    writeStore(path.str(), pairs);
    const auto store = ReadStore::open(path.str());

    StorePairSource whole(store);
    ASSERT_EQ(whole.size(), pairs.size());

    // Past-the-end bounds clamp instead of throwing.
    const auto clamped = whole.slice(2, 1000);
    EXPECT_EQ(clamped->size(), pairs.size() - 2);

    // Empty slices yield no batches.
    const auto empty = whole.slice(3, 3);
    EXPECT_EQ(empty->size(), 0u);
    PairBatch batch;
    EXPECT_EQ(empty->next(batch), 0u);

    // slice() composes relative to the window: (2..end) then (1..2)
    // is global pair 3.
    const auto inner = clamped->slice(1, 2);
    ASSERT_EQ(inner->size(), 1u);
    ASSERT_GT(inner->next(batch), 0u);
    EXPECT_EQ(batch.views()[0].pattern, pairs[3].pattern);

    // Batch capacity never changes what is yielded, only the chunking.
    PairBatch tiny(1);
    auto cursor = whole.fork();
    std::vector<std::string> got;
    while (cursor->next(tiny) > 0)
        for (const auto &view : tiny.views())
            got.push_back(std::string(view.pattern));
    ASSERT_EQ(got.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i)
        EXPECT_EQ(got[i], pairs[i].pattern);
}

TEST(Store, ParseStoreTargetForms)
{
    const auto plain = genomics::parseStoreTarget("reads.qzs");
    EXPECT_EQ(plain.path, "reads.qzs");
    EXPECT_EQ(plain.from, 0u);
    EXPECT_EQ(plain.to, genomics::kStoreEnd);

    const auto range = genomics::parseStoreTarget("reads.qzs:10-20");
    EXPECT_EQ(range.path, "reads.qzs");
    EXPECT_EQ(range.from, 10u);
    EXPECT_EQ(range.to, 20u);

    const auto open = genomics::parseStoreTarget("reads.qzs:10-");
    EXPECT_EQ(open.from, 10u);
    EXPECT_EQ(open.to, genomics::kStoreEnd);

    const auto head = genomics::parseStoreTarget("reads.qzs:-20");
    EXPECT_EQ(head.from, 0u);
    EXPECT_EQ(head.to, 20u);

    // A ':' that is not followed by a digits-dash suffix is path text.
    const auto colon = genomics::parseStoreTarget("dir:name/reads.qzs");
    EXPECT_EQ(colon.path, "dir:name/reads.qzs");

    EXPECT_THROW(genomics::parseStoreTarget("reads.qzs:20-10"),
                 FatalError);
}

TEST(Store, GeneratorMatchesMakeDataset)
{
    const genomics::PairDataset dataset =
        genomics::makeDataset("100bp_1", 0.1);
    const genomics::PairDataset streamed =
        genomics::GeneratorPairSource("100bp_1", 0.1).materialize();
    ASSERT_EQ(streamed.pairs.size(), dataset.pairs.size());
    for (std::size_t i = 0; i < dataset.pairs.size(); ++i) {
        EXPECT_EQ(streamed.pairs[i].pattern, dataset.pairs[i].pattern);
        EXPECT_EQ(streamed.pairs[i].text, dataset.pairs[i].text);
        EXPECT_EQ(streamed.pairs[i].trueEdits,
                  dataset.pairs[i].trueEdits);
    }
    EXPECT_EQ(streamed.name, dataset.name);
    EXPECT_EQ(streamed.readLength, dataset.readLength);
    EXPECT_EQ(streamed.errorRate, dataset.errorRate);
}

/** Write the 100bp_1@0.1 catalog dataset to @p path as a store. */
std::shared_ptr<const ReadStore>
catalogStore(const std::string &path)
{
    genomics::GeneratorPairSource source("100bp_1", 0.1);
    StoreProvenance provenance;
    provenance.name = source.info().name;
    provenance.scale = source.scale();
    provenance.seed = source.seed();
    provenance.readLength = source.info().readLength;
    provenance.errorRate = source.info().errorRate;
    StoreWriter writer(path, provenance);
    PairBatch batch;
    while (source.next(batch) > 0)
        for (const auto &view : batch.views())
            writer.add({std::string(view.pattern),
                        std::string(view.text), view.alphabet,
                        view.trueEdits});
    writer.finish();
    return ReadStore::open(path);
}

/** The two cells every report test sweeps. */
void
addCells(algos::BatchRunner &runner,
         const std::shared_ptr<const genomics::PairSource> &source)
{
    algos::RunOptions wfa;
    wfa.variant = algos::Variant::Vec;
    runner.add(algos::workloadByName("WFA"), source, wfa);
    algos::RunOptions ss;
    ss.variant = algos::Variant::Base;
    runner.add(algos::workloadByName("SS"), source, ss);
}

TEST(Store, ReportByteIdenticalToInRamRun)
{
    ScopedPath path("store_report.qzs");
    const auto store = catalogStore(path.str());

    const auto dataset = std::make_shared<const genomics::PairDataset>(
        genomics::makeDataset("100bp_1", 0.1));

    algos::BatchRunner ram(1);
    ram.setShard(std::nullopt);
    ram.setFaultInjection(std::nullopt);
    addCells(ram,
             std::make_shared<genomics::DatasetPairSource>(dataset));
    const std::string ramJson = algos::toJson(algos::makeBenchReport(
        "store-vs-ram", 0.1, 1, ram.run()));

    algos::BatchRunner disk(1);
    disk.setShard(std::nullopt);
    disk.setFaultInjection(std::nullopt);
    addCells(disk, std::make_shared<StorePairSource>(store));
    const std::string diskJson = algos::toJson(algos::makeBenchReport(
        "store-vs-ram", 0.1, 1, disk.run()));

    EXPECT_EQ(diskJson, ramJson);
}

TEST(Store, ShardedStoreRangesMergeByteIdentically)
{
    ScopedPath path("store_shards.qzs");
    const auto store = catalogStore(path.str());
    const std::size_t total = store->size();
    ASSERT_GE(total, 6u);

    // Unsharded reference over the whole store. Six cells: three
    // contiguous ranges x two workloads, submitted range-major so the
    // shard engine's round-robin lands each range pair on one shard.
    auto addRangeCells = [&](algos::BatchRunner &runner) {
        const std::size_t third = total / 3;
        for (const auto &[from, to] :
             std::vector<std::pair<std::size_t, std::size_t>>{
                 {0, third}, {third, 2 * third}, {2 * third, total}}) {
            algos::RunOptions options;
            options.variant = algos::Variant::Vec;
            runner.add(
                algos::workloadByName("WFA"),
                std::make_shared<StorePairSource>(store, from, to),
                options);
        }
    };

    algos::BatchRunner whole(1);
    whole.setShard(std::nullopt);
    whole.setFaultInjection(std::nullopt);
    addRangeCells(whole);
    const std::string wholeJson = algos::toJson(algos::makeBenchReport(
        "store-shards", 0.1, 1, whole.run()));

    std::vector<algos::BenchReport> shardReports;
    for (unsigned k = 1; k <= 3; ++k) {
        algos::BatchRunner shard(1);
        shard.setShard(algos::ShardSpec{k, 3});
        shard.setFaultInjection(std::nullopt);
        addRangeCells(shard);
        shardReports.push_back(algos::makeBenchReport(
            "store-shards", 0.1, 1, shard.run()));
    }
    const std::string mergedJson = algos::toJson(
        algos::mergeShardReports(std::move(shardReports)));

    EXPECT_EQ(mergedJson, wholeJson);
}

TEST(Store, CellIdentityMatchesAcrossIntakeModes)
{
    ScopedPath path("store_hash.qzs");
    const auto store = catalogStore(path.str());
    const genomics::PairDataset dataset =
        genomics::makeDataset("100bp_1", 0.1);

    algos::RunOptions options;
    options.variant = algos::Variant::QzC;
    options.system = sim::SystemParams::withQuetzal(8);

    const StorePairSource viaStore(store);
    const genomics::DatasetPairSource viaRam(dataset);
    EXPECT_EQ(algos::cellKey("WFA", viaStore, options),
              algos::cellKey("WFA", dataset, options));
    EXPECT_EQ(algos::cellHash("WFA", viaStore, options),
              algos::cellHash("WFA", dataset, options));
    EXPECT_EQ(algos::cellHash("WFA", viaRam, options),
              algos::cellHash("WFA", dataset, options));
}

} // namespace
} // namespace quetzal
