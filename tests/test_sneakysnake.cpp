/**
 * @file
 * SneakySnake tests: the lower-bound filter property (no false
 * rejections of pairs within the threshold), segmentation behaviour on
 * long reads, and bit-identical results across timed variants.
 */
#include <gtest/gtest.h>

#include <optional>

#include "algos/sneakysnake.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "common/rng.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {
namespace {

SsResult
refSs(std::string_view p, std::string_view t, std::int64_t threshold,
      std::size_t segment = 1000)
{
    auto engine = makeSsEngine(Variant::Ref, nullptr, nullptr);
    SsConfig config;
    config.editThreshold = threshold;
    config.segmentLength = segment;
    return sneakySnake(*engine, p, t, config);
}

TEST(SsRef, AcceptsIdenticalPair)
{
    const SsResult r = refSs("ACGTACGT", "ACGTACGT", 2);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.editBound, 0);
}

TEST(SsRef, RejectsGrosslyDifferentPair)
{
    const SsResult r = refSs(std::string(64, 'A'), std::string(64, 'T'),
                             4);
    EXPECT_FALSE(r.accepted);
    EXPECT_GT(r.editBound, 4);
}

TEST(SsRef, PaperExamplePair)
{
    // <ACAG, AAGT> has edit distance 3 (Fig. 1); with E=3 SS must
    // accept (its bound is a lower bound on the distance).
    const SsResult r = refSs("ACAG", "AAGT", 3);
    EXPECT_TRUE(r.accepted);
    EXPECT_LE(r.editBound, 3);
}

TEST(SsRef, BoundNeverExceedsEditDistance)
{
    // SS's estimate is a lower bound on the true edit distance
    // whenever the distance is within the diagonal window.
    Rng rng(99);
    auto ref = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    for (int trial = 0; trial < 50; ++trial) {
        std::string t;
        const auto len = 40 + rng.below(60);
        for (std::size_t i = 0; i < len; ++i)
            t += "ACGT"[rng.below(4)];
        // Mutate lightly so the distance stays small.
        std::string p = t;
        for (int e = 0; e < 3; ++e)
            p[rng.below(p.size())] = "ACGT"[rng.below(4)];
        const std::int64_t dist = wfaScore(*ref, p, t);
        const std::int64_t threshold = std::max<std::int64_t>(dist, 1);
        const SsResult r = refSs(p, t, threshold);
        ASSERT_LE(r.editBound, dist) << p << " / " << t;
        ASSERT_TRUE(r.accepted);
    }
}

TEST(SsRef, NoFalseRejectionsOnSimulatedReads)
{
    genomics::ReadSimConfig config;
    config.readLength = 250;
    config.errorRate = 0.03;
    config.seed = 10;
    genomics::ReadSimulator sim(config);
    const std::int64_t threshold = defaultSsThreshold(250, 0.03);
    for (const auto &pair : sim.generatePairs(50)) {
        if (pair.trueEdits <= threshold) {
            const SsResult r = refSs(pair.pattern, pair.text, threshold);
            EXPECT_TRUE(r.accepted)
                << "true edits " << pair.trueEdits << " <= E "
                << threshold;
        }
    }
}

TEST(SsRef, SegmentedLongReadsStillAccept)
{
    genomics::ReadSimConfig config;
    config.readLength = 6000;
    config.errorRate = 0.03;
    config.seed = 4;
    genomics::ReadSimulator sim(config);
    const std::int64_t threshold = defaultSsThreshold(6000, 0.03);
    for (const auto &pair : sim.generatePairs(4)) {
        const SsResult r =
            refSs(pair.pattern, pair.text, threshold, 1000);
        EXPECT_TRUE(r.accepted);
    }
}

TEST(SsRef, DecoyPairsAreRejected)
{
    genomics::ReadSimConfig config;
    config.readLength = 250;
    config.errorRate = 0.03;
    config.seed = 3;
    genomics::ReadSimulator sim(config);
    const auto pairs = sim.generatePairs(10);
    const std::int64_t threshold = defaultSsThreshold(250, 0.03);
    int rejected = 0;
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        // Unrelated pattern/text: random 250-mers differ hugely.
        const SsResult r =
            refSs(pairs[i].pattern, pairs[i + 1].text, threshold);
        rejected += r.accepted ? 0 : 1;
    }
    EXPECT_GE(rejected, 4);
}

TEST(SsRef, ThresholdDerivation)
{
    EXPECT_EQ(defaultSsThreshold(100, 0.03), 5);
    EXPECT_EQ(defaultSsThreshold(10000, 0.05), 750);
    EXPECT_EQ(defaultSsThreshold(10, 0.0), 2);
}

TEST(SsRef, MissingThresholdIsFatal)
{
    auto engine = makeSsEngine(Variant::Ref, nullptr, nullptr);
    SsConfig config; // editThreshold = 0
    EXPECT_THROW(sneakySnake(*engine, "ACGT", "ACGT", config),
                 FatalError);
}

// ====================================================================
// Timed variants agree bitwise with the reference.
// ====================================================================

class SsVariants : public ::testing::TestWithParam<Variant>
{
};

TEST_P(SsVariants, BitIdenticalToReference)
{
    const Variant variant = GetParam();
    sim::SimContext ctx(needsQuetzal(variant)
                            ? sim::SystemParams::withQuetzal()
                            : sim::SystemParams::baseline());
    isa::VectorUnit vpu(ctx.pipeline());
    std::optional<accel::QzUnit> qz;
    if (needsQuetzal(variant))
        qz.emplace(vpu, ctx.params().quetzal);
    auto engine = makeSsEngine(variant, &vpu, qz ? &*qz : nullptr);
    auto ref = makeSsEngine(Variant::Ref, nullptr, nullptr);

    genomics::ReadSimConfig config;
    config.readLength = 300;
    config.errorRate = 0.04;
    config.seed = 42;
    genomics::ReadSimulator sim(config);
    SsConfig ssConfig;
    ssConfig.editThreshold = defaultSsThreshold(300, 0.04);
    for (const auto &pair : sim.generatePairs(8)) {
        const SsResult got =
            sneakySnake(*engine, pair.pattern, pair.text, ssConfig);
        const SsResult want =
            sneakySnake(*ref, pair.pattern, pair.text, ssConfig);
        ASSERT_EQ(got.accepted, want.accepted);
        ASSERT_EQ(got.editBound, want.editBound);
    }
    EXPECT_GT(ctx.pipeline().instructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SsVariants,
                         ::testing::Values(Variant::Base, Variant::Vec,
                                           Variant::Qz, Variant::QzC),
                         [](const auto &info) {
                             std::string name(variantName(info.param));
                             for (auto &c : name)
                                 if (c == '+')
                                     c = 'C';
                             return name;
                         });

TEST(SsTiming, CountHardwareBeatsVec)
{
    genomics::ReadSimConfig config;
    config.readLength = 1000;
    config.errorRate = 0.04;
    genomics::ReadSimulator rs(config);
    const auto pairs = rs.generatePairs(3);
    SsConfig ssConfig;
    ssConfig.editThreshold = defaultSsThreshold(1000, 0.04);

    auto measure = [&](Variant v) {
        sim::SimContext ctx(needsQuetzal(v)
                                ? sim::SystemParams::withQuetzal()
                                : sim::SystemParams::baseline());
        isa::VectorUnit vpu(ctx.pipeline());
        std::optional<accel::QzUnit> qz;
        if (needsQuetzal(v))
            qz.emplace(vpu, ctx.params().quetzal);
        auto engine = makeSsEngine(v, &vpu, qz ? &*qz : nullptr);
        for (const auto &pair : pairs)
            sneakySnake(*engine, pair.pattern, pair.text, ssConfig);
        return ctx.pipeline().totalCycles();
    };

    EXPECT_LT(measure(Variant::QzC), measure(Variant::Vec));
}

} // namespace
} // namespace quetzal::algos
