/**
 * @file
 * Tests for the fault-tolerance layer (docs/ROBUSTNESS.md): the
 * QZ_FAULT_INJECT spec, per-cell isolation, transient retry, resource
 * budgets with graceful degradation, checkpoint/resume, and the
 * RunResult JSON round trip the checkpoint format depends on.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "algos/batch.hpp"
#include "algos/faults.hpp"
#include "algos/report.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "common/json.hpp"
#include "genomics/datasets.hpp"
#include "genomics/readsim.hpp"

namespace quetzal {
namespace {

std::shared_ptr<const genomics::PairDataset>
tinyDataset(std::size_t length, double errorRate, std::size_t count,
            std::uint64_t seed)
{
    genomics::ReadSimConfig config;
    config.readLength = length;
    config.errorRate = errorRate;
    config.seed = seed;
    genomics::ReadSimulator sim(config);
    auto ds = std::make_shared<genomics::PairDataset>();
    ds->name = "tiny";
    ds->readLength = length;
    ds->errorRate = errorRate;
    ds->pairs = sim.generatePairs(count);
    return ds;
}

/** Four healthy Wfa/SneakySnake cells on a shared tiny dataset. */
std::vector<algos::BatchCell>
healthyCells()
{
    const auto ds = tinyDataset(100, 0.05, 2, 11);
    std::vector<algos::BatchCell> cells;
    for (algos::AlgoKind kind :
         {algos::AlgoKind::Wfa, algos::AlgoKind::SneakySnake}) {
        for (algos::Variant v :
             {algos::Variant::Base, algos::Variant::Vec}) {
            algos::RunOptions options;
            options.variant = v;
            cells.push_back({kind, ds, options});
        }
    }
    return cells;
}

void
expectSameResult(const algos::RunResult &a, const algos::RunResult &b,
                 std::size_t cell)
{
    EXPECT_EQ(a.algo, b.algo) << "cell " << cell;
    EXPECT_EQ(a.variant, b.variant) << "cell " << cell;
    EXPECT_EQ(a.dataset, b.dataset) << "cell " << cell;
    EXPECT_EQ(a.cycles, b.cycles) << "cell " << cell;
    EXPECT_EQ(a.instructions, b.instructions) << "cell " << cell;
    EXPECT_EQ(a.memRequests, b.memRequests) << "cell " << cell;
    EXPECT_EQ(a.dramBytes, b.dramBytes) << "cell " << cell;
    EXPECT_EQ(a.pairs, b.pairs) << "cell " << cell;
    EXPECT_EQ(a.accepted, b.accepted) << "cell " << cell;
    EXPECT_EQ(a.totalScore, b.totalScore) << "cell " << cell;
    EXPECT_EQ(a.dpCells, b.dpCells) << "cell " << cell;
    EXPECT_EQ(a.outputsMatch, b.outputsMatch) << "cell " << cell;
    EXPECT_EQ(a.degradedPairs, b.degradedPairs) << "cell " << cell;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(sim::StallKind::NumKinds); ++k)
        EXPECT_EQ(a.stalls[k], b.stalls[k])
            << "cell " << cell << " stall " << k;
}

/** Temp file path that removes itself. */
class ScopedPath
{
  public:
    explicit ScopedPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~ScopedPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(FaultSpec, ParsesFullAndDefaultedForms)
{
    const auto full = algos::parseFaultSpec("3:transient:2");
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->cell, 3u);
    EXPECT_EQ(full->kind, algos::FailureKind::Transient);
    EXPECT_EQ(full->times, 2u);

    const auto defaulted = algos::parseFaultSpec("0:fatal");
    ASSERT_TRUE(defaulted.has_value());
    EXPECT_EQ(defaulted->cell, 0u);
    EXPECT_EQ(defaulted->kind, algos::FailureKind::Fatal);
    EXPECT_EQ(defaulted->times, 1u);

    EXPECT_FALSE(algos::parseFaultSpec("").has_value());
}

TEST(FaultSpec, ParsesProcessLevelCrashAndHangKinds)
{
    // crash/hang select a worker-process-level action; the taxonomy
    // kind they map to is what a qz-serve terminal response reports
    // (Panic for a death, Resource for a blown deadline).
    const auto crash = algos::parseFaultSpec("4:crash");
    ASSERT_TRUE(crash.has_value());
    EXPECT_EQ(crash->cell, 4u);
    EXPECT_EQ(crash->action, algos::FaultAction::Crash);
    EXPECT_EQ(crash->kind, algos::FailureKind::Panic);
    EXPECT_EQ(crash->times, 1u);

    const auto hang = algos::parseFaultSpec("1:hang:2");
    ASSERT_TRUE(hang.has_value());
    EXPECT_EQ(hang->action, algos::FaultAction::Hang);
    EXPECT_EQ(hang->kind, algos::FailureKind::Resource);
    EXPECT_EQ(hang->times, 2u);

    // Exception-taxonomy kinds keep the in-process Throw action.
    const auto thrown = algos::parseFaultSpec("2:transient");
    ASSERT_TRUE(thrown.has_value());
    EXPECT_EQ(thrown->action, algos::FaultAction::Throw);

    EXPECT_EQ(algos::faultActionName(algos::FaultAction::Throw),
              "throw");
    EXPECT_EQ(algos::faultActionName(algos::FaultAction::Crash),
              "crash");
    EXPECT_EQ(algos::faultActionName(algos::FaultAction::Hang),
              "hang");
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(algos::parseFaultSpec("nonsense"), FatalError);
    EXPECT_THROW(algos::parseFaultSpec("1:bogus"), FatalError);
    EXPECT_THROW(algos::parseFaultSpec("x:fatal"), FatalError);
    EXPECT_THROW(algos::parseFaultSpec("1:fatal:y"), FatalError);
    EXPECT_THROW(algos::parseFaultSpec("1:fatal:0"), FatalError);
}

TEST(FaultSpec, KindNamesRoundTrip)
{
    for (algos::FailureKind kind :
         {algos::FailureKind::Fatal, algos::FailureKind::Panic,
          algos::FailureKind::Transient, algos::FailureKind::Resource,
          algos::FailureKind::Unknown}) {
        const auto name = algos::failureKindName(kind);
        const auto back = algos::failureKindFromName(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, kind) << name;
    }
    EXPECT_FALSE(algos::failureKindFromName("nope").has_value());
}

TEST(FaultSpec, RetryBackoffIsDeterministicAndBounded)
{
    algos::RetryPolicy policy;
    policy.backoffBaseMs = 2;
    EXPECT_EQ(policy.backoffMs(1), 2u);
    EXPECT_EQ(policy.backoffMs(2), 4u);
    EXPECT_EQ(policy.backoffMs(3), 8u);
    // The shift saturates instead of overflowing.
    EXPECT_EQ(policy.backoffMs(100), 2u << 16);
    policy.backoffBaseMs = 0;
    EXPECT_EQ(policy.backoffMs(5), 0u);
}

TEST(FaultInjection, InjectedFatalIsIsolatedAndOthersUnaffected)
{
    const auto cells = healthyCells();
    const auto clean = algos::runBatch(cells, 2);
    ASSERT_TRUE(clean.ok());

    algos::BatchRunner batch(2);
    for (const auto &cell : cells)
        batch.add(cell);
    batch.setFaultInjection(
        algos::FaultInjection{1, algos::FailureKind::Fatal, 1});
    const auto injected = batch.run();

    ASSERT_EQ(injected.failures.size(), 1u);
    EXPECT_EQ(injected.failures[0].cell, 1u);
    EXPECT_EQ(injected.failures[0].kind, algos::FailureKind::Fatal);
    EXPECT_EQ(injected.failures[0].attempts, 1u);
    EXPECT_FALSE(injected.failures[0].key.empty());
    EXPECT_NE(injected.failures[0].message.find("injected"),
              std::string::npos);

    // Every other cell is field-by-field identical to the clean run.
    ASSERT_EQ(injected.results.size(), clean.results.size());
    for (std::size_t i = 0; i < clean.results.size(); ++i) {
        if (i == 1)
            continue;
        expectSameResult(clean.results[i], injected.results[i], i);
    }
}

TEST(FaultInjection, BatchEngineIgnoresProcessLevelActions)
{
    // crash/hang only fire inside qz-serve worker processes; an
    // armed QZ_FAULT_INJECT with those kinds must leave an
    // in-process batch sweep completely untouched.
    const auto cells = healthyCells();
    const auto clean = algos::runBatch(cells, 2);
    ASSERT_TRUE(clean.ok());

    algos::BatchRunner batch(2);
    for (const auto &cell : cells)
        batch.add(cell);
    algos::FaultInjection inject{1, algos::FailureKind::Panic, 1};
    inject.action = algos::FaultAction::Crash;
    batch.setFaultInjection(inject);
    const auto outcome = batch.run();
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.results.size(), clean.results.size());
    for (std::size_t i = 0; i < clean.results.size(); ++i)
        expectSameResult(outcome.results[i], clean.results[i], i);
}

TEST(FaultInjection, TransientInjectionHealsViaRetry)
{
    const auto cells = healthyCells();
    const auto clean = algos::runBatch(cells, 2);

    algos::BatchRunner batch(2);
    for (const auto &cell : cells)
        batch.add(cell);
    batch.setFaultInjection(
        algos::FaultInjection{2, algos::FailureKind::Transient, 2});
    // Default policy allows 3 attempts; two injected failures heal.
    const auto outcome = batch.run();

    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.retries, 2u);
    ASSERT_EQ(outcome.results.size(), clean.results.size());
    for (std::size_t i = 0; i < clean.results.size(); ++i)
        expectSameResult(clean.results[i], outcome.results[i], i);
}

TEST(FaultInjection, TransientInjectionExhaustsBoundedRetries)
{
    const auto cells = healthyCells();
    algos::BatchRunner batch(2);
    for (const auto &cell : cells)
        batch.add(cell);
    batch.policy().retry.maxAttempts = 2;
    batch.setFaultInjection(
        algos::FaultInjection{0, algos::FailureKind::Transient, 5});
    const auto outcome = batch.run();

    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].cell, 0u);
    EXPECT_EQ(outcome.failures[0].kind, algos::FailureKind::Transient);
    EXPECT_EQ(outcome.failures[0].attempts, 2u);
    EXPECT_EQ(outcome.retries, 1u);
}

TEST(FaultInjection, PanicAndUnknownAreTerminal)
{
    for (algos::FailureKind kind :
         {algos::FailureKind::Panic, algos::FailureKind::Unknown,
          algos::FailureKind::Resource}) {
        const auto cells = healthyCells();
        algos::BatchRunner batch(2);
        for (const auto &cell : cells)
            batch.add(cell);
        batch.setFaultInjection(algos::FaultInjection{0, kind, 1});
        const auto outcome = batch.run();
        ASSERT_EQ(outcome.failures.size(), 1u)
            << algos::failureKindName(kind);
        EXPECT_EQ(outcome.failures[0].kind, kind);
        EXPECT_EQ(outcome.failures[0].attempts, 1u)
            << "terminal kinds must not retry";
    }
}

TEST(ResourceBudget, UnlimitedByDefault)
{
    algos::ResourceBudget budget;
    EXPECT_FALSE(budget.enabled());
    const auto ds = tinyDataset(150, 0.05, 2, 3);
    algos::RunOptions options;
    const auto plain =
        algos::runAlgorithm(algos::AlgoKind::Wfa, *ds, options);
    EXPECT_EQ(plain.degradedPairs, 0u);
    EXPECT_TRUE(plain.outputsMatch);
}

TEST(ResourceBudget, StepCeilingDegradesToPrunedFallback)
{
    const auto ds = tinyDataset(200, 0.10, 3, 9);
    algos::RunOptions options;
    options.budget.maxSteps = 4; // far below the edit distance
    options.budget.fallbackLag = 8;
    const auto result =
        algos::runAlgorithm(algos::AlgoKind::Wfa, *ds, options);
    // Every pair needs more than 4 wavefront steps, so every pair
    // degrades — and the run still completes with sane output.
    EXPECT_EQ(result.degradedPairs, result.pairs);
    EXPECT_GT(result.pairs, 0u);
    EXPECT_TRUE(result.outputsMatch)
        << "degraded pairs must not fail verification";
    EXPECT_GT(result.totalScore, 0);
}

TEST(ResourceBudget, WaveMemoryCeilingDegrades)
{
    // ~100 edits: the full table retains ~(s+1)^2*4 ≈ 40 KB, well
    // over the ceiling; the pruned retry keeps ~s*(2*lag+1)*4 ≈ 8 KB,
    // comfortably under it.
    const auto ds = tinyDataset(1000, 0.10, 2, 5);
    algos::RunOptions options;
    options.budget.maxWaveBytes = 16 * 1024;
    options.budget.fallbackLag = 8;
    const auto result =
        algos::runAlgorithm(algos::AlgoKind::Wfa, *ds, options);
    EXPECT_GT(result.degradedPairs, 0u);
    EXPECT_TRUE(result.outputsMatch);
}

TEST(ResourceBudget, ExhaustedEvenAfterFallbackIsResourceError)
{
    const auto ds = tinyDataset(200, 0.10, 1, 5);
    algos::BatchRunner batch(1);
    algos::RunOptions options;
    // ~20+ edits: even the pruned retry retains s*(2*lag+1)*4 > 256
    // bytes, so the memory ceiling breaches twice — the cell fails
    // terminally, classified Resource, and stays isolated.
    options.budget.maxWaveBytes = 256;
    options.budget.fallbackLag = 8;
    batch.add(algos::AlgoKind::Wfa, ds, options);
    const auto outcome = batch.run();
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].kind, algos::FailureKind::Resource);
    EXPECT_EQ(outcome.failures[0].attempts, 1u);
}

TEST(ResourceBudget, BiWfaStepCeilingDegrades)
{
    // Longer than the BiWFA leaf size so the bidirectional score pass
    // itself (not a WFA leaf) trips the watchdog and degrades.
    const auto ds = tinyDataset(2000, 0.05, 1, 7);
    algos::RunOptions options;
    options.budget.maxSteps = 4;
    options.budget.fallbackLag = 8;
    const auto result =
        algos::runAlgorithm(algos::AlgoKind::BiWfa, *ds, options);
    EXPECT_GT(result.degradedPairs, 0u);
    EXPECT_TRUE(result.outputsMatch);
}

TEST(Checkpoint, ResumeSkipsCompletedCellsAndMatchesCleanRun)
{
    ScopedPath ckpt("qz_test_ckpt.jsonl");
    const auto cells = healthyCells();
    const auto clean = algos::runBatch(cells, 2);

    // First run: only the first half of the matrix, checkpointed.
    {
        algos::BatchRunner batch(2);
        batch.setCheckpoint(ckpt.str());
        for (std::size_t i = 0; i < cells.size() / 2; ++i)
            batch.add(cells[i]);
        const auto first = batch.run();
        EXPECT_TRUE(first.ok());
        EXPECT_EQ(first.resumedCells, 0u);
    }

    // Second run: the full matrix against the same checkpoint. The
    // completed half must be resumed, not re-simulated — an injection
    // aimed at a resumed cell proves it never executes.
    algos::BatchRunner batch(2);
    batch.setCheckpoint(ckpt.str());
    for (const auto &cell : cells)
        batch.add(cell);
    batch.setFaultInjection(
        algos::FaultInjection{0, algos::FailureKind::Fatal, 1});
    const auto resumed = batch.run();

    EXPECT_TRUE(resumed.ok())
        << "the injection must not fire on a resumed cell";
    EXPECT_EQ(resumed.resumedCells, cells.size() / 2);
    ASSERT_EQ(resumed.results.size(), clean.results.size());
    for (std::size_t i = 0; i < clean.results.size(); ++i)
        expectSameResult(clean.results[i], resumed.results[i], i);

    // Third run: everything resumes.
    algos::BatchRunner full(2);
    full.setCheckpoint(ckpt.str());
    for (const auto &cell : cells)
        full.add(cell);
    const auto third = full.run();
    EXPECT_EQ(third.resumedCells, cells.size());
    for (std::size_t i = 0; i < clean.results.size(); ++i)
        expectSameResult(clean.results[i], third.results[i], i);
}

TEST(Checkpoint, FailedCellsAreNotCheckpointed)
{
    ScopedPath ckpt("qz_test_ckpt_fail.jsonl");
    const auto cells = healthyCells();
    {
        algos::BatchRunner batch(2);
        batch.setCheckpoint(ckpt.str());
        for (const auto &cell : cells)
            batch.add(cell);
        batch.setFaultInjection(
            algos::FaultInjection{1, algos::FailureKind::Fatal, 1});
        const auto outcome = batch.run();
        ASSERT_EQ(outcome.failures.size(), 1u);
    }
    // Rerun without injection: only the failed cell re-simulates and
    // the sweep completes clean.
    algos::BatchRunner batch(2);
    batch.setCheckpoint(ckpt.str());
    for (const auto &cell : cells)
        batch.add(cell);
    batch.setFaultInjection(std::nullopt);
    const auto outcome = batch.run();
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.resumedCells, cells.size() - 1);
}

TEST(Checkpoint, CorruptTrailingLineIsSkipped)
{
    ScopedPath ckpt("qz_test_ckpt_corrupt.jsonl");
    const auto cells = healthyCells();
    {
        algos::BatchRunner batch(2);
        batch.setCheckpoint(ckpt.str());
        for (const auto &cell : cells)
            batch.add(cell);
        ASSERT_TRUE(batch.run().ok());
    }
    // Simulate a kill mid-write: a truncated JSON line at the end.
    {
        std::ofstream out(ckpt.str(), std::ios::app);
        out << "{\"v\":1,\"hash\":\"deadbeef\",\"resu";
    }
    algos::BatchRunner batch(2);
    batch.setCheckpoint(ckpt.str());
    for (const auto &cell : cells)
        batch.add(cell);
    const auto outcome = batch.run();
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.resumedCells, cells.size());
}

TEST(Checkpoint, TornTrailingTailIsTruncatedNotPoisoned)
{
    ScopedPath ckpt("qz_test_ckpt_torn.jsonl");

    // Missing and clean files are left alone.
    EXPECT_EQ(algos::truncateTornCheckpointTail(ckpt.str()), 0u);
    const std::string complete = "{\"pair\":0,\"ok\":true}\n";
    {
        std::ofstream out(ckpt.str());
        out << complete;
    }
    EXPECT_EQ(algos::truncateTornCheckpointTail(ckpt.str()), 0u);

    // A writer killed mid-line leaves a torn tail; the repair drops
    // exactly those bytes, so a later append cannot concatenate onto
    // them and poison two records at once.
    const std::string torn = "{\"pair\":1,\"o";
    {
        std::ofstream out(ckpt.str(), std::ios::app);
        out << torn;
    }
    EXPECT_EQ(algos::truncateTornCheckpointTail(ckpt.str()),
              torn.size());
    {
        std::ifstream in(ckpt.str());
        std::stringstream buf;
        buf << in.rdbuf();
        EXPECT_EQ(buf.str(), complete);
    }

    // A file that is nothing but a torn line empties out entirely.
    {
        std::ofstream out(ckpt.str());
        out << torn;
    }
    EXPECT_EQ(algos::truncateTornCheckpointTail(ckpt.str()),
              torn.size());
    std::ifstream in(ckpt.str());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "");
}

TEST(Checkpoint, HashCoversDatasetContent)
{
    const auto a = tinyDataset(100, 0.05, 2, 11);
    auto bOwned = tinyDataset(100, 0.05, 2, 11);
    algos::RunOptions options;
    EXPECT_EQ(algos::cellHash(algos::AlgoKind::Wfa, *a, options),
              algos::cellHash(algos::AlgoKind::Wfa, *bOwned, options));

    // Same metadata, one base flipped: different identity.
    auto mutated = std::make_shared<genomics::PairDataset>(*bOwned);
    auto &base = mutated->pairs.front().pattern.front();
    base = base == 'A' ? 'C' : 'A';
    EXPECT_NE(algos::cellHash(algos::AlgoKind::Wfa, *a, options),
              algos::cellHash(algos::AlgoKind::Wfa, *mutated, options));

    // Options and algorithm feed the key, hence the hash.
    algos::RunOptions other = options;
    other.variant = algos::Variant::Vec;
    EXPECT_NE(algos::cellHash(algos::AlgoKind::Wfa, *a, options),
              algos::cellHash(algos::AlgoKind::Wfa, *a, other));
    EXPECT_NE(algos::cellHash(algos::AlgoKind::Wfa, *a, options),
              algos::cellHash(algos::AlgoKind::BiWfa, *a, options));
}

TEST(Checkpoint, RunResultJsonRoundTrips)
{
    algos::RunResult result;
    result.algo = "wfa";
    result.variant = "qzc";
    result.dataset = "100bp_1";
    result.cycles = 123456;
    result.instructions = 654321;
    result.memRequests = 777;
    result.dramBytes = 4096;
    result.pairs = 42;
    result.accepted = 40;
    result.totalScore = -17;
    result.dpCells = 99999;
    result.outputsMatch = false;
    result.degradedPairs = 3;
    result.stalls[static_cast<std::size_t>(sim::StallKind::Cache)] =
        555;

    const auto json = parseJson(algos::toJson(result));
    ASSERT_TRUE(json.has_value());
    const auto back = algos::runResultFromJson(*json);
    ASSERT_TRUE(back.has_value());
    expectSameResult(result, *back, 0);
}

TEST(Checkpoint, RejectsJsonMissingRequiredFields)
{
    const auto json = parseJson("{\"algo\":\"wfa\"}");
    ASSERT_TRUE(json.has_value());
    EXPECT_FALSE(algos::runResultFromJson(*json).has_value());
    const auto notObject = parseJson("[1,2,3]");
    ASSERT_TRUE(notObject.has_value());
    EXPECT_FALSE(algos::runResultFromJson(*notObject).has_value());
}

TEST(DatasetValidation, AcceptsCatalogAndNBases)
{
    // makeDataset self-validates; reaching here means it passed.
    const auto ds = genomics::makeDataset("100bp_1", 0.05);
    EXPECT_GT(ds.size(), 0u);

    genomics::SequencePair withN;
    withN.pattern = "ACGTN";
    withN.text = "ACGT";
    EXPECT_NO_THROW(genomics::validatePair(
        withN, genomics::AlphabetKind::Dna, 0, "test"));
}

TEST(DatasetValidation, RejectsBadCharactersAndEmptySides)
{
    genomics::SequencePair bad;
    bad.pattern = "ACGJ";
    bad.text = "ACGT";
    EXPECT_THROW(genomics::validatePair(
                     bad, genomics::AlphabetKind::Dna, 0, "test"),
                 FatalError);

    genomics::SequencePair empty;
    empty.pattern = "";
    empty.text = "ACGT";
    EXPECT_THROW(genomics::validatePair(
                     empty, genomics::AlphabetKind::Dna, 0, "test"),
                 FatalError);

    // 'N' is not an amino acid wildcard here; protein rejects
    // lowercase and non-residue characters.
    genomics::SequencePair protein;
    protein.pattern = "ACDEF*";
    protein.text = "ACDEF";
    EXPECT_THROW(genomics::validatePair(
                     protein, genomics::AlphabetKind::Protein, 0,
                     "test"),
                 FatalError);
}

} // namespace
} // namespace quetzal
