/**
 * @file
 * Unit tests for the common utilities: bit manipulation, deterministic
 * RNG, logging/error policy, formatting, stats, and table rendering.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "common/bitutil.hpp"
#include "common/format.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace quetzal {
namespace {

TEST(BitUtil, CountTrailingOnes)
{
    EXPECT_EQ(countTrailingOnes(0x0), 0);
    EXPECT_EQ(countTrailingOnes(0x1), 1);
    EXPECT_EQ(countTrailingOnes(0xFF), 8);
    EXPECT_EQ(countTrailingOnes(~std::uint64_t{0}), 64);
    EXPECT_EQ(countTrailingOnes(0b1011), 2);
}

TEST(BitUtil, CountTrailingZeros)
{
    EXPECT_EQ(countTrailingZeros(0x1), 0);
    EXPECT_EQ(countTrailingZeros(0x8), 3);
    EXPECT_EQ(countTrailingZeros(0x0), 64);
}

TEST(BitUtil, BitsExtractsFields)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bits(~std::uint64_t{0}, 0, 64), ~std::uint64_t{0});
    EXPECT_EQ(bits(0xF0, 4, 0), 0u);
}

TEST(BitUtil, InsertBitsRoundTrips)
{
    std::uint64_t word = 0;
    word = insertBits(word, 4, 4, 0xA);
    EXPECT_EQ(word, 0xA0u);
    word = insertBits(word, 0, 4, 0xB);
    EXPECT_EQ(word, 0xABu);
    // Overwrite
    word = insertBits(word, 4, 4, 0x1);
    EXPECT_EQ(word, 0x1Bu);
}

TEST(BitUtil, InsertBitsMasksOversizedField)
{
    const std::uint64_t word = insertBits(0, 0, 2, 0xFF);
    EXPECT_EQ(word, 0x3u);
}

TEST(BitUtil, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(12));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
    EXPECT_EQ(divCeil(9, 4), 3u);
    EXPECT_EQ(divCeil(8, 4), 2u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Format, SubstitutesSequentially)
{
    EXPECT_EQ(qformat("a={} b={}", 1, "x"), "a=1 b=x");
    EXPECT_EQ(qformat("no args"), "no args");
    EXPECT_EQ(qformat("{} extra {}", 5), "5 extra {}");
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom {}", 1), PanicError);
    EXPECT_THROW(panic_if_not(false, "bad"), PanicError);
    EXPECT_NO_THROW(panic_if_not(true, "fine"));
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error {}", "x"), FatalError);
    EXPECT_THROW(fatal_if(true, "bad"), FatalError);
    EXPECT_NO_THROW(fatal_if(false, "fine"));
}

TEST(Stats, CountersAccumulateAndReset)
{
    StatGroup group("test");
    Stat &s = group.stat("hits", "demo");
    ++s;
    s += 4;
    EXPECT_EQ(group.get("hits").value(), 5u);
    group.resetAll();
    EXPECT_EQ(group.get("hits").value(), 0u);
}

TEST(Stats, UnknownStatPanics)
{
    StatGroup group("test");
    EXPECT_THROW(group.get("nope"), PanicError);
    EXPECT_FALSE(group.has("nope"));
}

TEST(Stats, DumpIsStableOrdered)
{
    StatGroup group("test");
    group.stat("b") += 2;
    group.stat("a") += 1;
    const auto dump = group.dump();
    ASSERT_EQ(dump.size(), 2u);
    EXPECT_EQ(dump[0].first, "a");
    EXPECT_EQ(dump[1].first, "b");
}

TEST(Stats, LaterDescriptionWins)
{
    StatGroup group("test");
    // Regression: a desc-less first registration used to pin the
    // fallback description forever, silently dropping the real one.
    group.stat("hits") += 1;
    EXPECT_EQ(group.get("hits").description(), "hits");
    group.stat("hits", "cache hit count") += 1;
    EXPECT_EQ(group.get("hits").description(), "cache hit count");
    EXPECT_EQ(group.get("hits").value(), 2u);
    // A later desc-less registration must not erase it again.
    group.stat("hits") += 1;
    EXPECT_EQ(group.get("hits").description(), "cache hit count");
}

TEST(Stats, MergeAccumulatesPerWorkerGroups)
{
    StatGroup total("total");
    total.stat("hits", "hit count") += 3;
    total.stat("misses") += 1;

    StatGroup worker("worker0");
    worker.stat("hits") += 4;
    worker.stat("evictions", "lines evicted") += 2;

    total.merge(worker);
    EXPECT_EQ(total.get("hits").value(), 7u);
    EXPECT_EQ(total.get("hits").description(), "hit count");
    EXPECT_EQ(total.get("misses").value(), 1u);
    EXPECT_EQ(total.get("evictions").value(), 2u);
    EXPECT_EQ(total.get("evictions").description(), "lines evicted");
    // merge() leaves the source untouched.
    EXPECT_EQ(worker.get("hits").value(), 4u);
}

TEST(Stats, TotalSumsAllCounters)
{
    StatGroup group("test");
    EXPECT_EQ(group.total(), 0u);
    group.stat("a") += 5;
    group.stat("b") += 7;
    EXPECT_EQ(group.total(), 12u);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
    EXPECT_EQ(TextTable::num(5.0, 1), "5.0");
}

TEST(Table, NumRendersNonFiniteAsNa)
{
    EXPECT_EQ(TextTable::num(std::numeric_limits<double>::quiet_NaN()),
              "n/a");
    EXPECT_EQ(TextTable::num(std::numeric_limits<double>::infinity()),
              "n/a");
    EXPECT_EQ(TextTable::num(-std::numeric_limits<double>::infinity()),
              "n/a");
}

TEST(Json, RawValueSplicesPreserializedJson)
{
    JsonWriter inner;
    inner.beginObject().field("x", std::uint64_t{1}).endObject();
    JsonWriter json;
    json.beginArray()
        .rawValue(inner.str())
        .rawValue("{\"y\":2}")
        .endArray();
    EXPECT_EQ(json.str(), "[{\"x\":1},{\"y\":2}]");
}

TEST(Json, ObjectsArraysAndEscaping)
{
    JsonWriter json;
    json.beginObject()
        .field("name", "line1\nline2 \"q\"")
        .field("count", std::uint64_t{42})
        .field("ratio", 1.5)
        .field("ok", true);
    json.beginArray("items").value("a").value(2.0).endArray();
    json.beginObject("nested").field("x", std::int64_t{-3}).endObject();
    json.endObject();
    const std::string out = json.str();
    EXPECT_NE(out.find("\"name\":\"line1\\nline2 \\\"q\\\"\""),
              std::string::npos);
    EXPECT_NE(out.find("\"items\":[\"a\",2]"), std::string::npos);
    EXPECT_NE(out.find("\"nested\":{\"x\":-3}"), std::string::npos);
}

TEST(Json, UnbalancedScopesPanic)
{
    JsonWriter json;
    json.beginObject();
    EXPECT_THROW(json.str(), PanicError);
    EXPECT_THROW(json.endArray(), PanicError);
}

} // namespace
} // namespace quetzal
