/**
 * @file
 * Unit tests for the timing simulator: cache, stride prefetcher,
 * memory hierarchy, scoreboard pipeline, and the multicore bandwidth
 * composition model.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <random>

#include "common/logging.hpp"
#include "sim/cache.hpp"
#include "sim/context.hpp"
#include "sim/memsystem.hpp"
#include "sim/multicore.hpp"
#include "sim/pipeline.hpp"
#include "sim/prefetcher.hpp"

namespace quetzal::sim {
namespace {

CacheParams
tinyCache()
{
    return CacheParams{1024, 2, 64, 3}; // 8 sets x 2 ways x 64B
}

TEST(Cache, MissThenHit)
{
    Cache cache("c", tinyCache());
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x103F)); // same line
    EXPECT_FALSE(cache.access(0x1040)); // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    Cache cache("c", tinyCache());
    // Three lines mapping to the same set (set stride = 8 lines).
    const Addr a = 0, b = 8 * 64, c = 16 * 64;
    cache.access(a);
    cache.access(b);
    cache.access(a);    // a is MRU
    cache.access(c);    // evicts b (LRU)
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(Cache, FillDoesNotCountAsDemand)
{
    Cache cache("c", tinyCache());
    cache.fill(0x2000);
    EXPECT_EQ(cache.hits() + cache.misses(), 0u);
    EXPECT_TRUE(cache.contains(0x2000));
    EXPECT_TRUE(cache.access(0x2000));
}

TEST(Cache, InvalidateAllDropsLines)
{
    Cache cache("c", tinyCache());
    cache.access(0x1000);
    cache.invalidateAll();
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache("c", CacheParams{1000, 3, 48, 1}), FatalError);
}

/**
 * The retired replacement policy, kept verbatim as a reference model:
 * per-way 8-byte timestamps, victim = first invalid way (in way-index
 * order) else the minimum lastUse. The production Cache now keeps each
 * set's tags in MRU order instead; this model is what it must match
 * decision-for-decision.
 */
class TimestampLruModel
{
  public:
    explicit TimestampLruModel(const CacheParams &params)
        : params_(params),
          numSets_(params.sizeBytes / params.lineBytes /
                   params.associativity),
          ways_(numSets_ * params.associativity)
    {
    }

    bool
    access(Addr addr)
    {
        const bool hit = touch(lineOf(addr));
        if (hit)
            ++hits_;
        else
            ++misses_;
        return hit;
    }

    void fill(Addr addr) { touch(lineOf(addr)); }

    bool
    contains(Addr addr) const
    {
        const std::uint64_t line = lineOf(addr);
        const Way *set = &ways_[(line % numSets_) *
                                params_.associativity];
        for (unsigned i = 0; i < params_.associativity; ++i)
            if (set[i].valid && set[i].tag == line)
                return true;
        return false;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineOf(Addr addr) const
    {
        return addr / params_.lineBytes;
    }

    bool
    touch(std::uint64_t line)
    {
        Way *set =
            &ways_[(line % numSets_) * params_.associativity];
        for (unsigned i = 0; i < params_.associativity; ++i) {
            if (set[i].valid && set[i].tag == line) {
                set[i].lastUse = ++useClock_;
                return true;
            }
        }
        Way *victim = nullptr;
        for (unsigned i = 0; i < params_.associativity; ++i) {
            if (!set[i].valid) {
                victim = &set[i];
                break;
            }
            if (!victim || set[i].lastUse < victim->lastUse)
                victim = &set[i];
        }
        victim->tag = line;
        victim->valid = true;
        victim->lastUse = ++useClock_;
        return false;
    }

    CacheParams params_;
    std::size_t numSets_;
    std::vector<Way> ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

/**
 * Proof-by-test for the MRU-list rewrite (see sim/cache.hpp): a
 * randomized demand/fill trace must produce the identical hit/miss
 * sequence AND the identical residency set after every step — which
 * pins the eviction sequence too, since a divergent eviction would
 * surface as a residency difference at that step.
 */
TEST(Cache, ExactLruEquivalence)
{
    for (const unsigned assoc : {1u, 4u, 16u}) {
        const unsigned lineBytes = 64;
        const std::size_t numSets = 8;
        const CacheParams params{numSets * assoc * lineBytes, assoc,
                                 lineBytes, 3};
        Cache cache("equiv", params);
        TimestampLruModel model(params);

        // 3x overcommit per set forces constant eviction churn.
        const std::uint64_t poolLines = numSets * assoc * 3;
        std::mt19937 rng(0xC0FFEE ^ assoc);
        std::uniform_int_distribution<std::uint64_t> pickLine(
            0, poolLines - 1);
        std::uniform_int_distribution<int> pickOp(0, 9);

        for (int step = 0; step < 4000; ++step) {
            const Addr addr = pickLine(rng) * lineBytes;
            if (pickOp(rng) == 0) {
                // Prefetch-style fill: no demand stats, same recency.
                cache.fill(addr);
                model.fill(addr);
            } else {
                ASSERT_EQ(cache.access(addr), model.access(addr))
                    << "assoc " << assoc << " step " << step;
            }
            if (step % 8 == 0 || step > 3900) {
                for (std::uint64_t l = 0; l < poolLines; ++l)
                    ASSERT_EQ(cache.contains(l * lineBytes),
                              model.contains(l * lineBytes))
                        << "assoc " << assoc << " step " << step
                        << " line " << l;
            }
        }
        EXPECT_EQ(cache.hits(), model.hits());
        EXPECT_EQ(cache.misses(), model.misses());
    }
}

TEST(Prefetcher, TrainsOnStrideAndFillsAhead)
{
    Cache cache("c", CacheParams{64 * 1024, 8, 64, 3});
    StridePrefetcher pf(PrefetcherParams{true, 16, 2, 2}, cache);
    // Constant stride of one line from the same PC.
    for (int i = 0; i < 8; ++i)
        pf.observe(0x42, static_cast<Addr>(i) * 64);
    EXPECT_GT(pf.issued(), 0u);
    // The next line should already be resident.
    EXPECT_TRUE(cache.contains(8 * 64));
}

TEST(Prefetcher, IgnoresIrregularPattern)
{
    Cache cache("c", CacheParams{64 * 1024, 8, 64, 3});
    StridePrefetcher pf(PrefetcherParams{true, 16, 2, 2}, cache);
    std::uint64_t addrs[] = {0, 4096, 128, 9000, 64, 7777};
    for (Addr a : addrs)
        pf.observe(0x42, a);
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(MemSystem, LatenciesFollowHierarchy)
{
    SystemParams params;
    MemorySystem mem(params);
    const Addr addr = 0x100000;
    const unsigned first = mem.access(1, addr, 4, false);
    EXPECT_EQ(first, params.dram.latencyCycles);
    const unsigned second = mem.access(1, addr, 4, false);
    EXPECT_EQ(second, params.l1d.loadToUse);
    EXPECT_GT(mem.dramBytes(), 0u);
}

TEST(MemSystem, L2HitAfterL1Eviction)
{
    SystemParams params;
    MemorySystem mem(params);
    // Touch enough distinct memory to overflow the 64 KB L1 but stay
    // within the 8 MB L2; disable prefetching noise via irregular pc.
    // First-touch translation packs at 16B granularity, so the
    // simulated footprint is touches x 16B: 8192 -> 128 KB.
    const unsigned touches = 8192;
    for (unsigned i = 0; i < touches; ++i)
        mem.access(1000 + i * 7, static_cast<Addr>(i) * 16, 4, false);
    // Re-touch the first line: L1 evicted it, L2 still has it.
    const unsigned lat = mem.access(5000, 0, 4, false);
    EXPECT_EQ(lat, params.l2.loadToUse);
}

TEST(MemSystem, MultiLineAccessReturnsWorstLatency)
{
    SystemParams params;
    MemorySystem mem(params);
    mem.access(1, 0, 4, false); // home line now resident
    // A footprint wider than a line must probe the cold next line
    // too and return the worst latency.
    const unsigned lat =
        mem.access(2, 4096, 2 * params.l1d.lineBytes, false);
    EXPECT_EQ(lat, params.dram.latencyCycles);
}

TEST(MemSystem, TranslationIsAllocationIndependent)
{
    // The same logical access pattern at completely different host
    // bases must produce identical timing: simulated addresses are
    // assigned by first-touch order, not by host pointer values.
    SystemParams params;
    auto walk = [&](Addr base, Addr gap) {
        MemorySystem mem(params);
        std::vector<unsigned> lat;
        for (unsigned rep = 0; rep < 2; ++rep)
            for (unsigned i = 0; i < 512; ++i)
                lat.push_back(
                    mem.access(7, base + i * gap, 8, false));
        lat.push_back(static_cast<unsigned>(mem.totalRequests()));
        lat.push_back(static_cast<unsigned>(mem.dramBytes()));
        return lat;
    };
    // Same 64B stride, wildly different (even unaligned-page) bases.
    EXPECT_EQ(walk(0x10000, 64), walk(0x7f3210, 64));
    // Sanity that it is not a constant function: an 8B stride revisits
    // each 16B paragraph twice, halving the footprint.
    EXPECT_NE(walk(0x10000, 64), walk(0x10000, 8));
}

TEST(MemSystem, NewEpochRemapsRecycledMemory)
{
    SystemParams params;
    MemorySystem mem(params);
    // Fill one whole simulated line's worth of paragraphs.
    for (Addr a = 0; a < params.l1d.lineBytes; a += 16)
        mem.access(1, 0x1000 + a, 4, false);
    EXPECT_EQ(mem.access(1, 0x1000, 4, false), params.l1d.loadToUse);
    // After an epoch the same host addresses map to fresh simulated
    // paragraphs instead of aliasing the old ones; a footprint wider
    // than a line is guaranteed to reach a cold line again.
    mem.newEpoch();
    EXPECT_EQ(mem.access(1, 0x1000, 2 * params.l1d.lineBytes, false),
              params.dram.latencyCycles);
}

TEST(MemSystem, TranslateAssignsParagraphsInFirstTouchOrder)
{
    SystemParams params;
    MemorySystem mem(params);
    // Paragraph 1 goes to the first-touched host paragraph, 2 to the
    // next distinct one; offsets below 16 B pass through; re-touches
    // (including via the MRU fast path) return the same mapping.
    EXPECT_EQ(mem.translate(0x5000), 1u * 16);
    EXPECT_EQ(mem.translate(0x5007), 1u * 16 + 7);
    EXPECT_EQ(mem.translate(0x9010), 2u * 16);
    EXPECT_EQ(mem.translate(0x5008), 1u * 16 + 8);
    // A new epoch remaps fresh, simulated space keeps advancing.
    mem.newEpoch();
    EXPECT_EQ(mem.translate(0x5000), 3u * 16);
}

TEST(MemSystem, TranslateSurvivesChunkDirectoryGrowth)
{
    // Touch paragraphs spread over far more 16 KB chunks than the
    // directory's initial capacity, then verify every earlier mapping
    // is still intact after the rehashes.
    SystemParams params;
    MemorySystem mem(params);
    const unsigned spans = 500; // 500 chunks >> 64 initial slots
    for (unsigned i = 0; i < spans; ++i)
        EXPECT_EQ(mem.translate(static_cast<Addr>(i) * 16384),
                  (i + 1) * Addr{16});
    for (unsigned i = 0; i < spans; ++i)
        EXPECT_EQ(mem.translate(static_cast<Addr>(i) * 16384),
                  (i + 1) * Addr{16});
}

TEST(MemSystem, AccessVectorMatchesSerialAccesses)
{
    // accessVector must be observationally identical to calling
    // access() per lane: same latencies, same demand counts, same
    // DRAM traffic, same residency afterwards.
    SystemParams params;
    MemorySystem serial(params);
    MemorySystem batched(params);

    std::mt19937 rng(1234);
    std::uniform_int_distribution<Addr> pick(0, 1 << 20);
    for (int burst = 0; burst < 50; ++burst) {
        std::vector<Addr> addrs(16);
        for (Addr &a : addrs)
            a = pick(rng);
        const bool write = burst % 3 == 0;
        const std::uint64_t pc = 100 + burst % 7;

        std::vector<unsigned> serialLat;
        for (const Addr a : addrs)
            serialLat.push_back(serial.access(pc, a, 4, write));
        std::vector<unsigned> batchedLat(addrs.size());
        batched.accessVector(pc, addrs, 4, write, batchedLat);
        EXPECT_EQ(serialLat, batchedLat) << "burst " << burst;
    }
    EXPECT_EQ(serial.totalRequests(), batched.totalRequests());
    EXPECT_EQ(serial.dramBytes(), batched.dramBytes());
    EXPECT_EQ(serial.l1d().hits(), batched.l1d().hits());
    EXPECT_EQ(serial.l1d().misses(), batched.l1d().misses());
    EXPECT_EQ(serial.l2().hits(), batched.l2().hits());
    EXPECT_EQ(serial.l2().misses(), batched.l2().misses());
}

TEST(Pipeline, IssueWidthBoundsThroughput)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    for (int i = 0; i < 400; ++i)
        pipe.executeOp(OpClass::ScalarAlu, {});
    // 400 scalar ops: the frontend allows 4/cycle but the two scalar
    // pipes cap throughput at 2/cycle -> ~200 cycles.
    EXPECT_GE(pipe.totalCycles(), 100u);
    EXPECT_LE(pipe.totalCycles(), 260u);
    EXPECT_EQ(pipe.instructions(), 400u);
}

TEST(Pipeline, DependencyChainSerializes)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    Tag chain{};
    for (int i = 0; i < 100; ++i)
        chain = pipe.executeOp(OpClass::VecAlu, {chain});
    // 100 dependent 4-cycle ops: ~400 cycles.
    EXPECT_GE(pipe.totalCycles(), 380u);
}

TEST(Pipeline, GatherHasLatencyFloor)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    // Warm the line so every element hits in L1.
    pipe.executeMem(OpClass::VecLoad, 1, 0x1000, 64, {});
    std::vector<Addr> addrs;
    for (int e = 0; e < 16; ++e)
        addrs.push_back(0x1000 + 4 * e);
    const Tag tag =
        pipe.executeIndexed(OpClass::VecGather, 2, addrs, 4, {});
    // Even all-L1-hit gathers cost >= 19 cycles on the A64FX.
    EXPECT_GE(tag.ready - pipe.now(),
              ctx.params().core.gatherMinLatency - 5);
    EXPECT_TRUE(tag.mem);
}

TEST(Pipeline, GatherSlowerThanContiguousLoad)
{
    SimContext a, b;
    // Contiguous: one vector load per iteration.
    for (int i = 0; i < 200; ++i) {
        const Tag t = a.pipeline().executeMem(
            OpClass::VecLoad, 1, 0x1000 + (i % 4) * 64, 64, {});
        a.pipeline().executeOp(OpClass::VecAlu, {t});
    }
    // Indexed: 16 elements through the AGUs + LSQ per iteration.
    std::vector<Addr> addrs;
    for (int e = 0; e < 16; ++e)
        addrs.push_back(0x1000 + 4 * e);
    for (int i = 0; i < 200; ++i) {
        const Tag t = b.pipeline().executeIndexed(OpClass::VecGather, 1,
                                                  addrs, 4, {});
        b.pipeline().executeOp(OpClass::VecAlu, {t});
    }
    EXPECT_GT(b.pipeline().totalCycles(),
              2 * a.pipeline().totalCycles());
}

TEST(Pipeline, LsqBackPressuresGathers)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    std::vector<Addr> addrs;
    for (int e = 0; e < 16; ++e)
        addrs.push_back(0x10000 + 4096 * e); // cold lines -> DRAM
    for (int i = 0; i < 50; ++i)
        pipe.executeIndexed(OpClass::VecGather, 1, addrs, 4, {});
    // LSQ back-pressure from in-flight gather elements is accounted
    // as cache-access time (the paper's occupancy argument).
    EXPECT_GT(pipe.stallCycles(StallKind::Cache), 0u);
}

TEST(Pipeline, QzOpsBypassCaches)
{
    SimContext ctx(SystemParams::withQuetzal());
    Pipeline &pipe = ctx.pipeline();
    const auto before = ctx.mem().totalRequests();
    for (int i = 0; i < 100; ++i)
        pipe.executeQz(OpClass::QzMhm, 3, {});
    EXPECT_EQ(ctx.mem().totalRequests(), before);
}

TEST(Pipeline, CommitSerializedWaitsForPriorWork)
{
    SimContext ctx(SystemParams::withQuetzal());
    Pipeline &pipe = ctx.pipeline();
    // A slow DRAM load in flight...
    const Tag slow =
        pipe.executeMem(OpClass::VecLoad, 1, 0x900000, 64, {});
    // ...forces the commit-serialized op to complete after it.
    const Tag qz = pipe.executeQz(OpClass::QzStore, 1, {}, true);
    EXPECT_GE(qz.ready, slow.ready);
}

TEST(Pipeline, BubbleAdvancesAndAttributes)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    const Cycle before = pipe.now();
    pipe.bubble(17, StallKind::Frontend);
    EXPECT_EQ(pipe.now(), before + 17);
    EXPECT_GE(pipe.stallCycles(StallKind::Frontend), 17u);
}

TEST(Pipeline, StallAttributionCoversCacheWaits)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    Tag chain{};
    // Irregular strides defeat the prefetcher, so every load is a
    // DRAM miss on the dependency chain.
    std::uint64_t addr = 0x200000;
    for (int i = 0; i < 400; ++i) {
        addr += 65536 + (i * i % 13) * 4096;
        chain = pipe.executeMem(OpClass::VecLoad, 1, addr, 64, {chain});
        chain = pipe.executeOp(OpClass::VecAlu, {chain});
    }
    EXPECT_GT(pipe.stallCycles(StallKind::Cache), 1000u);
}

TEST(Pipeline, StoresRetireIntoStoreBuffer)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    // A cold store's tag is ready almost immediately...
    const Tag st =
        pipe.executeMem(OpClass::VecStore, 1, 0x800000, 64, {});
    EXPECT_LE(st.ready, pipe.now() + 2);
    // ...while a cold LOAD's tag carries the DRAM latency. The load
    // is wider than a line so it reaches past the line the store's
    // write-allocate already fetched.
    const Tag ld = pipe.executeMem(OpClass::VecLoad, 2, 0x900000,
                                   ctx.params().l1d.lineBytes + 64, {});
    EXPECT_GE(ld.ready, ctx.params().dram.latencyCycles);
}

TEST(Pipeline, OpCountsPerClass)
{
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    pipe.executeOp(OpClass::VecAlu, {});
    pipe.executeOp(OpClass::VecAlu, {});
    pipe.executeOp(OpClass::Branch, {});
    EXPECT_EQ(pipe.opCount(OpClass::VecAlu), 2u);
    EXPECT_EQ(pipe.opCount(OpClass::Branch), 1u);
    EXPECT_EQ(pipe.instructions(), 3u);
    EXPECT_STREQ(opClassName(OpClass::QzMhm), "QzMhm");
    EXPECT_STREQ(opClassName(OpClass::VecGather), "VecGather");
}

TEST(Pipeline, IndependentWorkOverlapsBehindSlowOps)
{
    // The OoO property: a slow dependent chain must not delay
    // independent instructions (until the ROB fills).
    SimContext ctx;
    Pipeline &pipe = ctx.pipeline();
    Tag chain = pipe.executeMem(OpClass::VecLoad, 1, 0xA00000, 64, {});
    chain = pipe.executeOp(OpClass::VecAlu, {chain});
    const Cycle afterChain = pipe.now();
    for (int i = 0; i < 20; ++i)
        pipe.executeOp(OpClass::ScalarAlu, {});
    // Twenty independent ops dispatch in ~5 cycles regardless of the
    // 110-cycle load in flight.
    EXPECT_LE(pipe.now(), afterChain + 10);
}

TEST(Multicore, LinearWhenBandwidthAmple)
{
    SystemParams params;
    CoreDemand demand{1000000, 1000}; // ~0.001 B/cycle
    EXPECT_DOUBLE_EQ(multicoreSpeedup(demand, 16, params), 16.0);
}

TEST(Multicore, SaturatesAtRoofline)
{
    SystemParams params; // 128 B/cycle peak
    CoreDemand demand{1000, 32000}; // 32 B/cycle per core
    EXPECT_NEAR(multicoreSpeedup(demand, 16, params), 4.0, 1e-9);
    EXPECT_NEAR(multicoreSpeedup(demand, 2, params), 2.0, 1e-9);
}

TEST(Multicore, ThroughputScalesWithSpeedup)
{
    SystemParams params;
    CoreDemand demand{2000, 0};
    const double t1 = multicoreThroughput(demand, 10, 1, params);
    const double t8 = multicoreThroughput(demand, 10, 8, params);
    EXPECT_NEAR(t8 / t1, 8.0, 1e-9);
}

TEST(Multicore, RejectsZeroCores)
{
    SystemParams params;
    EXPECT_THROW(multicoreSpeedup(CoreDemand{1, 1}, 0, params),
                 FatalError);
}

/**
 * Verbatim transcription of the pre-ring-buffer scoreboard: std::deque
 * ROB/LSQ, separate unitFree (scan) + unitOccupy (min_element rescan),
 * per-op loop for scalar charges. The reference model for the
 * RingRobLsqEquivalence and BurstMatchesSerialExecuteOps lockstep
 * proofs — do not "improve" it; its value is being the old code.
 */
class DequeScoreboardModel
{
  public:
    DequeScoreboardModel(const SystemParams &params, MemorySystem &mem)
        : params_(params), mem_(mem),
          vecPipes_(params.core.vectorPipes, 0),
          scalarPipes_(params.core.scalarPipes, 0),
          aguPipes_(params.core.agus, 0)
    {
    }

    Tag
    executeOp(OpClass cls, std::initializer_list<Tag> srcs)
    {
        unsigned latency = 0;
        std::vector<Cycle> *pool = nullptr;
        const CoreParams &core = params_.core;
        switch (cls) {
          case OpClass::ScalarAlu:
            latency = core.scalarAluLatency;
            pool = &scalarPipes_;
            break;
          case OpClass::Branch:
            latency = core.branchLatency;
            pool = &scalarPipes_;
            break;
          case OpClass::VecAlu:
            latency = core.vectorAluLatency;
            pool = &vecPipes_;
            break;
          case OpClass::VecCmp:
            latency = core.vectorCmpLatency;
            pool = &vecPipes_;
            break;
          case OpClass::VecPred:
            latency = core.predOpLatency;
            pool = &vecPipes_;
            break;
          case OpClass::VecReduce:
            latency = core.reduceLatency;
            pool = &vecPipes_;
            break;
          default:
            ADD_FAILURE() << "model executeOp on specialized class";
            return {};
        }
        const Cycle issue = resolveIssue(srcs, *pool, 0);
        unitOccupy(*pool, issue, 1);
        const Cycle completion = issue + latency;
        finishOp(cls, completion, 0, false);
        return Tag{completion, false};
    }

    Tag
    executeMem(OpClass cls, std::uint64_t pc, Addr addr, unsigned bytes,
               std::initializer_list<Tag> srcs)
    {
        const Cycle issue = resolveIssue(srcs, aguPipes_, 1);
        unitOccupy(aguPipes_, issue, 1);
        const bool write = cls == OpClass::ScalarStore ||
                           cls == OpClass::VecStore;
        const unsigned latency = mem_.access(pc, addr, bytes, write);
        const Cycle completion = write ? issue + 1 : issue + latency;
        finishOp(cls, completion, 1, true,
                 write ? issue + latency : 0);
        return Tag{completion, true};
    }

    Tag
    executeIndexed(OpClass cls, std::uint64_t pc,
                   std::span<const Addr> addrs, unsigned elemBytes,
                   std::initializer_list<Tag> srcs)
    {
        const CoreParams &core = params_.core;
        const std::size_t lsqNeed =
            std::max<std::size_t>(1, addrs.size());
        const Cycle issue = resolveIssue(srcs, aguPipes_, lsqNeed);
        unitOccupy(aguPipes_, issue, addrs.size());
        const bool write = cls == OpClass::VecScatter;
        laneLatencies_.resize(addrs.size());
        mem_.accessVector(pc, addrs, elemBytes, write, laneLatencies_);
        Cycle worst = issue;
        for (std::size_t i = 0; i < addrs.size(); ++i)
            worst = std::max(worst, issue + i + laneLatencies_[i]);
        Cycle completion =
            std::max(worst, issue + core.gatherMinLatency);
        Cycle lsqDone = 0;
        if (write) {
            lsqDone = completion;
            completion = issue + addrs.size() + 1;
        }
        finishOp(cls, completion, lsqNeed, true, lsqDone);
        return Tag{completion, true};
    }

    Tag
    executeQz(OpClass cls, unsigned latency,
              std::initializer_list<Tag> srcs, bool commitSerialized)
    {
        const Cycle issue = resolveIssue(srcs, vecPipes_, 0);
        unitOccupy(vecPipes_, issue, 1);
        const Cycle start =
            commitSerialized ? std::max(issue, maxCompletion_) : issue;
        const Cycle completion = start + latency;
        finishOp(cls, completion, 0, false);
        return Tag{completion, false};
    }

    void
    chargeScalarOps(unsigned count)
    {
        for (unsigned i = 0; i < count; ++i)
            executeOp(OpClass::ScalarAlu, {});
    }

    void
    bubble(unsigned cycles, StallKind kind)
    {
        attribute(cycle_, cycle_ + cycles, kind);
        cycle_ += cycles;
        slotInCycle_ = 0;
    }

    Cycle now() const { return cycle_; }
    Cycle totalCycles() const { return std::max(cycle_, maxCompletion_); }
    Cycle stallCycles(StallKind kind) const
    {
        return stalls_[static_cast<std::size_t>(kind)];
    }
    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t opCount(OpClass cls) const
    {
        return opCounts_[static_cast<std::size_t>(cls)];
    }

  private:
    struct RobEntry
    {
        Cycle done;
        bool mem;
    };

    void
    attribute(Cycle from, Cycle to, StallKind kind)
    {
        if (to > from)
            stalls_[static_cast<std::size_t>(kind)] += to - from;
    }

    Cycle
    frontendAdvance()
    {
        if (++slotInCycle_ >= params_.core.issueWidth) {
            slotInCycle_ = 0;
            attribute(cycle_, cycle_ + 1, StallKind::Frontend);
            ++cycle_;
        }
        return cycle_;
    }

    static Cycle
    unitFree(const std::vector<Cycle> &pool, Cycle t)
    {
        Cycle best = ~Cycle{0};
        for (const Cycle free : pool)
            best = std::min(best, std::max(free, t));
        return best;
    }

    static void
    unitOccupy(std::vector<Cycle> &pool, Cycle start, Cycle busy)
    {
        auto it = std::min_element(pool.begin(), pool.end());
        *it = std::max(*it, start) + busy;
    }

    Cycle
    resolveIssue(std::initializer_list<Tag> srcs,
                 std::vector<Cycle> &pool, std::size_t lsqNeed)
    {
        const Cycle front = frontendAdvance();
        Cycle t = front;
        while (!rob_.empty() && rob_.front().done <= t)
            rob_.pop_front();
        while (rob_.size() + 1 > params_.core.robEntries &&
               !rob_.empty()) {
            const RobEntry head = rob_.front();
            rob_.pop_front();
            if (head.done > t) {
                attribute(t, head.done,
                          head.mem ? StallKind::Cache
                                   : StallKind::Compute);
                t = head.done;
            }
        }
        if (lsqNeed > 0) {
            while (!lsq_.empty() && lsq_.front() <= t)
                lsq_.pop_front();
            while (lsq_.size() + lsqNeed > params_.core.lsqEntries &&
                   !lsq_.empty()) {
                const Cycle head = lsq_.front();
                lsq_.pop_front();
                if (head > t) {
                    attribute(t, head, StallKind::Cache);
                    t = head;
                }
            }
        }
        if (t > cycle_)
            cycle_ = t;
        Tag dep{};
        for (const Tag &src : srcs)
            dep = Tag::join(dep, src);
        Cycle start = std::max(t, dep.ready);
        start = unitFree(pool, start);
        return start;
    }

    void
    finishOp(OpClass cls, Cycle completion, std::size_t lsqNeed,
             bool isMem, Cycle lsqCompletion = 0)
    {
        rob_.push_back(RobEntry{completion, isMem});
        const Cycle lsqDone =
            lsqCompletion ? lsqCompletion : completion;
        for (std::size_t i = 0; i < lsqNeed; ++i)
            lsq_.push_back(lsqDone);
        if (completion > maxCompletion_) {
            maxCompletion_ = completion;
            maxCompletionFromMem_ = isMem;
        }
        ++opCounts_[static_cast<std::size_t>(cls)];
        ++instructions_;
    }

    SystemParams params_;
    MemorySystem &mem_;
    Cycle cycle_ = 0;
    unsigned slotInCycle_ = 0;
    std::vector<Cycle> vecPipes_;
    std::vector<Cycle> scalarPipes_;
    std::vector<Cycle> aguPipes_;
    std::deque<RobEntry> rob_;
    std::deque<Cycle> lsq_;
    std::vector<unsigned> laneLatencies_;
    Cycle maxCompletion_ = 0;
    bool maxCompletionFromMem_ = false;
    std::array<Cycle, static_cast<std::size_t>(StallKind::NumKinds)>
        stalls_{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(OpClass::NumClasses)>
        opCounts_{};
    std::uint64_t instructions_ = 0;
};

/** One randomized mixed-trace step applied to both implementations. */
template <typename A, typename B>
void
applyRandomOp(std::mt19937 &rng, A &a, B &b, Tag &tagA, Tag &tagB,
              int step)
{
    std::uniform_int_distribution<int> pickOp(0, 11);
    std::uniform_int_distribution<Addr> pickAddr(0, 1 << 18);
    std::uniform_int_distribution<unsigned> pickLanes(0, 16);
    std::uniform_int_distribution<unsigned> pickCount(0, 12);
    const int op = pickOp(rng);
    const bool chain = step % 3 == 0; // mix dependent and free ops
    const std::uint64_t pc = 10 + step % 5;
    switch (op) {
      case 0:
      case 1: {
        tagA = a.executeOp(OpClass::ScalarAlu,
                           chain ? std::initializer_list<Tag>{tagA}
                                 : std::initializer_list<Tag>{});
        tagB = b.executeOp(OpClass::ScalarAlu,
                           chain ? std::initializer_list<Tag>{tagB}
                                 : std::initializer_list<Tag>{});
        break;
      }
      case 2:
        tagA = a.executeOp(OpClass::VecAlu, {tagA});
        tagB = b.executeOp(OpClass::VecAlu, {tagB});
        break;
      case 3:
        tagA = a.executeOp(OpClass::VecReduce, {});
        tagB = b.executeOp(OpClass::VecReduce, {});
        break;
      case 4: {
        const Addr addr = pickAddr(rng);
        tagA = a.executeMem(OpClass::ScalarLoad, pc, addr, 8, {tagA});
        tagB = b.executeMem(OpClass::ScalarLoad, pc, addr, 8, {tagB});
        break;
      }
      case 5: {
        const Addr addr = pickAddr(rng);
        tagA = a.executeMem(OpClass::VecStore, pc, addr, 64, {});
        tagB = b.executeMem(OpClass::VecStore, pc, addr, 64, {});
        break;
      }
      case 6:
      case 7: {
        // Gathers with 0..16 lanes: empty spans and LSQ overcommit
        // (lane count > lsqEntries on the edge-sized configs) both
        // included.
        std::vector<Addr> addrs(pickLanes(rng));
        for (Addr &x : addrs)
            x = pickAddr(rng);
        tagA = a.executeIndexed(OpClass::VecGather, pc, addrs, 4,
                                {tagA});
        tagB = b.executeIndexed(OpClass::VecGather, pc, addrs, 4,
                                {tagB});
        break;
      }
      case 8: {
        std::vector<Addr> addrs(pickLanes(rng));
        for (Addr &x : addrs)
            x = pickAddr(rng);
        tagA = a.executeIndexed(OpClass::VecScatter, pc, addrs, 4, {});
        tagB = b.executeIndexed(OpClass::VecScatter, pc, addrs, 4, {});
        break;
      }
      case 9: {
        const bool serialized = step % 2 == 0;
        tagA = a.executeQz(OpClass::QzMhm, 5, {tagA}, serialized);
        tagB = b.executeQz(OpClass::QzMhm, 5, {tagB}, serialized);
        break;
      }
      case 10:
        a.bubble(3, StallKind::Frontend);
        b.bubble(3, StallKind::Frontend);
        break;
      default: {
        const unsigned count = pickCount(rng);
        a.chargeScalarOps(count);
        b.chargeScalarOps(count);
        break;
      }
    }
}

template <typename A, typename B>
void
expectSameObservables(const A &a, const B &b, unsigned config,
                      int step)
{
    ASSERT_EQ(a.now(), b.now()) << "config " << config << " step "
                                << step;
    ASSERT_EQ(a.totalCycles(), b.totalCycles())
        << "config " << config << " step " << step;
    for (unsigned k = 0;
         k < static_cast<unsigned>(StallKind::NumKinds); ++k)
        ASSERT_EQ(a.stallCycles(static_cast<StallKind>(k)),
                  b.stallCycles(static_cast<StallKind>(k)))
            << "config " << config << " step " << step << " kind "
            << k;
    ASSERT_EQ(a.instructions(), b.instructions())
        << "config " << config << " step " << step;
}

/**
 * Proof-by-test for the ring-buffer ROB/LSQ and the fused
 * reserve-and-occupy pool scan: a randomized mixed trace (dependent
 * chains, gathers with 0..16 lanes, scatters, commit-serialized QZ
 * ops, bubbles, scalar-charge bursts) must leave the new Pipeline and
 * the verbatim deque model with identical observables after every op,
 * across issue widths and ROB/LSQ edge sizes — including LSQ
 * overcommit, where one gather claims more slots than the queue has.
 */
TEST(Pipeline, RingRobLsqEquivalence)
{
    struct Config
    {
        unsigned issueWidth, robEntries, lsqEntries;
    };
    const Config configs[] = {
        {2, 4, 2},    // constant structural churn + LSQ overcommit
        {4, 128, 40}, // the default A64FX-like shape
        {8, 16, 8},   // wide frontend, shallow queues
        {4, 1, 1},    // degenerate single-entry queues
    };
    unsigned configIdx = 0;
    for (const Config &config : configs) {
        SystemParams params;
        params.core.issueWidth = config.issueWidth;
        params.core.robEntries = config.robEntries;
        params.core.lsqEntries = config.lsqEntries;

        MemorySystem memRing(params);
        MemorySystem memModel(params);
        Pipeline ring(params, memRing);
        DequeScoreboardModel model(params, memModel);

        std::mt19937 rng(0x0B0E ^ configIdx);
        Tag tagRing{}, tagModel{};
        for (int step = 0; step < 3000; ++step) {
            applyRandomOp(rng, ring, model, tagRing, tagModel, step);
            ASSERT_EQ(tagRing.ready, tagModel.ready)
                << "config " << configIdx << " step " << step;
            ASSERT_EQ(tagRing.mem, tagModel.mem)
                << "config " << configIdx << " step " << step;
            expectSameObservables(ring, model, configIdx, step);
        }
        for (unsigned c = 0;
             c < static_cast<unsigned>(OpClass::NumClasses); ++c)
            EXPECT_EQ(ring.opCount(static_cast<OpClass>(c)),
                      model.opCount(static_cast<OpClass>(c)))
                << "config " << configIdx << " class " << c;
        EXPECT_EQ(memRing.totalRequests(), memModel.totalRequests());
        ++configIdx;
    }
}

/**
 * Proof-by-test for the closed-form burst schedule: executeOpBurst(N)
 * must be observationally identical to N serial executeOp calls, for
 * every (issueWidth, pipe count) shape, from both clean launch states
 * (where the arithmetic fast path runs) and dirty ones (busy pools,
 * ROB pressure — the fallback loop). The fast path must actually be
 * exercised, not just silently skipped.
 */
TEST(Pipeline, BurstMatchesSerialExecuteOps)
{
    unsigned configIdx = 0;
    for (const unsigned issueWidth : {2u, 4u, 8u}) {
        for (const unsigned pipes : {1u, 2u, 3u}) {
            for (const unsigned robEntries : {6u, 128u}) {
                SystemParams params;
                params.core.issueWidth = issueWidth;
                params.core.scalarPipes = pipes;
                params.core.vectorPipes = pipes;
                params.core.robEntries = robEntries;

                MemorySystem memBurst(params);
                MemorySystem memSerial(params);
                Pipeline burst(params, memBurst);
                Pipeline serial(params, memSerial);

                std::mt19937 rng(0xB0057 + configIdx);
                std::uniform_int_distribution<int> pickOp(0, 5);
                std::uniform_int_distribution<unsigned> pickCount(0,
                                                                  24);
                std::uniform_int_distribution<Addr> pickAddr(
                    0, 1 << 16);
                for (int step = 0; step < 1500; ++step) {
                    const int op = pickOp(rng);
                    if (op <= 2) {
                        const unsigned count = pickCount(rng);
                        const OpClass cls = op == 2
                                                ? OpClass::VecAlu
                                                : OpClass::ScalarAlu;
                        burst.executeOpBurst(cls, count);
                        for (unsigned i = 0; i < count; ++i)
                            serial.executeOp(cls, {});
                    } else if (op == 3) {
                        // Dirty the pools and the ROB with a
                        // long-latency op so bursts launch from busy
                        // states too.
                        burst.executeOp(OpClass::VecReduce, {});
                        serial.executeOp(OpClass::VecReduce, {});
                    } else if (op == 4) {
                        const Addr addr = pickAddr(rng);
                        burst.executeMem(OpClass::ScalarLoad, 7, addr,
                                         8, {});
                        serial.executeMem(OpClass::ScalarLoad, 7,
                                          addr, 8, {});
                    } else {
                        burst.bubble(2, StallKind::Frontend);
                        serial.bubble(2, StallKind::Frontend);
                    }
                    expectSameObservables(burst, serial, configIdx,
                                          step);
                }
                // The arithmetic path must have handled real bursts
                // (the roomy-ROB configs can't have dodged it).
                if (robEntries == 128) {
                    EXPECT_GT(burst.burstFastPaths(), 0u)
                        << "config " << configIdx;
                }
                ++configIdx;
            }
        }
    }
}

} // namespace
} // namespace quetzal::sim
