/**
 * @file
 * qz-merge: reassemble the per-shard JSON reports of one partitioned
 * bench sweep (QZ_BENCH_SHARD=K/N) into the report an unsharded run
 * would have produced — byte-identical, since both paths share the
 * algos::toJson(BenchReport) serializer.
 *
 *   qz-merge shard_1.json shard_2.json shard_3.json
 *   qz-merge shard_*.json --out merged.json
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "algos/report.hpp"
#include "cli_common.hpp"

namespace {

using namespace quetzal;

/** Parse one shard report file; fatal() names the offending file. */
algos::BenchReport
loadShardReport(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open '{}'", path);
    std::ostringstream text;
    text << in.rdbuf();
    const auto json = parseJson(text.str());
    fatal_if(!json, "'{}' is not valid JSON", path);
    auto report = algos::benchReportFromJson(*json);
    fatal_if(!report, "'{}' is not a bench report", path);
    fatal_if(!report->shard,
             "'{}' has no shard member — merge wants the per-shard "
             "files QZ_BENCH_SHARD runs emit",
             path);
    return std::move(*report);
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const cli::Args args(argc, argv);
        if (args.has("help") || args.positional().empty()) {
            std::cout
                << "qz-merge SHARD.json... [options]\n"
                   "  merge the per-shard QZ_BENCH_JSON reports of one\n"
                   "  QZ_BENCH_SHARD=K/N sweep into output "
                   "byte-identical\n"
                   "  to the unsharded run's report\n"
                   "  --out FILE   write the merged report to FILE\n"
                   "               (default: stdout)\n";
            return args.has("help") ? 0 : 2;
        }

        std::vector<algos::BenchReport> shards;
        for (const std::string &path : args.positional())
            shards.push_back(loadShardReport(path));
        const algos::BenchReport merged =
            algos::mergeShardReports(std::move(shards));
        const std::string json = algos::toJson(merged);

        if (args.has("out")) {
            std::ofstream out(args.get("out"));
            fatal_if(!out, "cannot open '{}' for writing",
                     args.get("out"));
            out << json << "\n";
            std::cerr << "merged " << args.positional().size()
                      << " shard(s) into " << args.get("out") << "\n";
        } else {
            std::cout << json << "\n";
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
