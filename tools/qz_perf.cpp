/**
 * @file
 * qz-perf: host-throughput harness for the simulator itself.
 *
 * Sweeps the Fig. 13a evaluation matrix (or the pinned tiny subset)
 * and reports how fast the *host* simulated it: wall-clock per cell,
 * simulated instructions per second, memory accesses per second. The
 * simulated metrics are untouched observables — the point of the
 * harness is to pin them (via --metrics against the golden snapshot)
 * while tracking host throughput across revisions in
 * BENCH_hostperf.json (see docs/SIMULATOR.md, "Host performance").
 *
 * Usage:
 *   qz-perf [--tiny | --kernels | --store S] [--scale S] [--threads N]
 *           [--repeat R] [--label NAME] [--out FILE] [--append]
 *           [--metrics FILE] [--phase]
 *
 *  --tiny     sweep the 12-cell golden subset instead of Fig. 13a
 *  --kernels  sweep the Fig. 15b kernel cells (histogram/SpMV) at the
 *             pinned tiny scale instead of Fig. 13a
 *  --store    stream one read-store range (FILE[:FROM-TO],
 *             docs/STORE.md) as a single cell — the large-scale
 *             bounded-memory sweep; --algo/--variant pick the
 *             workload (default SS, qzc). The record gains "pairs"
 *             and "rss_peak_kb" so BENCH_hostperf.json documents
 *             that RSS stays bounded however large the store is
 *  --scale    dataset scale for the full matrix (default 1.0)
 *  --threads  harness workers (default 1: comparable measurements)
 *  --repeat   time R sweeps and keep the fastest (default 1)
 *  --label    name this run carries in the output (default "current")
 *  --out      throughput record path (default BENCH_hostperf.json)
 *  --append   add this run to --out's existing "runs" array, so one
 *             file can hold baseline and current for comparison
 *  --metrics  also write the sweep's BenchReport JSON (simulated
 *             metrics only) for diffing against the golden snapshot
 *  --phase    attribute host time to simulator phases (memory system /
 *             rest of the timing pipeline / host-SIMD functional
 *             kernels / scalar+harness remainder) via sim::HostPhase
 *             scopes; single-thread only, and the breakdown is
 *             reported for the fastest sweep's phase profile
 *             (phase_mem_ns, phase_pipeline_ns,
 *             phase_functional_simd_ns, phase_functional_scalar_ns)
 *
 * Every run record also names the resolved host-SIMD backend
 * ("backend"/"compiler"/"simd_flags"), so throughput rows from
 * different machines or QZ_HOST_SIMD settings stay comparable.
 *
 * Deliberately restricted to long-stable APIs so the same source can
 * be compiled against an older revision to produce the baseline run.
 */
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <sys/resource.h>

#include "algos/batch.hpp"
#include "algos/report.hpp"
#include "algos/workload.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "genomics/store.hpp"
#include "isa/hostsimd.hpp"
#include "sim/hostphase.hpp"
#include "cli_common.hpp"
#include "perf_matrix.hpp"

namespace {

using namespace quetzal;

/** Host-time phase profile of one sweep (see sim::HostPhase). */
struct PhaseProfile
{
    std::uint64_t memNs = 0;      //!< MemorySystem access + translate
    std::uint64_t pipelineNs = 0; //!< Pipeline entry points, minus mem
    std::uint64_t funcSimdNs = 0; //!< dispatched host-SIMD kernel table
    std::uint64_t funcScalarNs = 0; //!< remaining facade + harness
};

/** Snapshot the HostPhase counters against @p totalNs wall time. */
PhaseProfile
capturePhases(std::uint64_t totalNs)
{
    PhaseProfile prof;
    prof.memNs = sim::HostPhase::nanos(sim::HostPhase::Mem);
    const std::uint64_t pipeTotal =
        sim::HostPhase::nanos(sim::HostPhase::Pipeline);
    // Every MemorySystem access happens under a Pipeline entry point,
    // so the exclusive pipeline share is the difference; clamp anyway
    // so clock jitter can never wrap the unsigned subtraction.
    prof.pipelineNs = pipeTotal > prof.memNs ? pipeTotal - prof.memNs : 0;
    // The functional share splits into time inside the dispatched
    // host-SIMD kernel table (kind Func — on a scalar-only build these
    // are the scalar reference kernels reached through the same
    // dispatch) and everything else: facade bookkeeping, algorithm
    // control flow, the harness.
    prof.funcSimdNs = sim::HostPhase::nanos(sim::HostPhase::Func);
    const std::uint64_t accounted =
        prof.memNs + prof.pipelineNs + prof.funcSimdNs;
    prof.funcScalarNs = totalNs > accounted ? totalNs - accounted : 0;
    return prof;
}

/** Peak resident set size of this process so far, in KiB. */
std::uint64_t
peakRssKb()
{
    struct rusage usage = {};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return static_cast<std::uint64_t>(usage.ru_maxrss);
}

/**
 * Serialize one run record (flat object, no trailing newline).
 * @p pairs and @p rssPeakKb are recorded for store sweeps only
 * (pairs > 0) — they document the bounded-memory claim.
 */
std::string
runRecord(const std::string &label, const std::string &matrix,
          double scale, unsigned threads, std::size_t cells,
          unsigned repeat, std::uint64_t hostNs,
          const algos::BatchOutcome &outcome,
          const PhaseProfile *phases, std::uint64_t pairs = 0,
          std::uint64_t rssPeakKb = 0)
{
    std::uint64_t instructions = 0, memRequests = 0, cycles = 0,
                  dramBytes = 0;
    for (const auto &result : outcome.results) {
        instructions += result.instructions;
        memRequests += result.memRequests;
        cycles += result.cycles;
        dramBytes += result.dramBytes;
    }
    const double seconds = static_cast<double>(hostNs) / 1e9;
    JsonWriter json;
    json.beginObject()
        .field("label", label)
        .field("backend", isa::hostSimd().name)
        .field("compiler", isa::hostSimdCompiler())
        .field("simd_flags", isa::hostSimdBuildFlags())
        .field("matrix", matrix)
        .field("scale", scale)
        .field("threads", std::uint64_t{threads})
        .field("repeat", std::uint64_t{repeat})
        .field("cells", std::uint64_t{cells})
        .field("host_ns", hostNs)
        .field("ns_per_cell",
               cells == 0 ? 0.0
                          : static_cast<double>(hostNs) /
                                static_cast<double>(cells))
        .field("sim_cycles", cycles)
        .field("sim_instructions", instructions)
        .field("sim_mem_requests", memRequests)
        .field("sim_dram_bytes", dramBytes)
        .field("instructions_per_sec",
               seconds == 0.0 ? 0.0
                              : static_cast<double>(instructions) /
                                    seconds)
        .field("accesses_per_sec",
               seconds == 0.0 ? 0.0
                              : static_cast<double>(memRequests) /
                                    seconds);
    if (pairs > 0)
        json.field("pairs", pairs)
            .field("rss_peak_kb", rssPeakKb);
    if (phases != nullptr)
        json.field("phase_mem_ns", phases->memNs)
            .field("phase_pipeline_ns", phases->pipelineNs)
            .field("phase_functional_simd_ns", phases->funcSimdNs)
            .field("phase_functional_scalar_ns", phases->funcScalarNs);
    json.endObject();
    return json.str();
}

/**
 * Strip whitespace outside string literals: every row lands in the
 * file in one canonical compact shape no matter which revision of the
 * tool (or a hand edit) produced it. Works on the raw text, so the
 * numeric fields keep their exact original spelling — reformatting
 * must never change what a row *says*.
 */
std::string
compactJson(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    bool inString = false;
    bool escaped = false;
    for (const char c : text) {
        if (inString) {
            out.push_back(c);
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            continue;
        out.push_back(c);
        if (c == '"')
            inString = true;
    }
    return out;
}

/**
 * Split the top-level elements of the runs array out of the raw file
 * text (string-aware bracket scan between the array's '[' and its
 * matching ']'). Raw spans, not re-serialized values: appending a row
 * must leave every existing row's text — numbers included —
 * byte-for-byte intact.
 */
std::vector<std::string>
splitRuns(const std::string &text)
{
    std::vector<std::string> rows;
    const std::size_t open = text.find('[');
    fatal_if(open == std::string::npos, "runs file has no array");
    int depth = 0;
    bool inString = false;
    bool escaped = false;
    std::size_t start = std::string::npos;
    for (std::size_t i = open + 1; i < text.size(); ++i) {
        const char c = text[i];
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"') {
            inString = true;
        } else if (c == '{' || c == '[') {
            if (depth == 0 && start == std::string::npos)
                start = i;
            ++depth;
        } else if (c == '}') {
            --depth;
            if (depth == 0) {
                rows.push_back(text.substr(start, i - start + 1));
                start = std::string::npos;
            }
        } else if (c == ']') {
            if (depth == 0)
                break;
            --depth;
        }
    }
    return rows;
}

/**
 * Write {"runs":[...]} to @p path, one compact row per line (stable
 * shape for diffs and for baseline/current comparisons). With
 * @p append, the existing rows are carried over verbatim modulo
 * whitespace normalization; a file that is not this tool's own fixed
 * shape is a fatal diagnostic, not data loss — the original text is
 * left untouched on failure.
 */
void
writeRuns(const std::string &path, const std::string &record,
          bool append)
{
    std::vector<std::string> rows;
    if (append) {
        std::ifstream in(path);
        if (in) {
            std::stringstream buffer;
            buffer << in.rdbuf();
            const std::string text = buffer.str();
            if (!text.empty()) {
                const auto parsed = parseJson(text);
                fatal_if(!parsed || !parsed->isObject() ||
                             !parsed->find("runs") ||
                             !parsed->find("runs")->isArray(),
                         "'{}' is not a qz-perf runs file; refusing "
                         "to append",
                         path);
                for (const std::string &row : splitRuns(text))
                    rows.push_back(compactJson(row));
            }
        }
    }
    rows.push_back(compactJson(record));

    std::ofstream file(path);
    fatal_if(!file, "cannot open '{}' for writing", path);
    file << "{\"runs\":[\n";
    for (std::size_t i = 0; i < rows.size(); ++i)
        file << rows[i] << (i + 1 < rows.size() ? ",\n" : "\n");
    file << "]}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace quetzal;
    cli::Args args(argc, argv);

    const bool tiny = args.has("tiny");
    const bool kernels = args.has("kernels");
    const double scale = args.getDouble("scale", 1.0);
    const unsigned threads =
        static_cast<unsigned>(args.getInt("threads", 1));
    const unsigned repeat =
        static_cast<unsigned>(args.getInt("repeat", 1));
    const std::string label = args.get("label", "current");
    const std::string outPath = args.get("out", "BENCH_hostperf.json");
    const std::string metricsPath = args.get("metrics");
    const bool phase = args.has("phase");
    const std::string storeTarget = args.get("store");
    fatal_if(repeat == 0, "--repeat must be at least 1");
    fatal_if(tiny && kernels, "--tiny and --kernels are exclusive");
    fatal_if(!storeTarget.empty() && (tiny || kernels),
             "--store is exclusive with --tiny/--kernels");
    fatal_if(phase && threads != 1,
             "--phase needs --threads 1: the functional share is "
             "derived from single-threaded wall time");

    // --store: one cell streaming a read-store range. A single cell
    // keeps the summed metrics deterministic (per-pair cycle counts
    // depend on the cache state the preceding pairs left, so any
    // partitioning would change the totals) and is exactly the
    // bounded-RSS configuration the record documents.
    std::shared_ptr<const genomics::PairSource> storeSource;
    const algos::Workload *storeWorkload = nullptr;
    algos::RunOptions storeOptions;
    double recordedScale = (tiny || kernels) ? perf::kTinyScale : scale;
    std::string matrix = kernels ? "kernels" : (tiny ? "tiny" : "fig13a");
    if (!storeTarget.empty()) {
        const genomics::StoreTarget target =
            genomics::parseStoreTarget(storeTarget);
        auto store = genomics::openStoreShared(target.path);
        fatal_if(target.from > store->size(),
                 "store range starts at pair {} but '{}' holds only "
                 "{} pair(s)",
                 target.from, target.path, store->size());
        recordedScale = store->provenance().scale;
        matrix = "store";
        storeSource = std::make_shared<genomics::StorePairSource>(
            std::move(store), target.from, target.to);
        storeWorkload =
            &algos::workloadByName(args.get("algo", "SS"));
        storeOptions.variant =
            cli::parseVariant(args.get("variant", "qzc"));
    }

    std::cout << "qz-perf: sweeping the " << matrix << " matrix (scale "
              << recordedScale << ", " << threads << " thread(s), "
              << repeat << " repeat(s))\n"
              << "  host backend:   " << isa::hostSimd().name << " ("
              << isa::hostSimdCompiler() << ")\n";

    algos::BatchRunner runner(threads);
    // Host timing must measure this process's sweep, whole and alone:
    // neutralize sharding and fault injection inherited from the
    // environment.
    runner.setShard(std::nullopt);
    runner.setFaultInjection(std::nullopt);

    sim::HostPhase::setEnabled(phase);
    std::uint64_t bestNs = ~std::uint64_t{0};
    std::size_t cells = 0;
    algos::BatchOutcome outcome;
    PhaseProfile phases;
    for (unsigned r = 0; r < repeat; ++r) {
        if (storeSource) {
            runner.add(*storeWorkload, storeSource, storeOptions);
            cells = 1;
        } else {
            cells = kernels ? perf::addKernelMatrix(runner)
                            : perf::addPerfMatrix(runner, scale, tiny);
        }
        sim::HostPhase::reset();
        const auto started = std::chrono::steady_clock::now();
        algos::BatchOutcome sweep = runner.run();
        const auto ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - started)
                .count());
        for (const auto &failure : sweep.failures)
            warn("cell {} [{}] failed: {}", failure.cell, failure.key,
                 failure.message);
        if (ns < bestNs) {
            bestNs = ns;
            outcome = std::move(sweep);
            if (phase)
                phases = capturePhases(ns);
        }
    }

    const std::uint64_t storePairs =
        storeSource ? std::uint64_t{storeSource->size()} : 0;
    const std::uint64_t rssKb = storeSource ? peakRssKb() : 0;
    const std::string record =
        runRecord(label, matrix, recordedScale, threads, cells, repeat,
                  bestNs, outcome, phase ? &phases : nullptr,
                  storePairs, rssKb);
    std::uint64_t instructions = 0, memRequests = 0;
    for (const auto &result : outcome.results) {
        instructions += result.instructions;
        memRequests += result.memRequests;
    }
    const double seconds = static_cast<double>(bestNs) / 1e9;
    std::cout << "  cells:          " << cells << "\n"
              << "  host time:      " << seconds << " s ("
              << (cells == 0 ? 0.0
                             : static_cast<double>(bestNs) /
                                   static_cast<double>(cells) / 1e6)
              << " ms/cell)\n"
              << "  sim instr/sec:  "
              << (seconds == 0.0
                      ? 0.0
                      : static_cast<double>(instructions) / seconds)
              << "\n"
              << "  sim access/sec: "
              << (seconds == 0.0
                      ? 0.0
                      : static_cast<double>(memRequests) / seconds)
              << "\n";
    if (storeSource)
        std::cout << "  pairs:          " << storePairs << "\n"
                  << "  peak RSS:       " << rssKb << " KiB\n";
    if (phase) {
        auto pct = [&](std::uint64_t ns) {
            return bestNs == 0 ? 0.0
                               : 100.0 * static_cast<double>(ns) /
                                     static_cast<double>(bestNs);
        };
        std::cout << "  phase breakdown (fastest sweep):\n"
                  << "    memory system:     "
                  << static_cast<double>(phases.memNs) / 1e9 << " s ("
                  << pct(phases.memNs) << "%)\n"
                  << "    timing pipeline:   "
                  << static_cast<double>(phases.pipelineNs) / 1e9
                  << " s (" << pct(phases.pipelineNs) << "%)\n"
                  << "    functional simd:   "
                  << static_cast<double>(phases.funcSimdNs) / 1e9
                  << " s (" << pct(phases.funcSimdNs) << "%)\n"
                  << "    functional scalar: "
                  << static_cast<double>(phases.funcScalarNs) / 1e9
                  << " s (" << pct(phases.funcScalarNs) << "%)\n";
    }
    writeRuns(outPath, record, args.has("append"));

    if (!metricsPath.empty()) {
        const algos::BenchReport report = algos::makeBenchReport(
            "qz-perf", recordedScale, threads, outcome);
        std::ofstream file(metricsPath);
        fatal_if(!file, "cannot open '{}' for writing", metricsPath);
        file << algos::toJson(report) << "\n";
        std::cout << "wrote simulated metrics to " << metricsPath
                  << "\n";
    }
    return outcome.ok() ? 0 : 1;
}
