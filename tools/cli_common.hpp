/**
 * @file
 * Tiny argv helper shared by the command-line tools.
 */
#ifndef QUETZAL_TOOLS_CLI_COMMON_HPP
#define QUETZAL_TOOLS_CLI_COMMON_HPP

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "algos/variant.hpp"
#include "common/logging.hpp"

namespace quetzal::cli {

/** Parsed "--key value" options plus positional arguments. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::string key = arg.substr(2);
                if (i + 1 < argc && argv[i + 1][0] != '-') {
                    options_[key] = argv[++i];
                } else {
                    options_[key] = "1"; // boolean flag
                }
            } else {
                positional_.push_back(std::move(arg));
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback : it->second;
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback
                                    : std::atol(it->second.c_str());
    }

    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback
                                    : std::atof(it->second.c_str());
    }

    bool has(const std::string &key) const
    {
        return options_.contains(key);
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

/** Parse a variant name ("base", "vec", "qz", "qzc"). */
inline algos::Variant
parseVariant(const std::string &name)
{
    if (name == "base")
        return algos::Variant::Base;
    if (name == "vec")
        return algos::Variant::Vec;
    if (name == "qz")
        return algos::Variant::Qz;
    if (name == "qzc" || name == "quetzal")
        return algos::Variant::QzC;
    fatal("unknown variant '{}' (expected base|vec|qz|qzc)", name);
}

} // namespace quetzal::cli

#endif // QUETZAL_TOOLS_CLI_COMMON_HPP
