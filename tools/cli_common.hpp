/**
 * @file
 * Tiny argv helper shared by the command-line tools.
 */
#ifndef QUETZAL_TOOLS_CLI_COMMON_HPP
#define QUETZAL_TOOLS_CLI_COMMON_HPP

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <signal.h>

#include "algos/variant.hpp"
#include "common/logging.hpp"

namespace quetzal::cli {

/**
 * Process-wide stop flag set by SIGINT/SIGTERM once
 * installStopHandlers() ran. Long-running loops poll it (directly or
 * via stopRequested()) so an interrupted run can flush checkpoints
 * and emit a partial report instead of dying with work unrecorded.
 */
inline std::atomic<int> &
stopFlag()
{
    static std::atomic<int> flag{0};
    return flag;
}

inline void
onStopSignal(int)
{
    stopFlag().store(1, std::memory_order_relaxed);
}

/**
 * Install SIGINT/SIGTERM handlers that set stopFlag(). Deliberately
 * no SA_RESTART: a blocked poll()/read() wakes with EINTR, so event
 * loops notice the stop promptly instead of after the next event.
 */
inline void
installStopHandlers()
{
    struct sigaction action = {};
    action.sa_handler = onStopSignal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
}

/** True once a stop signal landed. */
inline bool
stopRequested()
{
    return stopFlag().load(std::memory_order_relaxed) != 0;
}

/**
 * True when @p arg is a numeric literal such as "-5", "-0.3", or
 * "+1e6" — i.e. a leading sign does NOT make it an option name.
 */
inline bool
looksLikeNumber(const std::string &arg)
{
    if (arg.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    std::strtod(arg.c_str(), &end);
    return end == arg.c_str() + arg.size() && errno == 0;
}

/** Parsed "--key value" options plus positional arguments. */
class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                const std::string key = arg.substr(2);
                // The next argv is this option's value unless it is
                // itself an option. A leading '-' only disqualifies it
                // when it isn't a number: "--ssthreshold -5" must bind
                // -5 as the value, not turn the option into a flag
                // with a stray "-5" positional.
                if (i + 1 < argc &&
                    (argv[i + 1][0] != '-' ||
                     looksLikeNumber(argv[i + 1]))) {
                    options_.insert_or_assign(key,
                                              std::string(argv[++i]));
                } else {
                    options_.insert_or_assign(key,
                                              std::string("1")); // flag
                }
            } else {
                positional_.push_back(std::move(arg));
            }
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback = "") const
    {
        auto it = options_.find(key);
        return it == options_.end() ? fallback : it->second;
    }

    /**
     * Integer option value. Malformed input is a fatal diagnostic —
     * the old atol() path silently turned garbage into 0.
     */
    long
    getInt(const std::string &key, long fallback) const
    {
        auto it = options_.find(key);
        if (it == options_.end())
            return fallback;
        errno = 0;
        char *end = nullptr;
        const long value = std::strtol(it->second.c_str(), &end, 10);
        fatal_if(it->second.empty() ||
                     end != it->second.c_str() + it->second.size(),
                 "option --{} expects an integer, got '{}'", key,
                 it->second);
        fatal_if(errno == ERANGE,
                 "option --{} value '{}' is out of range", key,
                 it->second);
        return value;
    }

    /** Floating-point option value; malformed input is fatal. */
    double
    getDouble(const std::string &key, double fallback) const
    {
        auto it = options_.find(key);
        if (it == options_.end())
            return fallback;
        errno = 0;
        char *end = nullptr;
        const double value = std::strtod(it->second.c_str(), &end);
        fatal_if(it->second.empty() ||
                     end != it->second.c_str() + it->second.size(),
                 "option --{} expects a number, got '{}'", key,
                 it->second);
        fatal_if(errno == ERANGE,
                 "option --{} value '{}' is out of range", key,
                 it->second);
        return value;
    }

    bool has(const std::string &key) const
    {
        return options_.contains(key);
    }

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> options_;
    std::vector<std::string> positional_;
};

/** Parse a variant name ("base", "vec", "qz", "qzc"). */
inline algos::Variant
parseVariant(const std::string &name)
{
    if (name == "base")
        return algos::Variant::Base;
    if (name == "vec")
        return algos::Variant::Vec;
    if (name == "qz")
        return algos::Variant::Qz;
    if (name == "qzc" || name == "quetzal")
        return algos::Variant::QzC;
    fatal("unknown variant '{}' (expected base|vec|qz|qzc)", name);
}

} // namespace quetzal::cli

#endif // QUETZAL_TOOLS_CLI_COMMON_HPP
