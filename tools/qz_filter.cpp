/**
 * @file
 * qz-filter: SneakySnake pre-alignment filtering of a pair file.
 *
 *   qz-filter pairs.txt --threshold 8
 *   qz-filter pairs.txt --variant vec --accepted kept.txt
 */
#include <fstream>
#include <iostream>
#include <optional>

#include "algos/shouji.hpp"
#include "algos/sneakysnake.hpp"
#include "cli_common.hpp"
#include "genomics/fasta.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

int
main(int argc, char **argv)
{
    using namespace quetzal;
    using algos::Variant;
    try {
        const cli::Args args(argc, argv);
        if (args.has("help") || args.positional().empty()) {
            std::cout
                << "qz-filter PAIRFILE [options]\n"
                   "  --threshold E   edit threshold (default: 5% of "
                   "the read length)\n"
                   "  --variant V     base|vec|qz|qzc (default qzc)\n"
                   "  --filter F      sneakysnake|shouji (default "
                   "sneakysnake)\n"
                   "  --accepted F    write accepted pairs to F\n"
                   "  --verbose       per-pair verdicts\n";
            return args.has("help") ? 0 : 2;
        }

        std::ifstream in(args.positional().front());
        fatal_if(!in, "cannot open '{}'", args.positional().front());
        const auto pairs = genomics::readPairFile(in);
        fatal_if(pairs.empty(), "no pairs in '{}'",
                 args.positional().front());

        const Variant variant =
            cli::parseVariant(args.get("variant", "qzc"));
        sim::SimContext core(algos::needsQuetzal(variant)
                                 ? sim::SystemParams::withQuetzal()
                                 : sim::SystemParams::baseline());
        isa::VectorUnit vpu(core.pipeline());
        std::optional<accel::QzUnit> qz;
        if (algos::needsQuetzal(variant))
            qz.emplace(vpu, core.params().quetzal);
        auto engine =
            algos::makeSsEngine(variant, &vpu, qz ? &*qz : nullptr);
        const bool useShouji = args.get("filter") == "shouji";

        std::vector<genomics::SequencePair> accepted;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            const std::int64_t threshold =
                args.has("threshold")
                    ? args.getInt("threshold", 0)
                    : algos::defaultSsThreshold(
                          pairs[i].pattern.size(), 0.033);
            bool ok;
            std::int64_t bound;
            if (useShouji) {
                const auto verdict = algos::shouji(
                    variant, pairs[i].pattern, pairs[i].text,
                    threshold, &vpu, qz ? &*qz : nullptr);
                ok = verdict.accepted;
                bound = verdict.zeroCount;
            } else {
                algos::SsConfig config;
                config.editThreshold = threshold;
                const auto verdict = algos::sneakySnake(
                    *engine, pairs[i].pattern, pairs[i].text, config);
                ok = verdict.accepted;
                bound = verdict.editBound;
            }
            if (ok)
                accepted.push_back(pairs[i]);
            if (args.has("verbose"))
                std::cout << "pair " << i << ": "
                          << (ok ? "ACCEPT" : "reject")
                          << " (edit bound " << bound << ", E "
                          << threshold << ")\n";
        }

        std::cout << "accepted " << accepted.size() << " / "
                  << pairs.size() << " pairs ("
                  << core.pipeline().totalCycles()
                  << " simulated cycles)\n";
        if (args.has("accepted")) {
            std::ofstream out(args.get("accepted"));
            fatal_if(!out, "cannot open '{}' for writing",
                     args.get("accepted"));
            genomics::writePairFile(out, accepted);
            std::cout << "wrote accepted pairs to "
                      << args.get("accepted") << "\n";
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
