/**
 * @file
 * qz-filter: SneakySnake pre-alignment filtering of a pair file.
 *
 *   qz-filter pairs.txt --threshold 8
 *   qz-filter pairs.txt --variant vec --accepted kept.txt
 *   qz-filter pairs.txt --threads 8    # shard across workers
 *   qz-filter --store reads.qzs:0-50000  # on-disk store range
 */
#include <algorithm>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>

#include "algos/batch.hpp"
#include "algos/shouji.hpp"
#include "algos/sneakysnake.hpp"
#include "algos/workload.hpp"
#include "cli_common.hpp"
#include "common/json.hpp"
#include "common/threadpool.hpp"
#include "genomics/datasets.hpp"
#include "genomics/fasta.hpp"
#include "pair_input.hpp"
#include "quetzal/qzunit.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/context.hpp"

int
main(int argc, char **argv)
{
    using namespace quetzal;
    using algos::Variant;
    try {
        const cli::Args args(argc, argv);
        if (args.has("list")) {
            std::cout << algos::workloadListing();
            return 0;
        }
        if (args.has("help") ||
            (args.positional().empty() && !args.has("store"))) {
            std::cout
                << "qz-filter PAIRFILE [options]\n"
                   "qz-filter --store FILE[:FROM-TO] [options]\n"
                   "  --store S       stream an indexed read store "
                   "range (docs/STORE.md)\n"
                   "  --threshold E   edit threshold (default: 5% of "
                   "the read length)\n"
                   "  --variant V     base|vec|qz|qzc (default qzc)\n"
                   "  --filter F      sneakysnake|shouji (default "
                   "sneakysnake)\n"
                   "  --accepted F    write accepted pairs to F\n"
                   "  --threads N     split pairs across N simulated "
                   "cores (default 1)\n"
                   "  --shard K/N     filter only pairs with index % N "
                   "== K-1 (multi-process runs)\n"
                   "  --checkpoint F  resume per-pair verdicts from F "
                   "(JSONL, crash-safe)\n"
                   "  --serve         round-trip the pairs through a "
                   "qz-serve worker\n"
                   "                  and verify byte-identical "
                   "results\n"
                   "  --list          print the registered workloads "
                   "and exit\n"
                   "  --verbose       per-pair verdicts\n"
                   "SIGINT/SIGTERM flush the checkpoint and emit a "
                   "partial JSON report\n";
            return args.has("help") ? 0 : 2;
        }
        cli::installStopHandlers();

        const cli::PairInput input = cli::openPairInput(args);

        const Variant variant =
            cli::parseVariant(args.get("variant", "qzc"));
        const bool useShouji = args.get("filter") == "shouji";
        const long threadsOpt = args.getInt("threads", 1);
        fatal_if(threadsOpt < 1, "--threads must be at least 1");

        // --serve: round-trip the pair file through a pooled
        // qz-serve worker running the SS workload and require a
        // byte-identical RunResult (docs/SERVICE.md).
        if (args.has("serve")) {
            for (const char *unsupported :
                 {"shard", "checkpoint", "accepted", "verbose"})
                fatal_if(args.has(unsupported),
                         "--serve does not support --{}",
                         unsupported);
            fatal_if(useShouji,
                     "--serve supports the SneakySnake workload "
                     "only");
            serve::ServeRequest request;
            request.workload = "SS";
            request.variant = args.get("variant", "qzc");
            // Inline-pair datasets carry no nominal read length, so
            // the threshold the per-pair loop below would derive must
            // travel explicitly with the request.
            request.ssThreshold =
                args.has("threshold")
                    ? args.getInt("threshold", 0)
                    : algos::defaultSsThreshold(
                          input.pair(input.begin()).pattern.size(),
                          0.033);
            if (input.backedByStore()) {
                request.store = input.path();
                request.storeFrom = input.begin();
                request.storeTo = input.end();
            } else {
                request.pairs = input.filePairs();
            }
            return serve::serveRoundTripCheck(request, std::cout)
                       ? 0
                       : 1;
        }

        // --shard K/N: same round-robin pair ownership as qz-align
        // and the batch engine's QZ_BENCH_SHARD, over GLOBAL indices
        // (store ranges shard identically to the equivalent file).
        const std::optional<algos::ShardSpec> shard =
            algos::parseShardSpec(args.get("shard", ""));
        std::vector<std::size_t> ownedPairs;
        for (std::size_t i = input.begin(); i < input.end(); ++i)
            if (!shard || shard->owns(i))
                ownedPairs.push_back(i);

        const unsigned threads = static_cast<unsigned>(std::max<
            std::size_t>(
            1, std::min<std::size_t>(
                   static_cast<std::size_t>(threadsOpt),
                   ownedPairs.size())));

        struct Verdict
        {
            bool ok = false;
            std::int64_t bound = 0;
            std::int64_t threshold = 0;
        };
        // count()-sized, LOCAL-slot-indexed state; every printed or
        // checkpointed identifier stays the global pair index.
        std::vector<Verdict> verdicts(input.count());
        std::vector<std::string> pairErrors(input.count());
        std::vector<char> done(input.count(), 0);
        std::vector<std::uint64_t> workerCycles(threads, 0);

        // --checkpoint: one JSONL verdict per pair, flushed as
        // written; torn trailing lines are truncated away exactly
        // like the batch engine's checkpoint.
        const std::string ckptPath = args.get("checkpoint", "");
        std::ofstream ckptOut;
        std::mutex ckptMutex;
        if (!ckptPath.empty()) {
            algos::truncateTornCheckpointTail(ckptPath);
            std::ifstream ckptIn(ckptPath);
            std::string line;
            std::size_t resumed = 0;
            while (std::getline(ckptIn, line)) {
                if (line.empty())
                    continue;
                const auto json = parseJson(line);
                if (!json || !json->isObject() ||
                    !json->find("pair"))
                    continue;
                const std::size_t i =
                    static_cast<std::size_t>(json->getUint("pair"));
                if (!input.contains(i) || done[input.slot(i)])
                    continue;
                const std::size_t s = input.slot(i);
                verdicts[s].ok = json->getBool("ok");
                verdicts[s].bound = json->getInt("bound");
                verdicts[s].threshold = json->getInt("threshold");
                done[s] = 1;
                ++resumed;
            }
            if (resumed > 0)
                std::cout << "checkpoint: resumed " << resumed
                          << " pair(s) from " << ckptPath << "\n";
            ckptOut.open(ckptPath, std::ios::app);
            if (!ckptOut)
                warn("cannot open checkpoint '{}' for appending; "
                     "this run will not be resumable",
                     ckptPath);
        }

        // Contiguous ranges of the owned pairs, one fresh simulated
        // core per worker; verdicts keep their pair index so the
        // report (and the --threads 1 output itself) matches the
        // serial run.
        const std::size_t perWorker =
            (ownedPairs.size() + threads - 1) / threads;
        parallelFor(threads, threads, [&](std::size_t s) {
            const std::size_t lo = s * perWorker;
            const std::size_t hi =
                std::min(ownedPairs.size(), lo + perWorker);
            sim::SimContext core(algos::needsQuetzal(variant)
                                     ? sim::SystemParams::withQuetzal()
                                     : sim::SystemParams::baseline());
            isa::VectorUnit vpu(core.pipeline());
            std::optional<accel::QzUnit> qz;
            if (algos::needsQuetzal(variant))
                qz.emplace(vpu, core.params().quetzal);
            auto engine =
                algos::makeSsEngine(variant, &vpu, qz ? &*qz : nullptr);

            // A failing pair is recorded and filtered out (rejected);
            // the remaining pairs still get verdicts.
            for (std::size_t j = lo; j < hi; ++j) {
                if (cli::stopRequested())
                    break; // flush what is recorded and report
                const std::size_t i = ownedPairs[j];
                const std::size_t s = input.slot(i);
                if (done[s])
                    continue; // resumed from the checkpoint
                core.mem().newEpoch();
                Verdict &v = verdicts[s];
                try {
                    const genomics::SequencePair pair = input.pair(i);
                    genomics::validatePair(pair, pair.alphabet, i,
                                           "qz-filter");
                    v.threshold =
                        args.has("threshold")
                            ? args.getInt("threshold", 0)
                            : algos::defaultSsThreshold(
                                  pair.pattern.size(), 0.033);
                    if (useShouji) {
                        const auto verdict = algos::shouji(
                            variant, pair.pattern, pair.text,
                            v.threshold, &vpu, qz ? &*qz : nullptr);
                        v.ok = verdict.accepted;
                        v.bound = verdict.zeroCount;
                    } else {
                        algos::SsConfig config;
                        config.editThreshold = v.threshold;
                        const auto verdict = algos::sneakySnake(
                            *engine, pair.pattern, pair.text,
                            config);
                        v.ok = verdict.accepted;
                        v.bound = verdict.editBound;
                    }
                    if (ckptOut.is_open()) {
                        JsonWriter json;
                        json.beginObject()
                            .field("pair", std::uint64_t{i})
                            .field("ok", v.ok)
                            .field("bound", std::int64_t{v.bound})
                            .field("threshold",
                                   std::int64_t{v.threshold})
                            .endObject();
                        std::lock_guard<std::mutex> lock(ckptMutex);
                        ckptOut << json.str()
                                << std::endl; // flush: crash safety
                    }
                } catch (const std::exception &e) {
                    pairErrors[s] = e.what();
                    v.ok = false;
                }
                done[s] = 1;
            }
            workerCycles[s] = core.pipeline().totalCycles();
        });
        if (ckptOut.is_open())
            ckptOut.close(); // flushed before any report below

        std::vector<genomics::SequencePair> accepted;
        std::size_t failedPairs = 0;
        std::size_t skippedPairs = 0;
        for (const std::size_t i : ownedPairs) {
            const std::size_t s = input.slot(i);
            const Verdict &v = verdicts[s];
            if (!done[s]) {
                ++skippedPairs; // interrupted before this pair ran
                continue;
            }
            if (!pairErrors[s].empty()) {
                ++failedPairs;
                std::cout << "pair " << i << ": FAILED ("
                          << pairErrors[s] << ")\n";
                continue;
            }
            if (v.ok)
                accepted.push_back(input.pair(i));
            if (args.has("verbose"))
                std::cout << "pair " << i << ": "
                          << (v.ok ? "ACCEPT" : "reject")
                          << " (edit bound " << v.bound << ", E "
                          << v.threshold << ")\n";
        }

        std::uint64_t cycles = 0;
        for (const auto c : workerCycles)
            cycles += c;
        if (shard)
            std::cout << "shard " << algos::shardName(*shard) << ": "
                      << ownedPairs.size() << " of " << input.count()
                      << " pair(s) owned\n";
        std::cout << "accepted " << accepted.size() << " / "
                  << ownedPairs.size() << " pairs (" << cycles
                  << " simulated cycles";
        if (threads > 1)
            std::cout << " summed over " << threads
                      << " simulated cores";
        std::cout << ")\n";
        if (args.has("accepted")) {
            std::ofstream out(args.get("accepted"));
            fatal_if(!out, "cannot open '{}' for writing",
                     args.get("accepted"));
            genomics::writePairFile(out, accepted);
            std::cout << "wrote accepted pairs to "
                      << args.get("accepted") << "\n";
        }
        // Interrupted: the checkpoint is already flushed; emit a
        // partial JSON report and exit nonzero.
        if (cli::stopRequested()) {
            JsonWriter json;
            json.beginObject()
                .field("tool", "qz-filter")
                .field("partial", true)
                .field("input", input.origin())
                .field("filter",
                       useShouji ? "shouji" : "sneakysnake")
                .field("variant", args.get("variant", "qzc"))
                .field("completed",
                       std::uint64_t{ownedPairs.size() -
                                     failedPairs - skippedPairs})
                .field("failed", std::uint64_t{failedPairs})
                .field("not_attempted", std::uint64_t{skippedPairs})
                .field("owned", std::uint64_t{ownedPairs.size()})
                .field("accepted", std::uint64_t{accepted.size()});
            if (!ckptPath.empty())
                json.field("checkpoint", ckptPath);
            json.endObject();
            std::cout << json.str() << "\n";
            std::cerr << "interrupted: " << skippedPairs
                      << " pair(s) not attempted"
                      << (ckptPath.empty()
                              ? ""
                              : "; rerun with the same --checkpoint "
                                "to resume")
                      << "\n";
            return 130;
        }
        if (failedPairs > 0) {
            std::cerr << "error: " << failedPairs << " of "
                      << ownedPairs.size()
                      << " pair(s) failed (see FAILED lines above)\n";
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
