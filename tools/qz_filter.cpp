/**
 * @file
 * qz-filter: SneakySnake pre-alignment filtering of a pair file.
 *
 *   qz-filter pairs.txt --threshold 8
 *   qz-filter pairs.txt --variant vec --accepted kept.txt
 *   qz-filter pairs.txt --threads 8    # shard across workers
 */
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>

#include "algos/batch.hpp"
#include "algos/shouji.hpp"
#include "algos/sneakysnake.hpp"
#include "algos/workload.hpp"
#include "cli_common.hpp"
#include "common/threadpool.hpp"
#include "genomics/datasets.hpp"
#include "genomics/fasta.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

int
main(int argc, char **argv)
{
    using namespace quetzal;
    using algos::Variant;
    try {
        const cli::Args args(argc, argv);
        if (args.has("list")) {
            std::cout << algos::workloadListing();
            return 0;
        }
        if (args.has("help") || args.positional().empty()) {
            std::cout
                << "qz-filter PAIRFILE [options]\n"
                   "  --threshold E   edit threshold (default: 5% of "
                   "the read length)\n"
                   "  --variant V     base|vec|qz|qzc (default qzc)\n"
                   "  --filter F      sneakysnake|shouji (default "
                   "sneakysnake)\n"
                   "  --accepted F    write accepted pairs to F\n"
                   "  --threads N     split pairs across N simulated "
                   "cores (default 1)\n"
                   "  --shard K/N     filter only pairs with index % N "
                   "== K-1 (multi-process runs)\n"
                   "  --list          print the registered workloads "
                   "and exit\n"
                   "  --verbose       per-pair verdicts\n";
            return args.has("help") ? 0 : 2;
        }

        std::ifstream in(args.positional().front());
        fatal_if(!in, "cannot open '{}'", args.positional().front());
        const auto pairs = genomics::readPairFile(in);
        fatal_if(pairs.empty(), "no pairs in '{}'",
                 args.positional().front());

        const Variant variant =
            cli::parseVariant(args.get("variant", "qzc"));
        const bool useShouji = args.get("filter") == "shouji";
        const long threadsOpt = args.getInt("threads", 1);
        fatal_if(threadsOpt < 1, "--threads must be at least 1");

        // --shard K/N: same round-robin pair ownership as qz-align
        // and the batch engine's QZ_BENCH_SHARD.
        const std::optional<algos::ShardSpec> shard =
            algos::parseShardSpec(args.get("shard", ""));
        std::vector<std::size_t> ownedPairs;
        for (std::size_t i = 0; i < pairs.size(); ++i)
            if (!shard || shard->owns(i))
                ownedPairs.push_back(i);

        const unsigned threads = static_cast<unsigned>(std::max<
            std::size_t>(
            1, std::min<std::size_t>(
                   static_cast<std::size_t>(threadsOpt),
                   ownedPairs.size())));

        struct Verdict
        {
            bool ok = false;
            std::int64_t bound = 0;
            std::int64_t threshold = 0;
        };
        std::vector<Verdict> verdicts(pairs.size());
        std::vector<std::string> pairErrors(pairs.size());
        std::vector<std::uint64_t> workerCycles(threads, 0);

        // Contiguous ranges of the owned pairs, one fresh simulated
        // core per worker; verdicts keep their pair index so the
        // report (and the --threads 1 output itself) matches the
        // serial run.
        const std::size_t perWorker =
            (ownedPairs.size() + threads - 1) / threads;
        parallelFor(threads, threads, [&](std::size_t s) {
            const std::size_t lo = s * perWorker;
            const std::size_t hi =
                std::min(ownedPairs.size(), lo + perWorker);
            sim::SimContext core(algos::needsQuetzal(variant)
                                     ? sim::SystemParams::withQuetzal()
                                     : sim::SystemParams::baseline());
            isa::VectorUnit vpu(core.pipeline());
            std::optional<accel::QzUnit> qz;
            if (algos::needsQuetzal(variant))
                qz.emplace(vpu, core.params().quetzal);
            auto engine =
                algos::makeSsEngine(variant, &vpu, qz ? &*qz : nullptr);

            // A failing pair is recorded and filtered out (rejected);
            // the remaining pairs still get verdicts.
            for (std::size_t j = lo; j < hi; ++j) {
                const std::size_t i = ownedPairs[j];
                core.mem().newEpoch();
                Verdict &v = verdicts[i];
                try {
                    genomics::validatePair(pairs[i],
                                           pairs[i].alphabet, i,
                                           "qz-filter");
                    v.threshold =
                        args.has("threshold")
                            ? args.getInt("threshold", 0)
                            : algos::defaultSsThreshold(
                                  pairs[i].pattern.size(), 0.033);
                    if (useShouji) {
                        const auto verdict = algos::shouji(
                            variant, pairs[i].pattern, pairs[i].text,
                            v.threshold, &vpu, qz ? &*qz : nullptr);
                        v.ok = verdict.accepted;
                        v.bound = verdict.zeroCount;
                    } else {
                        algos::SsConfig config;
                        config.editThreshold = v.threshold;
                        const auto verdict = algos::sneakySnake(
                            *engine, pairs[i].pattern, pairs[i].text,
                            config);
                        v.ok = verdict.accepted;
                        v.bound = verdict.editBound;
                    }
                } catch (const std::exception &e) {
                    pairErrors[i] = e.what();
                    v.ok = false;
                }
            }
            workerCycles[s] = core.pipeline().totalCycles();
        });

        std::vector<genomics::SequencePair> accepted;
        std::size_t failedPairs = 0;
        for (const std::size_t i : ownedPairs) {
            const Verdict &v = verdicts[i];
            if (!pairErrors[i].empty()) {
                ++failedPairs;
                std::cout << "pair " << i << ": FAILED ("
                          << pairErrors[i] << ")\n";
                continue;
            }
            if (v.ok)
                accepted.push_back(pairs[i]);
            if (args.has("verbose"))
                std::cout << "pair " << i << ": "
                          << (v.ok ? "ACCEPT" : "reject")
                          << " (edit bound " << v.bound << ", E "
                          << v.threshold << ")\n";
        }

        std::uint64_t cycles = 0;
        for (const auto c : workerCycles)
            cycles += c;
        if (shard)
            std::cout << "shard " << algos::shardName(*shard) << ": "
                      << ownedPairs.size() << " of " << pairs.size()
                      << " pair(s) owned\n";
        std::cout << "accepted " << accepted.size() << " / "
                  << ownedPairs.size() << " pairs (" << cycles
                  << " simulated cycles";
        if (threads > 1)
            std::cout << " summed over " << threads
                      << " simulated cores";
        std::cout << ")\n";
        if (args.has("accepted")) {
            std::ofstream out(args.get("accepted"));
            fatal_if(!out, "cannot open '{}' for writing",
                     args.get("accepted"));
            genomics::writePairFile(out, accepted);
            std::cout << "wrote accepted pairs to "
                      << args.get("accepted") << "\n";
        }
        if (failedPairs > 0) {
            std::cerr << "error: " << failedPairs << " of "
                      << ownedPairs.size()
                      << " pair(s) failed (see FAILED lines above)\n";
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
