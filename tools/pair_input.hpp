/**
 * @file
 * Uniform pair intake for the CLI tools: either an in-RAM '>'/'<'
 * pair file or a range of an indexed on-disk read store
 * (docs/STORE.md, `--store FILE[:FROM-TO]`).
 *
 * Pairs keep their GLOBAL index: pair 1500 of `reads.qzs:1000-2000`
 * is store pair 1500, not local slot 500. Shard ownership
 * (i % N == K-1), checkpoint records, and printed per-pair lines all
 * use that global index, so a range processed whole, sharded, or
 * checkpoint-resumed — or the same pairs fed from a pair file —
 * reports byte-identically.
 */
#ifndef QUETZAL_TOOLS_PAIR_INPUT_HPP
#define QUETZAL_TOOLS_PAIR_INPUT_HPP

#include <algorithm>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cli_common.hpp"
#include "common/logging.hpp"
#include "genomics/fasta.hpp"
#include "genomics/sequence.hpp"
#include "genomics/store.hpp"

namespace quetzal::cli {

class PairInput
{
  public:
    /** Load a whole '>'/'<' pair file into RAM (global indices 0..n). */
    static PairInput
    fromPairFile(const std::string &path)
    {
        PairInput input;
        std::ifstream in(path);
        fatal_if(!in, "cannot open '{}'", path);
        input.pairs_ = genomics::readPairFile(in);
        fatal_if(input.pairs_.empty(), "no pairs in '{}'", path);
        input.to_ = input.pairs_.size();
        input.path_ = path;
        input.origin_ = path;
        return input;
    }

    /** Open a `FILE[:FROM-TO]` store range (checksum-verified). */
    static PairInput
    fromStore(const std::string &target)
    {
        PairInput input;
        const genomics::StoreTarget parsed =
            genomics::parseStoreTarget(target);
        input.store_ = genomics::openStoreShared(parsed.path);
        fatal_if(parsed.from > input.store_->size(),
                 "store range starts at pair {} but '{}' holds only "
                 "{} pair(s)",
                 parsed.from, parsed.path, input.store_->size());
        input.from_ = parsed.from;
        input.to_ = std::min(parsed.to, input.store_->size());
        fatal_if(input.from_ == input.to_,
                 "store range '{}' selects no pairs", target);
        input.path_ = parsed.path;
        input.origin_ = target;
        return input;
    }

    /** First global pair index (0 for pair files). */
    std::size_t begin() const { return from_; }

    /** One past the last global pair index. */
    std::size_t end() const { return to_; }

    std::size_t count() const { return to_ - from_; }

    /** True when @p globalIndex falls inside this input's range. */
    bool
    contains(std::size_t globalIndex) const
    {
        return globalIndex >= from_ && globalIndex < to_;
    }

    /** Local vector slot of @p globalIndex (for count()-sized arrays). */
    std::size_t
    slot(std::size_t globalIndex) const
    {
        panic_if_not(contains(globalIndex),
                     "pair index {} outside input range [{}, {})",
                     globalIndex, from_, to_);
        return globalIndex - from_;
    }

    /**
     * Pair @p globalIndex by value. Thread-safe: store pairs decode
     * through the read-only store, file pairs copy out of the vector.
     */
    genomics::SequencePair
    pair(std::size_t globalIndex) const
    {
        panic_if_not(contains(globalIndex),
                     "pair index {} outside input range [{}, {})",
                     globalIndex, from_, to_);
        if (store_)
            return store_->pair(globalIndex);
        return pairs_[globalIndex];
    }

    /** True when the input is a store range (vs an in-RAM file). */
    bool backedByStore() const { return store_ != nullptr; }

    /** The in-RAM pairs; only valid for pair-file inputs. */
    const std::vector<genomics::SequencePair> &
    filePairs() const
    {
        panic_if_not(!store_,
                     "filePairs() on a store-backed input '{}'",
                     origin_);
        return pairs_;
    }

    /** Bare file path (range suffix stripped for store inputs). */
    const std::string &path() const { return path_; }

    /** The argument as given — for messages and reports. */
    const std::string &origin() const { return origin_; }

  private:
    PairInput() = default;

    std::shared_ptr<const genomics::ReadStore> store_;
    std::vector<genomics::SequencePair> pairs_;
    std::size_t from_ = 0;
    std::size_t to_ = 0;
    std::string path_;
    std::string origin_;
};

/**
 * Resolve a tool's pair input from its arguments: `--store` wins and
 * excludes the positional PAIRFILE; otherwise the first positional
 * names a pair file.
 */
inline PairInput
openPairInput(const Args &args)
{
    if (args.has("store")) {
        fatal_if(!args.positional().empty(),
                 "--store replaces the positional PAIRFILE "
                 "(got both '{}' and a positional argument)",
                 args.get("store"));
        return PairInput::fromStore(args.get("store"));
    }
    return PairInput::fromPairFile(args.positional().front());
}

} // namespace quetzal::cli

#endif // QUETZAL_TOOLS_PAIR_INPUT_HPP
