/**
 * @file
 * qz-align: align a pair file on the simulated QUETZAL core.
 *
 *   qz-align pairs.txt                          # WFA, QUETZAL+C
 *   qz-align pairs.txt --algo biwfa --variant vec
 *   qz-align pairs.txt --algo nw --maxlen 500 --cigar
 *   qz-align long_pairs.txt --window 30000      # tiled ultra-long
 *   qz-align pairs.txt --threads 8              # shard across workers
 */
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>

#include "algos/batch.hpp"
#include "algos/biwfa.hpp"
#include "algos/wfa_affine.hpp"
#include "algos/nw.hpp"
#include "algos/report.hpp"
#include "algos/sam.hpp"
#include "algos/swg.hpp"
#include "algos/tiled.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "algos/workload.hpp"
#include "cli_common.hpp"
#include "common/threadpool.hpp"
#include "genomics/datasets.hpp"
#include "genomics/fasta.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace {

using namespace quetzal;
using algos::Variant;

/** One worker's private simulated core + engines. */
struct ShardRig
{
    sim::SimContext core;
    isa::VectorUnit vpu;
    std::optional<accel::QzUnit> qz;
    std::unique_ptr<algos::WfaEngine> engine;

    explicit ShardRig(Variant variant)
        : core(algos::needsQuetzal(variant)
                   ? sim::SystemParams::withQuetzal()
                   : sim::SystemParams::baseline()),
          vpu(core.pipeline())
    {
        if (algos::needsQuetzal(variant))
            qz.emplace(vpu, core.params().quetzal);
        engine = algos::makeWfaEngine(variant, &vpu,
                                      qz ? &*qz : nullptr);
    }
};

/** Cycle/instruction totals harvested from one worker's core. */
struct ShardStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memRequests = 0;
    std::string profileJson;
};

} // namespace

int
main(int argc, char **argv)
{
    try {
        const cli::Args args(argc, argv);
        if (args.has("list")) {
            std::cout << algos::workloadListing();
            return 0;
        }
        if (args.has("help") || args.positional().empty()) {
            std::cout
                << "qz-align PAIRFILE [options]\n"
                   "  --algo A       wfa|biwfa|affine|nw|sw (default wfa)\n"
                   "  --variant V    base|vec|qz|qzc (default qzc)\n"
                   "  --window N     tile ultra-long reads at N bases\n"
                   "  --maxlen N     truncate pairs to N bases\n"
                   "  --cigar        print each alignment's CIGAR\n"
                   "  --protein      use the 8-bit encoding\n"
                   "  --lag N        adaptive wavefront reduction "
                   "(WFA heuristic)\n"
                   "  --sam FILE     write alignments as SAM\n"
                   "  --threads N    split pairs across N simulated "
                   "cores (default 1)\n"
                   "  --shard K/N    align only pairs with index % N "
                   "== K-1 (multi-process runs)\n"
                   "  --list         print the registered workloads "
                   "and exit\n"
                   "  --json         print an instruction profile as "
                   "JSON (one per worker)\n";
            return args.has("help") ? 0 : 2;
        }

        std::ifstream in(args.positional().front());
        fatal_if(!in, "cannot open '{}'", args.positional().front());
        auto pairs = genomics::readPairFile(in);
        fatal_if(pairs.empty(), "no pairs in '{}'",
                 args.positional().front());

        const Variant variant =
            cli::parseVariant(args.get("variant", "qzc"));
        const std::string algo = args.get("algo", "wfa");
        const auto maxLen = static_cast<std::size_t>(
            args.getInt("maxlen", 1 << 30));
        const auto esize = args.has("protein")
                               ? genomics::ElementSize::Bits8
                               : genomics::ElementSize::Bits2;
        const long threadsOpt = args.getInt("threads", 1);
        fatal_if(threadsOpt < 1, "--threads must be at least 1");

        // --shard K/N: this process owns every pair whose index i
        // satisfies i % N == K-1 (same round-robin partitioning as the
        // batch engine's QZ_BENCH_SHARD, so a sweep can be split
        // across machines deterministically).
        const std::optional<algos::ShardSpec> shard =
            algos::parseShardSpec(args.get("shard", ""));
        std::vector<std::size_t> ownedPairs;
        for (std::size_t i = 0; i < pairs.size(); ++i)
            if (!shard || shard->owns(i))
                ownedPairs.push_back(i);

        const unsigned threads = static_cast<unsigned>(std::max<
            std::size_t>(
            1, std::min<std::size_t>(
                   static_cast<std::size_t>(threadsOpt),
                   ownedPairs.size())));

        // Align pair @p i on @p rig (each worker owns its rig).
        auto alignPair = [&](ShardRig &rig,
                             std::size_t i) -> algos::AlignResult {
            std::string_view pattern = pairs[i].pattern;
            std::string_view text = pairs[i].text;
            if (pattern.size() > maxLen)
                pattern = pattern.substr(0, maxLen);
            if (text.size() > maxLen)
                text = text.substr(0, maxLen);

            if (args.has("window")) {
                algos::TiledConfig config;
                config.windowBases = static_cast<std::size_t>(
                    args.getInt("window", 30000));
                return algos::tiledAlign(*rig.engine, pattern, text,
                                         config, esize);
            }
            if (algo == "wfa") {
                algos::WfaHeuristic heuristic;
                heuristic.maxLag = static_cast<std::int32_t>(
                    args.getInt("lag", 0));
                return algos::wfaAlign(*rig.engine, pattern, text,
                                       true, esize, heuristic);
            }
            if (algo == "biwfa")
                return algos::biwfaAlign(*rig.engine, pattern, text,
                                         true, esize);
            if (algo == "affine") {
                algos::AffinePenalties pen;
                pen.mismatch =
                    static_cast<std::int32_t>(args.getInt("x", 4));
                pen.gapOpen =
                    static_cast<std::int32_t>(args.getInt("o", 6));
                pen.gapExtend =
                    static_cast<std::int32_t>(args.getInt("e", 2));
                const auto affine = algos::affineWfaAlign(
                    *rig.engine, pattern, text, pen, true, esize);
                algos::AlignResult result;
                result.score = affine.score;
                result.cigar = affine.cigar;
                return result;
            }
            if (algo == "nw")
                return algos::nwAlign(variant, pattern, text, &rig.vpu,
                                      rig.qz ? &*rig.qz : nullptr);
            if (algo == "sw") {
                const auto swg = algos::swgAlign(
                    variant, pattern, text, algos::SwgParams{},
                    &rig.vpu, rig.qz ? &*rig.qz : nullptr);
                algos::AlignResult result;
                result.score = swg.score;
                result.cigar = swg.cigar;
                return result;
            }
            fatal("unknown algorithm '{}'", algo);
        };

        // Split the owned pairs into contiguous ranges, one simulated
        // core per worker; per-pair results keep their input index so
        // output order (and the --threads 1 output itself) is
        // identical to a serial run. A failing pair is recorded and
        // skipped — one bad input line must not waste the rest of the
        // run.
        const auto alphabet = args.has("protein")
                                  ? genomics::AlphabetKind::Protein
                                  : genomics::AlphabetKind::Dna;
        std::vector<algos::AlignResult> results(pairs.size());
        std::vector<std::string> pairErrors(pairs.size());
        std::vector<ShardStats> workers(threads);
        const std::size_t perWorker =
            (ownedPairs.size() + threads - 1) / threads;
        parallelFor(threads, threads, [&](std::size_t s) {
            const std::size_t lo = s * perWorker;
            const std::size_t hi =
                std::min(ownedPairs.size(), lo + perWorker);
            ShardRig rig(variant);
            for (std::size_t j = lo; j < hi; ++j) {
                const std::size_t i = ownedPairs[j];
                rig.core.mem().newEpoch();
                try {
                    genomics::validatePair(pairs[i], alphabet, i,
                                           "qz-align");
                    results[i] = alignPair(rig, i);
                } catch (const std::exception &e) {
                    pairErrors[i] = e.what();
                }
            }
            workers[s].cycles = rig.core.pipeline().totalCycles();
            workers[s].instructions =
                rig.core.pipeline().instructions();
            workers[s].memRequests = rig.core.mem().totalRequests();
            workers[s].profileJson =
                algos::instructionProfileJson(rig.core.pipeline());
        });

        std::optional<std::ofstream> sam;
        if (args.has("sam")) {
            sam.emplace(args.get("sam"));
            fatal_if(!*sam, "cannot open '{}' for writing",
                     args.get("sam"));
            algos::writeSamHeader(*sam, "ref",
                                     pairs.front().text.size());
        }

        std::int64_t totalScore = 0;
        std::size_t failedPairs = 0;
        for (const std::size_t i : ownedPairs) {
            if (!pairErrors[i].empty()) {
                ++failedPairs;
                std::cout << "pair " << i << ": FAILED ("
                          << pairErrors[i] << ")\n";
                continue; // no score, no SAM record
            }
            const auto &result = results[i];
            totalScore += result.score;
            std::cout << "pair " << i << ": score " << result.score;
            if (args.has("cigar"))
                std::cout << "  " << result.cigar.rle();
            std::cout << "\n";
            if (sam) {
                std::string_view pattern = pairs[i].pattern;
                if (pattern.size() > maxLen)
                    pattern = pattern.substr(0, maxLen);
                algos::SamRecord record;
                record.qname = "pair_" + std::to_string(i);
                record.rname = "ref";
                record.cigar =
                    algos::toSamCigar(result.cigar, /*extended=*/true);
                record.seq = std::string(pattern);
                algos::writeSamRecord(*sam, record);
            }
        }

        std::uint64_t cycles = 0, instructions = 0, memRequests = 0;
        for (const auto &worker : workers) {
            cycles += worker.cycles;
            instructions += worker.instructions;
            memRequests += worker.memRequests;
        }
        std::cout << "\n";
        if (shard)
            std::cout << "shard " << algos::shardName(*shard) << ": "
                      << ownedPairs.size() << " of " << pairs.size()
                      << " pair(s) owned\n";
        std::cout << "aligned " << (ownedPairs.size() - failedPairs)
                  << " / " << ownedPairs.size() << " pairs, total "
                  << (algo == "sw" ? "alignment score " : "edits ")
                  << totalScore << "\n"
                  << "simulated cycles: " << cycles << " ("
                  << instructions << " instructions, " << memRequests
                  << " cache requests";
        if (threads > 1)
            std::cout << "; summed over " << threads
                      << " simulated cores";
        std::cout << ")\n";
        if (args.has("json")) {
            if (threads == 1) {
                std::cout << workers.front().profileJson << "\n";
            } else {
                std::cout << "[";
                for (std::size_t s = 0; s < workers.size(); ++s)
                    std::cout << (s ? "," : "")
                              << workers[s].profileJson;
                std::cout << "]\n";
            }
        }
        if (failedPairs > 0) {
            std::cerr << "error: " << failedPairs << " of "
                      << ownedPairs.size()
                      << " pair(s) failed (see FAILED lines above)\n";
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
