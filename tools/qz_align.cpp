/**
 * @file
 * qz-align: align a pair file on the simulated QUETZAL core.
 *
 *   qz-align pairs.txt                          # WFA, QUETZAL+C
 *   qz-align pairs.txt --algo biwfa --variant vec
 *   qz-align pairs.txt --algo nw --maxlen 500 --cigar
 *   qz-align long_pairs.txt --window 30000      # tiled ultra-long
 *   qz-align pairs.txt --threads 8              # shard across workers
 *   qz-align --store reads.qzs:0-50000          # on-disk store range
 */
#include <algorithm>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>

#include "algos/batch.hpp"
#include "algos/biwfa.hpp"
#include "algos/wfa_affine.hpp"
#include "algos/nw.hpp"
#include "algos/report.hpp"
#include "algos/sam.hpp"
#include "algos/swg.hpp"
#include "algos/tiled.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "algos/workload.hpp"
#include "cli_common.hpp"
#include "common/json.hpp"
#include "common/threadpool.hpp"
#include "genomics/datasets.hpp"
#include "genomics/fasta.hpp"
#include "pair_input.hpp"
#include "quetzal/qzunit.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/context.hpp"

namespace {

using namespace quetzal;
using algos::Variant;

/** One worker's private simulated core + engines. */
struct ShardRig
{
    sim::SimContext core;
    isa::VectorUnit vpu;
    std::optional<accel::QzUnit> qz;
    std::unique_ptr<algos::WfaEngine> engine;

    explicit ShardRig(Variant variant)
        : core(algos::needsQuetzal(variant)
                   ? sim::SystemParams::withQuetzal()
                   : sim::SystemParams::baseline()),
          vpu(core.pipeline())
    {
        if (algos::needsQuetzal(variant))
            qz.emplace(vpu, core.params().quetzal);
        engine = algos::makeWfaEngine(variant, &vpu,
                                      qz ? &*qz : nullptr);
    }
};

/** Cycle/instruction totals harvested from one worker's core. */
struct ShardStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memRequests = 0;
    std::string profileJson;
};

} // namespace

int
main(int argc, char **argv)
{
    try {
        const cli::Args args(argc, argv);
        if (args.has("list")) {
            std::cout << algos::workloadListing();
            return 0;
        }
        if (args.has("help") ||
            (args.positional().empty() && !args.has("store"))) {
            std::cout
                << "qz-align PAIRFILE [options]\n"
                   "qz-align --store FILE[:FROM-TO] [options]\n"
                   "  --store S      stream an indexed read store "
                   "range (docs/STORE.md)\n"
                   "  --algo A       wfa|biwfa|affine|nw|sw (default wfa)\n"
                   "  --variant V    base|vec|qz|qzc (default qzc)\n"
                   "  --window N     tile ultra-long reads at N bases\n"
                   "  --maxlen N     truncate pairs to N bases\n"
                   "  --cigar        print each alignment's CIGAR\n"
                   "  --protein      use the 8-bit encoding\n"
                   "  --lag N        adaptive wavefront reduction "
                   "(WFA heuristic)\n"
                   "  --sam FILE     write alignments as SAM\n"
                   "  --threads N    split pairs across N simulated "
                   "cores (default 1)\n"
                   "  --shard K/N    align only pairs with index % N "
                   "== K-1 (multi-process runs)\n"
                   "  --checkpoint F resume per-pair progress from F "
                   "(JSONL, crash-safe)\n"
                   "  --serve        round-trip the pairs through a "
                   "qz-serve worker\n"
                   "                 and verify byte-identical "
                   "results\n"
                   "  --list         print the registered workloads "
                   "and exit\n"
                   "  --json         print an instruction profile as "
                   "JSON (one per worker)\n"
                   "SIGINT/SIGTERM flush the checkpoint and emit a "
                   "partial JSON report\n";
            return args.has("help") ? 0 : 2;
        }
        cli::installStopHandlers();

        const cli::PairInput input = cli::openPairInput(args);

        const Variant variant =
            cli::parseVariant(args.get("variant", "qzc"));
        const std::string algo = args.get("algo", "wfa");
        const auto maxLen = static_cast<std::size_t>(
            args.getInt("maxlen", 1 << 30));
        const auto esize = args.has("protein")
                               ? genomics::ElementSize::Bits8
                               : genomics::ElementSize::Bits2;
        const long threadsOpt = args.getInt("threads", 1);
        fatal_if(threadsOpt < 1, "--threads must be at least 1");

        // --serve: round-trip the whole pair file through a pooled
        // qz-serve worker process and require the served RunResult to
        // be byte-identical to an in-process run (docs/SERVICE.md).
        // QZ_FAULT_INJECT crash/hang kinds apply to the worker, so
        // this doubles as a client-side recovery check.
        if (args.has("serve")) {
            for (const char *unsupported :
                 {"window", "lag", "sam", "shard", "checkpoint",
                  "cigar", "json"})
                fatal_if(args.has(unsupported),
                         "--serve does not support --{}",
                         unsupported);
            serve::ServeRequest request;
            request.workload = [&]() -> std::string {
                if (algo == "wfa")
                    return "WFA";
                if (algo == "biwfa")
                    return "BiWFA";
                if (algo == "nw")
                    return "NW";
                if (algo == "sw")
                    return "SW";
                fatal("--serve supports --algo wfa|biwfa|nw|sw, "
                      "not '{}'",
                      algo);
            }();
            request.variant = args.get("variant", "qzc");
            if (args.has("maxlen"))
                request.maxLen = static_cast<std::uint64_t>(maxLen);
            request.protein = args.has("protein");
            if (input.backedByStore()) {
                // The worker streams the range from disk itself —
                // the request names it instead of carrying pairs.
                request.store = input.path();
                request.storeFrom = input.begin();
                request.storeTo = input.end();
            } else {
                request.pairs = input.filePairs();
                for (auto &pair : request.pairs)
                    pair.alphabet =
                        request.protein
                            ? genomics::AlphabetKind::Protein
                            : genomics::AlphabetKind::Dna;
            }
            return serve::serveRoundTripCheck(request, std::cout)
                       ? 0
                       : 1;
        }

        // --shard K/N: this process owns every pair whose GLOBAL
        // index i satisfies i % N == K-1 (same round-robin
        // partitioning as the batch engine's QZ_BENCH_SHARD, so a
        // sweep can be split across machines deterministically).
        // Store ranges keep store-global indices, so shards of
        // `reads.qzs:A-B` partition exactly like shards of the
        // equivalent pair file.
        const std::optional<algos::ShardSpec> shard =
            algos::parseShardSpec(args.get("shard", ""));
        std::vector<std::size_t> ownedPairs;
        for (std::size_t i = input.begin(); i < input.end(); ++i)
            if (!shard || shard->owns(i))
                ownedPairs.push_back(i);

        const unsigned threads = static_cast<unsigned>(std::max<
            std::size_t>(
            1, std::min<std::size_t>(
                   static_cast<std::size_t>(threadsOpt),
                   ownedPairs.size())));

        // Align @p pair on @p rig (each worker owns its rig).
        auto alignPair =
            [&](ShardRig &rig,
                const genomics::SequencePair &pair)
            -> algos::AlignResult {
            std::string_view pattern = pair.pattern;
            std::string_view text = pair.text;
            if (pattern.size() > maxLen)
                pattern = pattern.substr(0, maxLen);
            if (text.size() > maxLen)
                text = text.substr(0, maxLen);

            if (args.has("window")) {
                algos::TiledConfig config;
                config.windowBases = static_cast<std::size_t>(
                    args.getInt("window", 30000));
                return algos::tiledAlign(*rig.engine, pattern, text,
                                         config, esize);
            }
            if (algo == "wfa") {
                algos::WfaHeuristic heuristic;
                heuristic.maxLag = static_cast<std::int32_t>(
                    args.getInt("lag", 0));
                return algos::wfaAlign(*rig.engine, pattern, text,
                                       true, esize, heuristic);
            }
            if (algo == "biwfa")
                return algos::biwfaAlign(*rig.engine, pattern, text,
                                         true, esize);
            if (algo == "affine") {
                algos::AffinePenalties pen;
                pen.mismatch =
                    static_cast<std::int32_t>(args.getInt("x", 4));
                pen.gapOpen =
                    static_cast<std::int32_t>(args.getInt("o", 6));
                pen.gapExtend =
                    static_cast<std::int32_t>(args.getInt("e", 2));
                const auto affine = algos::affineWfaAlign(
                    *rig.engine, pattern, text, pen, true, esize);
                algos::AlignResult result;
                result.score = affine.score;
                result.cigar = affine.cigar;
                return result;
            }
            if (algo == "nw")
                return algos::nwAlign(variant, pattern, text, &rig.vpu,
                                      rig.qz ? &*rig.qz : nullptr);
            if (algo == "sw") {
                const auto swg = algos::swgAlign(
                    variant, pattern, text, algos::SwgParams{},
                    &rig.vpu, rig.qz ? &*rig.qz : nullptr);
                algos::AlignResult result;
                result.score = swg.score;
                result.cigar = swg.cigar;
                return result;
            }
            fatal("unknown algorithm '{}'", algo);
        };

        // Split the owned pairs into contiguous ranges, one simulated
        // core per worker; per-pair results keep their input index so
        // output order (and the --threads 1 output itself) is
        // identical to a serial run. A failing pair is recorded and
        // skipped — one bad input line must not waste the rest of the
        // run.
        // Per-pair state lives in count()-sized vectors indexed by
        // the LOCAL slot (global index minus input.begin()); every
        // externally visible identifier stays global.
        const auto alphabet = args.has("protein")
                                  ? genomics::AlphabetKind::Protein
                                  : genomics::AlphabetKind::Dna;
        std::vector<algos::AlignResult> results(input.count());
        std::vector<std::string> pairErrors(input.count());
        std::vector<char> done(input.count(), 0);
        std::vector<std::string> resumedCigar(input.count());

        // --checkpoint: one JSONL line per aligned pair, flushed as
        // written, so an interrupted or killed run resumes instead of
        // re-aligning. A torn trailing line (killed mid-write) is
        // truncated away before appending — same repair as the batch
        // engine's checkpoint.
        const std::string ckptPath = args.get("checkpoint", "");
        std::ofstream ckptOut;
        std::mutex ckptMutex;
        if (!ckptPath.empty()) {
            fatal_if(args.has("sam"),
                     "--checkpoint does not support --sam (resumed "
                     "pairs carry no traceback state)");
            algos::truncateTornCheckpointTail(ckptPath);
            std::ifstream ckptIn(ckptPath);
            std::string line;
            std::size_t resumed = 0;
            while (std::getline(ckptIn, line)) {
                if (line.empty())
                    continue;
                const auto json = parseJson(line);
                if (!json || !json->isObject() ||
                    !json->find("pair"))
                    continue; // loader skips unparseable lines
                const std::size_t i =
                    static_cast<std::size_t>(json->getUint("pair"));
                if (!input.contains(i) || done[input.slot(i)])
                    continue;
                const std::size_t s = input.slot(i);
                results[s].score = json->getInt("score");
                resumedCigar[s] = json->getString("cigar");
                done[s] = 1;
                ++resumed;
            }
            if (resumed > 0)
                std::cout << "checkpoint: resumed " << resumed
                          << " pair(s) from " << ckptPath << "\n";
            ckptOut.open(ckptPath, std::ios::app);
            if (!ckptOut)
                warn("cannot open checkpoint '{}' for appending; "
                     "this run will not be resumable",
                     ckptPath);
        }

        std::vector<ShardStats> workers(threads);
        const std::size_t perWorker =
            (ownedPairs.size() + threads - 1) / threads;
        parallelFor(threads, threads, [&](std::size_t s) {
            const std::size_t lo = s * perWorker;
            const std::size_t hi =
                std::min(ownedPairs.size(), lo + perWorker);
            ShardRig rig(variant);
            for (std::size_t j = lo; j < hi; ++j) {
                if (cli::stopRequested())
                    break; // flush what is recorded and report
                const std::size_t i = ownedPairs[j];
                const std::size_t s = input.slot(i);
                if (done[s])
                    continue; // resumed from the checkpoint
                rig.core.mem().newEpoch();
                try {
                    const genomics::SequencePair pair = input.pair(i);
                    genomics::validatePair(pair, alphabet, i,
                                           "qz-align");
                    results[s] = alignPair(rig, pair);
                    if (ckptOut.is_open()) {
                        JsonWriter json;
                        json.beginObject()
                            .field("pair", std::uint64_t{i})
                            .field("score",
                                   std::int64_t{results[s].score})
                            .field("cigar", results[s].cigar.rle())
                            .endObject();
                        std::lock_guard<std::mutex> lock(ckptMutex);
                        ckptOut << json.str()
                                << std::endl; // flush: crash safety
                    }
                } catch (const std::exception &e) {
                    pairErrors[s] = e.what();
                }
                done[s] = 1;
            }
            workers[s].cycles = rig.core.pipeline().totalCycles();
            workers[s].instructions =
                rig.core.pipeline().instructions();
            workers[s].memRequests = rig.core.mem().totalRequests();
            workers[s].profileJson =
                algos::instructionProfileJson(rig.core.pipeline());
        });
        if (ckptOut.is_open())
            ckptOut.close(); // flushed before any report below

        std::optional<std::ofstream> sam;
        if (args.has("sam")) {
            sam.emplace(args.get("sam"));
            fatal_if(!*sam, "cannot open '{}' for writing",
                     args.get("sam"));
            algos::writeSamHeader(
                *sam, "ref", input.pair(input.begin()).text.size());
        }

        std::int64_t totalScore = 0;
        std::size_t failedPairs = 0;
        std::size_t skippedPairs = 0;
        for (const std::size_t i : ownedPairs) {
            const std::size_t s = input.slot(i);
            if (!done[s]) {
                ++skippedPairs; // interrupted before this pair ran
                continue;
            }
            if (!pairErrors[s].empty()) {
                ++failedPairs;
                std::cout << "pair " << i << ": FAILED ("
                          << pairErrors[s] << ")\n";
                continue; // no score, no SAM record
            }
            const auto &result = results[s];
            totalScore += result.score;
            std::cout << "pair " << i << ": score " << result.score;
            if (args.has("cigar"))
                std::cout << "  "
                          << (resumedCigar[s].empty()
                                  ? result.cigar.rle()
                                  : resumedCigar[s]);
            std::cout << "\n";
            if (sam) {
                const genomics::SequencePair pair = input.pair(i);
                std::string_view pattern = pair.pattern;
                if (pattern.size() > maxLen)
                    pattern = pattern.substr(0, maxLen);
                algos::SamRecord record;
                record.qname = "pair_" + std::to_string(i);
                record.rname = "ref";
                record.cigar =
                    algos::toSamCigar(result.cigar, /*extended=*/true);
                record.seq = std::string(pattern);
                algos::writeSamRecord(*sam, record);
            }
        }

        std::uint64_t cycles = 0, instructions = 0, memRequests = 0;
        for (const auto &worker : workers) {
            cycles += worker.cycles;
            instructions += worker.instructions;
            memRequests += worker.memRequests;
        }
        std::cout << "\n";
        if (shard)
            std::cout << "shard " << algos::shardName(*shard) << ": "
                      << ownedPairs.size() << " of " << input.count()
                      << " pair(s) owned\n";
        std::cout << "aligned "
                  << (ownedPairs.size() - failedPairs - skippedPairs)
                  << " / " << ownedPairs.size() << " pairs, total "
                  << (algo == "sw" ? "alignment score " : "edits ")
                  << totalScore << "\n"
                  << "simulated cycles: " << cycles << " ("
                  << instructions << " instructions, " << memRequests
                  << " cache requests";
        if (threads > 1)
            std::cout << "; summed over " << threads
                      << " simulated cores";
        std::cout << ")\n";
        if (args.has("json")) {
            if (threads == 1) {
                std::cout << workers.front().profileJson << "\n";
            } else {
                std::cout << "[";
                for (std::size_t s = 0; s < workers.size(); ++s)
                    std::cout << (s ? "," : "")
                              << workers[s].profileJson;
                std::cout << "]\n";
            }
        }
        // Interrupted: the checkpoint is already flushed; emit a
        // partial JSON report so the caller knows exactly how far the
        // run got, and exit nonzero.
        if (cli::stopRequested()) {
            JsonWriter json;
            json.beginObject()
                .field("tool", "qz-align")
                .field("partial", true)
                .field("input", input.origin())
                .field("algo", algo)
                .field("variant", args.get("variant", "qzc"))
                .field("completed",
                       std::uint64_t{ownedPairs.size() -
                                     failedPairs - skippedPairs})
                .field("failed", std::uint64_t{failedPairs})
                .field("not_attempted", std::uint64_t{skippedPairs})
                .field("owned", std::uint64_t{ownedPairs.size()})
                .field("total_score", std::int64_t{totalScore});
            if (!ckptPath.empty())
                json.field("checkpoint", ckptPath);
            json.endObject();
            std::cout << json.str() << "\n";
            std::cerr << "interrupted: " << skippedPairs
                      << " pair(s) not attempted"
                      << (ckptPath.empty()
                              ? ""
                              : "; rerun with the same --checkpoint "
                                "to resume")
                      << "\n";
            return 130;
        }
        if (failedPairs > 0) {
            std::cerr << "error: " << failedPairs << " of "
                      << ownedPairs.size()
                      << " pair(s) failed (see FAILED lines above)\n";
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
