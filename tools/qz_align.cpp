/**
 * @file
 * qz-align: align a pair file on the simulated QUETZAL core.
 *
 *   qz-align pairs.txt                          # WFA, QUETZAL+C
 *   qz-align pairs.txt --algo biwfa --variant vec
 *   qz-align pairs.txt --algo nw --maxlen 500 --cigar
 *   qz-align long_pairs.txt --window 30000      # tiled ultra-long
 */
#include <fstream>
#include <iostream>
#include <optional>

#include "algos/biwfa.hpp"
#include "algos/wfa_affine.hpp"
#include "algos/nw.hpp"
#include "algos/report.hpp"
#include "algos/sam.hpp"
#include "algos/swg.hpp"
#include "algos/tiled.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "cli_common.hpp"
#include "genomics/fasta.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

int
main(int argc, char **argv)
{
    using namespace quetzal;
    using algos::Variant;
    try {
        const cli::Args args(argc, argv);
        if (args.has("help") || args.positional().empty()) {
            std::cout
                << "qz-align PAIRFILE [options]\n"
                   "  --algo A       wfa|biwfa|affine|nw|sw (default wfa)\n"
                   "  --variant V    base|vec|qz|qzc (default qzc)\n"
                   "  --window N     tile ultra-long reads at N bases\n"
                   "  --maxlen N     truncate pairs to N bases\n"
                   "  --cigar        print each alignment's CIGAR\n"
                   "  --protein      use the 8-bit encoding\n"
                   "  --lag N        adaptive wavefront reduction "
                   "(WFA heuristic)\n"
                   "  --sam FILE     write alignments as SAM\n"
                   "  --json         print an instruction profile as "
                   "JSON\n";
            return args.has("help") ? 0 : 2;
        }

        std::ifstream in(args.positional().front());
        fatal_if(!in, "cannot open '{}'", args.positional().front());
        auto pairs = genomics::readPairFile(in);
        fatal_if(pairs.empty(), "no pairs in '{}'",
                 args.positional().front());

        const Variant variant =
            cli::parseVariant(args.get("variant", "qzc"));
        const std::string algo = args.get("algo", "wfa");
        const auto maxLen = static_cast<std::size_t>(
            args.getInt("maxlen", 1 << 30));
        const auto esize = args.has("protein")
                               ? genomics::ElementSize::Bits8
                               : genomics::ElementSize::Bits2;

        sim::SimContext core(algos::needsQuetzal(variant)
                                 ? sim::SystemParams::withQuetzal()
                                 : sim::SystemParams::baseline());
        isa::VectorUnit vpu(core.pipeline());
        std::optional<accel::QzUnit> qz;
        if (algos::needsQuetzal(variant))
            qz.emplace(vpu, core.params().quetzal);
        auto engine =
            algos::makeWfaEngine(variant, &vpu, qz ? &*qz : nullptr);

        std::optional<std::ofstream> sam;
        if (args.has("sam")) {
            sam.emplace(args.get("sam"));
            fatal_if(!*sam, "cannot open '{}' for writing",
                     args.get("sam"));
            algos::writeSamHeader(*sam, "ref",
                                     pairs.front().text.size());
        }

        std::int64_t totalScore = 0;
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            std::string_view pattern = pairs[i].pattern;
            std::string_view text = pairs[i].text;
            if (pattern.size() > maxLen)
                pattern = pattern.substr(0, maxLen);
            if (text.size() > maxLen)
                text = text.substr(0, maxLen);

            algos::AlignResult result;
            if (args.has("window")) {
                algos::TiledConfig config;
                config.windowBases = static_cast<std::size_t>(
                    args.getInt("window", 30000));
                result = algos::tiledAlign(*engine, pattern, text,
                                           config, esize);
            } else if (algo == "wfa") {
                algos::WfaHeuristic heuristic;
                heuristic.maxLag = static_cast<std::int32_t>(
                    args.getInt("lag", 0));
                result = algos::wfaAlign(*engine, pattern, text, true,
                                         esize, heuristic);
            } else if (algo == "biwfa") {
                result = algos::biwfaAlign(*engine, pattern, text, true,
                                           esize);
            } else if (algo == "affine") {
                algos::AffinePenalties pen;
                pen.mismatch =
                    static_cast<std::int32_t>(args.getInt("x", 4));
                pen.gapOpen =
                    static_cast<std::int32_t>(args.getInt("o", 6));
                pen.gapExtend =
                    static_cast<std::int32_t>(args.getInt("e", 2));
                const auto affine = algos::affineWfaAlign(
                    *engine, pattern, text, pen, true, esize);
                result.score = affine.score;
                result.cigar = affine.cigar;
            } else if (algo == "nw") {
                result = algos::nwAlign(variant, pattern, text, &vpu,
                                        qz ? &*qz : nullptr);
            } else if (algo == "sw") {
                const auto swg = algos::swgAlign(
                    variant, pattern, text, algos::SwgParams{}, &vpu,
                    qz ? &*qz : nullptr);
                result.score = swg.score;
                result.cigar = swg.cigar;
            } else {
                fatal("unknown algorithm '{}'", algo);
            }

            totalScore += result.score;
            std::cout << "pair " << i << ": score " << result.score;
            if (args.has("cigar"))
                std::cout << "  " << result.cigar.rle();
            std::cout << "\n";
            if (sam) {
                algos::SamRecord record;
                record.qname = "pair_" + std::to_string(i);
                record.rname = "ref";
                record.cigar =
                    algos::toSamCigar(result.cigar, /*extended=*/true);
                record.seq = std::string(pattern);
                algos::writeSamRecord(*sam, record);
            }
        }

        std::cout << "\naligned " << pairs.size() << " pairs, total "
                  << (algo == "sw" ? "alignment score " : "edits ")
                  << totalScore << "\n"
                  << "simulated cycles: "
                  << core.pipeline().totalCycles() << " ("
                  << core.pipeline().instructions()
                  << " instructions, "
                  << core.mem().totalRequests()
                  << " cache requests)\n";
        if (args.has("json"))
            std::cout << algos::instructionProfileJson(core.pipeline())
                      << "\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
