/**
 * @file
 * qz-datagen: generate read/reference pair workloads.
 *
 *   qz-datagen --dataset 100bp_1 --scale 0.5 --out pairs.txt
 *   qz-datagen --length 5000 --error 0.04 --count 20 --out pairs.txt
 *   qz-datagen --length 250 --count 100 --fasta reads.fa
 */
#include <fstream>
#include <iostream>

#include "cli_common.hpp"
#include "genomics/datasets.hpp"
#include "genomics/fasta.hpp"
#include "genomics/readsim.hpp"

int
main(int argc, char **argv)
{
    using namespace quetzal;
    try {
        const cli::Args args(argc, argv);
        if (args.has("help")) {
            std::cout
                << "qz-datagen: generate pattern/text pair workloads\n"
                   "  --dataset NAME   Table II dataset "
                   "(100bp_1|250bp_1|10Kbp|30Kbp)\n"
                   "  --scale S        dataset scale factor "
                   "(default 1.0)\n"
                   "  --length N       custom read length\n"
                   "  --error R        custom per-base error rate "
                   "(default 0.03)\n"
                   "  --count N        custom pair count "
                   "(default 100)\n"
                   "  --seed N         RNG seed (default 42)\n"
                   "  --out FILE       write a '>'/'<' pair file\n"
                   "  --fasta FILE     also write the patterns as "
                   "FASTA\n";
            return 0;
        }

        genomics::PairDataset dataset;
        if (args.has("dataset")) {
            dataset = genomics::makeDataset(
                args.get("dataset"), args.getDouble("scale", 1.0));
        } else {
            genomics::ReadSimConfig config;
            config.readLength =
                static_cast<std::size_t>(args.getInt("length", 250));
            config.errorRate = args.getDouble("error", 0.03);
            config.seed =
                static_cast<std::uint64_t>(args.getInt("seed", 42));
            genomics::ReadSimulator sim(config);
            dataset.name = "custom";
            dataset.readLength = config.readLength;
            dataset.errorRate = config.errorRate;
            dataset.pairs = sim.generatePairs(
                static_cast<std::size_t>(args.getInt("count", 100)));
        }

        const std::string out = args.get("out", "pairs.txt");
        std::ofstream file(out);
        fatal_if(!file, "cannot open '{}' for writing", out);
        genomics::writePairFile(file, dataset.pairs);
        std::cout << "wrote " << dataset.size() << " pairs of ~"
                  << dataset.readLength << " bp to " << out << "\n";

        if (args.has("fasta")) {
            std::vector<genomics::Sequence> reads;
            reads.reserve(dataset.size());
            for (std::size_t i = 0; i < dataset.size(); ++i) {
                genomics::Sequence seq;
                seq.id = "read_" + std::to_string(i);
                seq.bases = dataset.pairs[i].pattern;
                reads.push_back(std::move(seq));
            }
            std::ofstream fa(args.get("fasta"));
            fatal_if(!fa, "cannot open '{}' for writing",
                     args.get("fasta"));
            genomics::writeFasta(fa, reads);
            std::cout << "wrote " << reads.size() << " reads to "
                      << args.get("fasta") << "\n";
        }
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
