/**
 * @file
 * qz-datagen: generate read/reference pair workloads.
 *
 *   qz-datagen --dataset 100bp_1 --scale 0.5 --out pairs.txt
 *   qz-datagen --dataset 100bp_1 --scale 2500 --store reads.qzs
 *   qz-datagen --length 5000 --error 0.04 --count 20 --out pairs.txt
 *   qz-datagen --length 250 --count 100 --fasta reads.fa
 *
 * Generation streams through a GeneratorPairSource batch by batch, so
 * writing a million-pair store (or pair file) needs memory for one
 * batch, not the whole dataset.
 */
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "cli_common.hpp"
#include "genomics/datasets.hpp"
#include "genomics/fasta.hpp"
#include "genomics/pairsource.hpp"
#include "genomics/readsim.hpp"
#include "genomics/store.hpp"

int
main(int argc, char **argv)
{
    using namespace quetzal;
    try {
        const cli::Args args(argc, argv);
        if (args.has("help")) {
            std::cout
                << "qz-datagen: generate pattern/text pair workloads\n"
                   "  --dataset NAME   Table II dataset "
                   "(100bp_1|250bp_1|10Kbp|30Kbp)\n"
                   "  --scale S        dataset scale factor "
                   "(default 1.0)\n"
                   "  --length N       custom read length\n"
                   "  --error R        custom per-base error rate "
                   "(default 0.03)\n"
                   "  --count N        custom pair count "
                   "(default 100)\n"
                   "  --seed N         RNG seed (default 42)\n"
                   "  --out FILE       write a '>'/'<' pair file "
                   "(default pairs.txt unless --store)\n"
                   "  --store FILE     write an indexed binary read "
                   "store (docs/STORE.md)\n"
                   "  --fasta FILE     also write the patterns as "
                   "FASTA\n";
            return 0;
        }

        // The generator IS the dataset: catalog mode replays exactly
        // what makeDataset() would materialize (same seeds, same
        // low/high interleave), custom mode a single simulator.
        std::unique_ptr<genomics::GeneratorPairSource> source;
        if (args.has("dataset")) {
            source = std::make_unique<genomics::GeneratorPairSource>(
                args.get("dataset"), args.getDouble("scale", 1.0));
        } else {
            genomics::ReadSimConfig config;
            config.readLength =
                static_cast<std::size_t>(args.getInt("length", 250));
            config.errorRate = args.getDouble("error", 0.03);
            config.seed =
                static_cast<std::uint64_t>(args.getInt("seed", 42));
            source = std::make_unique<genomics::GeneratorPairSource>(
                config,
                static_cast<std::size_t>(args.getInt("count", 100)));
        }
        const genomics::SourceInfo &info = source->info();

        std::optional<genomics::StoreWriter> store;
        if (args.has("store")) {
            genomics::StoreProvenance provenance;
            provenance.name = info.name;
            provenance.scale = source->scale();
            provenance.seed = source->seed();
            provenance.readLength = info.readLength;
            provenance.errorRate = info.errorRate;
            store.emplace(args.get("store"), provenance);
        }

        // A pair file is written by default, but --store alone skips
        // it — the store is the artifact.
        const bool wantPairFile = args.has("out") || !store;
        const std::string outPath = args.get("out", "pairs.txt");
        std::ofstream file;
        if (wantPairFile) {
            file.open(outPath);
            fatal_if(!file, "cannot open '{}' for writing", outPath);
        }
        std::ofstream fa;
        if (args.has("fasta")) {
            fa.open(args.get("fasta"));
            fatal_if(!fa, "cannot open '{}' for writing",
                     args.get("fasta"));
        }

        // One pass over the stream feeds every sink: pair-file chunks
        // concatenate identically to one writePairFile() call, and
        // the store writer appends as it goes.
        std::size_t generated = 0;
        genomics::PairBatch batch;
        std::vector<genomics::SequencePair> chunk;
        std::vector<genomics::Sequence> reads;
        while (source->next(batch) > 0) {
            if (store)
                for (const genomics::PairView &view : batch.views())
                    store->add(genomics::SequencePair{
                        std::string(view.pattern),
                        std::string(view.text), view.alphabet,
                        view.trueEdits});
            if (wantPairFile) {
                chunk.clear();
                for (const genomics::PairView &view : batch.views())
                    chunk.push_back(genomics::SequencePair{
                        std::string(view.pattern),
                        std::string(view.text), view.alphabet,
                        view.trueEdits});
                genomics::writePairFile(file, chunk);
            }
            if (fa.is_open()) {
                reads.clear();
                for (const genomics::PairView &view : batch.views()) {
                    genomics::Sequence seq;
                    seq.id = "read_" +
                             std::to_string(generated + reads.size());
                    seq.bases = std::string(view.pattern);
                    reads.push_back(std::move(seq));
                }
                genomics::writeFasta(fa, reads);
            }
            generated += batch.size();
        }

        if (store) {
            store->finish();
            std::cout << "wrote " << generated << " pairs of ~"
                      << info.readLength << " bp to store "
                      << args.get("store") << "\n";
        }
        if (wantPairFile)
            std::cout << "wrote " << generated << " pairs of ~"
                      << info.readLength << " bp to " << outPath
                      << "\n";
        if (fa.is_open())
            std::cout << "wrote " << generated << " reads to "
                      << args.get("fasta") << "\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
