/**
 * @file
 * The evaluation matrix the host-performance tooling sweeps, shared by
 * the qz-perf harness, the golden-metrics regression test
 * (tests/test_golden.cpp), and the CI perf-smoke job so all three agree
 * on exactly which cells are measured.
 *
 * Two sizes:
 *  - full: the Fig. 13a single-core matrix (every Table II dataset x
 *    {WFA, BiWFA, SneakySnake, SWG, NW} x {BASE, VEC, QUETZAL,
 *    QUETZAL+C}, plus the protein use case) — the sweep the host
 *    wall-clock speedup claims are measured on;
 *  - tiny: a fixed 12-cell short-read subset at a pinned scale, small
 *    enough for unit tests and CI, whose simulated metrics are
 *    snapshotted in tests/data/golden_cells.json.
 *
 * Deliberately self-contained on long-stable APIs (registry BatchRunner
 * add(), RunOptions, dataset catalog) so the same file can be built
 * against older revisions when baselining a host-side optimization.
 */
#ifndef QUETZAL_TOOLS_PERF_MATRIX_HPP
#define QUETZAL_TOOLS_PERF_MATRIX_HPP

#include <memory>

#include "algos/batch.hpp"
#include "algos/workload.hpp"
#include "genomics/datasets.hpp"
#include "genomics/protein.hpp"

namespace quetzal::perf {

/** Pinned scale of the tiny matrix (golden metrics depend on it). */
constexpr double kTinyScale = 0.1;

/** Bench-style cell options: no verification, QUETZAL hw as needed. */
inline algos::RunOptions
perfCellOptions(algos::Variant variant,
                std::size_t maxLen = ~std::size_t{0},
                genomics::AlphabetKind alphabet =
                    genomics::AlphabetKind::Dna)
{
    algos::RunOptions options;
    options.variant = variant;
    options.maxLen = maxLen;
    options.alphabet = alphabet;
    options.verify = false;
    if (algos::needsQuetzal(variant))
        options.system = sim::SystemParams::withQuetzal(8);
    return options;
}

/** The protein use case (mirrors bench_common.hpp proteinDataset). */
inline genomics::PairDataset
perfProteinDataset(double scale)
{
    genomics::ProteinFamilyConfig config;
    config.familyCount =
        std::max<std::size_t>(1, static_cast<std::size_t>(2 * scale));
    config.membersPerFamily = 4;
    config.ancestorLength = 400;
    genomics::PairDataset ds;
    ds.name = "protein";
    ds.readLength = config.ancestorLength;
    ds.errorRate = config.divergence;
    ds.pairs = genomics::proteinPairWorkload(config);
    return ds;
}

/**
 * Queue the host-performance evaluation matrix on @p runner.
 * @param scale dataset scale for the full matrix (the tiny matrix is
 *              pinned at kTinyScale regardless, so its golden metrics
 *              never depend on caller configuration).
 * @param tiny  queue the 12-cell golden subset instead of Fig. 13a.
 * @return the number of cells queued.
 */
inline std::size_t
addPerfMatrix(algos::BatchRunner &runner, double scale, bool tiny)
{
    using algos::AlgoKind;
    using algos::Variant;
    using DatasetPtr = std::shared_ptr<const genomics::PairDataset>;

    std::size_t cells = 0;
    auto dataset = [](std::string_view name, double s) {
        return std::make_shared<const genomics::PairDataset>(
            genomics::makeDataset(name, s));
    };

    if (tiny) {
        for (const char *name : {"100bp_1", "250bp_1"}) {
            const DatasetPtr ds = dataset(name, kTinyScale);
            for (const AlgoKind kind :
                 {AlgoKind::Wfa, AlgoKind::SneakySnake}) {
                for (const Variant variant :
                     {Variant::Base, Variant::Vec, Variant::QzC}) {
                    runner.add(kind, ds, perfCellOptions(variant));
                    ++cells;
                }
            }
        }
        return cells;
    }

    const std::size_t classicCap = 1000;
    auto submit = [&](AlgoKind kind, const DatasetPtr &ds,
                      std::size_t maxLen,
                      genomics::AlphabetKind alphabet) {
        for (const Variant variant : {Variant::Base, Variant::Vec,
                                      Variant::Qz, Variant::QzC}) {
            runner.add(kind, ds,
                       perfCellOptions(variant, maxLen, alphabet));
            ++cells;
        }
    };
    for (const auto &spec : genomics::datasetCatalog()) {
        const DatasetPtr ds = dataset(spec.name, scale);
        submit(AlgoKind::Wfa, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::BiWfa, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::SneakySnake, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::Swg, ds, ~std::size_t{0},
               genomics::AlphabetKind::Dna);
        submit(AlgoKind::Nw, ds, classicCap,
               genomics::AlphabetKind::Dna);
    }
    const auto protein = std::make_shared<const genomics::PairDataset>(
        perfProteinDataset(scale));
    submit(AlgoKind::Wfa, protein, ~std::size_t{0},
           genomics::AlphabetKind::Protein);
    submit(AlgoKind::SneakySnake, protein, ~std::size_t{0},
           genomics::AlphabetKind::Protein);
    return cells;
}

/**
 * Queue the Fig. 15b kernel-workload cells (histogram and SpMV, every
 * registered variant) at kTinyScale, pinning the ISA-layer paths the
 * genomics matrix exercises only lightly (scatter-heavy histogram
 * updates, gather-heavy SpMV rows). Snapshotted in
 * tests/data/golden_kernels.json alongside the genomics tiny matrix.
 * @return the number of cells queued.
 */
inline std::size_t
addKernelMatrix(algos::BatchRunner &runner)
{
    std::size_t cells = 0;
    for (const char *name : {"histogram", "spmv"}) {
        const algos::Workload &workload = algos::workloadByName(name);
        const auto ds = std::make_shared<const genomics::PairDataset>(
            workload.makeDataset(name, kTinyScale));
        for (const algos::Variant variant : workload.variants()) {
            runner.add(workload, ds, perfCellOptions(variant));
            ++cells;
        }
    }
    return cells;
}

} // namespace quetzal::perf

#endif // QUETZAL_TOOLS_PERF_MATRIX_HPP
