/**
 * @file
 * qz-serve: fault-isolated alignment service over a self-healing
 * worker-process pool (see docs/SERVICE.md).
 *
 *   qz-serve requests.jsonl                     # 2 workers
 *   qz-serve requests.jsonl --workers 4 --deadline 2000
 *   qz-serve requests.jsonl --out responses.jsonl --check
 *   qz-serve - < requests.jsonl                 # read stdin
 *
 * Each input line is one JSON request ({"workload":"WFA",
 * "dataset":"100bp_1","scale":0.05,...}; see docs/SERVICE.md for the
 * schema). Responses stream to stdout in completion order as the
 * pool produces them; --out additionally writes the full response
 * set sorted by request id, which is what CI diffs across
 * fault-injection runs. Worker crashes and hangs (including the
 * QZ_FAULT_INJECT crash/hang kinds) are recovered without dropping
 * or duplicating a single request.
 */
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include <unistd.h>

#include "algos/report.hpp"
#include "algos/workload.hpp"
#include "cli_common.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/worker.hpp"

namespace {

using namespace quetzal;

/** Path of this binary, for fork/exec'ing workers. */
std::string
selfExecutable(const char *argv0)
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/** Parse one JSONL request line; fatal with line context on junk. */
serve::ServeRequest
parseRequestLine(const std::string &line, std::size_t lineNo,
                 std::uint64_t fallbackId)
{
    const auto json = parseJson(line);
    fatal_if(!json, "request line {} is not valid JSON", lineNo);
    auto request = serve::requestFromJson(*json);
    fatal_if(!request,
             "request line {} is missing required fields "
             "(want workload plus dataset or pairs)",
             lineNo);
    if (!json->find("id"))
        request->id = fallbackId;
    request->attempt = 1;
    return *request;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const cli::Args args(argc, argv);

        // Internal entry point: this process was fork/exec'd as a
        // pool worker and speaks frames on stdin/stdout. Re-point
        // fd 1 at stderr first so a stray print inside a workload
        // can never corrupt the frame stream.
        if (args.has("worker")) {
            const int requestFd = ::dup(STDIN_FILENO);
            const int responseFd = ::dup(STDOUT_FILENO);
            ::dup2(STDERR_FILENO, STDOUT_FILENO);
            return serve::workerMain(requestFd, responseFd,
                                     algos::faultInjectionFromEnv());
        }

        if (args.has("list")) {
            std::cout << algos::workloadListing();
            return 0;
        }
        if (args.has("help") || args.positional().empty()) {
            std::cout
                << "qz-serve REQUESTS.jsonl [options]   ('-' reads "
                   "stdin)\n"
                   "  --workers N    worker processes (default 2)\n"
                   "  --queue N      admission bound; requests beyond "
                   "it are shed\n"
                   "                 with status=overloaded under "
                   "--shed, queued\n"
                   "                 with backpressure otherwise "
                   "(default 64)\n"
                   "  --deadline MS  per-request wall clock; blown "
                   "deadlines kill\n"
                   "                 the worker (default 0 = none)\n"
                   "  --retries N    deliveries per request incl. the "
                   "first\n"
                   "                 (default 2)\n"
                   "  --shed         admission-control mode (see "
                   "--queue)\n"
                   "  --out FILE     also write responses sorted by "
                   "id\n"
                   "  --check        re-run ok responses in-process "
                   "and verify\n"
                   "                 byte-identical results\n"
                   "  --quiet        do not stream responses to "
                   "stdout\n"
                   "  --list         print the registered workloads "
                   "and exit\n"
                   "QZ_FAULT_INJECT=ID:KIND[:TIMES] injects faults "
                   "into workers\n"
                   "(kinds: crash|hang plus the exception taxonomy; "
                   "see docs/SERVICE.md)\n";
            return args.has("help") ? 0 : 2;
        }

        // Intake: one JSON request per line. Requests without an
        // explicit id get their line index, so responses are always
        // attributable.
        std::vector<serve::ServeRequest> requests;
        const std::string &path = args.positional().front();
        std::istream *in = &std::cin;
        std::ifstream file;
        if (path != "-") {
            file.open(path);
            fatal_if(!file, "cannot open '{}'", path);
            in = &file;
        }
        std::string line;
        for (std::size_t lineNo = 1; std::getline(*in, line);
             ++lineNo) {
            if (line.empty())
                continue;
            requests.push_back(parseRequestLine(
                line, lineNo, requests.size()));
        }
        fatal_if(requests.empty(), "no requests in '{}'", path);

        serve::ServeConfig config;
        config.workers = static_cast<unsigned>(
            std::max(1L, args.getInt("workers", 2)));
        config.queueBound = static_cast<std::size_t>(
            std::max(1L, args.getInt("queue", 64)));
        config.deadlineMs = static_cast<unsigned>(
            std::max(0L, args.getInt("deadline", 0)));
        config.maxDispatchAttempts = static_cast<unsigned>(
            std::max(1L, args.getInt("retries", 2)));
        config.inject = algos::faultInjectionFromEnv();
        config.workerCommand = {selfExecutable(argv[0]), "--worker"};
        config.stopFlag = &cli::stopFlag();
        cli::installStopHandlers();

        const bool quiet = args.has("quiet");
        std::vector<serve::ServeResponse> responses;
        serve::AlignService service(
            config, [&](const serve::ServeResponse &response) {
                if (!quiet)
                    std::cout << serve::toJson(response) << "\n";
                responses.push_back(response);
            });

        if (args.has("shed")) {
            // Admission-control mode: what does not fit the queue is
            // shed with a structured Overloaded response.
            for (auto &request : requests)
                service.submit(std::move(request));
            service.drain();
        } else {
            service.serveAll(std::move(requests));
        }
        service.shutdown();

        std::sort(responses.begin(), responses.end(),
                  [](const serve::ServeResponse &a,
                     const serve::ServeResponse &b) {
                      return a.id < b.id;
                  });
        if (args.has("out")) {
            std::ofstream out(args.get("out"));
            fatal_if(!out, "cannot open '{}' for writing",
                     args.get("out"));
            for (const auto &response : responses)
                out << serve::toJson(response) << "\n";
        }

        // --check: every served result must be byte-identical to an
        // in-process run of the same request (cells are pure
        // functions of their identity; docs/SERVICE.md).
        std::size_t mismatches = 0;
        if (args.has("check")) {
            std::map<std::uint64_t, const serve::ServeResponse *>
                byId;
            for (const auto &response : responses)
                byId[response.id] = &response;
            // requests was moved out in serveAll mode; re-read it.
            std::ifstream again(path == "-" ? "/dev/null" : path);
            std::string checkLine;
            std::size_t index = 0;
            for (std::size_t lineNo = 1;
                 std::getline(again, checkLine); ++lineNo) {
                if (checkLine.empty())
                    continue;
                const auto request = parseRequestLine(
                    checkLine, lineNo, index++);
                const auto it = byId.find(request.id);
                if (it == byId.end() || !it->second->result)
                    continue; // shed or failed: nothing to compare
                const std::string served =
                    algos::toJson(*it->second->result);
                const std::string direct = algos::toJson(
                    serve::runRequestInProcess(request));
                if (served != direct) {
                    ++mismatches;
                    std::cerr << "check: request " << request.id
                              << " served result differs from the "
                                 "in-process run\n";
                }
            }
            if (mismatches == 0)
                std::cerr << "check: all served results "
                             "byte-identical to in-process runs\n";
        }

        const serve::ServeStats &stats = service.stats();
        std::cerr << "qz-serve: " << stats.served << " ok, "
                  << stats.errors << " error, " << stats.shed
                  << " overloaded, " << stats.shutdownShed
                  << " shutdown | " << stats.respawns << " respawn(s), "
                  << stats.deadlineKills << " deadline kill(s), "
                  << stats.redispatches << " redispatch(es)\n";

        if (mismatches > 0)
            return 1;
        if (cli::stopRequested())
            return 130;
        return stats.errors > 0 ? 1 : 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
