/**
 * @file
 * Analytic GPU throughput model for the Fig. 15a comparison.
 *
 * The paper runs WFA-GPU and GASAL2 on an NVIDIA A40 and observes the
 * occupancy cliff: as sequence length grows, each alignment's active
 * working set (DP state, wavefronts, metadata) outgrows the per-SM
 * on-chip memory, capping the number of resident alignments and
 * collapsing throughput. We model exactly that mechanism: resident
 * alignments per SM = clamp(onChipBytes / workingSet(len), 1, max),
 * with per-tool working-set and per-cell rate constants calibrated to
 * the paper's reported ratios (substitution documented in DESIGN.md —
 * no physical A40 is available here).
 */
#ifndef QUETZAL_GPU_GPU_MODEL_HPP
#define QUETZAL_GPU_GPU_MODEL_HPP

#include <cstdint>
#include <string>

namespace quetzal::gpu {

/** A40-class device parameters. */
struct GpuDeviceParams
{
    double clockGhz = 1.74;
    unsigned sms = 84;
    unsigned maxResidentPerSm = 32;     //!< alignment workers per SM
    double onChipBytesPerSm = 128.0e3;  //!< shared memory + L1
    double areaMm2 = 628.0;             //!< GA102 die (the >10x claim)
};

/** Per-tool cost model. */
struct GpuToolModel
{
    std::string name;
    /** Active working-set bytes for one alignment of length len. */
    double wsBase = 2048;     //!< fixed metadata
    double wsPerBase = 0.0;   //!< linear component (banded DP state)
    double wsPerError2 = 0.0; //!< quadratic component (wavefronts)
    /** Cycles one worker spends per alignment of length len. */
    double cyclesBase = 20e3;
    double cyclesPerBase = 0.0;
};

/** WFA-GPU cost model (wavefront state grows with s^2). */
GpuToolModel wfaGpuModel();

/** GASAL2 cost model (banded DP state grows linearly). */
GpuToolModel gasal2Model();

/**
 * Alignments per second for @p tool on @p device at the given read
 * length and error rate.
 */
double gpuThroughput(const GpuDeviceParams &device,
                     const GpuToolModel &tool, std::size_t readLength,
                     double errorRate);

/** Resident alignments per SM (the occupancy the paper discusses). */
double gpuOccupancy(const GpuDeviceParams &device,
                    const GpuToolModel &tool, std::size_t readLength,
                    double errorRate);

} // namespace quetzal::gpu

#endif // QUETZAL_GPU_GPU_MODEL_HPP
