#include "gpu/gpu_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace quetzal::gpu {

GpuToolModel
wfaGpuModel()
{
    GpuToolModel model;
    model.name = "WFA-GPU";
    model.wsBase = 1024;
    model.wsPerBase = 2.0;      // sequences + offsets
    model.wsPerError2 = 4.0;    // wavefront table ~ 4 B per cell, s^2
    model.cyclesBase = 8e3;
    model.cyclesPerBase = 560.0; // per-worker cost, fitted to the
                                 // paper's short-read GPU lead
    return model;
}

GpuToolModel
gasal2Model()
{
    GpuToolModel model;
    model.name = "GASAL2";
    model.wsBase = 1024;
    model.wsPerBase = 30.0;     // banded DP rows live on chip
    model.wsPerError2 = 0.0;
    model.cyclesBase = 10e3;
    model.cyclesPerBase = 480.0; // banded DP cell work per worker
    return model;
}

namespace {

double
workingSetBytes(const GpuToolModel &tool, std::size_t readLength,
                double errorRate)
{
    const double len = static_cast<double>(readLength);
    const double s = len * errorRate;
    return tool.wsBase + tool.wsPerBase * len +
           tool.wsPerError2 * s * s;
}

} // namespace

double
gpuOccupancy(const GpuDeviceParams &device, const GpuToolModel &tool,
             std::size_t readLength, double errorRate)
{
    fatal_if(readLength == 0, "read length must be positive");
    const double ws = workingSetBytes(tool, readLength, errorRate);
    const double fit = device.onChipBytesPerSm / ws;
    return std::clamp(fit, 1.0,
                      static_cast<double>(device.maxResidentPerSm));
}

double
gpuThroughput(const GpuDeviceParams &device, const GpuToolModel &tool,
              std::size_t readLength, double errorRate)
{
    const double occupancy =
        gpuOccupancy(device, tool, readLength, errorRate);
    const double cyclesPerAlignment =
        tool.cyclesBase +
        tool.cyclesPerBase * static_cast<double>(readLength);
    const double perWorker =
        device.clockGhz * 1e9 / cyclesPerAlignment;
    // When a single worker's state outgrows the SM's on-chip memory,
    // spills to device memory slow it down; the sqrt reflects that
    // only part of the working set is hot at any time.
    const double ws = workingSetBytes(tool, readLength, errorRate);
    const double spillPenalty =
        ws > device.onChipBytesPerSm
            ? std::sqrt(device.onChipBytesPerSm / ws)
            : 1.0;
    return occupancy * device.sms * perWorker * spillPenalty;
}

} // namespace quetzal::gpu
