/**
 * @file
 * Internal: per-ISA HostSimdOps table constructors.
 *
 * Only the tables that the configure (QZ_HOST_SIMD) compiled in are
 * defined; hostsimd.cpp references them under the matching
 * QZ_HOSTSIMD_HAVE_* macros. The AVX2/AVX-512 constructors start from
 * a copy of the scalar table and override the kernels their ISA
 * accelerates, so a table is always complete.
 */
#ifndef QUETZAL_ISA_HOSTSIMD_TABLES_HPP
#define QUETZAL_ISA_HOSTSIMD_TABLES_HPP

#include "isa/hostsimd.hpp"

namespace quetzal::isa {

const HostSimdOps &hostSimdAvx2Table();
const HostSimdOps &hostSimdAvx512Table();

} // namespace quetzal::isa

#endif // QUETZAL_ISA_HOSTSIMD_TABLES_HPP
