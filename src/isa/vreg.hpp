/**
 * @file
 * SVE-like 512-bit vector register and predicate value types.
 *
 * A VReg carries both its functional contents (8 x 64-bit lanes, with
 * 8/16/32/64-bit element views) and its timing tag (the cycle the value
 * becomes available plus whether a memory instruction produced it).
 * This is how the ISA facade keeps functional and timing simulation in
 * lock-step without a register-renaming model.
 */
#ifndef QUETZAL_ISA_VREG_HPP
#define QUETZAL_ISA_VREG_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>

#include "common/logging.hpp"
#include "sim/pipeline.hpp"

namespace quetzal::isa {

/** Vector register width in bits. */
inline constexpr unsigned kVlenBits = 512;
/** 64-bit lanes per register. */
inline constexpr unsigned kLanes64 = kVlenBits / 64;
/** 32-bit elements per register. */
inline constexpr unsigned kLanes32 = kVlenBits / 32;
/** 8-bit elements per register. */
inline constexpr unsigned kLanes8 = kVlenBits / 8;

/** A 512-bit vector register value plus its readiness tag. */
struct VReg
{
    std::array<std::uint64_t, kLanes64> words{};
    sim::Tag tag{};

    // The whole-register lane views below reinterpret `words` as flat
    // element arrays, which only matches the shift-based per-element
    // accessors (element 0 in the low bits of word 0) on a
    // little-endian host.
    static_assert(std::endian::native == std::endian::little,
                  "VReg lane views assume a little-endian host");

    /** Flat 32-bit element views (for word-parallel lane kernels). */
    using Lanes32 = std::array<std::uint32_t, kLanes32>;
    using LanesI32 = std::array<std::int32_t, kLanes32>;

    Lanes32 lanesU32() const { return std::bit_cast<Lanes32>(words); }
    LanesI32 lanesI32() const { return std::bit_cast<LanesI32>(words); }

    void
    setLanes(const Lanes32 &v)
    {
        words = std::bit_cast<std::array<std::uint64_t, kLanes64>>(v);
    }

    void
    setLanes(const LanesI32 &v)
    {
        words = std::bit_cast<std::array<std::uint64_t, kLanes64>>(v);
    }

    // -- 64-bit element view ---------------------------------------
    std::uint64_t
    u64(unsigned lane) const
    {
        panic_if_not(lane < kLanes64, "lane {} out of range", lane);
        return words[lane];
    }

    void
    setU64(unsigned lane, std::uint64_t value)
    {
        panic_if_not(lane < kLanes64, "lane {} out of range", lane);
        words[lane] = value;
    }

    std::int64_t i64(unsigned lane) const
    {
        return static_cast<std::int64_t>(u64(lane));
    }

    // -- 32-bit element view ---------------------------------------
    std::uint32_t
    u32(unsigned elem) const
    {
        panic_if_not(elem < kLanes32, "element {} out of range", elem);
        return static_cast<std::uint32_t>(
            words[elem / 2] >> (32 * (elem % 2)));
    }

    void
    setU32(unsigned elem, std::uint32_t value)
    {
        panic_if_not(elem < kLanes32, "element {} out of range", elem);
        const unsigned shift = 32 * (elem % 2);
        std::uint64_t &word = words[elem / 2];
        word &= ~(std::uint64_t{0xffffffff} << shift);
        word |= std::uint64_t{value} << shift;
    }

    std::int32_t i32(unsigned elem) const
    {
        return static_cast<std::int32_t>(u32(elem));
    }

    void
    setI32(unsigned elem, std::int32_t value)
    {
        setU32(elem, static_cast<std::uint32_t>(value));
    }

    // -- 8-bit element view ----------------------------------------
    std::uint8_t
    u8(unsigned elem) const
    {
        panic_if_not(elem < kLanes8, "element {} out of range", elem);
        return static_cast<std::uint8_t>(
            words[elem / 8] >> (8 * (elem % 8)));
    }

    void
    setU8(unsigned elem, std::uint8_t value)
    {
        panic_if_not(elem < kLanes8, "element {} out of range", elem);
        const unsigned shift = 8 * (elem % 8);
        std::uint64_t &word = words[elem / 8];
        word &= ~(std::uint64_t{0xff} << shift);
        word |= std::uint64_t{value} << shift;
    }
};

/** Mask with the low @p n of 64 bits set (branch-free for n == 64). */
inline constexpr std::uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/**
 * Predicate register: one bit per element (the user supplies the
 * element count context at each use, as SVE governing predicates do).
 */
struct Pred
{
    std::uint64_t mask = 0;
    sim::Tag tag{};

    bool
    active(unsigned elem) const
    {
        panic_if_not(elem < 64, "predicate element {} out of range", elem);
        return (mask >> elem) & 1;
    }

    void
    set(unsigned elem, bool value)
    {
        panic_if_not(elem < 64, "predicate element {} out of range", elem);
        if (value)
            mask |= std::uint64_t{1} << elem;
        else
            mask &= ~(std::uint64_t{1} << elem);
    }

    /** True when no element is active. */
    bool none() const { return mask == 0; }

    /** Number of active elements. */
    unsigned count() const { return std::popcount(mask); }
};

} // namespace quetzal::isa

#endif // QUETZAL_ISA_VREG_HPP
