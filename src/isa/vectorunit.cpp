#include "isa/vectorunit.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

namespace quetzal::isa {

using sim::Addr;
using sim::OpClass;

namespace {

/** Branch-mispredict redirect bubble on loop exits (A64FX ~ 8). */
constexpr unsigned kMispredictBubble = 12;

Addr
toAddr(const void *ptr)
{
    return reinterpret_cast<Addr>(ptr);
}

} // namespace

VReg
VectorUnit::dup32(std::int32_t value)
{
    const std::uint32_t lane = static_cast<std::uint32_t>(value);
    VReg out;
    out.words.fill((std::uint64_t{lane} << 32) | lane);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::dup64(std::uint64_t value)
{
    VReg out;
    out.words.fill(value);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::index32(std::int32_t start, std::int32_t step)
{
    VReg::LanesI32 rs;
    for (unsigned i = 0; i < kLanes32; ++i)
        rs[i] = start + static_cast<std::int32_t>(i) * step;
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::load(SiteId site, const void *ptr, unsigned bytes,
                 sim::Tag dep)
{
    panic_if_not(bytes <= 64, "vector load of {} bytes", bytes);
    VReg out;
    std::memcpy(out.words.data(), ptr, bytes);
    out.tag = pipeline_.executeMem(OpClass::VecLoad, site, toAddr(ptr),
                                   bytes, {dep});
    return out;
}

VReg
VectorUnit::load8to32(SiteId site, const void *ptr, unsigned n,
                      sim::Tag dep)
{
    panic_if_not(n <= kLanes32, "widening load of {} bytes", n);
    const auto *bytes = static_cast<const std::uint8_t *>(ptr);
    VReg::Lanes32 rs{};
    for (unsigned i = 0; i < n; ++i)
        rs[i] = bytes[i];
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeMem(OpClass::VecLoad, site, toAddr(ptr),
                                   n, {dep});
    return out;
}

sim::Tag
VectorUnit::store(SiteId site, void *ptr, const VReg &value,
                  unsigned bytes)
{
    panic_if_not(bytes <= 64, "vector store of {} bytes", bytes);
    std::memcpy(ptr, value.words.data(), bytes);
    return pipeline_.executeMem(OpClass::VecStore, site, toAddr(ptr),
                                bytes, {value.tag});
}

VReg
VectorUnit::gather8(SiteId site, const void *base, const VReg &idx,
                    const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gather8 over {} elements", n);
    const auto *bytes = static_cast<const std::uint8_t *>(base);
    const VReg::Lanes32 is = idx.lanesU32();
    VReg::Lanes32 rs{};
    std::size_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!((p.mask >> i) & 1))
            continue;
        rs[i] = bytes[is[i]];
        addrScratch_[count++] = toAddr(bytes + is[i]);
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 1,
        {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gather32(SiteId site, const std::int32_t *base,
                     const VReg &idx, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gather32 over {} elements", n);
    const VReg::Lanes32 is = idx.lanesU32();
    VReg::LanesI32 rs{};
    std::size_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!((p.mask >> i) & 1))
            continue;
        rs[i] = base[is[i]];
        addrScratch_[count++] = toAddr(base + is[i]);
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 4,
        {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gatherU32(SiteId site, const void *base, const VReg &idx,
                      const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gatherU32 over {} elements", n);
    const auto *bytes = static_cast<const std::uint8_t *>(base);
    const VReg::LanesI32 is = idx.lanesI32();
    VReg::Lanes32 rs{};
    std::size_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!((p.mask >> i) & 1))
            continue;
        std::uint32_t word = 0;
        std::memcpy(&word, bytes + is[i], 4);
        rs[i] = word;
        addrScratch_[count++] = toAddr(bytes + is[i]);
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 4,
        {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gather64(SiteId site, const std::uint64_t *base,
                     const VReg &idx, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes64, "gather64 over {} lanes", n);
    VReg out;
    std::size_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!((p.mask >> i) & 1))
            continue;
        const std::uint64_t index = idx.words[i];
        out.words[i] = base[index];
        addrScratch_[count++] = toAddr(base + index);
    }
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 8,
        {idx.tag, p.tag});
    return out;
}

void
VectorUnit::scatter32(SiteId site, std::int32_t *base, const VReg &idx,
                      const VReg &value, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "scatter32 over {} elements", n);
    const VReg::Lanes32 is = idx.lanesU32();
    const VReg::LanesI32 vs = value.lanesI32();
    std::size_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!((p.mask >> i) & 1))
            continue;
        base[is[i]] = vs[i];
        addrScratch_[count++] = toAddr(base + is[i]);
    }
    pipeline_.executeIndexed(OpClass::VecScatter, site,
                             {addrScratch_.data(), count}, 4,
                             {idx.tag, value.tag, p.tag});
}

void
VectorUnit::scatter64(SiteId site, std::uint64_t *base, const VReg &idx,
                      const VReg &value, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes64, "scatter64 over {} lanes", n);
    std::size_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!((p.mask >> i) & 1))
            continue;
        const std::uint64_t index = idx.words[i];
        base[index] = value.words[i];
        addrScratch_[count++] = toAddr(base + index);
    }
    pipeline_.executeIndexed(OpClass::VecScatter, site,
                             {addrScratch_.data(), count}, 8,
                             {idx.tag, value.tag, p.tag});
}

VReg
VectorUnit::add32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return x + y;
    });
}

VReg
VectorUnit::add32i(const VReg &a, std::int32_t imm)
{
    const VReg::LanesI32 xs = a.lanesI32();
    VReg::LanesI32 rs;
    for (unsigned i = 0; i < kLanes32; ++i)
        rs[i] = xs[i] + imm;
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::sub32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return x - y;
    });
}

VReg
VectorUnit::max32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return std::max(x, y);
    });
}

VReg
VectorUnit::min32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return std::min(x, y);
    });
}

VReg
VectorUnit::addUnderPred32(const VReg &a, std::int32_t imm, const Pred &p)
{
    const VReg::LanesI32 xs = a.lanesI32();
    VReg::LanesI32 rs;
    for (unsigned i = 0; i < kLanes32; ++i) {
        const std::int32_t take =
            -static_cast<std::int32_t>((p.mask >> i) & 1);
        rs[i] = xs[i] + (imm & take);
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag, p.tag});
    return out;
}

VReg
VectorUnit::addvUnderPred32(const VReg &a, const VReg &b, const Pred &p)
{
    const VReg::LanesI32 xs = a.lanesI32();
    const VReg::LanesI32 ys = b.lanesI32();
    VReg::LanesI32 rs;
    for (unsigned i = 0; i < kLanes32; ++i) {
        const std::int32_t take =
            -static_cast<std::int32_t>((p.mask >> i) & 1);
        rs[i] = xs[i] + (ys[i] & take);
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sel32(const Pred &p, const VReg &a, const VReg &b)
{
    const VReg::LanesI32 xs = a.lanesI32();
    const VReg::LanesI32 ys = b.lanesI32();
    VReg::LanesI32 rs;
    for (unsigned i = 0; i < kLanes32; ++i)
        rs[i] = ((p.mask >> i) & 1) ? xs[i] : ys[i];
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sub64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x - y;
    });
}

VReg
VectorUnit::min64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return static_cast<std::uint64_t>(
            std::min(static_cast<std::int64_t>(x),
                     static_cast<std::int64_t>(y)));
    });
}

VReg
VectorUnit::max64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return static_cast<std::uint64_t>(
            std::max(static_cast<std::int64_t>(x),
                     static_cast<std::int64_t>(y)));
    });
}

VReg
VectorUnit::add64i(const VReg &a, std::int64_t imm)
{
    const std::uint64_t add = static_cast<std::uint64_t>(imm);
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.words[i] = a.words[i] + add;
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::addUnderPred64(const VReg &a, std::int64_t imm, const Pred &p)
{
    const std::uint64_t add = static_cast<std::uint64_t>(imm);
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i) {
        const std::uint64_t take =
            -static_cast<std::uint64_t>((p.mask >> i) & 1);
        out.words[i] = a.words[i] + (add & take);
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag, p.tag});
    return out;
}

VReg
VectorUnit::addvUnderPred64(const VReg &a, const VReg &b, const Pred &p)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i) {
        const std::uint64_t take =
            -static_cast<std::uint64_t>((p.mask >> i) & 1);
        out.words[i] = a.words[i] + (b.words[i] & take);
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sel64(const Pred &p, const VReg &a, const VReg &b)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i) {
        const std::uint64_t take =
            -static_cast<std::uint64_t>((p.mask >> i) & 1);
        out.words[i] = b.words[i] ^ ((a.words[i] ^ b.words[i]) & take);
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

Pred
VectorUnit::cmpeq64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x == y;
    });
}

Pred
VectorUnit::cmpne64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x != y;
    });
}

Pred
VectorUnit::cmplt64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x < y;
    });
}

Pred
VectorUnit::cmpgt64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x > y;
    });
}

VReg
VectorUnit::widenLo32to64(const VReg &v)
{
    const VReg::LanesI32 xs = v.lanesI32();
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.words[i] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(xs[i]));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

VReg
VectorUnit::widenHi32to64(const VReg &v)
{
    const VReg::LanesI32 xs = v.lanesI32();
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.words[i] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(xs[kLanes64 + i]));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

VReg
VectorUnit::pack64to32(const VReg &lo, const VReg &hi)
{
    VReg::LanesI32 rs;
    for (unsigned i = 0; i < kLanes64; ++i) {
        rs[i] = static_cast<std::int32_t>(lo.words[i]);
        rs[kLanes64 + i] = static_cast<std::int32_t>(hi.words[i]);
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {lo.tag, hi.tag});
    return out;
}

Pred
VectorUnit::punpkLo(const Pred &p)
{
    Pred out;
    out.mask = p.mask & 0xFF;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return out;
}

Pred
VectorUnit::punpkHi(const Pred &p)
{
    Pred out;
    out.mask = (p.mask >> 8) & 0xFF;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return out;
}

VReg
VectorUnit::narrow64to32(const VReg &v)
{
    VReg::LanesI32 rs{};
    for (unsigned i = 0; i < kLanes64; ++i)
        rs[i] = static_cast<std::int32_t>(v.words[i]);
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

std::int64_t
VectorUnit::reduceMax64(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    const unsigned lim = std::min(n, kLanes64);
    for (unsigned i = 0; i < lim; ++i)
        if ((p.mask >> i) & 1)
            best = std::max(best,
                            static_cast<std::int64_t>(v.words[i]));
    return best;
}

VReg
VectorUnit::matchBytes32(const VReg &a, const VReg &b)
{
    const VReg::Lanes32 xs = a.lanesU32();
    const VReg::Lanes32 ys = b.lanesU32();
    VReg::Lanes32 rs;
    // countr_zero(0) == 32 makes the all-equal case fall out of the
    // same >> 3: 32 / 8 == 4 matching bytes.
    for (unsigned i = 0; i < kLanes32; ++i)
        rs[i] = static_cast<std::uint32_t>(
                    std::countr_zero(xs[i] ^ ys[i])) >>
                3;
    VReg out;
    out.setLanes(rs);
    // Two dependent instructions: byte compare + break/count.
    const sim::Tag mid =
        pipeline_.executeOp(OpClass::VecCmp, {a.tag, b.tag});
    out.tag = pipeline_.executeOp(OpClass::VecPred, {mid});
    return out;
}

VReg
VectorUnit::matchBytes32Rev(const VReg &a, const VReg &b)
{
    const VReg::Lanes32 xs = a.lanesU32();
    const VReg::Lanes32 ys = b.lanesU32();
    VReg::Lanes32 rs;
    for (unsigned i = 0; i < kLanes32; ++i)
        rs[i] = static_cast<std::uint32_t>(
                    std::countl_zero(xs[i] ^ ys[i])) >>
                3;
    VReg out;
    out.setLanes(rs);
    const sim::Tag mid =
        pipeline_.executeOp(OpClass::VecCmp, {a.tag, b.tag});
    out.tag = pipeline_.executeOp(OpClass::VecPred, {mid});
    return out;
}

VReg
VectorUnit::ctz64(const VReg &a)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.words[i] = static_cast<std::uint64_t>(
            std::countr_zero(a.words[i]));
    // rbit + clz on SVE: two instructions.
    const sim::Tag mid = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {mid});
    return out;
}

VReg
VectorUnit::clz64(const VReg &a)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.words[i] = static_cast<std::uint64_t>(
            std::countl_zero(a.words[i]));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::and64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x & y;
    });
}

VReg
VectorUnit::or64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x | y;
    });
}

VReg
VectorUnit::xor64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x ^ y;
    });
}

VReg
VectorUnit::xnor64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return ~(x ^ y);
    });
}

VReg
VectorUnit::shr64i(const VReg &a, unsigned shift)
{
    VReg out;
    if (shift < 64)
        for (unsigned i = 0; i < kLanes64; ++i)
            out.words[i] = a.words[i] >> shift;
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::shl64i(const VReg &a, unsigned shift)
{
    VReg out;
    if (shift < 64)
        for (unsigned i = 0; i < kLanes64; ++i)
            out.words[i] = a.words[i] << shift;
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::add64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x + y;
    });
}

Pred
VectorUnit::cmpeq32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x == y;
    });
}

Pred
VectorUnit::cmpne32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x != y;
    });
}

Pred
VectorUnit::cmpgt32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x > y;
    });
}

Pred
VectorUnit::cmplt32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x < y;
    });
}

Pred
VectorUnit::pTrue(unsigned n)
{
    panic_if_not(n <= 64, "predicate width {} too large", n);
    Pred out;
    out.mask = lowMask(n);
    out.tag = pipeline_.executeOp(OpClass::VecPred, {});
    return out;
}

Pred
VectorUnit::whilelt(std::int64_t i, std::int64_t n, unsigned elems)
{
    panic_if_not(elems <= 64, "predicate width {} too large", elems);
    // Active elements are exactly those with i + e < n: a prefix of
    // length clamp(n - i, 0, elems), so the mask is pure arithmetic.
    const std::int64_t remaining = n - i;
    const std::int64_t active = std::clamp<std::int64_t>(
        remaining, 0, static_cast<std::int64_t>(elems));
    Pred out;
    out.mask = lowMask(static_cast<unsigned>(active));
    out.tag = pipeline_.executeOp(OpClass::VecPred, {});
    return out;
}

Pred
VectorUnit::pAnd(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask & b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

Pred
VectorUnit::pOr(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask | b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

Pred
VectorUnit::pBic(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask & ~b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

bool
VectorUnit::anyActive(const Pred &p)
{
    pipeline_.executeOp(OpClass::Branch, {p.tag});
    const bool any = !p.none();
    if (!any) {
        // Loop-exit misprediction: the core speculated another
        // iteration and must redirect.
        pipeline_.bubble(kMispredictBubble, sim::StallKind::Frontend);
    }
    return any;
}

unsigned
VectorUnit::countActive(const Pred &p)
{
    pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return p.count();
}

std::int32_t
VectorUnit::reduceMax32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    const VReg::LanesI32 xs = v.lanesI32();
    std::int32_t best = std::numeric_limits<std::int32_t>::min();
    const unsigned lim = std::min(n, kLanes32);
    for (unsigned i = 0; i < lim; ++i)
        if ((p.mask >> i) & 1)
            best = std::max(best, xs[i]);
    return best;
}

std::int32_t
VectorUnit::reduceMin32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    const VReg::LanesI32 xs = v.lanesI32();
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    const unsigned lim = std::min(n, kLanes32);
    for (unsigned i = 0; i < lim; ++i)
        if ((p.mask >> i) & 1)
            best = std::min(best, xs[i]);
    return best;
}

std::int64_t
VectorUnit::reduceAdd32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    const VReg::LanesI32 xs = v.lanesI32();
    std::int64_t sum = 0;
    const unsigned lim = std::min(n, kLanes32);
    for (unsigned i = 0; i < lim; ++i)
        sum += ((p.mask >> i) & 1) ? xs[i] : 0;
    return sum;
}

std::uint64_t
VectorUnit::scalarLoad(SiteId site, const void *ptr, unsigned bytes)
{
    std::uint64_t value = 0;
    std::memcpy(&value, ptr, std::min(bytes, 8u));
    pipeline_.executeMem(OpClass::ScalarLoad, site, toAddr(ptr), bytes,
                         {});
    return value;
}

void
VectorUnit::scalarStore(SiteId site, void *ptr, unsigned bytes)
{
    pipeline_.executeMem(OpClass::ScalarStore, site, toAddr(ptr), bytes,
                         {});
}

} // namespace quetzal::isa
