#include "isa/vectorunit.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "sim/hostphase.hpp"

namespace quetzal::isa {

using sim::Addr;
using sim::OpClass;

namespace {

/** Branch-mispredict redirect bubble on loop exits (A64FX ~ 8). */
constexpr unsigned kMispredictBubble = 12;

Addr
toAddr(const void *ptr)
{
    return reinterpret_cast<Addr>(ptr);
}

using Func = sim::HostPhase::Scope;
constexpr auto kFunc = sim::HostPhase::Func;

} // namespace

VReg
VectorUnit::binOp(BinKernel op, const VReg &a, const VReg &b)
{
    VReg out;
    {
        Func scope(kFunc);
        op(a.words.data(), b.words.data(), out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag, b.tag});
    return out;
}

Pred
VectorUnit::compareOp(CmpKernel cmp, const VReg &a, const VReg &b,
                      const Pred &p, unsigned lim)
{
    std::uint64_t bits;
    {
        Func scope(kFunc);
        bits = cmp(a.words.data(), b.words.data());
    }
    Pred out;
    out.mask = bits & lowMask(lim) & p.mask;
    out.tag = pipeline_.executeOp(OpClass::VecCmp,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::dup32(std::int32_t value)
{
    const std::uint32_t lane = static_cast<std::uint32_t>(value);
    VReg out;
    out.words.fill((std::uint64_t{lane} << 32) | lane);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::dup64(std::uint64_t value)
{
    VReg out;
    out.words.fill(value);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::index32(std::int32_t start, std::int32_t step)
{
    VReg::LanesI32 rs;
    for (unsigned i = 0; i < kLanes32; ++i)
        rs[i] = start + static_cast<std::int32_t>(i) * step;
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::load(SiteId site, const void *ptr, unsigned bytes,
                 sim::Tag dep)
{
    panic_if_not(bytes <= 64, "vector load of {} bytes", bytes);
    VReg out;
    std::memcpy(out.words.data(), ptr, bytes);
    out.tag = pipeline_.executeMem(OpClass::VecLoad, site, toAddr(ptr),
                                   bytes, {dep});
    return out;
}

VReg
VectorUnit::load8to32(SiteId site, const void *ptr, unsigned n,
                      sim::Tag dep)
{
    return widenLanes8to32(
        ptr, n,
        pipeline_.executeMem(OpClass::VecLoad, site, toAddr(ptr), n,
                             {dep}));
}

VReg
VectorUnit::widenLanes8to32(const void *ptr, unsigned n, sim::Tag tag)
{
    panic_if_not(n <= kLanes32, "widening load of {} bytes", n);
    VReg out;
    {
        Func scope(kFunc);
        simd_.widen8to32(static_cast<const std::uint8_t *>(ptr), n,
                         out.words.data());
    }
    out.tag = tag;
    return out;
}

sim::Tag
VectorUnit::store(SiteId site, void *ptr, const VReg &value,
                  unsigned bytes)
{
    panic_if_not(bytes <= 64, "vector store of {} bytes", bytes);
    std::memcpy(ptr, value.words.data(), bytes);
    return pipeline_.executeMem(OpClass::VecStore, site, toAddr(ptr),
                                bytes, {value.tag});
}

VReg
VectorUnit::gather8(SiteId site, const void *base, const VReg &idx,
                    const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gather8 over {} elements", n);
    const auto *bytes = static_cast<const std::uint8_t *>(base);
    const std::uint64_t active = p.mask & lowMask(n);
    std::size_t count;
    {
        Func scope(kFunc);
        count = simd_.compactAddrU32(toAddr(base), idx.words.data(), 0,
                                     active, addrScratch_.data());
    }
    const VReg::Lanes32 is = idx.lanesU32();
    VReg::Lanes32 rs{};
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(m));
        rs[i] = bytes[is[i]];
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 1,
        {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gather32(SiteId site, const std::int32_t *base,
                     const VReg &idx, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gather32 over {} elements", n);
    const std::uint64_t active = p.mask & lowMask(n);
    std::size_t count;
    {
        Func scope(kFunc);
        count = simd_.compactAddrU32(toAddr(base), idx.words.data(), 2,
                                     active, addrScratch_.data());
    }
    const VReg::Lanes32 is = idx.lanesU32();
    VReg::LanesI32 rs{};
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(m));
        rs[i] = base[is[i]];
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 4,
        {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gatherU32(SiteId site, const void *base, const VReg &idx,
                      const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gatherU32 over {} elements", n);
    const auto *bytes = static_cast<const std::uint8_t *>(base);
    const std::uint64_t active = p.mask & lowMask(n);
    std::size_t count;
    {
        Func scope(kFunc);
        count = simd_.compactAddrI32(toAddr(base), idx.words.data(),
                                     active, addrScratch_.data());
    }
    const VReg::LanesI32 is = idx.lanesI32();
    VReg::Lanes32 rs{};
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(m));
        std::uint32_t word = 0;
        std::memcpy(&word, bytes + is[i], 4);
        rs[i] = word;
    }
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 4,
        {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gather64(SiteId site, const std::uint64_t *base,
                     const VReg &idx, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes64, "gather64 over {} lanes", n);
    const std::uint64_t active = p.mask & lowMask(n);
    std::size_t count;
    {
        Func scope(kFunc);
        count = simd_.compactAddr64(toAddr(base), idx.words.data(), 3,
                                    active, addrScratch_.data());
    }
    VReg out;
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(m));
        out.words[i] = base[idx.words[i]];
    }
    out.tag = pipeline_.executeIndexed(
        OpClass::VecGather, site, {addrScratch_.data(), count}, 8,
        {idx.tag, p.tag});
    return out;
}

void
VectorUnit::scatter32(SiteId site, std::int32_t *base, const VReg &idx,
                      const VReg &value, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "scatter32 over {} elements", n);
    const std::uint64_t active = p.mask & lowMask(n);
    std::size_t count;
    {
        Func scope(kFunc);
        count = simd_.compactAddrU32(toAddr(base), idx.words.data(), 2,
                                     active, addrScratch_.data());
    }
    const VReg::Lanes32 is = idx.lanesU32();
    const VReg::LanesI32 vs = value.lanesI32();
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(m));
        base[is[i]] = vs[i];
    }
    pipeline_.executeIndexed(OpClass::VecScatter, site,
                             {addrScratch_.data(), count}, 4,
                             {idx.tag, value.tag, p.tag});
}

void
VectorUnit::scatter64(SiteId site, std::uint64_t *base, const VReg &idx,
                      const VReg &value, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes64, "scatter64 over {} lanes", n);
    const std::uint64_t active = p.mask & lowMask(n);
    std::size_t count;
    {
        Func scope(kFunc);
        count = simd_.compactAddr64(toAddr(base), idx.words.data(), 3,
                                    active, addrScratch_.data());
    }
    for (std::uint64_t m = active; m != 0; m &= m - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(m));
        base[idx.words[i]] = value.words[i];
    }
    pipeline_.executeIndexed(OpClass::VecScatter, site,
                             {addrScratch_.data(), count}, 8,
                             {idx.tag, value.tag, p.tag});
}

VReg
VectorUnit::add32(const VReg &a, const VReg &b)
{
    return binOp(simd_.add32, a, b);
}

VReg
VectorUnit::add32i(const VReg &a, std::int32_t imm)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.addImm32(a.words.data(), imm, out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::sub32(const VReg &a, const VReg &b)
{
    return binOp(simd_.sub32, a, b);
}

VReg
VectorUnit::max32(const VReg &a, const VReg &b)
{
    return binOp(simd_.max32, a, b);
}

VReg
VectorUnit::min32(const VReg &a, const VReg &b)
{
    return binOp(simd_.min32, a, b);
}

VReg
VectorUnit::addUnderPred32(const VReg &a, std::int32_t imm, const Pred &p)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.addImmPred32(a.words.data(), imm, p.mask,
                           out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag, p.tag});
    return out;
}

VReg
VectorUnit::addvUnderPred32(const VReg &a, const VReg &b, const Pred &p)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.addPred32(a.words.data(), b.words.data(), p.mask,
                        out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sel32(const Pred &p, const VReg &a, const VReg &b)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.sel32(p.mask, a.words.data(), b.words.data(),
                    out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sub64(const VReg &a, const VReg &b)
{
    return binOp(simd_.sub64, a, b);
}

VReg
VectorUnit::min64(const VReg &a, const VReg &b)
{
    return binOp(simd_.min64, a, b);
}

VReg
VectorUnit::max64(const VReg &a, const VReg &b)
{
    return binOp(simd_.max64, a, b);
}

VReg
VectorUnit::add64i(const VReg &a, std::int64_t imm)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.addImm64(a.words.data(), imm, out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::addUnderPred64(const VReg &a, std::int64_t imm, const Pred &p)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.addImmPred64(a.words.data(), imm, p.mask,
                           out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag, p.tag});
    return out;
}

VReg
VectorUnit::addvUnderPred64(const VReg &a, const VReg &b, const Pred &p)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.addPred64(a.words.data(), b.words.data(), p.mask,
                        out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sel64(const Pred &p, const VReg &a, const VReg &b)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.sel64(p.mask, a.words.data(), b.words.data(),
                    out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

Pred
VectorUnit::cmpeq64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpEq64, a, b, p, std::min(n, kLanes64));
}

Pred
VectorUnit::cmpne64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpNe64, a, b, p, std::min(n, kLanes64));
}

Pred
VectorUnit::cmplt64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpLt64, a, b, p, std::min(n, kLanes64));
}

Pred
VectorUnit::cmpgt64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpGt64, a, b, p, std::min(n, kLanes64));
}

VReg
VectorUnit::widenLo32to64(const VReg &v)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.widenLo32to64(v.words.data(), out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

VReg
VectorUnit::widenHi32to64(const VReg &v)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.widenHi32to64(v.words.data(), out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

VReg
VectorUnit::pack64to32(const VReg &lo, const VReg &hi)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.pack64to32(lo.words.data(), hi.words.data(),
                         out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {lo.tag, hi.tag});
    return out;
}

Pred
VectorUnit::punpkLo(const Pred &p)
{
    Pred out;
    out.mask = p.mask & 0xFF;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return out;
}

Pred
VectorUnit::punpkHi(const Pred &p)
{
    Pred out;
    out.mask = (p.mask >> 8) & 0xFF;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return out;
}

VReg
VectorUnit::narrow64to32(const VReg &v)
{
    VReg::LanesI32 rs{};
    for (unsigned i = 0; i < kLanes64; ++i)
        rs[i] = static_cast<std::int32_t>(v.words[i]);
    VReg out;
    out.setLanes(rs);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

std::int64_t
VectorUnit::reduceMax64(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    const unsigned lim = std::min(n, kLanes64);
    for (unsigned i = 0; i < lim; ++i)
        if ((p.mask >> i) & 1)
            best = std::max(best,
                            static_cast<std::int64_t>(v.words[i]));
    return best;
}

VReg
VectorUnit::matchBytes32(const VReg &a, const VReg &b)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.matchBytes32(a.words.data(), b.words.data(),
                           out.words.data());
    }
    // Two dependent instructions: byte compare + break/count.
    const sim::Tag mid =
        pipeline_.executeOp(OpClass::VecCmp, {a.tag, b.tag});
    out.tag = pipeline_.executeOp(OpClass::VecPred, {mid});
    return out;
}

VReg
VectorUnit::matchBytes32Rev(const VReg &a, const VReg &b)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.matchBytes32Rev(a.words.data(), b.words.data(),
                              out.words.data());
    }
    const sim::Tag mid =
        pipeline_.executeOp(OpClass::VecCmp, {a.tag, b.tag});
    out.tag = pipeline_.executeOp(OpClass::VecPred, {mid});
    return out;
}

VReg
VectorUnit::ctz64(const VReg &a)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.ctz64(a.words.data(), out.words.data());
    }
    // rbit + clz on SVE: two instructions.
    const sim::Tag mid = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {mid});
    return out;
}

VReg
VectorUnit::clz64(const VReg &a)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.clz64(a.words.data(), out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::and64(const VReg &a, const VReg &b)
{
    return binOp(simd_.and64, a, b);
}

VReg
VectorUnit::or64(const VReg &a, const VReg &b)
{
    return binOp(simd_.or64, a, b);
}

VReg
VectorUnit::xor64(const VReg &a, const VReg &b)
{
    return binOp(simd_.xor64, a, b);
}

VReg
VectorUnit::xnor64(const VReg &a, const VReg &b)
{
    return binOp(simd_.xnor64, a, b);
}

VReg
VectorUnit::shr64i(const VReg &a, unsigned shift)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.shr64(a.words.data(), shift, out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::shl64i(const VReg &a, unsigned shift)
{
    VReg out;
    {
        Func scope(kFunc);
        simd_.shl64(a.words.data(), shift, out.words.data());
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::add64(const VReg &a, const VReg &b)
{
    return binOp(simd_.add64, a, b);
}

Pred
VectorUnit::cmpeq32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpEq32, a, b, p, std::min(n, kLanes32));
}

Pred
VectorUnit::cmpne32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpNe32, a, b, p, std::min(n, kLanes32));
}

Pred
VectorUnit::cmpgt32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpGt32, a, b, p, std::min(n, kLanes32));
}

Pred
VectorUnit::cmplt32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compareOp(simd_.cmpLt32, a, b, p, std::min(n, kLanes32));
}

Pred
VectorUnit::pTrue(unsigned n)
{
    panic_if_not(n <= 64, "predicate width {} too large", n);
    Pred out;
    out.mask = lowMask(n);
    out.tag = pipeline_.executeOp(OpClass::VecPred, {});
    return out;
}

Pred
VectorUnit::whilelt(std::int64_t i, std::int64_t n, unsigned elems)
{
    panic_if_not(elems <= 64, "predicate width {} too large", elems);
    // Active elements are exactly those with i + e < n: a prefix of
    // length clamp(n - i, 0, elems), so the mask is pure arithmetic.
    const std::int64_t remaining = n - i;
    const std::int64_t active = std::clamp<std::int64_t>(
        remaining, 0, static_cast<std::int64_t>(elems));
    Pred out;
    out.mask = lowMask(static_cast<unsigned>(active));
    out.tag = pipeline_.executeOp(OpClass::VecPred, {});
    return out;
}

Pred
VectorUnit::pAnd(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask & b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

Pred
VectorUnit::pOr(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask | b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

Pred
VectorUnit::pBic(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask & ~b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

bool
VectorUnit::anyActive(const Pred &p)
{
    pipeline_.executeOp(OpClass::Branch, {p.tag});
    const bool any = !p.none();
    if (!any) {
        // Loop-exit misprediction: the core speculated another
        // iteration and must redirect.
        pipeline_.bubble(kMispredictBubble, sim::StallKind::Frontend);
    }
    return any;
}

unsigned
VectorUnit::countActive(const Pred &p)
{
    pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return p.count();
}

std::int32_t
VectorUnit::reduceMax32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    const VReg::LanesI32 xs = v.lanesI32();
    std::int32_t best = std::numeric_limits<std::int32_t>::min();
    const unsigned lim = std::min(n, kLanes32);
    for (unsigned i = 0; i < lim; ++i)
        if ((p.mask >> i) & 1)
            best = std::max(best, xs[i]);
    return best;
}

std::int32_t
VectorUnit::reduceMin32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    const VReg::LanesI32 xs = v.lanesI32();
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    const unsigned lim = std::min(n, kLanes32);
    for (unsigned i = 0; i < lim; ++i)
        if ((p.mask >> i) & 1)
            best = std::min(best, xs[i]);
    return best;
}

std::int64_t
VectorUnit::reduceAdd32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    const VReg::LanesI32 xs = v.lanesI32();
    std::int64_t sum = 0;
    const unsigned lim = std::min(n, kLanes32);
    for (unsigned i = 0; i < lim; ++i)
        sum += ((p.mask >> i) & 1) ? xs[i] : 0;
    return sum;
}

std::uint64_t
VectorUnit::scalarLoad(SiteId site, const void *ptr, unsigned bytes)
{
    std::uint64_t value = 0;
    std::memcpy(&value, ptr, std::min(bytes, 8u));
    pipeline_.executeMem(OpClass::ScalarLoad, site, toAddr(ptr), bytes,
                         {});
    return value;
}

void
VectorUnit::scalarStore(SiteId site, void *ptr, unsigned bytes)
{
    pipeline_.executeMem(OpClass::ScalarStore, site, toAddr(ptr), bytes,
                         {});
}

} // namespace quetzal::isa
