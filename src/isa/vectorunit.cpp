#include "isa/vectorunit.hpp"

#include <algorithm>
#include <cstring>
#include <bit>
#include <limits>
#include <vector>

namespace quetzal::isa {

using sim::Addr;
using sim::OpClass;

namespace {

/** Branch-mispredict redirect bubble on loop exits (A64FX ~ 8). */
constexpr unsigned kMispredictBubble = 12;

Addr
toAddr(const void *ptr)
{
    return reinterpret_cast<Addr>(ptr);
}

} // namespace

VReg
VectorUnit::dup32(std::int32_t value)
{
    VReg out;
    for (unsigned i = 0; i < kLanes32; ++i)
        out.setI32(i, value);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::dup64(std::uint64_t value)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, value);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::index32(std::int32_t start, std::int32_t step)
{
    VReg out;
    for (unsigned i = 0; i < kLanes32; ++i)
        out.setI32(i, start + static_cast<std::int32_t>(i) * step);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {});
    return out;
}

VReg
VectorUnit::load(SiteId site, const void *ptr, unsigned bytes,
                 sim::Tag dep)
{
    panic_if_not(bytes <= 64, "vector load of {} bytes", bytes);
    VReg out;
    std::memcpy(out.words.data(), ptr, bytes);
    out.tag = pipeline_.executeMem(OpClass::VecLoad, site, toAddr(ptr),
                                   bytes, {dep});
    return out;
}

VReg
VectorUnit::load8to32(SiteId site, const void *ptr, unsigned n,
                      sim::Tag dep)
{
    panic_if_not(n <= kLanes32, "widening load of {} bytes", n);
    const auto *bytes = static_cast<const std::uint8_t *>(ptr);
    VReg out;
    for (unsigned i = 0; i < n; ++i)
        out.setU32(i, bytes[i]);
    out.tag = pipeline_.executeMem(OpClass::VecLoad, site, toAddr(ptr),
                                   n, {dep});
    return out;
}

sim::Tag
VectorUnit::store(SiteId site, void *ptr, const VReg &value,
                  unsigned bytes)
{
    panic_if_not(bytes <= 64, "vector store of {} bytes", bytes);
    std::memcpy(ptr, value.words.data(), bytes);
    return pipeline_.executeMem(OpClass::VecStore, site, toAddr(ptr),
                                bytes, {value.tag});
}

VReg
VectorUnit::gather8(SiteId site, const void *base, const VReg &idx,
                    const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gather8 over {} elements", n);
    const auto *bytes = static_cast<const std::uint8_t *>(base);
    VReg out;
    std::vector<Addr> addrs;
    addrs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        const std::uint32_t index = idx.u32(i);
        out.setU32(i, bytes[index]);
        addrs.push_back(toAddr(bytes + index));
    }
    out.tag = pipeline_.executeIndexed(OpClass::VecGather, site, addrs, 1,
                                       {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gather32(SiteId site, const std::int32_t *base,
                     const VReg &idx, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gather32 over {} elements", n);
    VReg out;
    std::vector<Addr> addrs;
    addrs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        const std::uint32_t index = idx.u32(i);
        out.setI32(i, base[index]);
        addrs.push_back(toAddr(base + index));
    }
    out.tag = pipeline_.executeIndexed(OpClass::VecGather, site, addrs, 4,
                                       {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gatherU32(SiteId site, const void *base, const VReg &idx,
                      const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "gatherU32 over {} elements", n);
    const auto *bytes = static_cast<const std::uint8_t *>(base);
    VReg out;
    std::vector<Addr> addrs;
    addrs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        const std::int32_t index = idx.i32(i);
        std::uint32_t word = 0;
        std::memcpy(&word, bytes + index, 4);
        out.setU32(i, word);
        addrs.push_back(toAddr(bytes + index));
    }
    out.tag = pipeline_.executeIndexed(OpClass::VecGather, site, addrs, 4,
                                       {idx.tag, p.tag});
    return out;
}

VReg
VectorUnit::gather64(SiteId site, const std::uint64_t *base,
                     const VReg &idx, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes64, "gather64 over {} lanes", n);
    VReg out;
    std::vector<Addr> addrs;
    addrs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        const std::uint64_t index = idx.u64(i);
        out.setU64(i, base[index]);
        addrs.push_back(toAddr(base + index));
    }
    out.tag = pipeline_.executeIndexed(OpClass::VecGather, site, addrs, 8,
                                       {idx.tag, p.tag});
    return out;
}

void
VectorUnit::scatter32(SiteId site, std::int32_t *base, const VReg &idx,
                      const VReg &value, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes32, "scatter32 over {} elements", n);
    std::vector<Addr> addrs;
    addrs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        const std::uint32_t index = idx.u32(i);
        base[index] = value.i32(i);
        addrs.push_back(toAddr(base + index));
    }
    pipeline_.executeIndexed(OpClass::VecScatter, site, addrs, 4,
                             {idx.tag, value.tag, p.tag});
}

void
VectorUnit::scatter64(SiteId site, std::uint64_t *base, const VReg &idx,
                      const VReg &value, const Pred &p, unsigned n)
{
    panic_if_not(n <= kLanes64, "scatter64 over {} lanes", n);
    std::vector<Addr> addrs;
    addrs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        const std::uint64_t index = idx.u64(i);
        base[index] = value.u64(i);
        addrs.push_back(toAddr(base + index));
    }
    pipeline_.executeIndexed(OpClass::VecScatter, site, addrs, 8,
                             {idx.tag, value.tag, p.tag});
}

VReg
VectorUnit::add32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return x + y;
    });
}

VReg
VectorUnit::add32i(const VReg &a, std::int32_t imm)
{
    VReg out;
    for (unsigned i = 0; i < kLanes32; ++i)
        out.setI32(i, a.i32(i) + imm);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::sub32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return x - y;
    });
}

VReg
VectorUnit::max32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return std::max(x, y);
    });
}

VReg
VectorUnit::min32(const VReg &a, const VReg &b)
{
    return map32(a, b, [](std::int32_t x, std::int32_t y) {
        return std::min(x, y);
    });
}

VReg
VectorUnit::addUnderPred32(const VReg &a, std::int32_t imm, const Pred &p)
{
    VReg out = a;
    for (unsigned i = 0; i < kLanes32; ++i)
        if (p.active(i))
            out.setI32(i, a.i32(i) + imm);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag, p.tag});
    return out;
}

VReg
VectorUnit::addvUnderPred32(const VReg &a, const VReg &b, const Pred &p)
{
    VReg out = a;
    for (unsigned i = 0; i < kLanes32; ++i)
        if (p.active(i))
            out.setI32(i, a.i32(i) + b.i32(i));
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sel32(const Pred &p, const VReg &a, const VReg &b)
{
    VReg out;
    for (unsigned i = 0; i < kLanes32; ++i)
        out.setI32(i, p.active(i) ? a.i32(i) : b.i32(i));
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sub64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x - y;
    });
}

VReg
VectorUnit::min64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return static_cast<std::uint64_t>(
            std::min(static_cast<std::int64_t>(x),
                     static_cast<std::int64_t>(y)));
    });
}

VReg
VectorUnit::max64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return static_cast<std::uint64_t>(
            std::max(static_cast<std::int64_t>(x),
                     static_cast<std::int64_t>(y)));
    });
}

VReg
VectorUnit::add64i(const VReg &a, std::int64_t imm)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, a.u64(i) + static_cast<std::uint64_t>(imm));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::addUnderPred64(const VReg &a, std::int64_t imm, const Pred &p)
{
    VReg out = a;
    for (unsigned i = 0; i < kLanes64; ++i)
        if (p.active(i))
            out.setU64(i, a.u64(i) + static_cast<std::uint64_t>(imm));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag, p.tag});
    return out;
}

VReg
VectorUnit::addvUnderPred64(const VReg &a, const VReg &b, const Pred &p)
{
    VReg out = a;
    for (unsigned i = 0; i < kLanes64; ++i)
        if (p.active(i))
            out.setU64(i, a.u64(i) + b.u64(i));
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

VReg
VectorUnit::sel64(const Pred &p, const VReg &a, const VReg &b)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, p.active(i) ? a.u64(i) : b.u64(i));
    out.tag = pipeline_.executeOp(OpClass::VecAlu,
                                  {a.tag, b.tag, p.tag});
    return out;
}

Pred
VectorUnit::cmpeq64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x == y;
    });
}

Pred
VectorUnit::cmpne64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x != y;
    });
}

Pred
VectorUnit::cmplt64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x < y;
    });
}

Pred
VectorUnit::cmpgt64(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare64(a, b, p, n, [](std::int64_t x, std::int64_t y) {
        return x > y;
    });
}

VReg
VectorUnit::widenLo32to64(const VReg &v)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(v.i32(i))));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

VReg
VectorUnit::widenHi32to64(const VReg &v)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(v.i32(8 + i))));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

VReg
VectorUnit::pack64to32(const VReg &lo, const VReg &hi)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i) {
        out.setI32(i, static_cast<std::int32_t>(lo.i64(i)));
        out.setI32(8 + i, static_cast<std::int32_t>(hi.i64(i)));
    }
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {lo.tag, hi.tag});
    return out;
}

Pred
VectorUnit::punpkLo(const Pred &p)
{
    Pred out;
    out.mask = p.mask & 0xFF;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return out;
}

Pred
VectorUnit::punpkHi(const Pred &p)
{
    Pred out;
    out.mask = (p.mask >> 8) & 0xFF;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return out;
}

VReg
VectorUnit::narrow64to32(const VReg &v)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setI32(i, static_cast<std::int32_t>(v.i64(i)));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {v.tag});
    return out;
}

std::int64_t
VectorUnit::reduceMax64(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    for (unsigned i = 0; i < n && i < kLanes64; ++i)
        if (p.active(i))
            best = std::max(best, v.i64(i));
    return best;
}

namespace {

unsigned
equalBytesFromBottom(std::uint32_t a, std::uint32_t b)
{
    unsigned count = 0;
    while (count < 4 &&
           ((a >> (8 * count)) & 0xFF) == ((b >> (8 * count)) & 0xFF))
        ++count;
    return count;
}

unsigned
equalBytesFromTop(std::uint32_t a, std::uint32_t b)
{
    unsigned count = 0;
    while (count < 4 && ((a >> (8 * (3 - count))) & 0xFF) ==
                            ((b >> (8 * (3 - count))) & 0xFF))
        ++count;
    return count;
}

} // namespace

VReg
VectorUnit::matchBytes32(const VReg &a, const VReg &b)
{
    VReg out;
    for (unsigned i = 0; i < kLanes32; ++i)
        out.setU32(i, equalBytesFromBottom(a.u32(i), b.u32(i)));
    // Two dependent instructions: byte compare + break/count.
    const sim::Tag mid =
        pipeline_.executeOp(OpClass::VecCmp, {a.tag, b.tag});
    out.tag = pipeline_.executeOp(OpClass::VecPred, {mid});
    return out;
}

VReg
VectorUnit::matchBytes32Rev(const VReg &a, const VReg &b)
{
    VReg out;
    for (unsigned i = 0; i < kLanes32; ++i)
        out.setU32(i, equalBytesFromTop(a.u32(i), b.u32(i)));
    const sim::Tag mid =
        pipeline_.executeOp(OpClass::VecCmp, {a.tag, b.tag});
    out.tag = pipeline_.executeOp(OpClass::VecPred, {mid});
    return out;
}

VReg
VectorUnit::ctz64(const VReg &a)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, std::countr_zero(a.u64(i)));
    // rbit + clz on SVE: two instructions.
    const sim::Tag mid = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {mid});
    return out;
}

VReg
VectorUnit::clz64(const VReg &a)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, std::countl_zero(a.u64(i)));
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::and64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x & y;
    });
}

VReg
VectorUnit::or64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x | y;
    });
}

VReg
VectorUnit::xor64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x ^ y;
    });
}

VReg
VectorUnit::xnor64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return ~(x ^ y);
    });
}

VReg
VectorUnit::shr64i(const VReg &a, unsigned shift)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, shift >= 64 ? 0 : a.u64(i) >> shift);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::shl64i(const VReg &a, unsigned shift)
{
    VReg out;
    for (unsigned i = 0; i < kLanes64; ++i)
        out.setU64(i, shift >= 64 ? 0 : a.u64(i) << shift);
    out.tag = pipeline_.executeOp(OpClass::VecAlu, {a.tag});
    return out;
}

VReg
VectorUnit::add64(const VReg &a, const VReg &b)
{
    return map64(a, b, [](std::uint64_t x, std::uint64_t y) {
        return x + y;
    });
}

Pred
VectorUnit::cmpeq32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x == y;
    });
}

Pred
VectorUnit::cmpne32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x != y;
    });
}

Pred
VectorUnit::cmpgt32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x > y;
    });
}

Pred
VectorUnit::cmplt32(const VReg &a, const VReg &b, const Pred &p,
                    unsigned n)
{
    return compare32(a, b, p, n, [](std::int32_t x, std::int32_t y) {
        return x < y;
    });
}

Pred
VectorUnit::pTrue(unsigned n)
{
    panic_if_not(n <= 64, "predicate width {} too large", n);
    Pred out;
    out.mask = n >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << n) - 1;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {});
    return out;
}

Pred
VectorUnit::whilelt(std::int64_t i, std::int64_t n, unsigned elems)
{
    panic_if_not(elems <= 64, "predicate width {} too large", elems);
    Pred out;
    for (unsigned e = 0; e < elems; ++e)
        out.set(e, i + static_cast<std::int64_t>(e) < n);
    out.tag = pipeline_.executeOp(OpClass::VecPred, {});
    return out;
}

Pred
VectorUnit::pAnd(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask & b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

Pred
VectorUnit::pOr(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask | b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

Pred
VectorUnit::pBic(const Pred &a, const Pred &b)
{
    Pred out;
    out.mask = a.mask & ~b.mask;
    out.tag = pipeline_.executeOp(OpClass::VecPred, {a.tag, b.tag});
    return out;
}

bool
VectorUnit::anyActive(const Pred &p)
{
    pipeline_.executeOp(OpClass::Branch, {p.tag});
    const bool any = !p.none();
    if (!any) {
        // Loop-exit misprediction: the core speculated another
        // iteration and must redirect.
        pipeline_.bubble(kMispredictBubble, sim::StallKind::Frontend);
    }
    return any;
}

unsigned
VectorUnit::countActive(const Pred &p)
{
    pipeline_.executeOp(OpClass::VecPred, {p.tag});
    return p.count();
}

std::int32_t
VectorUnit::reduceMax32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    std::int32_t best = std::numeric_limits<std::int32_t>::min();
    for (unsigned i = 0; i < n && i < kLanes32; ++i)
        if (p.active(i))
            best = std::max(best, v.i32(i));
    return best;
}

std::int32_t
VectorUnit::reduceMin32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    for (unsigned i = 0; i < n && i < kLanes32; ++i)
        if (p.active(i))
            best = std::min(best, v.i32(i));
    return best;
}

std::int64_t
VectorUnit::reduceAdd32(const VReg &v, const Pred &p, unsigned n)
{
    pipeline_.executeOp(OpClass::VecReduce, {v.tag, p.tag});
    std::int64_t sum = 0;
    for (unsigned i = 0; i < n && i < kLanes32; ++i)
        if (p.active(i))
            sum += v.i32(i);
    return sum;
}

std::uint64_t
VectorUnit::scalarLoad(SiteId site, const void *ptr, unsigned bytes)
{
    std::uint64_t value = 0;
    std::memcpy(&value, ptr, std::min(bytes, 8u));
    pipeline_.executeMem(OpClass::ScalarLoad, site, toAddr(ptr), bytes,
                         {});
    return value;
}

void
VectorUnit::scalarStore(SiteId site, void *ptr, unsigned bytes)
{
    pipeline_.executeMem(OpClass::ScalarStore, site, toAddr(ptr), bytes,
                         {});
}

} // namespace quetzal::isa
