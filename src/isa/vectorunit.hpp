/**
 * @file
 * The SVE-like vector ISA facade.
 *
 * Every method performs the operation functionally on host data AND
 * reports one dynamic instruction to the pipeline timing model; the
 * returned VReg/Pred carries the result's readiness tag so dependency
 * chains (e.g. gather -> compare -> predicated add -> next gather in
 * WFA's extend loop) are timed correctly.
 *
 * Memory-touching methods take a SiteId: a stable per-call-site token
 * standing in for the program counter, which the stride prefetcher
 * uses for training.
 *
 * Host-performance rules for this layer (docs/SIMULATOR.md, "Host
 * performance"): the functional payload of every hot op is delegated
 * to the process-wide host-SIMD kernel table (isa/hostsimd.hpp —
 * AVX-512 / AVX2 / scalar reference, resolved once at startup), and
 * hot paths never allocate — indexed memory ops collect their element
 * addresses into the reusable addrScratch_ member instead of a
 * per-call std::vector. Timing emission is identical whichever
 * backend runs; the kernels are functional drop-ins.
 */
#ifndef QUETZAL_ISA_VECTORUNIT_HPP
#define QUETZAL_ISA_VECTORUNIT_HPP

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "isa/hostsimd.hpp"
#include "isa/vreg.hpp"
#include "sim/pipeline.hpp"

namespace quetzal::isa {

/** Static instruction-site identifier (prefetcher PC proxy). */
using SiteId = std::uint64_t;

/** The vector datapath facade. */
class VectorUnit
{
  public:
    explicit VectorUnit(sim::Pipeline &pipeline)
        : pipeline_(pipeline), simd_(hostSimd())
    {
    }

    /** 32-bit elements per vector (512-bit SVE: 16). */
    static constexpr unsigned lanes32() { return kLanes32; }
    /** 64-bit lanes per vector (8). */
    static constexpr unsigned lanes64() { return kLanes64; }

    // ---- register initialization ---------------------------------
    /** Broadcast a 32-bit immediate (svdup). */
    VReg dup32(std::int32_t value);
    /** Broadcast a 64-bit immediate. */
    VReg dup64(std::uint64_t value);
    /** Element i = start + i*step over 32-bit elements (svindex). */
    VReg index32(std::int32_t start, std::int32_t step);

    // ---- contiguous memory ----------------------------------------
    /**
     * Contiguous vector load of @p bytes (<= 64) from @p ptr.
     * @param dep extra dependency (e.g. a store whose data this load
     *        forwards from; pre-bias its ready cycle to model a
     *        store-to-load forwarding penalty).
     */
    VReg load(SiteId site, const void *ptr, unsigned bytes = 64,
              sim::Tag dep = {});
    /**
     * Widening byte load (SVE ld1b -> 32-bit elements): reads @p n
     * bytes and zero-extends each into a 32-bit element.
     */
    VReg load8to32(SiteId site, const void *ptr, unsigned n,
                   sim::Tag dep = {});
    /** Contiguous vector store of @p bytes (<= 64); returns its tag. */
    sim::Tag store(SiteId site, void *ptr, const VReg &value,
                   unsigned bytes = 64);

    // ---- batched contiguous memory --------------------------------
    /**
     * Charging half of a run of contiguous vector memory ops that all
     * consume the same @p dep: one pipeline call, op i's readiness tag
     * in @p tags[i], byte-identical to per-op load()/store() charging
     * in array order. Pair each tag with the matching functional
     * payload below (lanes()/widenLanes8to32()) to rebuild the
     * registers load() would have returned. The DP vector fills charge
     * a fixed 5-7 load shape per slice, which is where the per-call
     * scoreboard reload cost concentrated.
     */
    void
    chargeMemRun(std::span<const sim::MemOp> ops, sim::Tag dep,
                 std::span<sim::Tag> tags)
    {
        pipeline_.executeMemRun(ops, dep, tags);
    }

    /** Functional payload of load(): @p bytes (<= 64) copied into a
     *  fresh register carrying @p tag. */
    static VReg
    lanes(const void *ptr, unsigned bytes, sim::Tag tag)
    {
        VReg out;
        std::memcpy(out.words.data(), ptr, bytes);
        out.tag = tag;
        return out;
    }

    /** Functional payload of load8to32(): @p n bytes zero-extended
     *  into 32-bit elements, carrying @p tag. */
    VReg widenLanes8to32(const void *ptr, unsigned n, sim::Tag tag);

    // ---- indexed memory (scatter/gather) --------------------------
    /**
     * Gather bytes: result 32-bit element i = base[idx.u32(i)],
     * zero-extended, for the first @p n elements where @p p is active.
     */
    VReg gather8(SiteId site, const void *base, const VReg &idx,
                 const Pred &p, unsigned n);
    /** Gather 32-bit words: element i = base[idx.u32(i)]. */
    VReg gather32(SiteId site, const std::int32_t *base, const VReg &idx,
                  const Pred &p, unsigned n);
    /**
     * Byte-addressed unaligned 32-bit gather: element i is the 4-byte
     * little-endian word at base + idx.i32(i). Used by the word-wise
     * extend kernels that compare four residues per lane per step.
     */
    VReg gatherU32(SiteId site, const void *base, const VReg &idx,
                   const Pred &p, unsigned n);
    /** Gather 64-bit words via 64-bit lane indices. */
    VReg gather64(SiteId site, const std::uint64_t *base, const VReg &idx,
                  const Pred &p, unsigned n);
    /** Scatter 32-bit elements to base[idx.u32(i)]. */
    void scatter32(SiteId site, std::int32_t *base, const VReg &idx,
                   const VReg &value, const Pred &p, unsigned n);
    /** Scatter 64-bit lanes to base[idx.u64(i)]. */
    void scatter64(SiteId site, std::uint64_t *base, const VReg &idx,
                   const VReg &value, const Pred &p, unsigned n);

    // ---- 32-bit integer arithmetic --------------------------------
    VReg add32(const VReg &a, const VReg &b);
    VReg add32i(const VReg &a, std::int32_t imm);
    VReg sub32(const VReg &a, const VReg &b);
    VReg max32(const VReg &a, const VReg &b);
    VReg min32(const VReg &a, const VReg &b);
    /** a + imm where p active, else a (predicated add). */
    VReg addUnderPred32(const VReg &a, std::int32_t imm, const Pred &p);
    /** a + b where p active, else a. */
    VReg addvUnderPred32(const VReg &a, const VReg &b, const Pred &p);
    /** p ? a : b per 32-bit element (svsel). */
    VReg sel32(const Pred &p, const VReg &a, const VReg &b);

    // ---- 64-bit integer arithmetic (8 lanes) -----------------------
    VReg sub64(const VReg &a, const VReg &b);
    VReg min64(const VReg &a, const VReg &b); //!< signed
    VReg max64(const VReg &a, const VReg &b); //!< signed
    VReg add64i(const VReg &a, std::int64_t imm);
    /** a + imm on lanes where p is active, else a. */
    VReg addUnderPred64(const VReg &a, std::int64_t imm, const Pred &p);
    /** a + b on lanes where p is active, else a. */
    VReg addvUnderPred64(const VReg &a, const VReg &b, const Pred &p);
    /** p ? a : b per 64-bit lane. */
    VReg sel64(const Pred &p, const VReg &a, const VReg &b);

    // ---- 64-bit comparisons -> predicate ---------------------------
    Pred cmpeq64(const VReg &a, const VReg &b, const Pred &p, unsigned n);
    Pred cmpne64(const VReg &a, const VReg &b, const Pred &p, unsigned n);
    Pred cmplt64(const VReg &a, const VReg &b, const Pred &p, unsigned n);
    Pred cmpgt64(const VReg &a, const VReg &b, const Pred &p, unsigned n);

    // ---- width conversion ------------------------------------------
    /** Sign-extend the low 8 int32 elements into 8 int64 lanes. */
    VReg widenLo32to64(const VReg &v);
    /** Sign-extend the high 8 int32 elements (sunpkhi). */
    VReg widenHi32to64(const VReg &v);
    /** Truncate 8 int64 lanes into the low 8 int32 elements. */
    VReg narrow64to32(const VReg &v);
    /** Pack two 8-lane 64-bit vectors into 16 int32 elements (uzp1). */
    VReg pack64to32(const VReg &lo, const VReg &hi);

    /** Unpack the low 8 predicate elements (punpklo). */
    Pred punpkLo(const Pred &p);
    /** Unpack the high 8 predicate elements (punpkhi). */
    Pred punpkHi(const Pred &p);

    // ---- 64-bit reductions ------------------------------------------
    /** Max across active 64-bit lanes. */
    std::int64_t reduceMax64(const VReg &v, const Pred &p, unsigned n);

    // ---- byte-run helpers (SVE cmpeq.b + brkb + cntp idiom) --------
    /**
     * Per 32-bit element: number of consecutive equal bytes between
     * @p a and @p b counted from byte 0 (0..4). Charged as the 2-op
     * SVE byte-compare/break sequence it stands for.
     */
    VReg matchBytes32(const VReg &a, const VReg &b);
    /** Same, counting from byte 3 downwards (reverse extension). */
    VReg matchBytes32Rev(const VReg &a, const VReg &b);

    /** Per 64-bit lane: count of trailing zero bits (SVE rbit+clz). */
    VReg ctz64(const VReg &a);
    /** Per 64-bit lane: count of leading zero bits (SVE clz). */
    VReg clz64(const VReg &a);

    // ---- 64-bit bitwise -------------------------------------------
    VReg and64(const VReg &a, const VReg &b);
    VReg or64(const VReg &a, const VReg &b);
    VReg xor64(const VReg &a, const VReg &b);
    VReg xnor64(const VReg &a, const VReg &b);
    VReg shr64i(const VReg &a, unsigned shift);
    VReg shl64i(const VReg &a, unsigned shift);
    VReg add64(const VReg &a, const VReg &b);

    // ---- comparisons -> predicate ---------------------------------
    /** 32-bit element equality under governing predicate. */
    Pred cmpeq32(const VReg &a, const VReg &b, const Pred &p, unsigned n);
    Pred cmpne32(const VReg &a, const VReg &b, const Pred &p, unsigned n);
    Pred cmpgt32(const VReg &a, const VReg &b, const Pred &p, unsigned n);
    Pred cmplt32(const VReg &a, const VReg &b, const Pred &p, unsigned n);

    // ---- predicate manipulation -----------------------------------
    /** All-active predicate over @p n elements (svptrue). */
    Pred pTrue(unsigned n);
    /** Predicate active while i+elem < n (svwhilelt). */
    Pred whilelt(std::int64_t i, std::int64_t n, unsigned elems);
    Pred pAnd(const Pred &a, const Pred &b);
    Pred pOr(const Pred &a, const Pred &b);
    /** a AND NOT b (svbic). */
    Pred pBic(const Pred &a, const Pred &b);

    /**
     * Test for any active element and branch (svptest + b.any). The
     * branch is modeled as predicted; a taken-exit misprediction
     * bubble is charged when the loop terminates.
     */
    bool anyActive(const Pred &p);
    /** Count active elements (svcntp); scalar result. */
    unsigned countActive(const Pred &p);

    // ---- reductions ------------------------------------------------
    /** Max across active 32-bit elements (svmaxv). */
    std::int32_t reduceMax32(const VReg &v, const Pred &p, unsigned n);
    /** Min across active 32-bit elements (svminv). */
    std::int32_t reduceMin32(const VReg &v, const Pred &p, unsigned n);
    /** Sum across active 32-bit elements (svaddv). */
    std::int64_t reduceAdd32(const VReg &v, const Pred &p, unsigned n);

    // ---- scalar-side bookkeeping ----------------------------------
    /** Charge @p count scalar ALU ops (address math, loop counters). */
    void scalarOps(unsigned count) { pipeline_.chargeScalarOps(count); }
    /** Charge one scalar load (pointer-chasing etc.). */
    std::uint64_t scalarLoad(SiteId site, const void *ptr,
                             unsigned bytes);
    /** Charge one scalar store. */
    void scalarStore(SiteId site, void *ptr, unsigned bytes);

    sim::Pipeline &pipeline() { return pipeline_; }

  private:
    using KernelW = HostSimdOps::W;
    using BinKernel = void (*)(const KernelW *, const KernelW *,
                               KernelW *);
    using CmpKernel = std::uint64_t (*)(const KernelW *, const KernelW *);

    /** Elementwise binary op through a backend kernel (32- or 64-bit). */
    VReg binOp(BinKernel op, const VReg &a, const VReg &b);

    /**
     * Comparison through a backend kernel: the kernel's full-width
     * lane mask clamped to the first @p lim elements and the governing
     * predicate — exactly the bits the old per-lane loop produced.
     */
    Pred compareOp(CmpKernel cmp, const VReg &a, const VReg &b,
                   const Pred &p, unsigned lim);

    sim::Pipeline &pipeline_;

    /** Process-wide host-SIMD kernel table (isa/hostsimd.hpp). */
    const HostSimdOps &simd_;

    /** Reusable element-address buffer for gathers/scatters, so the
     *  per-instruction hot path never allocates (kLanes32 is the
     *  widest element count any indexed op can produce). */
    std::array<sim::Addr, kLanes32> addrScratch_{};
};

} // namespace quetzal::isa

#endif // QUETZAL_ISA_VECTORUNIT_HPP
