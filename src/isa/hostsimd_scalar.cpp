/**
 * @file
 * Scalar HostSimdOps table: the portable fallback and the reference
 * model. Every kernel is the flat, branch-poor loop the VectorUnit
 * facade executed inline before the backend split (whole-register
 * element views the host compiler can auto-vectorize); the SIMD
 * tables are lockstep-tested against this one
 * (tests/test_hostsimd.cpp).
 */
#include "isa/hostsimd.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace quetzal::isa {

namespace {

using W = HostSimdOps::W;

constexpr unsigned kL64 = 8;  //!< 64-bit lanes
constexpr unsigned kL32 = 16; //!< 32-bit elements

/** Flat 32-bit element view (safe little-endian reinterpretation). */
struct View32
{
    std::uint32_t v[kL32];

    explicit View32(const W *w) { std::memcpy(v, w, sizeof(v)); }
    View32() = default;

    void writeTo(W *w) const { std::memcpy(w, v, sizeof(v)); }

    std::int32_t s(unsigned i) const
    {
        return static_cast<std::int32_t>(v[i]);
    }
};

// ---- 64-bit lanes -------------------------------------------------

void
and64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] & b[i];
}

void
or64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] | b[i];
}

void
xor64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] ^ b[i];
}

void
xnor64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = ~(a[i] ^ b[i]);
}

void
add64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] + b[i];
}

void
sub64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] - b[i];
}

void
min64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = static_cast<W>(
            std::min(static_cast<std::int64_t>(a[i]),
                     static_cast<std::int64_t>(b[i])));
}

void
max64(const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = static_cast<W>(
            std::max(static_cast<std::int64_t>(a[i]),
                     static_cast<std::int64_t>(b[i])));
}

void
addImm64(const W *a, std::int64_t imm, W *out)
{
    const W add = static_cast<W>(imm);
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] + add;
}

void
addImmPred64(const W *a, std::int64_t imm, std::uint64_t mask, W *out)
{
    const W add = static_cast<W>(imm);
    for (unsigned i = 0; i < kL64; ++i) {
        const W take = -static_cast<W>((mask >> i) & 1);
        out[i] = a[i] + (add & take);
    }
}

void
addPred64(const W *a, const W *b, std::uint64_t mask, W *out)
{
    for (unsigned i = 0; i < kL64; ++i) {
        const W take = -static_cast<W>((mask >> i) & 1);
        out[i] = a[i] + (b[i] & take);
    }
}

void
sel64(std::uint64_t mask, const W *a, const W *b, W *out)
{
    for (unsigned i = 0; i < kL64; ++i) {
        const W take = -static_cast<W>((mask >> i) & 1);
        out[i] = b[i] ^ ((a[i] ^ b[i]) & take);
    }
}

void
shr64(const W *a, unsigned shift, W *out)
{
    if (shift >= 64) {
        std::memset(out, 0, kL64 * sizeof(W));
        return;
    }
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] >> shift;
}

void
shl64(const W *a, unsigned shift, W *out)
{
    if (shift >= 64) {
        std::memset(out, 0, kL64 * sizeof(W));
        return;
    }
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = a[i] << shift;
}

void
ctz64(const W *a, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = static_cast<W>(std::countr_zero(a[i]));
}

void
clz64(const W *a, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = static_cast<W>(std::countl_zero(a[i]));
}

// ---- 32-bit elements ----------------------------------------------

void
add32(const W *a, const W *b, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = x.v[i] + y.v[i];
    r.writeTo(out);
}

void
sub32(const W *a, const W *b, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = x.v[i] - y.v[i];
    r.writeTo(out);
}

void
min32(const W *a, const W *b, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = static_cast<std::uint32_t>(std::min(x.s(i), y.s(i)));
    r.writeTo(out);
}

void
max32(const W *a, const W *b, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = static_cast<std::uint32_t>(std::max(x.s(i), y.s(i)));
    r.writeTo(out);
}

void
addImm32(const W *a, std::int32_t imm, W *out)
{
    const auto add = static_cast<std::uint32_t>(imm);
    const View32 x(a);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = x.v[i] + add;
    r.writeTo(out);
}

void
addImmPred32(const W *a, std::int32_t imm, std::uint64_t mask, W *out)
{
    const auto add = static_cast<std::uint32_t>(imm);
    const View32 x(a);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i) {
        const std::uint32_t take =
            -static_cast<std::uint32_t>((mask >> i) & 1);
        r.v[i] = x.v[i] + (add & take);
    }
    r.writeTo(out);
}

void
addPred32(const W *a, const W *b, std::uint64_t mask, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i) {
        const std::uint32_t take =
            -static_cast<std::uint32_t>((mask >> i) & 1);
        r.v[i] = x.v[i] + (y.v[i] & take);
    }
    r.writeTo(out);
}

void
sel32(std::uint64_t mask, const W *a, const W *b, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = ((mask >> i) & 1) ? x.v[i] : y.v[i];
    r.writeTo(out);
}

// ---- compares -----------------------------------------------------

std::uint64_t
cmpEq32(const W *a, const W *b)
{
    const View32 x(a), y(b);
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL32; ++i)
        bits |= std::uint64_t{x.v[i] == y.v[i]} << i;
    return bits;
}

std::uint64_t
cmpNe32(const W *a, const W *b)
{
    const View32 x(a), y(b);
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL32; ++i)
        bits |= std::uint64_t{x.v[i] != y.v[i]} << i;
    return bits;
}

std::uint64_t
cmpGt32(const W *a, const W *b)
{
    const View32 x(a), y(b);
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL32; ++i)
        bits |= std::uint64_t{x.s(i) > y.s(i)} << i;
    return bits;
}

std::uint64_t
cmpLt32(const W *a, const W *b)
{
    const View32 x(a), y(b);
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL32; ++i)
        bits |= std::uint64_t{x.s(i) < y.s(i)} << i;
    return bits;
}

std::uint64_t
cmpEq64(const W *a, const W *b)
{
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL64; ++i)
        bits |= std::uint64_t{a[i] == b[i]} << i;
    return bits;
}

std::uint64_t
cmpNe64(const W *a, const W *b)
{
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL64; ++i)
        bits |= std::uint64_t{a[i] != b[i]} << i;
    return bits;
}

std::uint64_t
cmpGt64(const W *a, const W *b)
{
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL64; ++i)
        bits |= std::uint64_t{static_cast<std::int64_t>(a[i]) >
                              static_cast<std::int64_t>(b[i])}
                << i;
    return bits;
}

std::uint64_t
cmpLt64(const W *a, const W *b)
{
    std::uint64_t bits = 0;
    for (unsigned i = 0; i < kL64; ++i)
        bits |= std::uint64_t{static_cast<std::int64_t>(a[i]) <
                              static_cast<std::int64_t>(b[i])}
                << i;
    return bits;
}

// ---- byte runs ----------------------------------------------------

void
matchBytes32(const W *a, const W *b, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    // countr_zero(0) == 32 makes the all-equal case fall out of the
    // same >> 3: 32 / 8 == 4 matching bytes.
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = static_cast<std::uint32_t>(
                     std::countr_zero(x.v[i] ^ y.v[i])) >>
                 3;
    r.writeTo(out);
}

void
matchBytes32Rev(const W *a, const W *b, W *out)
{
    const View32 x(a), y(b);
    View32 r;
    for (unsigned i = 0; i < kL32; ++i)
        r.v[i] = static_cast<std::uint32_t>(
                     std::countl_zero(x.v[i] ^ y.v[i])) >>
                 3;
    r.writeTo(out);
}

// ---- width conversion ---------------------------------------------

void
widen8to32(const std::uint8_t *src, unsigned n, W *out)
{
    View32 r{};
    for (unsigned i = 0; i < n; ++i)
        r.v[i] = src[i];
    r.writeTo(out);
}

void
widenLo32to64(const W *v, W *out)
{
    const View32 x(v);
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = static_cast<W>(static_cast<std::int64_t>(x.s(i)));
}

void
widenHi32to64(const W *v, W *out)
{
    const View32 x(v);
    for (unsigned i = 0; i < kL64; ++i)
        out[i] =
            static_cast<W>(static_cast<std::int64_t>(x.s(kL64 + i)));
}

void
pack64to32(const W *lo, const W *hi, W *out)
{
    View32 r;
    for (unsigned i = 0; i < kL64; ++i) {
        r.v[i] = static_cast<std::uint32_t>(lo[i]);
        r.v[kL64 + i] = static_cast<std::uint32_t>(hi[i]);
    }
    r.writeTo(out);
}

// ---- CountALU -----------------------------------------------------

void
qzcount(const W *a, const W *b, unsigned shift, W *out)
{
    // countr_one(~(a ^ b)) == countr_zero(a ^ b): the run of matching
    // bits from bit 0 (accel::CountAlu::count).
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = static_cast<W>(
            static_cast<unsigned>(std::countr_zero(a[i] ^ b[i])) >>
            shift);
}

void
qzcountRev(const W *a, const W *b, unsigned shift, W *out)
{
    for (unsigned i = 0; i < kL64; ++i)
        out[i] = static_cast<W>(
            static_cast<unsigned>(std::countl_zero(a[i] ^ b[i])) >>
            shift);
}

// ---- gather/scatter address math ----------------------------------

unsigned
compactAddrU32(std::uint64_t base, const W *idx, unsigned log2Scale,
               std::uint64_t mask, std::uint64_t *addrs)
{
    const View32 is(idx);
    unsigned count = 0;
    for (unsigned i = 0; i < kL32; ++i)
        if ((mask >> i) & 1)
            addrs[count++] =
                base + (std::uint64_t{is.v[i]} << log2Scale);
    return count;
}

unsigned
compactAddrI32(std::uint64_t base, const W *idx, std::uint64_t mask,
               std::uint64_t *addrs)
{
    const View32 is(idx);
    unsigned count = 0;
    for (unsigned i = 0; i < kL32; ++i)
        if ((mask >> i) & 1)
            addrs[count++] =
                base +
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(is.s(i)));
    return count;
}

unsigned
compactAddr64(std::uint64_t base, const W *idx, unsigned log2Scale,
              std::uint64_t mask, std::uint64_t *addrs)
{
    unsigned count = 0;
    for (unsigned i = 0; i < kL64; ++i)
        if ((mask >> i) & 1)
            addrs[count++] = base + (idx[i] << log2Scale);
    return count;
}

} // namespace

const HostSimdOps &
hostSimdScalarOps()
{
    static const HostSimdOps ops = {
        .name = "scalar",
        .and64 = and64,
        .or64 = or64,
        .xor64 = xor64,
        .xnor64 = xnor64,
        .add64 = add64,
        .sub64 = sub64,
        .min64 = min64,
        .max64 = max64,
        .addImm64 = addImm64,
        .addImmPred64 = addImmPred64,
        .addPred64 = addPred64,
        .sel64 = sel64,
        .shr64 = shr64,
        .shl64 = shl64,
        .ctz64 = ctz64,
        .clz64 = clz64,
        .add32 = add32,
        .sub32 = sub32,
        .min32 = min32,
        .max32 = max32,
        .addImm32 = addImm32,
        .addImmPred32 = addImmPred32,
        .addPred32 = addPred32,
        .sel32 = sel32,
        .cmpEq32 = cmpEq32,
        .cmpNe32 = cmpNe32,
        .cmpGt32 = cmpGt32,
        .cmpLt32 = cmpLt32,
        .cmpEq64 = cmpEq64,
        .cmpNe64 = cmpNe64,
        .cmpGt64 = cmpGt64,
        .cmpLt64 = cmpLt64,
        .matchBytes32 = matchBytes32,
        .matchBytes32Rev = matchBytes32Rev,
        .widen8to32 = widen8to32,
        .widenLo32to64 = widenLo32to64,
        .widenHi32to64 = widenHi32to64,
        .pack64to32 = pack64to32,
        .qzcount = qzcount,
        .qzcountRev = qzcountRev,
        .compactAddrU32 = compactAddrU32,
        .compactAddrI32 = compactAddrI32,
        .compactAddr64 = compactAddr64,
    };
    return ops;
}

} // namespace quetzal::isa
