/**
 * @file
 * AVX-512 HostSimdOps table. Compiled only when the configure enables
 * it (QZ_HOST_SIMD=auto|avx512 and the compiler accepts the flags);
 * selected at runtime only when CPUID reports every feature this TU
 * uses: F, BW, DQ, VL, CD (vplzcntd/q) and VPOPCNTDQ (vpopcntd/q).
 *
 * Each kernel computes exactly what the scalar reference computes —
 * bit-for-bit, including the degenerate cases (ctz/clz of zero, shifts
 * >= 64, zero-length widening loads). The trailing-count kernels lean
 * on two identities: countr_zero(x) == popcount(~x & (x - 1)) and
 * countl_zero == vplzcnt directly (both defined at x == 0, yielding
 * the full element width, which is what the scalar <bit> functions
 * return).
 */
#include "isa/hostsimd_tables.hpp"

#include <immintrin.h>

#include <cstring>

namespace quetzal::isa {

namespace {

using W = HostSimdOps::W;

inline __m512i
ld(const W *p)
{
    return _mm512_loadu_si512(p);
}

inline void
st(W *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

// ---- 64-bit lanes -------------------------------------------------

void
and64(const W *a, const W *b, W *out)
{
    st(out, _mm512_and_si512(ld(a), ld(b)));
}

void
or64(const W *a, const W *b, W *out)
{
    st(out, _mm512_or_si512(ld(a), ld(b)));
}

void
xor64(const W *a, const W *b, W *out)
{
    st(out, _mm512_xor_si512(ld(a), ld(b)));
}

void
xnor64(const W *a, const W *b, W *out)
{
    // Ternary-logic truth table for ~(A ^ B), C ignored: 0xC3.
    const __m512i va = ld(a);
    st(out, _mm512_ternarylogic_epi64(va, ld(b), va, 0xC3));
}

void
add64(const W *a, const W *b, W *out)
{
    st(out, _mm512_add_epi64(ld(a), ld(b)));
}

void
sub64(const W *a, const W *b, W *out)
{
    st(out, _mm512_sub_epi64(ld(a), ld(b)));
}

void
min64(const W *a, const W *b, W *out)
{
    st(out, _mm512_min_epi64(ld(a), ld(b)));
}

void
max64(const W *a, const W *b, W *out)
{
    st(out, _mm512_max_epi64(ld(a), ld(b)));
}

void
addImm64(const W *a, std::int64_t imm, W *out)
{
    st(out, _mm512_add_epi64(ld(a), _mm512_set1_epi64(imm)));
}

void
addImmPred64(const W *a, std::int64_t imm, std::uint64_t mask, W *out)
{
    const __m512i va = ld(a);
    st(out, _mm512_mask_add_epi64(va, static_cast<__mmask8>(mask), va,
                                  _mm512_set1_epi64(imm)));
}

void
addPred64(const W *a, const W *b, std::uint64_t mask, W *out)
{
    const __m512i va = ld(a);
    st(out, _mm512_mask_add_epi64(va, static_cast<__mmask8>(mask), va,
                                  ld(b)));
}

void
sel64(std::uint64_t mask, const W *a, const W *b, W *out)
{
    st(out, _mm512_mask_blend_epi64(static_cast<__mmask8>(mask), ld(b),
                                    ld(a)));
}

void
shr64(const W *a, unsigned shift, W *out)
{
    // vpsrlq with a count >= 64 yields zero, matching the scalar
    // kernel's explicit guard.
    st(out, _mm512_srl_epi64(ld(a),
                             _mm_cvtsi32_si128(static_cast<int>(shift))));
}

void
shl64(const W *a, unsigned shift, W *out)
{
    st(out, _mm512_sll_epi64(ld(a),
                             _mm_cvtsi32_si128(static_cast<int>(shift))));
}

/** Per-lane trailing zeros: popcount(~x & (x - 1)); tz(0) == 64. */
inline __m512i
tzcnt64(__m512i x)
{
    const __m512i xm1 = _mm512_sub_epi64(x, _mm512_set1_epi64(1));
    return _mm512_popcnt_epi64(_mm512_andnot_si512(x, xm1));
}

void
ctz64(const W *a, W *out)
{
    st(out, tzcnt64(ld(a)));
}

void
clz64(const W *a, W *out)
{
    st(out, _mm512_lzcnt_epi64(ld(a)));
}

// ---- 32-bit elements ----------------------------------------------

void
add32(const W *a, const W *b, W *out)
{
    st(out, _mm512_add_epi32(ld(a), ld(b)));
}

void
sub32(const W *a, const W *b, W *out)
{
    st(out, _mm512_sub_epi32(ld(a), ld(b)));
}

void
min32(const W *a, const W *b, W *out)
{
    st(out, _mm512_min_epi32(ld(a), ld(b)));
}

void
max32(const W *a, const W *b, W *out)
{
    st(out, _mm512_max_epi32(ld(a), ld(b)));
}

void
addImm32(const W *a, std::int32_t imm, W *out)
{
    st(out, _mm512_add_epi32(ld(a), _mm512_set1_epi32(imm)));
}

void
addImmPred32(const W *a, std::int32_t imm, std::uint64_t mask, W *out)
{
    const __m512i va = ld(a);
    st(out, _mm512_mask_add_epi32(va, static_cast<__mmask16>(mask), va,
                                  _mm512_set1_epi32(imm)));
}

void
addPred32(const W *a, const W *b, std::uint64_t mask, W *out)
{
    const __m512i va = ld(a);
    st(out, _mm512_mask_add_epi32(va, static_cast<__mmask16>(mask), va,
                                  ld(b)));
}

void
sel32(std::uint64_t mask, const W *a, const W *b, W *out)
{
    st(out, _mm512_mask_blend_epi32(static_cast<__mmask16>(mask), ld(b),
                                    ld(a)));
}

// ---- compares -----------------------------------------------------

std::uint64_t
cmpEq32(const W *a, const W *b)
{
    return _mm512_cmpeq_epi32_mask(ld(a), ld(b));
}

std::uint64_t
cmpNe32(const W *a, const W *b)
{
    return _mm512_cmpneq_epi32_mask(ld(a), ld(b));
}

std::uint64_t
cmpGt32(const W *a, const W *b)
{
    return _mm512_cmpgt_epi32_mask(ld(a), ld(b));
}

std::uint64_t
cmpLt32(const W *a, const W *b)
{
    return _mm512_cmplt_epi32_mask(ld(a), ld(b));
}

std::uint64_t
cmpEq64(const W *a, const W *b)
{
    return _mm512_cmpeq_epi64_mask(ld(a), ld(b));
}

std::uint64_t
cmpNe64(const W *a, const W *b)
{
    return _mm512_cmpneq_epi64_mask(ld(a), ld(b));
}

std::uint64_t
cmpGt64(const W *a, const W *b)
{
    return _mm512_cmpgt_epi64_mask(ld(a), ld(b));
}

std::uint64_t
cmpLt64(const W *a, const W *b)
{
    return _mm512_cmplt_epi64_mask(ld(a), ld(b));
}

// ---- byte runs ----------------------------------------------------

void
matchBytes32(const W *a, const W *b, W *out)
{
    // Per 32-bit element: countr_zero(x ^ y) >> 3, tz via the
    // popcount identity (tz(0) == 32 -> 4 matching bytes).
    const __m512i x = _mm512_xor_si512(ld(a), ld(b));
    const __m512i xm1 = _mm512_sub_epi32(x, _mm512_set1_epi32(1));
    const __m512i tz =
        _mm512_popcnt_epi32(_mm512_andnot_si512(x, xm1));
    st(out, _mm512_srli_epi32(tz, 3));
}

void
matchBytes32Rev(const W *a, const W *b, W *out)
{
    const __m512i x = _mm512_xor_si512(ld(a), ld(b));
    st(out, _mm512_srli_epi32(_mm512_lzcnt_epi32(x), 3));
}

// ---- width conversion ---------------------------------------------

void
widen8to32(const std::uint8_t *src, unsigned n, W *out)
{
    // Masked byte load: lanes beyond n are zeroed AND their loads are
    // suppressed, so reading never crosses past src + n (the scalar
    // loop's exact footprint).
    const auto k = static_cast<__mmask16>(
        n >= 16 ? 0xFFFF : ((1u << n) - 1));
    const __m128i bytes = _mm_maskz_loadu_epi8(k, src);
    st(out, _mm512_cvtepu8_epi32(bytes));
}

void
widenLo32to64(const W *v, W *out)
{
    st(out, _mm512_cvtepi32_epi64(
                _mm512_extracti64x4_epi64(ld(v), 0)));
}

void
widenHi32to64(const W *v, W *out)
{
    st(out, _mm512_cvtepi32_epi64(
                _mm512_extracti64x4_epi64(ld(v), 1)));
}

void
pack64to32(const W *lo, const W *hi, W *out)
{
    const __m256i l = _mm512_cvtepi64_epi32(ld(lo));
    const __m256i h = _mm512_cvtepi64_epi32(ld(hi));
    st(out, _mm512_inserti64x4(_mm512_castsi256_si512(l), h, 1));
}

// ---- CountALU -----------------------------------------------------

void
qzcount(const W *a, const W *b, unsigned shift, W *out)
{
    const __m512i x = _mm512_xor_si512(ld(a), ld(b));
    st(out, _mm512_srl_epi64(tzcnt64(x),
                             _mm_cvtsi32_si128(static_cast<int>(shift))));
}

void
qzcountRev(const W *a, const W *b, unsigned shift, W *out)
{
    const __m512i x = _mm512_xor_si512(ld(a), ld(b));
    st(out, _mm512_srl_epi64(_mm512_lzcnt_epi64(x),
                             _mm_cvtsi32_si128(static_cast<int>(shift))));
}

// ---- gather/scatter address math ----------------------------------

unsigned
compactAddrU32(std::uint64_t base, const W *idx, unsigned log2Scale,
               std::uint64_t mask, std::uint64_t *addrs)
{
    const __m512i v = ld(idx);
    const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(log2Scale));
    const __m512i vbase = _mm512_set1_epi64(static_cast<long long>(base));
    const __m512i lo = _mm512_add_epi64(
        vbase, _mm512_sll_epi64(
                   _mm512_cvtepu32_epi64(
                       _mm512_extracti64x4_epi64(v, 0)),
                   sh));
    const __m512i hi = _mm512_add_epi64(
        vbase, _mm512_sll_epi64(
                   _mm512_cvtepu32_epi64(
                       _mm512_extracti64x4_epi64(v, 1)),
                   sh));
    const auto kLo = static_cast<__mmask8>(mask);
    const auto kHi = static_cast<__mmask8>(mask >> 8);
    _mm512_mask_compressstoreu_epi64(addrs, kLo, lo);
    const unsigned nLo =
        static_cast<unsigned>(_mm_popcnt_u32(kLo));
    _mm512_mask_compressstoreu_epi64(addrs + nLo, kHi, hi);
    return nLo + static_cast<unsigned>(_mm_popcnt_u32(kHi));
}

unsigned
compactAddrI32(std::uint64_t base, const W *idx, std::uint64_t mask,
               std::uint64_t *addrs)
{
    const __m512i v = ld(idx);
    const __m512i vbase = _mm512_set1_epi64(static_cast<long long>(base));
    const __m512i lo = _mm512_add_epi64(
        vbase, _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(v, 0)));
    const __m512i hi = _mm512_add_epi64(
        vbase, _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(v, 1)));
    const auto kLo = static_cast<__mmask8>(mask);
    const auto kHi = static_cast<__mmask8>(mask >> 8);
    _mm512_mask_compressstoreu_epi64(addrs, kLo, lo);
    const unsigned nLo =
        static_cast<unsigned>(_mm_popcnt_u32(kLo));
    _mm512_mask_compressstoreu_epi64(addrs + nLo, kHi, hi);
    return nLo + static_cast<unsigned>(_mm_popcnt_u32(kHi));
}

unsigned
compactAddr64(std::uint64_t base, const W *idx, unsigned log2Scale,
              std::uint64_t mask, std::uint64_t *addrs)
{
    const __m512i v = _mm512_sll_epi64(
        ld(idx), _mm_cvtsi32_si128(static_cast<int>(log2Scale)));
    const __m512i a =
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(base)),
                         v);
    const auto k = static_cast<__mmask8>(mask);
    _mm512_mask_compressstoreu_epi64(addrs, k, a);
    return static_cast<unsigned>(_mm_popcnt_u32(k));
}

} // namespace

const HostSimdOps &
hostSimdAvx512Table()
{
    static const HostSimdOps ops = [] {
        HostSimdOps t = hostSimdScalarOps();
        t.name = "avx512";
        t.and64 = and64;
        t.or64 = or64;
        t.xor64 = xor64;
        t.xnor64 = xnor64;
        t.add64 = add64;
        t.sub64 = sub64;
        t.min64 = min64;
        t.max64 = max64;
        t.addImm64 = addImm64;
        t.addImmPred64 = addImmPred64;
        t.addPred64 = addPred64;
        t.sel64 = sel64;
        t.shr64 = shr64;
        t.shl64 = shl64;
        t.ctz64 = ctz64;
        t.clz64 = clz64;
        t.add32 = add32;
        t.sub32 = sub32;
        t.min32 = min32;
        t.max32 = max32;
        t.addImm32 = addImm32;
        t.addImmPred32 = addImmPred32;
        t.addPred32 = addPred32;
        t.sel32 = sel32;
        t.cmpEq32 = cmpEq32;
        t.cmpNe32 = cmpNe32;
        t.cmpGt32 = cmpGt32;
        t.cmpLt32 = cmpLt32;
        t.cmpEq64 = cmpEq64;
        t.cmpNe64 = cmpNe64;
        t.cmpGt64 = cmpGt64;
        t.cmpLt64 = cmpLt64;
        t.matchBytes32 = matchBytes32;
        t.matchBytes32Rev = matchBytes32Rev;
        t.widen8to32 = widen8to32;
        t.widenLo32to64 = widenLo32to64;
        t.widenHi32to64 = widenHi32to64;
        t.pack64to32 = pack64to32;
        t.qzcount = qzcount;
        t.qzcountRev = qzcountRev;
        t.compactAddrU32 = compactAddrU32;
        t.compactAddrI32 = compactAddrI32;
        t.compactAddr64 = compactAddr64;
        return t;
    }();
    return ops;
}

} // namespace quetzal::isa
