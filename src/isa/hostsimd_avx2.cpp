/**
 * @file
 * AVX2 HostSimdOps table: 2 x 256-bit kernels for the arithmetic,
 * compare, select, shift and width-conversion entries. The count-type
 * kernels (matchBytes, ctz/clz, qzcount) and the address compaction
 * stay on the scalar reference — AVX2 has no per-lane popcount/lzcnt
 * and no compress-store, and emulating them loses to the scalar loop.
 *
 * Predicated entries expand the bitmask into full-width lane masks
 * (all-ones / all-zero), so "add where active" becomes
 * a + (b AND lanemask) — bit-identical to the scalar select.
 */
#include "isa/hostsimd_tables.hpp"

#include <immintrin.h>

#include <cstring>

namespace quetzal::isa {

namespace {

using W = HostSimdOps::W;

inline __m256i
ld0(const W *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline __m256i
ld1(const W *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p + 4));
}

inline void
st(W *p, __m256i v0, __m256i v1)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 4), v1);
}

/** Expand 8 mask bits into 8 all-ones/all-zero 32-bit lanes. */
inline __m256i
lanes32(std::uint64_t mask)
{
    const __m256i bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    const __m256i vm =
        _mm256_set1_epi32(static_cast<int>(mask & 0xFFu));
    return _mm256_cmpeq_epi32(_mm256_and_si256(vm, bits), bits);
}

/** Expand 4 mask bits into 4 all-ones/all-zero 64-bit lanes. */
inline __m256i
lanes64(std::uint64_t mask)
{
    const __m256i bits = _mm256_setr_epi64x(1, 2, 4, 8);
    const __m256i vm =
        _mm256_set1_epi64x(static_cast<long long>(mask & 0xFu));
    return _mm256_cmpeq_epi64(_mm256_and_si256(vm, bits), bits);
}

// ---- 64-bit lanes -------------------------------------------------

void
and64(const W *a, const W *b, W *out)
{
    st(out, _mm256_and_si256(ld0(a), ld0(b)),
       _mm256_and_si256(ld1(a), ld1(b)));
}

void
or64(const W *a, const W *b, W *out)
{
    st(out, _mm256_or_si256(ld0(a), ld0(b)),
       _mm256_or_si256(ld1(a), ld1(b)));
}

void
xor64(const W *a, const W *b, W *out)
{
    st(out, _mm256_xor_si256(ld0(a), ld0(b)),
       _mm256_xor_si256(ld1(a), ld1(b)));
}

void
xnor64(const W *a, const W *b, W *out)
{
    const __m256i ones = _mm256_set1_epi64x(-1);
    st(out,
       _mm256_xor_si256(_mm256_xor_si256(ld0(a), ld0(b)), ones),
       _mm256_xor_si256(_mm256_xor_si256(ld1(a), ld1(b)), ones));
}

void
add64(const W *a, const W *b, W *out)
{
    st(out, _mm256_add_epi64(ld0(a), ld0(b)),
       _mm256_add_epi64(ld1(a), ld1(b)));
}

void
sub64(const W *a, const W *b, W *out)
{
    st(out, _mm256_sub_epi64(ld0(a), ld0(b)),
       _mm256_sub_epi64(ld1(a), ld1(b)));
}

inline __m256i
min64h(__m256i a, __m256i b)
{
    // blendv picks b where the (signed >) mask is set.
    return _mm256_blendv_epi8(a, b, _mm256_cmpgt_epi64(a, b));
}

inline __m256i
max64h(__m256i a, __m256i b)
{
    return _mm256_blendv_epi8(b, a, _mm256_cmpgt_epi64(a, b));
}

void
min64(const W *a, const W *b, W *out)
{
    st(out, min64h(ld0(a), ld0(b)), min64h(ld1(a), ld1(b)));
}

void
max64(const W *a, const W *b, W *out)
{
    st(out, max64h(ld0(a), ld0(b)), max64h(ld1(a), ld1(b)));
}

void
addImm64(const W *a, std::int64_t imm, W *out)
{
    const __m256i vi = _mm256_set1_epi64x(imm);
    st(out, _mm256_add_epi64(ld0(a), vi), _mm256_add_epi64(ld1(a), vi));
}

void
addImmPred64(const W *a, std::int64_t imm, std::uint64_t mask, W *out)
{
    const __m256i vi = _mm256_set1_epi64x(imm);
    st(out,
       _mm256_add_epi64(ld0(a), _mm256_and_si256(vi, lanes64(mask))),
       _mm256_add_epi64(ld1(a),
                        _mm256_and_si256(vi, lanes64(mask >> 4))));
}

void
addPred64(const W *a, const W *b, std::uint64_t mask, W *out)
{
    st(out,
       _mm256_add_epi64(ld0(a),
                        _mm256_and_si256(ld0(b), lanes64(mask))),
       _mm256_add_epi64(ld1(a),
                        _mm256_and_si256(ld1(b), lanes64(mask >> 4))));
}

void
sel64(std::uint64_t mask, const W *a, const W *b, W *out)
{
    st(out, _mm256_blendv_epi8(ld0(b), ld0(a), lanes64(mask)),
       _mm256_blendv_epi8(ld1(b), ld1(a), lanes64(mask >> 4)));
}

void
shr64(const W *a, unsigned shift, W *out)
{
    // vpsrlq with count >= 64 yields zero, matching the scalar guard.
    const __m128i c = _mm_cvtsi32_si128(static_cast<int>(shift));
    st(out, _mm256_srl_epi64(ld0(a), c), _mm256_srl_epi64(ld1(a), c));
}

void
shl64(const W *a, unsigned shift, W *out)
{
    const __m128i c = _mm_cvtsi32_si128(static_cast<int>(shift));
    st(out, _mm256_sll_epi64(ld0(a), c), _mm256_sll_epi64(ld1(a), c));
}

// ---- 32-bit elements ----------------------------------------------

void
add32(const W *a, const W *b, W *out)
{
    st(out, _mm256_add_epi32(ld0(a), ld0(b)),
       _mm256_add_epi32(ld1(a), ld1(b)));
}

void
sub32(const W *a, const W *b, W *out)
{
    st(out, _mm256_sub_epi32(ld0(a), ld0(b)),
       _mm256_sub_epi32(ld1(a), ld1(b)));
}

void
min32(const W *a, const W *b, W *out)
{
    st(out, _mm256_min_epi32(ld0(a), ld0(b)),
       _mm256_min_epi32(ld1(a), ld1(b)));
}

void
max32(const W *a, const W *b, W *out)
{
    st(out, _mm256_max_epi32(ld0(a), ld0(b)),
       _mm256_max_epi32(ld1(a), ld1(b)));
}

void
addImm32(const W *a, std::int32_t imm, W *out)
{
    const __m256i vi = _mm256_set1_epi32(imm);
    st(out, _mm256_add_epi32(ld0(a), vi), _mm256_add_epi32(ld1(a), vi));
}

void
addImmPred32(const W *a, std::int32_t imm, std::uint64_t mask, W *out)
{
    const __m256i vi = _mm256_set1_epi32(imm);
    st(out,
       _mm256_add_epi32(ld0(a), _mm256_and_si256(vi, lanes32(mask))),
       _mm256_add_epi32(ld1(a),
                        _mm256_and_si256(vi, lanes32(mask >> 8))));
}

void
addPred32(const W *a, const W *b, std::uint64_t mask, W *out)
{
    st(out,
       _mm256_add_epi32(ld0(a),
                        _mm256_and_si256(ld0(b), lanes32(mask))),
       _mm256_add_epi32(ld1(a),
                        _mm256_and_si256(ld1(b), lanes32(mask >> 8))));
}

void
sel32(std::uint64_t mask, const W *a, const W *b, W *out)
{
    st(out, _mm256_blendv_epi8(ld0(b), ld0(a), lanes32(mask)),
       _mm256_blendv_epi8(ld1(b), ld1(a), lanes32(mask >> 8)));
}

// ---- compares -----------------------------------------------------

inline std::uint64_t
bits32(__m256i c0, __m256i c1)
{
    const auto lo = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(c0)));
    const auto hi = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(c1)));
    return lo | (hi << 8);
}

inline std::uint64_t
bits64(__m256i c0, __m256i c1)
{
    const auto lo = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(c0)));
    const auto hi = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(c1)));
    return lo | (hi << 4);
}

std::uint64_t
cmpEq32(const W *a, const W *b)
{
    return bits32(_mm256_cmpeq_epi32(ld0(a), ld0(b)),
                  _mm256_cmpeq_epi32(ld1(a), ld1(b)));
}

std::uint64_t
cmpNe32(const W *a, const W *b)
{
    return ~cmpEq32(a, b) & 0xFFFFu;
}

std::uint64_t
cmpGt32(const W *a, const W *b)
{
    return bits32(_mm256_cmpgt_epi32(ld0(a), ld0(b)),
                  _mm256_cmpgt_epi32(ld1(a), ld1(b)));
}

std::uint64_t
cmpLt32(const W *a, const W *b)
{
    return cmpGt32(b, a);
}

std::uint64_t
cmpEq64(const W *a, const W *b)
{
    return bits64(_mm256_cmpeq_epi64(ld0(a), ld0(b)),
                  _mm256_cmpeq_epi64(ld1(a), ld1(b)));
}

std::uint64_t
cmpNe64(const W *a, const W *b)
{
    return ~cmpEq64(a, b) & 0xFFu;
}

std::uint64_t
cmpGt64(const W *a, const W *b)
{
    return bits64(_mm256_cmpgt_epi64(ld0(a), ld0(b)),
                  _mm256_cmpgt_epi64(ld1(a), ld1(b)));
}

std::uint64_t
cmpLt64(const W *a, const W *b)
{
    return cmpGt64(b, a);
}

// ---- width conversion ---------------------------------------------

void
widen8to32(const std::uint8_t *src, unsigned n, W *out)
{
    // Stage through a zeroed local buffer: keeps the load footprint
    // exactly [src, src + n) like the scalar loop.
    alignas(16) std::uint8_t buf[16] = {};
    std::memcpy(buf, src, n);
    const __m128i bytes =
        _mm_load_si128(reinterpret_cast<const __m128i *>(buf));
    st(out, _mm256_cvtepu8_epi32(bytes),
       _mm256_cvtepu8_epi32(_mm_srli_si128(bytes, 8)));
}

void
widenLo32to64(const W *v, W *out)
{
    const __m256i x = ld0(v);
    st(out, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(x)),
       _mm256_cvtepi32_epi64(_mm256_extracti128_si256(x, 1)));
}

void
widenHi32to64(const W *v, W *out)
{
    const __m256i x = ld1(v);
    st(out, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(x)),
       _mm256_cvtepi32_epi64(_mm256_extracti128_si256(x, 1)));
}

/** Even dwords of a 4 x i64 vector, packed into the low 128 bits. */
inline __m128i
trunc64to32(__m256i v)
{
    const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(v, idx));
}

void
pack64to32(const W *lo, const W *hi, W *out)
{
    const __m256i v0 = _mm256_inserti128_si256(
        _mm256_castsi128_si256(trunc64to32(ld0(lo))),
        trunc64to32(ld1(lo)), 1);
    const __m256i v1 = _mm256_inserti128_si256(
        _mm256_castsi128_si256(trunc64to32(ld0(hi))),
        trunc64to32(ld1(hi)), 1);
    st(out, v0, v1);
}

} // namespace

const HostSimdOps &
hostSimdAvx2Table()
{
    static const HostSimdOps ops = [] {
        HostSimdOps t = hostSimdScalarOps();
        t.name = "avx2";
        t.and64 = and64;
        t.or64 = or64;
        t.xor64 = xor64;
        t.xnor64 = xnor64;
        t.add64 = add64;
        t.sub64 = sub64;
        t.min64 = min64;
        t.max64 = max64;
        t.addImm64 = addImm64;
        t.addImmPred64 = addImmPred64;
        t.addPred64 = addPred64;
        t.sel64 = sel64;
        t.shr64 = shr64;
        t.shl64 = shl64;
        t.add32 = add32;
        t.sub32 = sub32;
        t.min32 = min32;
        t.max32 = max32;
        t.addImm32 = addImm32;
        t.addImmPred32 = addImmPred32;
        t.addPred32 = addPred32;
        t.sel32 = sel32;
        t.cmpEq32 = cmpEq32;
        t.cmpNe32 = cmpNe32;
        t.cmpGt32 = cmpGt32;
        t.cmpLt32 = cmpLt32;
        t.cmpEq64 = cmpEq64;
        t.cmpNe64 = cmpNe64;
        t.cmpGt64 = cmpGt64;
        t.cmpLt64 = cmpLt64;
        t.widen8to32 = widen8to32;
        t.widenLo32to64 = widenLo32to64;
        t.widenHi32to64 = widenHi32to64;
        t.pack64to32 = pack64to32;
        return t;
    }();
    return ops;
}

} // namespace quetzal::isa
