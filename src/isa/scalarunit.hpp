/**
 * @file
 * Scalar execution facade for the baseline (compiler-auto-vectorized)
 * algorithm variants.
 *
 * The paper normalizes every result to the compiler's auto-vectorized
 * build, which for these irregular kernels degenerates to mostly-scalar
 * code whose inner loops serialize: each residue load feeds a compare
 * and a data-dependent branch that gates the next load (Section II-E:
 * "the serialization of memory instructions at runtime"). BaseUnit
 * models that shape: loads join the loop-carried chain, so every
 * residue costs roughly a load-to-use plus the compare on the critical
 * path, and cache misses serialize.
 */
#ifndef QUETZAL_ISA_SCALARUNIT_HPP
#define QUETZAL_ISA_SCALARUNIT_HPP

#include <cstdint>
#include <cstring>

#include "sim/pipeline.hpp"

namespace quetzal::isa {

/** Host pointer as a simulated address (the facade's convention). */
template <typename T>
inline sim::Addr
addrOf(const T *ptr)
{
    return reinterpret_cast<sim::Addr>(ptr);
}

/** Scalar baseline timing facade. */
class BaseUnit
{
  public:
    explicit BaseUnit(sim::Pipeline &pipeline) : pipeline_(pipeline) {}

    /** Load one byte; gated by the loop-carried chain. */
    std::uint8_t
    loadChar(std::uint64_t site, const char *ptr)
    {
        const sim::Tag tag = pipeline_.executeMem(
            sim::OpClass::ScalarLoad, site,
            reinterpret_cast<sim::Addr>(ptr), 1, {chain_});
        pending_ = sim::Tag::join(pending_, tag);
        return static_cast<std::uint8_t>(*ptr);
    }

    /** Load a 32-bit word; gated by the loop-carried chain. */
    std::int32_t
    loadInt(std::uint64_t site, const std::int32_t *ptr)
    {
        const sim::Tag tag = pipeline_.executeMem(
            sim::OpClass::ScalarLoad, site,
            reinterpret_cast<sim::Addr>(ptr), 4, {chain_});
        pending_ = sim::Tag::join(pending_, tag);
        return *ptr;
    }

    /** Store a 32-bit word (value produced by the current chain). */
    void
    storeInt(std::uint64_t site, std::int32_t *ptr, std::int32_t value)
    {
        *ptr = value;
        pipeline_.executeMem(sim::OpClass::ScalarStore, site,
                             reinterpret_cast<sim::Addr>(ptr), 4,
                             {chain_});
    }

    /**
     * Charge a run of loads, all gated by the loop-carried chain, in
     * one pipeline trip. Identical to calling loadChar/loadInt once
     * per element (the chain only moves on ALU/branch ops, so every
     * element would see the same chain; the pending join is
     * associative), minus the per-instruction call overhead — the DP
     * inner loops charge 5-7 loads per cell through here.
     */
    void
    loads(std::span<const sim::MemOp> ops)
    {
        pending_ = sim::Tag::join(pending_,
                                  pipeline_.executeMemRun(ops, chain_));
    }

    /**
     * Charge a run of stores (values produced by the current chain) in
     * one pipeline trip; identical to storeInt per element minus the
     * functional write, which the caller's own row assignment already
     * performed.
     */
    void
    stores(std::span<const sim::MemOp> ops)
    {
        pipeline_.executeMemRun(ops, chain_);
    }

    /**
     * Charge @p count ALU ops consuming the pending loads and the
     * loop-carried chain; the result becomes the new chain.
     */
    void
    alu(unsigned count = 1)
    {
        if (count == 0)
            return;
        chain_ = pipeline_.executeOpChain(
            sim::OpClass::ScalarAlu, count,
            sim::Tag::join(chain_, pending_));
        pending_ = sim::Tag{};
    }

    /** Charge a (predicted) conditional branch on the chain. */
    void
    branch()
    {
        pipeline_.executeOp(sim::OpClass::Branch, {chain_, pending_});
        pending_ = sim::Tag{};
    }

    /** Charge a mispredicted branch (data-dependent loop exits). */
    void
    branchMiss()
    {
        branch();
        pipeline_.bubble(12, sim::StallKind::Frontend);
    }

    /** Break the dependency chain (independent work begins). */
    void
    cut()
    {
        chain_ = sim::Tag{};
        pending_ = sim::Tag{};
    }

    sim::Pipeline &pipeline() { return pipeline_; }

  private:
    sim::Pipeline &pipeline_;
    sim::Tag chain_{};   //!< loop-carried scalar register state
    sim::Tag pending_{}; //!< loads issued since the last ALU op
};

} // namespace quetzal::isa

#endif // QUETZAL_ISA_SCALARUNIT_HPP
