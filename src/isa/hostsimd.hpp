/**
 * @file
 * Host-SIMD functional backend for the ISA layer.
 *
 * The VectorUnit facade decouples *what* an op computes (the
 * functional payload on host data) from *what it costs* (the timing
 * report to sim::Pipeline). This header is the seam between the two:
 * a table of plain function pointers, one per hot lane kernel, that
 * the facade calls for the functional half. Three implementations of
 * the table exist —
 *
 *   scalar  — the flat, branch-poor loops the facade always had;
 *             portable, and the reference model every other table is
 *             lockstep-tested against (tests/test_hostsimd.cpp)
 *   avx2    — 2 x 256-bit intrinsics for the arithmetic / compare /
 *             select kernels (count-type kernels stay scalar: AVX2
 *             has no lane popcount/lzcnt)
 *   avx512  — full-width 512-bit intrinsics for everything, including
 *             the matchBytes byte-run searches, per-lane ctz/clz via
 *             the popcount identity, and the CountALU XNOR +
 *             trailing-ones count (vpopcntq/vplzcntq)
 *
 * Selection is configure-time capped (the QZ_HOST_SIMD CMake option
 * decides which tables are even compiled), then restricted by the
 * QZ_HOST_SIMD environment variable, then resolved once per process
 * against CPUID (docs/SIMULATOR.md, "Host performance"). Timing
 * emission is untouched by construction: every kernel is a drop-in
 * replacement for the scalar loop, so simulated metrics are
 * byte-identical whichever table runs.
 *
 * Conventions: registers pass as pointers to their 8 x 64-bit word
 * arrays (VReg::words; unaligned on the host — kernels use unaligned
 * loads). Predicate masks pass as the raw 64-bit Pred::mask;
 * compare kernels return the full-width lane mask and the caller
 * applies the governing predicate and element-count clamp, which is
 * exactly what the scalar facade computed.
 */
#ifndef QUETZAL_ISA_HOSTSIMD_HPP
#define QUETZAL_ISA_HOSTSIMD_HPP

#include <cstdint>

namespace quetzal::isa {

/** One resolved backend: the functional lane kernels as a flat table. */
struct HostSimdOps
{
    using W = std::uint64_t; //!< 8-word (512-bit) register view

    const char *name; //!< "scalar" | "avx2" | "avx512"

    // ---- 64-bit bitwise / arithmetic (8 lanes) --------------------
    void (*and64)(const W *a, const W *b, W *out);
    void (*or64)(const W *a, const W *b, W *out);
    void (*xor64)(const W *a, const W *b, W *out);
    void (*xnor64)(const W *a, const W *b, W *out);
    void (*add64)(const W *a, const W *b, W *out);
    void (*sub64)(const W *a, const W *b, W *out);
    void (*min64)(const W *a, const W *b, W *out); //!< signed
    void (*max64)(const W *a, const W *b, W *out); //!< signed
    void (*addImm64)(const W *a, std::int64_t imm, W *out);
    /** Lanes where mask is set get a + imm, others keep a. */
    void (*addImmPred64)(const W *a, std::int64_t imm, std::uint64_t mask,
                         W *out);
    void (*addPred64)(const W *a, const W *b, std::uint64_t mask, W *out);
    /** mask ? a : b per 64-bit lane. */
    void (*sel64)(std::uint64_t mask, const W *a, const W *b, W *out);
    /** Logical shifts; shift >= 64 yields all-zero lanes. */
    void (*shr64)(const W *a, unsigned shift, W *out);
    void (*shl64)(const W *a, unsigned shift, W *out);
    /** Per-lane trailing / leading zero count (ctz(0) == clz(0) == 64). */
    void (*ctz64)(const W *a, W *out);
    void (*clz64)(const W *a, W *out);

    // ---- 32-bit arithmetic (16 elements) --------------------------
    void (*add32)(const W *a, const W *b, W *out);
    void (*sub32)(const W *a, const W *b, W *out);
    void (*min32)(const W *a, const W *b, W *out); //!< signed
    void (*max32)(const W *a, const W *b, W *out); //!< signed
    void (*addImm32)(const W *a, std::int32_t imm, W *out);
    void (*addImmPred32)(const W *a, std::int32_t imm, std::uint64_t mask,
                         W *out);
    void (*addPred32)(const W *a, const W *b, std::uint64_t mask, W *out);
    void (*sel32)(std::uint64_t mask, const W *a, const W *b, W *out);

    // ---- compares -> full-width lane masks ------------------------
    std::uint64_t (*cmpEq32)(const W *a, const W *b);
    std::uint64_t (*cmpNe32)(const W *a, const W *b);
    std::uint64_t (*cmpGt32)(const W *a, const W *b); //!< signed
    std::uint64_t (*cmpLt32)(const W *a, const W *b); //!< signed
    std::uint64_t (*cmpEq64)(const W *a, const W *b);
    std::uint64_t (*cmpNe64)(const W *a, const W *b);
    std::uint64_t (*cmpGt64)(const W *a, const W *b); //!< signed
    std::uint64_t (*cmpLt64)(const W *a, const W *b); //!< signed

    // ---- byte-run searches (SVE cmpeq.b + brkb + cntp idiom) ------
    /** Per 32-bit element: consecutive equal bytes from byte 0 (0..4). */
    void (*matchBytes32)(const W *a, const W *b, W *out);
    /** Same, counting down from byte 3 (reverse extension). */
    void (*matchBytes32Rev)(const W *a, const W *b, W *out);

    // ---- width conversion -----------------------------------------
    /**
     * Zero-extend @p n bytes (n <= 16, any alignment) into the first
     * n 32-bit elements; remaining elements are zero. Must not read
     * past src + n (the source may end at a mapping boundary).
     */
    void (*widen8to32)(const std::uint8_t *src, unsigned n, W *out);
    /** Sign-extend the low / high 8 int32 elements into 8 int64 lanes. */
    void (*widenLo32to64)(const W *v, W *out);
    void (*widenHi32to64)(const W *v, W *out);
    /** Truncate two 8-lane 64-bit vectors into 16 int32 elements. */
    void (*pack64to32)(const W *lo, const W *hi, W *out);

    // ---- CountALU (qzcount): XNOR + directional ones-run ----------
    /**
     * Per 64-bit lane: consecutive matching elements between a and b
     * counted from bit 0, i.e. countr_one(~(a ^ b)) >> shift where
     * shift = log2(element bits) (accel::CountAlu::count).
     */
    void (*qzcount)(const W *a, const W *b, unsigned shift, W *out);
    /** Reverse run: countl_one(~(a ^ b)) >> shift. */
    void (*qzcountRev)(const W *a, const W *b, unsigned shift, W *out);

    // ---- gather/scatter lane address math -------------------------
    /**
     * Compact element addresses for an indexed memory op: for each
     * set bit i of @p mask (lane order), append
     * base + (zero-extended 32-bit index i) << log2Scale to @p addrs.
     * Returns the number of addresses written. This is the
     * address-side half of a gather/scatter; the data side stays with
     * the caller.
     */
    unsigned (*compactAddrU32)(std::uint64_t base, const W *idx,
                               unsigned log2Scale, std::uint64_t mask,
                               std::uint64_t *addrs);
    /** Same with sign-extended 32-bit indices (byte-offset gathers). */
    unsigned (*compactAddrI32)(std::uint64_t base, const W *idx,
                               std::uint64_t mask, std::uint64_t *addrs);
    /** Same with 64-bit indices. */
    unsigned (*compactAddr64)(std::uint64_t base, const W *idx,
                              unsigned log2Scale, std::uint64_t mask,
                              std::uint64_t *addrs);
};

/**
 * The active backend, resolved once per process: configure-time cap
 * (QZ_HOST_SIMD CMake option) ∩ QZ_HOST_SIMD environment variable
 * ∩ CPUID. Never returns null — the scalar table always exists.
 */
const HostSimdOps &hostSimd();

/** The scalar reference table (always available). */
const HostSimdOps &hostSimdScalarOps();

/** Compiled-in AVX2 table if this CPU supports it, else nullptr. */
const HostSimdOps *hostSimdAvx2Ops();

/** Compiled-in AVX-512 table if this CPU supports it, else nullptr. */
const HostSimdOps *hostSimdAvx512Ops();

/** Host compiler identification (for BENCH_hostperf.json records). */
const char *hostSimdCompiler();

/** Configure-time cap plus the compiled tables, e.g. "auto(avx512,avx2)". */
const char *hostSimdBuildFlags();

} // namespace quetzal::isa

#endif // QUETZAL_ISA_HOSTSIMD_HPP
