/**
 * @file
 * Host-SIMD backend resolution: configure-time cap, environment
 * override, CPUID — in that order, each step only able to lower the
 * selection. Resolved once per process (first hostSimd() call) so the
 * facade pays a single indirection per kernel, never a re-check.
 */
#include "isa/hostsimd.hpp"

#include "isa/hostsimd_tables.hpp"

#include <cstdlib>
#include <cstring>

#ifndef QZ_HOSTSIMD_CONFIG
#define QZ_HOSTSIMD_CONFIG "auto"
#endif

namespace quetzal::isa {

namespace {

enum class Level
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

Level
parseLevel(const char *s, Level fallback)
{
    if (s == nullptr) {
        return fallback;
    }
    if (std::strcmp(s, "avx512") == 0) {
        return Level::Avx512;
    }
    if (std::strcmp(s, "avx2") == 0) {
        return Level::Avx2;
    }
    if (std::strcmp(s, "scalar") == 0) {
        return Level::Scalar;
    }
    return fallback; // "auto" or unrecognized: no restriction
}

bool
cpuHasAvx2()
{
#if defined(QZ_HOSTSIMD_HAVE_AVX2)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if defined(QZ_HOSTSIMD_HAVE_AVX512)
    // Every feature the AVX-512 TU's intrinsics require.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl") &&
           __builtin_cpu_supports("avx512cd") &&
           __builtin_cpu_supports("avx512vpopcntdq");
#else
    return false;
#endif
}

const HostSimdOps &
resolve()
{
    Level cap = parseLevel(QZ_HOSTSIMD_CONFIG, Level::Avx512);
    const Level env =
        parseLevel(std::getenv("QZ_HOST_SIMD"), Level::Avx512);
    if (env < cap) {
        cap = env; // the environment can only lower the configure cap
    }
    if (cap >= Level::Avx512 && cpuHasAvx512()) {
        return hostSimdAvx512Table();
    }
    if (cap >= Level::Avx2 && cpuHasAvx2()) {
        return hostSimdAvx2Table();
    }
    return hostSimdScalarOps();
}

} // namespace

const HostSimdOps &
hostSimd()
{
    static const HostSimdOps &ops = resolve();
    return ops;
}

const HostSimdOps *
hostSimdAvx2Ops()
{
    if (!cpuHasAvx2()) {
        return nullptr;
    }
#if defined(QZ_HOSTSIMD_HAVE_AVX2)
    return &hostSimdAvx2Table();
#else
    return nullptr;
#endif
}

const HostSimdOps *
hostSimdAvx512Ops()
{
    if (!cpuHasAvx512()) {
        return nullptr;
    }
#if defined(QZ_HOSTSIMD_HAVE_AVX512)
    return &hostSimdAvx512Table();
#else
    return nullptr;
#endif
}

const char *
hostSimdCompiler()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

const char *
hostSimdBuildFlags()
{
    return QZ_HOSTSIMD_CONFIG "("
#if defined(QZ_HOSTSIMD_HAVE_AVX512)
           "avx512,"
#endif
#if defined(QZ_HOSTSIMD_HAVE_AVX2)
           "avx2,"
#endif
           "scalar)";
}

} // namespace quetzal::isa
