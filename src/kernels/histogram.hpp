/**
 * @file
 * Histogram calculation — the paper's representative other-domain
 * kernel (Section III-E, Fig. 8; evaluated in Fig. 15b).
 *
 * The kernel is dominated by indexed read-modify-write of the bin
 * table. The QUETZAL variant keeps the table in a QBUFFER and updates
 * it with qzmm<add> + qzstore, replacing the gather/scatter round trip
 * through the cache hierarchy.
 */
#ifndef QUETZAL_KERNELS_HISTOGRAM_HPP
#define QUETZAL_KERNELS_HISTOGRAM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "algos/variant.hpp"
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"

namespace quetzal::kernels {

/** Histogram problem instance. */
struct HistogramInput
{
    std::vector<std::uint32_t> data; //!< samples
    std::uint32_t bins = 256;        //!< bin count (power of two)
};

/** Deterministically generate @p count samples over @p bins bins. */
HistogramInput makeHistogramInput(std::size_t count,
                                  std::uint32_t bins = 256,
                                  std::uint64_t seed = 33);

/**
 * Compute the histogram with the given variant.
 * Ref computes untimed; Base/Vec charge the core model; Qz/QzC use the
 * QBUFFER-resident table.
 */
std::vector<std::uint64_t>
histogram(algos::Variant variant, const HistogramInput &input,
          isa::VectorUnit *vpu = nullptr, accel::QzUnit *qz = nullptr);

} // namespace quetzal::kernels

#endif // QUETZAL_KERNELS_HISTOGRAM_HPP
