#include "kernels/spmv.hpp"

#include "common/logging.hpp"
#include "isa/scalarunit.hpp"
#include "common/rng.hpp"

namespace quetzal::kernels {

using algos::Variant;
using isa::Pred;
using isa::VReg;

namespace {

enum Site : std::uint64_t
{
    kSiteCol = 0x600,
    kSiteVal = 0x601,
    kSiteX = 0x602,
    kSiteY = 0x603,
};

std::vector<std::int64_t>
spmvRef(const CsrMatrix &a, const std::vector<std::int64_t> &x)
{
    std::vector<std::int64_t> y(a.rows, 0);
    for (std::size_t r = 0; r < a.rows; ++r)
        for (std::uint32_t e = a.rowPtr[r]; e < a.rowPtr[r + 1]; ++e)
            y[r] += a.values[e] * x[a.colIdx[e]];
    return y;
}

std::vector<std::int64_t>
spmvBase(const CsrMatrix &a, const std::vector<std::int64_t> &x,
         isa::VectorUnit &vpu)
{
    isa::BaseUnit bu(vpu.pipeline());
    std::vector<std::int64_t> y(a.rows, 0);
    for (std::size_t r = 0; r < a.rows; ++r) {
        bu.cut(); // rows are independent
        for (std::uint32_t e = a.rowPtr[r]; e < a.rowPtr[r + 1]; ++e) {
            bu.loadInt(kSiteCol, reinterpret_cast<const std::int32_t *>(
                                     &a.colIdx[e]));
            bu.loadInt(kSiteVal, reinterpret_cast<const std::int32_t *>(
                                     &a.values[e]));
            // Indirect access to the dense vector.
            bu.loadInt(kSiteX, reinterpret_cast<const std::int32_t *>(
                                   &x[a.colIdx[e]]));
            bu.alu(2); // multiply-accumulate
            y[r] += a.values[e] * x[a.colIdx[e]];
            bu.branch();
        }
        bu.storeInt(kSiteY, reinterpret_cast<std::int32_t *>(&y[r]),
                    static_cast<std::int32_t>(y[r]));
    }
    return y;
}

std::vector<std::int64_t>
spmvVec(const CsrMatrix &a, const std::vector<std::int64_t> &x,
        isa::VectorUnit &vpu)
{
    constexpr unsigned L = isa::kLanes64;
    std::vector<std::int64_t> y(a.rows, 0);
    for (std::size_t r = 0; r < a.rows; ++r) {
        std::int64_t acc = 0;
        for (std::uint32_t e = a.rowPtr[r]; e < a.rowPtr[r + 1];
             e += L) {
            const unsigned cnt =
                std::min<std::uint32_t>(L, a.rowPtr[r + 1] - e);
            const Pred p = vpu.whilelt(0, cnt, L);
            const VReg cols = vpu.widenLo32to64(
                vpu.load(kSiteCol, a.colIdx.data() + e, cnt * 4));
            const VReg vals =
                vpu.load(kSiteVal, a.values.data() + e, cnt * 8);
            const VReg xs = vpu.gather64(
                kSiteX,
                reinterpret_cast<const std::uint64_t *>(x.data()), cols,
                p, L);
            VReg prod;
            for (unsigned l = 0; l < cnt; ++l)
                prod.setU64(l, vals.u64(l) * xs.u64(l));
            prod.tag = vpu.pipeline().executeOp(
                sim::OpClass::VecAlu, {vals.tag, xs.tag});
            for (unsigned l = 0; l < cnt; ++l)
                acc += prod.i64(l);
            vpu.pipeline().executeOp(sim::OpClass::VecReduce,
                                     {prod.tag});
        }
        y[r] = acc;
        vpu.scalarStore(kSiteY, &y[r], 8);
    }
    return y;
}

std::vector<std::int64_t>
spmvQz(const CsrMatrix &a, const std::vector<std::int64_t> &x,
       isa::VectorUnit &vpu, accel::QzUnit &qz)
{
    constexpr unsigned L = isa::kLanes64;
    const std::size_t cap =
        qz.buffer(accel::QzSel::Buf0)
            .capacityElements(genomics::ElementSize::Bits64);
    fatal_if(a.cols > 2 * cap,
             "SpMV dense vector exceeds both QBUFFERs ({} > {})",
             a.cols, 2 * cap);

    // Stage the dense vector: first half in buffer 0, rest in buffer 1
    // (Section VII-F: "stores segments from the input vector").
    // Both staging copies must outlive the row loop: every host buffer
    // the simulator touches has to stay allocated for the whole
    // SimContext, or a later allocation (y below) could reuse its
    // freed block and inherit already-translated paragraphs, making
    // the metrics depend on host heap history.
    const std::size_t half = std::min(a.cols, cap);
    qz.qzconf(half, a.cols > half ? a.cols - half : 0,
              genomics::ElementSize::Bits64);
    const std::vector<std::uint64_t> seg0(
        reinterpret_cast<const std::uint64_t *>(x.data()),
        reinterpret_cast<const std::uint64_t *>(x.data()) + half);
    qz.stageWords64(accel::QzSel::Buf0, seg0);
    std::vector<std::uint64_t> seg1;
    if (a.cols > half) {
        seg1.assign(
            reinterpret_cast<const std::uint64_t *>(x.data()) + half,
            reinterpret_cast<const std::uint64_t *>(x.data()) + a.cols);
        qz.stageWords64(accel::QzSel::Buf1, seg1);
    }

    std::vector<std::int64_t> y(a.rows, 0);
    const VReg vhalf = vpu.dup64(half);
    (void)vhalf;
    for (std::size_t r = 0; r < a.rows; ++r) {
        std::int64_t acc = 0;
        for (std::uint32_t e = a.rowPtr[r]; e < a.rowPtr[r + 1];
             e += L) {
            const unsigned cnt =
                std::min<std::uint32_t>(L, a.rowPtr[r + 1] - e);
            const VReg cols = vpu.widenLo32to64(
                vpu.load(kSiteCol, a.colIdx.data() + e, cnt * 4));
            const VReg vals =
                vpu.load(kSiteVal, a.values.data() + e, cnt * 8);
            // Split lanes by buffer segment; qzmm<mul> fuses the
            // indexed read of x with the multiply.
            Pred lo, hi;
            VReg idxLo = cols, idxHi = cols;
            for (unsigned l = 0; l < cnt; ++l) {
                const bool inLo = cols.u64(l) < half;
                lo.set(l, inLo);
                hi.set(l, !inLo);
                if (!inLo)
                    idxHi.setU64(l, cols.u64(l) - half);
            }
            lo.tag = cols.tag;
            hi.tag = cols.tag;
            vpu.scalarOps(1); // segment select
            VReg prod = vpu.dup64(0);
            if (lo.count() > 0)
                prod = qz.qzmm(accel::QzOpn::Mul, vals, idxLo,
                               accel::QzSel::Buf0, lo, L);
            if (hi.count() > 0) {
                const VReg prodHi =
                    qz.qzmm(accel::QzOpn::Mul, vals, idxHi,
                            accel::QzSel::Buf1, hi, L);
                prod = vpu.sel64(hi, prodHi, prod);
            }
            for (unsigned l = 0; l < cnt; ++l)
                acc += prod.i64(l);
            vpu.pipeline().executeOp(sim::OpClass::VecReduce,
                                     {prod.tag});
        }
        y[r] = acc;
        vpu.scalarStore(kSiteY, &y[r], 8);
    }
    return y;
}

} // namespace

CsrMatrix
makeSparseMatrix(std::size_t rows, std::size_t cols, unsigned nnzPerRow,
                 std::uint64_t seed)
{
    fatal_if(cols == 0 || rows == 0, "matrix must be non-empty");
    CsrMatrix a;
    a.rows = rows;
    a.cols = cols;
    a.rowPtr.resize(rows + 1, 0);
    Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r) {
        const unsigned nnz =
            1 + static_cast<unsigned>(rng.below(2 * nnzPerRow));
        for (unsigned e = 0; e < nnz; ++e) {
            a.colIdx.push_back(
                static_cast<std::uint32_t>(rng.below(cols)));
            a.values.push_back(rng.range(-50, 50));
        }
        a.rowPtr[r + 1] = static_cast<std::uint32_t>(a.colIdx.size());
    }
    return a;
}

std::vector<std::int64_t>
spmv(Variant variant, const CsrMatrix &matrix,
     const std::vector<std::int64_t> &x, isa::VectorUnit *vpu,
     accel::QzUnit *qz)
{
    fatal_if(x.size() != matrix.cols,
             "dense vector length {} != matrix cols {}", x.size(),
             matrix.cols);
    // Cell dispatch lives in the workload registry; this maps only
    // the variant axis (Qz and QzC share the QBUFFER implementation).
    if (variant == Variant::Ref)
        return spmvRef(matrix, x);
    panic_if_not(vpu != nullptr, "timed SpMV needs a VPU");
    if (variant == Variant::Base)
        return spmvBase(matrix, x, *vpu);
    if (variant == Variant::Vec)
        return spmvVec(matrix, x, *vpu);
    panic_if_not(qz != nullptr, "Qz SpMV needs a QzUnit");
    return spmvQz(matrix, x, *vpu, *qz);
}

} // namespace quetzal::kernels
