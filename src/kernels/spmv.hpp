/**
 * @file
 * Sparse matrix-vector multiplication (CSR), the second other-domain
 * kernel of Fig. 15b.
 *
 * SpMV's bottleneck is the gather of x[colidx]; the QUETZAL variant
 * stages the dense vector in the QBUFFERs and fuses the indexed read
 * with the multiply via qzmm<mul>.
 */
#ifndef QUETZAL_KERNELS_SPMV_HPP
#define QUETZAL_KERNELS_SPMV_HPP

#include <cstdint>
#include <vector>

#include "algos/variant.hpp"
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"

namespace quetzal::kernels {

/** CSR matrix over int64 values. */
struct CsrMatrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::uint32_t> rowPtr; //!< rows + 1 entries
    std::vector<std::uint32_t> colIdx;
    std::vector<std::int64_t> values;

    std::size_t nnz() const { return values.size(); }
};

/** Deterministic sparse matrix with ~nnzPerRow entries per row. */
CsrMatrix makeSparseMatrix(std::size_t rows, std::size_t cols,
                           unsigned nnzPerRow, std::uint64_t seed = 55);

/** y = A * x with the given variant (semantics as histogram()). */
std::vector<std::int64_t>
spmv(algos::Variant variant, const CsrMatrix &matrix,
     const std::vector<std::int64_t> &x, isa::VectorUnit *vpu = nullptr,
     accel::QzUnit *qz = nullptr);

} // namespace quetzal::kernels

#endif // QUETZAL_KERNELS_SPMV_HPP
