#include "kernels/histogram.hpp"

#include "common/bitutil.hpp"
#include "isa/scalarunit.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace quetzal::kernels {

using algos::Variant;
using isa::Pred;
using isa::VReg;

namespace {

enum Site : std::uint64_t
{
    kSiteData = 0x500,
    kSiteBins = 0x501,
    kSiteBinsW = 0x502,
};

std::vector<std::uint64_t>
histogramRef(const HistogramInput &input)
{
    std::vector<std::uint64_t> bins(input.bins, 0);
    for (std::uint32_t v : input.data)
        ++bins[v % input.bins];
    return bins;
}

std::vector<std::uint64_t>
histogramBase(const HistogramInput &input, isa::VectorUnit &vpu)
{
    isa::BaseUnit bu(vpu.pipeline());
    std::vector<std::uint64_t> bins(input.bins, 0);
    for (std::uint32_t v : input.data) {
        bu.loadInt(kSiteData,
                   reinterpret_cast<const std::int32_t *>(&v));
        const std::uint32_t bin = v % input.bins;
        bu.alu(); // bin index
        // Read-modify-write of the bin counter (pointer chase).
        bu.loadInt(kSiteBins,
                   reinterpret_cast<std::int32_t *>(&bins[bin]));
        bu.alu();
        ++bins[bin];
        bu.storeInt(kSiteBinsW,
                    reinterpret_cast<std::int32_t *>(&bins[bin]),
                    static_cast<std::int32_t>(bins[bin]));
    }
    return bins;
}

std::vector<std::uint64_t>
histogramVec(const HistogramInput &input, isa::VectorUnit &vpu)
{
    constexpr unsigned L = isa::kLanes64;
    std::vector<std::uint64_t> bins(input.bins, 0);
    const VReg vmask = vpu.dup64(input.bins - 1);
    for (std::size_t base = 0; base < input.data.size(); base += L) {
        const unsigned cnt = static_cast<unsigned>(
            std::min<std::size_t>(L, input.data.size() - base));
        const Pred p = vpu.whilelt(0, cnt, L);
        // Load 8 samples (widened), mask to bin indices.
        VReg idx = vpu.load(kSiteData, input.data.data() + base,
                            cnt * 4);
        idx = vpu.and64(vpu.widenLo32to64(idx), vmask);
        // Gather counters, increment, scatter back. Conflicting lanes
        // within the vector are resolved by the serialization pass the
        // real SVE code needs (charged as one extra predicate op).
        const VReg counters =
            vpu.gather64(kSiteBins, bins.data(), idx, p, L);
        const VReg inc = vpu.add64i(counters, 1);
        vpu.scalarOps(1); // conflict detection (svmatch-style)
        // Functional fix-up for intra-vector duplicates.
        for (unsigned l = 0; l < cnt; ++l)
            ++bins[idx.u64(l)];
        VReg out = inc;
        for (unsigned l = 0; l < cnt; ++l)
            out.setU64(l, bins[idx.u64(l)]);
        out.tag = inc.tag;
        vpu.scatter64(kSiteBinsW, bins.data(), idx, out, p, L);
        // The scatter wrote the already-updated values.
        for (unsigned l = 0; l < cnt; ++l)
            bins[idx.u64(l)] = out.u64(l);
    }
    return bins;
}

std::vector<std::uint64_t>
histogramQz(const HistogramInput &input, isa::VectorUnit &vpu,
            accel::QzUnit &qz)
{
    constexpr unsigned L = isa::kLanes64;
    fatal_if(input.bins > qz.buffer(accel::QzSel::Buf0)
                               .capacityElements(
                                   genomics::ElementSize::Bits64),
             "histogram bins exceed QBUFFER capacity");
    // Table lives in QBUFFER 0 (Fig. 8).
    qz.qzconf(input.bins, 0, genomics::ElementSize::Bits64);
    std::vector<std::uint64_t> zero(input.bins, 0);
    qz.stageWords64(accel::QzSel::Buf0, zero);

    const VReg vmask = vpu.dup64(input.bins - 1);
    const VReg vone = vpu.dup64(1);
    for (std::size_t base = 0; base < input.data.size(); base += L) {
        const unsigned cnt = static_cast<unsigned>(
            std::min<std::size_t>(L, input.data.size() - base));
        const Pred p = vpu.whilelt(0, cnt, L);
        VReg idx = vpu.load(kSiteData, input.data.data() + base,
                            cnt * 4);
        idx = vpu.and64(vpu.widenLo32to64(idx), vmask);
        // qzmm<add> reads the counters and adds 1 in one instruction.
        VReg updated =
            qz.qzmm(accel::QzOpn::Add, vone, idx, accel::QzSel::Buf0,
                    p, L);
        vpu.scalarOps(1); // conflict detection
        // Functional fix-up for intra-vector duplicates, mirrored into
        // the buffer by the qzstore below.
        for (unsigned l = 0; l < cnt; ++l) {
            const std::uint64_t bin = idx.u64(l);
            const std::uint64_t fresh =
                qz.buffer(accel::QzSel::Buf0)
                    .readElement(bin, genomics::ElementSize::Bits64) +
                1;
            updated.setU64(l, fresh);
            qz.buffer(accel::QzSel::Buf0).writeWord(bin, fresh);
        }
        qz.qzstore(updated, idx, accel::QzSel::Buf0, p, L);
    }

    std::vector<std::uint64_t> bins(input.bins, 0);
    for (std::uint32_t b = 0; b < input.bins; ++b)
        bins[b] = qz.buffer(accel::QzSel::Buf0)
                      .readElement(b, genomics::ElementSize::Bits64);
    return bins;
}

} // namespace

HistogramInput
makeHistogramInput(std::size_t count, std::uint32_t bins,
                   std::uint64_t seed)
{
    fatal_if(!isPowerOf2(bins), "bin count must be a power of two");
    HistogramInput input;
    input.bins = bins;
    input.data.resize(count);
    Rng rng(seed);
    for (auto &v : input.data)
        v = static_cast<std::uint32_t>(rng());
    return input;
}

std::vector<std::uint64_t>
histogram(Variant variant, const HistogramInput &input,
          isa::VectorUnit *vpu, accel::QzUnit *qz)
{
    // Cell dispatch lives in the workload registry; this maps only
    // the variant axis (Qz and QzC share the QBUFFER implementation).
    if (variant == Variant::Ref)
        return histogramRef(input);
    panic_if_not(vpu != nullptr, "timed histogram needs a VPU");
    if (variant == Variant::Base)
        return histogramBase(input, *vpu);
    if (variant == Variant::Vec)
        return histogramVec(input, *vpu);
    panic_if_not(qz != nullptr, "Qz histogram needs a QzUnit");
    return histogramQz(input, *vpu, *qz);
}

} // namespace quetzal::kernels
