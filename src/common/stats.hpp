/**
 * @file
 * Lightweight statistics registry, in the spirit of gem5's stats package.
 *
 * Simulator components register named counters with a StatGroup; harness
 * code reads them back by name or dumps the whole group. Counters are
 * plain 64-bit values — the simulator is single-threaded per core.
 */
#ifndef QUETZAL_COMMON_STATS_HPP
#define QUETZAL_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hpp"

namespace quetzal {

/** A single named statistic. */
class Stat
{
  public:
    Stat() = default;
    explicit Stat(std::string desc) : desc_(std::move(desc)) {}

    Stat &operator++() { ++value_; return *this; }
    Stat &operator+=(std::uint64_t n) { value_ += n; return *this; }

    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }

    /** Replace the description (a later registration refining it). */
    void describe(std::string desc) { desc_ = std::move(desc); }

    std::uint64_t value() const { return value_; }
    const std::string &description() const { return desc_; }

  private:
    std::uint64_t value_ = 0;
    std::string desc_;
};

/**
 * A named collection of statistics.
 *
 * Components own a StatGroup and expose it; the harness iterates or
 * queries by dotted name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /**
     * Register (or fetch) a counter under @p name. A desc-less
     * registration falls back to the name as description; a later
     * registration that does carry a description wins, so the order
     * components first touch a shared counter doesn't lose it.
     *
     * This is a string-keyed map lookup — call it at construction
     * and cache the returned Stat& (as memsystem/cache/prefetcher
     * do), never inside a per-access or per-lane loop.
     */
    Stat &
    stat(const std::string &name, const std::string &desc = "")
    {
        auto [it, inserted] =
            stats_.try_emplace(name, Stat{desc.empty() ? name : desc});
        if (!inserted && !desc.empty() &&
            it->second.description() != desc)
            it->second.describe(desc);
        return it->second;
    }

    /** Look up an existing counter; panics when absent. */
    const Stat &
    get(const std::string &name) const
    {
        auto it = stats_.find(name);
        panic_if_not(it != stats_.end(),
                     "unknown stat '{}' in group '{}'", name, name_);
        return it->second;
    }

    bool has(const std::string &name) const { return stats_.contains(name); }

    /** Zero every counter in the group. */
    void
    resetAll()
    {
        for (auto &[name, stat] : stats_)
            stat.reset();
    }

    /**
     * Accumulate every counter of @p other into this group,
     * registering counters this group has not seen. Used to fold the
     * per-worker StatGroups of a batch run back into one aggregate
     * after the pool joins; neither group may be concurrently mutated.
     */
    void
    merge(const StatGroup &other)
    {
        for (const auto &[name, st] : other.stats_) {
            // A description equal to the name is the desc-less
            // fallback; don't let it clobber a real description the
            // target already carries.
            const bool fallback = st.description() == name;
            stat(name, fallback ? "" : st.description()) += st.value();
        }
    }

    /** Sum of every counter value in the group. */
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &[name, st] : stats_)
            sum += st.value();
        return sum;
    }

    const std::string &name() const { return name_; }

    /** Stable-ordered view for dumping. */
    std::vector<std::pair<std::string, std::uint64_t>>
    dump() const
    {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        out.reserve(stats_.size());
        for (const auto &[name, stat] : stats_)
            out.emplace_back(name, stat.value());
        return out;
    }

  private:
    std::string name_;
    std::map<std::string, Stat> stats_;
};

} // namespace quetzal

#endif // QUETZAL_COMMON_STATS_HPP
