/**
 * @file
 * Plain-text table formatter for the benchmark harness.
 *
 * Every bench binary reproduces a paper table or figure by printing the
 * same rows/series the paper reports; this helper keeps the output
 * aligned and machine-greppable.
 */
#ifndef QUETZAL_COMMON_TABLE_HPP
#define QUETZAL_COMMON_TABLE_HPP

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace quetzal {

/** Column-aligned text table. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    /** Append a row; must have the same arity as the header. */
    void
    addRow(std::vector<std::string> cells)
    {
        cells.resize(headers_.size());
        rows_.push_back(std::move(cells));
    }

    /**
     * Format a double with fixed precision. Non-finite values (e.g.
     * the NaN sentinel algos::speedup() returns for a zero-cycle run)
     * render as "n/a".
     */
    static std::string
    num(double v, int precision = 2)
    {
        if (!std::isfinite(v))
            return "n/a";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    /** Render the table to @p os with a separator under the header. */
    void
    print(std::ostream &os) const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < row.size(); ++c) {
                os << row[c]
                   << std::string(width[c] - row[c].size(), ' ');
                os << (c + 1 == row.size() ? "\n" : "  ");
            }
        };
        emit(headers_);
        std::string rule;
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            rule.append(width[c], '-');
            if (c + 1 != headers_.size())
                rule += "  ";
        }
        os << rule << "\n";
        for (const auto &row : rows_)
            emit(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace quetzal

#endif // QUETZAL_COMMON_TABLE_HPP
