/**
 * @file
 * Fixed-size thread pool for the batch experiment engine.
 *
 * Deliberately simple — a shared FIFO queue guarded by one mutex, no
 * work stealing — because the work items it runs (whole evaluation
 * cells, shards of a pair file) are coarse enough that queue contention
 * is noise. Tasks may not touch shared mutable state; the simulator
 * components (Pipeline, MemorySystem, StatGroup, QBuffer) are
 * single-threaded by contract and every worker task must own a fresh
 * set (see docs/SIMULATOR.md, "Thread safety").
 *
 * Exceptions thrown by a task are captured; the first one re-throws
 * from wait() (or the destructor's implicit wait is preceded by a
 * warn), so fatal()/panic() diagnostics from worker cells surface on
 * the harness thread. Later exceptions cannot be rethrown, but they
 * are no longer silent: wait() counts them and emits a warn() with the
 * dropped total (droppedExceptionTotal() exposes the running count).
 */
#ifndef QUETZAL_COMMON_THREADPOOL_HPP
#define QUETZAL_COMMON_THREADPOOL_HPP

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace quetzal {

/** Fixed pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers. Zero is clamped to one: a pool always
     * makes progress even when hardware_concurrency() reports 0.
     */
    explicit ThreadPool(unsigned threads = hardwareThreads())
    {
        if (threads == 0)
            threads = 1;
        workers_.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        taskReady_.notify_all();
        for (auto &worker : workers_)
            worker.join();
        if (firstError_)
            warn("thread pool destroyed with an unobserved task "
                 "exception (call wait() to rethrow it)");
    }

    /** Number of worker threads. */
    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue @p task; it runs on some worker in FIFO order. */
    void
    submit(std::function<void()> task)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            panic_if_not(!stopping_,
                         "submit() on a stopping thread pool");
            ++pending_;
            queue_.push_back(std::move(task));
        }
        taskReady_.notify_one();
    }

    /**
     * Block until every submitted task has finished. Rethrows the
     * first exception any task raised; any further exceptions raised
     * since the last wait() are counted and reported via warn().
     */
    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return pending_ == 0; });
        const std::size_t dropped = dropped_ - droppedReported_;
        droppedReported_ = dropped_;
        if (dropped > 0)
            warn("thread pool dropped {} additional worker "
                 "exception(s) after the first; only the first "
                 "rethrows",
                 dropped);
        if (firstError_)
            std::rethrow_exception(std::exchange(firstError_, nullptr));
    }

    /**
     * Total task exceptions that could not be rethrown (every one
     * after the first per wait() round), over the pool's lifetime.
     */
    std::size_t
    droppedExceptionTotal()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        return dropped_;
    }

    /** Worker count to default to: hardware_concurrency, min 1. */
    static unsigned
    hardwareThreads()
    {
        const unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1 : n;
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                taskReady_.wait(lock, [this] {
                    return stopping_ || !queue_.empty();
                });
                if (queue_.empty())
                    return; // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            try {
                task();
            } catch (...) {
                std::unique_lock<std::mutex> lock(mutex_);
                if (!firstError_)
                    firstError_ = std::current_exception();
                else
                    ++dropped_;
            }
            {
                std::unique_lock<std::mutex> lock(mutex_);
                if (--pending_ == 0)
                    allDone_.notify_all();
            }
        }
    }

    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t pending_ = 0;
    std::size_t dropped_ = 0;         //!< exceptions after the first
    std::size_t droppedReported_ = 0; //!< already warned about
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run indices [0, count) through @p fn on @p threads workers and wait.
 * threads <= 1 runs inline on the caller (no pool, identical order);
 * either way fn(i) must only touch state owned by iteration i.
 */
template <typename Fn>
void
parallelFor(unsigned threads, std::size_t count, Fn &&fn)
{
    if (threads <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(
        static_cast<unsigned>(std::min<std::size_t>(threads, count)));
    for (std::size_t i = 0; i < count; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace quetzal

#endif // QUETZAL_COMMON_THREADPOOL_HPP
