/**
 * @file
 * Minimal JSON writer and reader for machine-readable experiment
 * output.
 *
 * The bench binaries print human tables; automation wants JSON. The
 * writer is a streaming builder (objects, arrays, scalars) with
 * correct string escaping. The reader is a small recursive-descent
 * parser producing a JsonValue tree — added for the batch engine's
 * checkpoint files, which must be read back by the process that wrote
 * them (see docs/ROBUSTNESS.md). Both are deliberately tiny; neither
 * aims at full spec coverage (no \uXXXX decoding beyond ASCII, no
 * number-format pedantry).
 */
#ifndef QUETZAL_COMMON_JSON_HPP
#define QUETZAL_COMMON_JSON_HPP

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace quetzal {

/** Streaming JSON writer. */
class JsonWriter
{
  public:
    /** Begin an object; @p key when inside an object. */
    JsonWriter &
    beginObject(std::string_view key = {})
    {
        comma();
        writeKey(key);
        out_ << '{';
        stack_.push_back(Frame::Object);
        fresh_ = true;
        return *this;
    }

    JsonWriter &
    endObject()
    {
        pop(Frame::Object);
        out_ << '}';
        return *this;
    }

    JsonWriter &
    beginArray(std::string_view key = {})
    {
        comma();
        writeKey(key);
        out_ << '[';
        stack_.push_back(Frame::Array);
        fresh_ = true;
        return *this;
    }

    JsonWriter &
    endArray()
    {
        pop(Frame::Array);
        out_ << ']';
        return *this;
    }

    JsonWriter &
    field(std::string_view key, std::string_view value)
    {
        comma();
        writeKey(key);
        writeString(value);
        return *this;
    }

    JsonWriter &
    field(std::string_view key, const char *value)
    {
        return field(key, std::string_view(value));
    }

    JsonWriter &
    field(std::string_view key, std::uint64_t value)
    {
        comma();
        writeKey(key);
        out_ << value;
        return *this;
    }

    JsonWriter &
    field(std::string_view key, std::int64_t value)
    {
        comma();
        writeKey(key);
        out_ << value;
        return *this;
    }

    JsonWriter &
    field(std::string_view key, double value)
    {
        comma();
        writeKey(key);
        out_ << value;
        return *this;
    }

    JsonWriter &
    field(std::string_view key, bool value)
    {
        comma();
        writeKey(key);
        out_ << (value ? "true" : "false");
        return *this;
    }

    /** Bare value inside an array. */
    JsonWriter &
    value(std::string_view v)
    {
        comma();
        writeString(v);
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        comma();
        out_ << v;
        return *this;
    }

    /**
     * Splice pre-serialized JSON text as one value (e.g. nesting the
     * output of another writer inside an array). The caller vouches
     * that @p json is well-formed.
     */
    JsonWriter &
    rawValue(std::string_view json)
    {
        comma();
        out_ << json;
        return *this;
    }

    /** Keyed rawValue: splice pre-serialized JSON under @p key. */
    JsonWriter &
    rawField(std::string_view key, std::string_view json)
    {
        comma();
        writeKey(key);
        out_ << json;
        return *this;
    }

    /** Final JSON text; all scopes must be closed. */
    std::string
    str() const
    {
        panic_if_not(stack_.empty(),
                     "JsonWriter: {} unclosed scopes", stack_.size());
        return out_.str();
    }

  private:
    enum class Frame { Object, Array };

    void
    comma()
    {
        if (!fresh_)
            out_ << ',';
        fresh_ = false;
    }

    void
    pop(Frame expected)
    {
        panic_if_not(!stack_.empty() && stack_.back() == expected,
                     "JsonWriter: mismatched scope close");
        stack_.pop_back();
        fresh_ = false;
    }

    void
    writeKey(std::string_view key)
    {
        if (key.empty())
            return;
        panic_if_not(!stack_.empty() &&
                         stack_.back() == Frame::Object,
                     "JsonWriter: keyed value outside an object");
        writeString(key);
        out_ << ':';
    }

    void
    writeString(std::string_view s)
    {
        out_ << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                out_ << "\\\"";
                break;
              case '\\':
                out_ << "\\\\";
                break;
              case '\n':
                out_ << "\\n";
                break;
              case '\t':
                out_ << "\\t";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ << buf;
                } else {
                    out_ << c;
                }
            }
        }
        out_ << '"';
    }

    std::ostringstream out_;
    std::vector<Frame> stack_;
    bool fresh_ = true;
};

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return boolean_; }
    double asDouble() const { return number_; }

    /** Integer view of a number (truncates; exact for written u64s). */
    std::int64_t asInt() const { return integer_; }
    std::uint64_t
    asUint() const
    {
        return integer_ < 0 ? 0 : static_cast<std::uint64_t>(integer_);
    }

    const std::string &asString() const { return string_; }
    const std::vector<JsonValue> &items() const { return items_; }
    const std::vector<Member> &members() const { return members_; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue *
    find(std::string_view key) const
    {
        for (const auto &[k, v] : members_)
            if (k == key)
                return &v;
        return nullptr;
    }

    /** Convenience typed getters with defaults for absent members. */
    std::uint64_t
    getUint(std::string_view key, std::uint64_t fallback = 0) const
    {
        const JsonValue *v = find(key);
        return v && v->isNumber() ? v->asUint() : fallback;
    }

    std::int64_t
    getInt(std::string_view key, std::int64_t fallback = 0) const
    {
        const JsonValue *v = find(key);
        return v && v->isNumber() ? v->asInt() : fallback;
    }

    bool
    getBool(std::string_view key, bool fallback = false) const
    {
        const JsonValue *v = find(key);
        return v && v->isBool() ? v->asBool() : fallback;
    }

    std::string
    getString(std::string_view key, std::string fallback = {}) const
    {
        const JsonValue *v = find(key);
        return v && v->isString() ? v->asString()
                                  : std::move(fallback);
    }

    static JsonValue
    makeBool(bool b)
    {
        JsonValue v(Type::Bool);
        v.boolean_ = b;
        return v;
    }

    static JsonValue
    makeNumber(double d, std::int64_t i)
    {
        JsonValue v(Type::Number);
        v.number_ = d;
        v.integer_ = i;
        return v;
    }

    static JsonValue
    makeString(std::string s)
    {
        JsonValue v(Type::String);
        v.string_ = std::move(s);
        return v;
    }

    explicit JsonValue(Type type = Type::Null) : type_(type) {}

    std::vector<JsonValue> &mutableItems() { return items_; }
    std::vector<Member> &mutableMembers() { return members_; }

  private:
    Type type_ = Type::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::int64_t integer_ = 0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

namespace detail {

/** Recursive-descent JSON parser over a string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    parse()
    {
        auto value = parseValue();
        if (!value)
            return std::nullopt;
        skipSpace();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    std::optional<JsonValue>
    parseValue()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return std::nullopt;
        switch (text_[pos_]) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return JsonValue::makeString(std::move(*s));
          }
          case 't':
            return literal("true")
                       ? std::optional(JsonValue::makeBool(true))
                       : std::nullopt;
          case 'f':
            return literal("false")
                       ? std::optional(JsonValue::makeBool(false))
                       : std::nullopt;
          case 'n':
            return literal("null") ? std::optional(JsonValue{})
                                   : std::nullopt;
          default:
            return parseNumber();
        }
    }

    std::optional<JsonValue>
    parseObject()
    {
        ++pos_; // '{'
        JsonValue obj(JsonValue::Type::Object);
        skipSpace();
        if (consume('}'))
            return obj;
        for (;;) {
            skipSpace();
            auto key = parseString();
            if (!key || !consume(':'))
                return std::nullopt;
            auto value = parseValue();
            if (!value)
                return std::nullopt;
            obj.mutableMembers().emplace_back(std::move(*key),
                                              std::move(*value));
            if (consume(','))
                continue;
            if (consume('}'))
                return obj;
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    parseArray()
    {
        ++pos_; // '['
        JsonValue arr(JsonValue::Type::Array);
        skipSpace();
        if (consume(']'))
            return arr;
        for (;;) {
            auto value = parseValue();
            if (!value)
                return std::nullopt;
            arr.mutableItems().push_back(std::move(*value));
            if (consume(','))
                continue;
            if (consume(']'))
                return arr;
            return std::nullopt;
        }
    }

    std::optional<std::string>
    parseString()
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return std::nullopt;
        ++pos_;
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return std::nullopt;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'u': {
                // ASCII-only \u escape (all the writer emits).
                if (pos_ + 4 > text_.size())
                    return std::nullopt;
                const std::string hex(text_.substr(pos_, 4));
                pos_ += 4;
                char *end = nullptr;
                const long code = std::strtol(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4 || code < 0 || code > 0x7f)
                    return std::nullopt;
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    parseNumber()
    {
        const std::size_t start = pos_;
        auto isNumChar = [](char c) {
            return (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                   c == '.' || c == 'e' || c == 'E';
        };
        while (pos_ < text_.size() && isNumChar(text_[pos_]))
            ++pos_;
        if (pos_ == start)
            return std::nullopt;
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return std::nullopt;
        // Integral values round-trip exactly through strtoll; the
        // double mirror is what non-integral readers use.
        char *iend = nullptr;
        std::int64_t i =
            std::strtoll(token.c_str(), &iend, 10);
        if (iend != token.c_str() + token.size())
            i = static_cast<std::int64_t>(d);
        return JsonValue::makeNumber(d, i);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/**
 * Parse one JSON document. Returns nullopt on malformed input — the
 * checkpoint loader treats that as "line not written completely" and
 * skips it rather than aborting a resume.
 */
inline std::optional<JsonValue>
parseJson(std::string_view text)
{
    return detail::JsonParser(text).parse();
}

} // namespace quetzal

#endif // QUETZAL_COMMON_JSON_HPP
