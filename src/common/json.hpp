/**
 * @file
 * Minimal JSON writer for machine-readable experiment output.
 *
 * The bench binaries print human tables; automation wants JSON. This
 * is a write-only builder (objects, arrays, scalars) with correct
 * string escaping — deliberately tiny, no parsing.
 */
#ifndef QUETZAL_COMMON_JSON_HPP
#define QUETZAL_COMMON_JSON_HPP

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hpp"

namespace quetzal {

/** Streaming JSON writer. */
class JsonWriter
{
  public:
    /** Begin an object; @p key when inside an object. */
    JsonWriter &
    beginObject(std::string_view key = {})
    {
        comma();
        writeKey(key);
        out_ << '{';
        stack_.push_back(Frame::Object);
        fresh_ = true;
        return *this;
    }

    JsonWriter &
    endObject()
    {
        pop(Frame::Object);
        out_ << '}';
        return *this;
    }

    JsonWriter &
    beginArray(std::string_view key = {})
    {
        comma();
        writeKey(key);
        out_ << '[';
        stack_.push_back(Frame::Array);
        fresh_ = true;
        return *this;
    }

    JsonWriter &
    endArray()
    {
        pop(Frame::Array);
        out_ << ']';
        return *this;
    }

    JsonWriter &
    field(std::string_view key, std::string_view value)
    {
        comma();
        writeKey(key);
        writeString(value);
        return *this;
    }

    JsonWriter &
    field(std::string_view key, const char *value)
    {
        return field(key, std::string_view(value));
    }

    JsonWriter &
    field(std::string_view key, std::uint64_t value)
    {
        comma();
        writeKey(key);
        out_ << value;
        return *this;
    }

    JsonWriter &
    field(std::string_view key, std::int64_t value)
    {
        comma();
        writeKey(key);
        out_ << value;
        return *this;
    }

    JsonWriter &
    field(std::string_view key, double value)
    {
        comma();
        writeKey(key);
        out_ << value;
        return *this;
    }

    JsonWriter &
    field(std::string_view key, bool value)
    {
        comma();
        writeKey(key);
        out_ << (value ? "true" : "false");
        return *this;
    }

    /** Bare value inside an array. */
    JsonWriter &
    value(std::string_view v)
    {
        comma();
        writeString(v);
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        comma();
        out_ << v;
        return *this;
    }

    /**
     * Splice pre-serialized JSON text as one value (e.g. nesting the
     * output of another writer inside an array). The caller vouches
     * that @p json is well-formed.
     */
    JsonWriter &
    rawValue(std::string_view json)
    {
        comma();
        out_ << json;
        return *this;
    }

    /** Final JSON text; all scopes must be closed. */
    std::string
    str() const
    {
        panic_if_not(stack_.empty(),
                     "JsonWriter: {} unclosed scopes", stack_.size());
        return out_.str();
    }

  private:
    enum class Frame { Object, Array };

    void
    comma()
    {
        if (!fresh_)
            out_ << ',';
        fresh_ = false;
    }

    void
    pop(Frame expected)
    {
        panic_if_not(!stack_.empty() && stack_.back() == expected,
                     "JsonWriter: mismatched scope close");
        stack_.pop_back();
        fresh_ = false;
    }

    void
    writeKey(std::string_view key)
    {
        if (key.empty())
            return;
        panic_if_not(!stack_.empty() &&
                         stack_.back() == Frame::Object,
                     "JsonWriter: keyed value outside an object");
        writeString(key);
        out_ << ':';
    }

    void
    writeString(std::string_view s)
    {
        out_ << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                out_ << "\\\"";
                break;
              case '\\':
                out_ << "\\\\";
                break;
              case '\n':
                out_ << "\\n";
                break;
              case '\t':
                out_ << "\\t";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ << buf;
                } else {
                    out_ << c;
                }
            }
        }
        out_ << '"';
    }

    std::ostringstream out_;
    std::vector<Frame> stack_;
    bool fresh_ = true;
};

} // namespace quetzal

#endif // QUETZAL_COMMON_JSON_HPP
