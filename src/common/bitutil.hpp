/**
 * @file
 * Bit-manipulation helpers used across the ISA model and the QUETZAL
 * count-ALU / encoder hardware models.
 */
#ifndef QUETZAL_COMMON_BITUTIL_HPP
#define QUETZAL_COMMON_BITUTIL_HPP

#include <bit>
#include <cstdint>

namespace quetzal {

/** Number of consecutive set bits starting at bit 0 of @p value. */
inline int
countTrailingOnes(std::uint64_t value)
{
    return std::countr_one(value);
}

/** Number of consecutive clear bits starting at bit 0 of @p value. */
inline int
countTrailingZeros(std::uint64_t value)
{
    return std::countr_zero(value);
}

/** Population count. */
inline int
popCount(std::uint64_t value)
{
    return std::popcount(value);
}

/**
 * Extract @p len bits starting at bit @p first (little-endian bit order).
 * @pre len <= 64 and first + len <= 64.
 */
inline std::uint64_t
bits(std::uint64_t value, unsigned first, unsigned len)
{
    if (len == 0)
        return 0;
    if (len >= 64)
        return value >> first;
    return (value >> first) & ((std::uint64_t{1} << len) - 1);
}

/**
 * Insert @p field into @p value at bit position @p first with width
 * @p len, returning the combined word.
 */
inline std::uint64_t
insertBits(std::uint64_t value, unsigned first, unsigned len,
           std::uint64_t field)
{
    const std::uint64_t mask =
        (len >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << len) - 1))
        << first;
    return (value & ~mask) | ((field << first) & mask);
}

/** True when @p value is a power of two (and non-zero). */
inline bool
isPowerOf2(std::uint64_t value)
{
    return std::has_single_bit(value);
}

/** log2 of a power-of-two value. */
inline unsigned
floorLog2(std::uint64_t value)
{
    return 63u - static_cast<unsigned>(std::countl_zero(value | 1));
}

/** Round @p value up to the next multiple of @p align (power of two). */
inline std::uint64_t
roundUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Integer ceiling division. */
inline std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace quetzal

#endif // QUETZAL_COMMON_BITUTIL_HPP
