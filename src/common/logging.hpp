/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (a bug in this library), fatal() for user-caused conditions the program
 * cannot continue from (bad configuration, invalid arguments), and
 * warn()/inform() for non-fatal status messages.
 */
#ifndef QUETZAL_COMMON_LOGGING_HPP
#define QUETZAL_COMMON_LOGGING_HPP

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/format.hpp"

namespace quetzal {

/** Exception thrown by fatal(): user error, recoverable by the caller. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * A condition that is expected to clear on retry (I/O contention,
 * injected flakiness). The batch engine retries cells that raise it;
 * everything else is terminal on the first attempt.
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * A per-cell resource budget was exhausted even after graceful
 * degradation (see docs/ROBUSTNESS.md). Terminal like FatalError but
 * distinguishable in failure records.
 */
class ResourceError : public FatalError
{
  public:
    explicit ResourceError(const std::string &msg) : FatalError(msg) {}
};

/**
 * Report an internal invariant violation (a library bug) and throw.
 *
 * @param fmt "{}"-style format string followed by its arguments.
 */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    std::string msg =
        "panic: " + qformat(fmt, std::forward<Args>(args)...);
    std::fputs((msg + "\n").c_str(), stderr);
    throw PanicError(msg);
}

/**
 * Report a user-caused unrecoverable condition (bad input or
 * configuration) and throw.
 */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    std::string msg =
        "fatal: " + qformat(fmt, std::forward<Args>(args)...);
    std::fputs((msg + "\n").c_str(), stderr);
    throw FatalError(msg);
}

/** Print a warning about suspicious but survivable behaviour. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    std::string msg =
        "warn: " + qformat(fmt, std::forward<Args>(args)...);
    std::fputs((msg + "\n").c_str(), stderr);
}

/** Print an informational status message. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    std::string msg =
        "info: " + qformat(fmt, std::forward<Args>(args)...);
    std::fputs((msg + "\n").c_str(), stdout);
}

/**
 * Assert a library invariant; on failure panics with the given message.
 * Unlike assert(), this is always enabled.
 */
template <typename... Args>
void
panic_if_not(bool cond, std::string_view fmt, Args &&...args)
{
    if (!cond)
        panic(fmt, std::forward<Args>(args)...);
}

/** Like fatal(), but only when the condition is true. */
template <typename... Args>
void
fatal_if(bool cond, std::string_view fmt, Args &&...args)
{
    if (cond)
        fatal(fmt, std::forward<Args>(args)...);
}

} // namespace quetzal

#endif // QUETZAL_COMMON_LOGGING_HPP
