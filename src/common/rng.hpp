/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All dataset generation in this repository is seeded explicitly so that
 * every experiment is bit-reproducible. The generator is xoshiro256**,
 * seeded through SplitMix64 as its authors recommend.
 */
#ifndef QUETZAL_COMMON_RNG_HPP
#define QUETZAL_COMMON_RNG_HPP

#include <array>
#include <cstdint>

namespace quetzal {

/** SplitMix64 step, used for seeding and cheap hashing. */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** deterministic PRNG.
 *
 * Satisfies the UniformRandomBitGenerator named requirement so it can be
 * used with <random> distributions if needed, though the convenience
 * members below cover every use in this repository.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eedULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    /** Next raw 64-bit output. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0. Unbiased via rejection. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint64_t r = (*this)();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace quetzal

#endif // QUETZAL_COMMON_RNG_HPP
