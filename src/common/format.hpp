/**
 * @file
 * Minimal std::format stand-in ("{}" placeholders only).
 *
 * The toolchain in use (libstdc++ 12) does not ship <format>, so this
 * header provides qformat(): sequential "{}" substitution rendered via
 * iostreams. Numeric precision helpers live in table.hpp where tables
 * are built.
 */
#ifndef QUETZAL_COMMON_FORMAT_HPP
#define QUETZAL_COMMON_FORMAT_HPP

#include <sstream>
#include <string>
#include <string_view>

namespace quetzal {

namespace detail {

inline void
formatRest(std::string &out, std::string_view fmt)
{
    out.append(fmt);
}

template <typename First, typename... Rest>
void
formatRest(std::string &out, std::string_view fmt, First &&first,
           Rest &&...rest)
{
    const std::size_t pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        out.append(fmt);
        return;
    }
    out.append(fmt.substr(0, pos));
    std::ostringstream os;
    os << first;
    out += os.str();
    formatRest(out, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}

} // namespace detail

/**
 * Substitute each "{}" in @p fmt with the next argument, rendered with
 * operator<<. Extra placeholders are left verbatim; extra arguments are
 * ignored.
 */
template <typename... Args>
std::string
qformat(std::string_view fmt, Args &&...args)
{
    std::string out;
    out.reserve(fmt.size() + 16 * sizeof...(args));
    detail::formatRest(out, fmt, std::forward<Args>(args)...);
    return out;
}

} // namespace quetzal

#endif // QUETZAL_COMMON_FORMAT_HPP
