#include "genomics/protein.hpp"

#include "common/format.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace quetzal::genomics {

std::vector<SequencePair>
ProteinFamily::allPairs() const
{
    std::vector<SequencePair> pairs;
    for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
            SequencePair pair;
            pair.pattern = members[i].bases;
            pair.text = members[j].bases;
            pair.alphabet = AlphabetKind::Protein;
            pairs.push_back(std::move(pair));
        }
    }
    return pairs;
}

std::vector<ProteinFamily>
generateProteinFamilies(const ProteinFamilyConfig &config)
{
    fatal_if(config.membersPerFamily < 2,
             "a protein family needs at least two members");
    Rng rng(config.seed);
    const auto alpha = kProteinLetters;

    auto random_residue = [&] { return alpha[rng.below(alpha.size())]; };

    std::vector<ProteinFamily> families;
    families.reserve(config.familyCount);
    for (std::size_t f = 0; f < config.familyCount; ++f) {
        // Sample the ancestor and mark conserved columns.
        std::string ancestor(config.ancestorLength, '\0');
        for (auto &c : ancestor)
            c = random_residue();
        std::vector<bool> conserved(config.ancestorLength);
        for (auto &&col : conserved)
            col = rng.chance(config.conservedFraction);

        ProteinFamily family;
        for (std::size_t m = 0; m < config.membersPerFamily; ++m) {
            Sequence seq;
            seq.id = qformat("fam{}_seq{}", f, m);
            seq.alphabet = AlphabetKind::Protein;
            seq.bases.reserve(config.ancestorLength + 16);
            for (std::size_t i = 0; i < ancestor.size(); ++i) {
                if (conserved[i] || !rng.chance(config.divergence)) {
                    seq.bases += ancestor[i];
                    continue;
                }
                // Divergent column: substitution (60%), insertion
                // (20%), or deletion (20%), mirroring the DNA model.
                const double kind = rng.uniform();
                if (kind < 0.6) {
                    char c = ancestor[i];
                    while (c == ancestor[i])
                        c = random_residue();
                    seq.bases += c;
                } else if (kind < 0.8) {
                    seq.bases += random_residue();
                    seq.bases += ancestor[i];
                }
                // else: deletion, emit nothing
            }
            if (seq.bases.empty())
                seq.bases += random_residue();
            family.members.push_back(std::move(seq));
        }
        families.push_back(std::move(family));
    }
    return families;
}

std::vector<SequencePair>
proteinPairWorkload(const ProteinFamilyConfig &config)
{
    std::vector<SequencePair> workload;
    for (const auto &family : generateProteinFamilies(config)) {
        auto pairs = family.allPairs();
        workload.insert(workload.end(),
                        std::make_move_iterator(pairs.begin()),
                        std::make_move_iterator(pairs.end()));
    }
    return workload;
}

} // namespace quetzal::genomics
