#include "genomics/readsim.hpp"

#include "common/logging.hpp"

namespace quetzal::genomics {

ReadSimulator::ReadSimulator(const ReadSimConfig &config)
    : config_(config), rng_(config.seed)
{
    fatal_if(config.readLength == 0, "read length must be positive");
    fatal_if(config.errorRate < 0.0 || config.errorRate > 1.0,
             "error rate {} out of [0,1]", config.errorRate);
    fatal_if(config.substitutionFrac + config.insertionFrac > 1.0,
             "substitution + insertion fractions exceed 1");
}

char
ReadSimulator::randomResidue()
{
    const auto alpha = letters(config_.alphabet);
    return alpha[rng_.below(alpha.size())];
}

char
ReadSimulator::randomResidueOtherThan(char base)
{
    const auto alpha = letters(config_.alphabet);
    char c = base;
    while (c == base)
        c = alpha[rng_.below(alpha.size())];
    return c;
}

std::string
ReadSimulator::randomSequence(std::size_t length)
{
    std::string seq(length, '\0');
    for (auto &c : seq)
        c = randomResidue();
    return seq;
}

std::string
ReadSimulator::mutate(const std::string &text, std::int64_t &edits)
{
    std::string pattern;
    pattern.reserve(text.size() + 8);
    edits = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (rng_.chance(config_.errorRate)) {
            ++edits;
            const double kind = rng_.uniform();
            if (kind < config_.substitutionFrac) {
                pattern += randomResidueOtherThan(text[i]);
            } else if (kind <
                       config_.substitutionFrac + config_.insertionFrac) {
                // Insertion: emit a random residue, then the original.
                pattern += randomResidue();
                pattern += text[i];
            }
            // Deletion: skip the original base entirely.
        } else {
            pattern += text[i];
        }
    }
    if (pattern.empty()) {
        // Pathological full-deletion case; keep one residue so the
        // algorithms never see an empty pattern.
        pattern += text.front();
    }
    return pattern;
}

std::vector<SequencePair>
ReadSimulator::generatePairs(std::size_t count)
{
    std::vector<SequencePair> pairs;
    pairs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        SequencePair pair;
        pair.alphabet = config_.alphabet;
        pair.text = randomSequence(config_.readLength);
        pair.pattern = mutate(pair.text, pair.trueEdits);
        pairs.push_back(std::move(pair));
    }
    return pairs;
}

} // namespace quetzal::genomics
