/**
 * @file
 * Synthetic protein-family generator standing in for BAliBase4.
 *
 * The paper evaluates protein alignment over BAliBase4 multiple-sequence-
 * alignment groups, running all pairwise alignments within each group
 * (Section V-C). BAliBase is not redistributable here, so we generate
 * families with the property the paper's analysis depends on: a shared
 * ancestor with conserved blocks and divergent loop regions over the
 * 20-letter alphabet, which yields substantially more edits per pair
 * than same-length DNA reads (Section VII-A4).
 */
#ifndef QUETZAL_GENOMICS_PROTEIN_HPP
#define QUETZAL_GENOMICS_PROTEIN_HPP

#include <cstdint>
#include <vector>

#include "genomics/sequence.hpp"

namespace quetzal::genomics {

/** One synthetic family: N diverged copies of a common ancestor. */
struct ProteinFamily
{
    std::vector<Sequence> members;

    /** All unordered member pairs, BAliBase-evaluation style. */
    std::vector<SequencePair> allPairs() const;
};

/** Parameters for family generation. */
struct ProteinFamilyConfig
{
    std::size_t familyCount = 8;     //!< number of families
    std::size_t membersPerFamily = 5;
    std::size_t ancestorLength = 400;
    double conservedFraction = 0.4;  //!< fraction of columns kept intact
    double divergence = 0.25;        //!< per-residue edit rate elsewhere
    std::uint64_t seed = 7;
};

/** Generate the configured set of families deterministically. */
std::vector<ProteinFamily>
generateProteinFamilies(const ProteinFamilyConfig &config);

/** Flatten families into one pairwise-alignment workload. */
std::vector<SequencePair>
proteinPairWorkload(const ProteinFamilyConfig &config);

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_PROTEIN_HPP
