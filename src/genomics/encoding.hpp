/**
 * @file
 * Software reference implementation of QUETZAL's base encodings.
 *
 * The hardware data encoder (paper Section IV-A, Fig. 9) extracts ASCII
 * bits 1 and 2 of each nucleotide character to form a 2-bit code:
 *
 *   A = 0x41 -> 00,  C = 0x43 -> 01,  T = 0x54 -> 10,  G = 0x47 -> 11
 *   (U = 0x55 -> 10, sharing T's code, which is safe because RNA has no T)
 *
 * Proteins and the ambiguous base 'N' use the 8-bit character directly.
 * These functions are the golden model the hardware encoder unit tests
 * compare against, and the algorithms' scalar baselines use them too.
 */
#ifndef QUETZAL_GENOMICS_ENCODING_HPP
#define QUETZAL_GENOMICS_ENCODING_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace quetzal::genomics {

/** Element width of data stored in a QBUFFER (matches qzconf's Esiz). */
enum class ElementSize : std::uint8_t
{
    Bits2 = 0,  //!< 2-bit encoded nucleotides
    Bits8 = 1,  //!< raw 8-bit characters (proteins, 'N')
    Bits64 = 2, //!< raw 64-bit elements (DP values, histograms)
};

/** Number of bits per element for @p size. */
inline unsigned
bitsPerElement(ElementSize size)
{
    switch (size) {
      case ElementSize::Bits2:
        return 2;
      case ElementSize::Bits8:
        return 8;
      default:
        return 64;
    }
}

/** 2-bit code of a nucleotide character: ASCII bits 1..2. */
inline std::uint8_t
encodeBase2(char base)
{
    return static_cast<std::uint8_t>(
        (static_cast<unsigned char>(base) >> 1) & 0x3u);
}

/**
 * Decode a 2-bit DNA code back to its character.
 * Inverse of encodeBase2 over {A, C, G, T}.
 */
char decodeBase2Dna(std::uint8_t code);

/** Decode a 2-bit RNA code (T's slot becomes 'U'). */
char decodeBase2Rna(std::uint8_t code);

/**
 * Pack a character sequence into 2-bit codes, 32 bases per 64-bit word,
 * base i occupying bits [2i, 2i+1] of word i/32.
 */
std::vector<std::uint64_t> pack2bit(std::string_view seq);

/** Unpack @p count bases from a pack2bit() word stream (DNA letters). */
std::string unpack2bitDna(const std::vector<std::uint64_t> &words,
                          std::size_t count);

/** Pack raw characters 8 per 64-bit word (protein / 8-bit mode). */
std::vector<std::uint64_t> pack8bit(std::string_view seq);

/** Unpack @p count characters from a pack8bit() word stream. */
std::string unpack8bit(const std::vector<std::uint64_t> &words,
                       std::size_t count);

/**
 * Read element @p index from a packed word stream with the given element
 * size — the software model of the QBUFFER read-logic slicing path.
 */
std::uint64_t extractElement(const std::vector<std::uint64_t> &words,
                             std::size_t index, ElementSize size);

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_ENCODING_HPP
