#include "genomics/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <mutex>

#include "common/logging.hpp"
#include "genomics/datasets.hpp"
#include "genomics/encoding.hpp"

namespace quetzal::genomics {

namespace {

// Fixed header prefix before the variable-length name (docs/STORE.md).
constexpr std::size_t kFixedHeaderBytes = 92;
constexpr std::size_t kIndexEntryBytes = 32;
constexpr std::size_t kMaxNameBytes = 4096;
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::uint8_t kFlagPatternRaw = 1u << 0;
constexpr std::uint8_t kFlagTextRaw = 1u << 1;
constexpr unsigned kFlagAlphabetShift = 2;

std::uint64_t
fnvMix(std::uint64_t hash, const unsigned char *bytes,
       std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        hash ^= bytes[i];
        hash *= kFnvPrime;
    }
    return hash;
}

std::size_t
align8(std::size_t bytes)
{
    return (bytes + 7) & ~std::size_t{7};
}

std::size_t
packedBytes(std::size_t bases, bool raw)
{
    return raw ? bases : (bases + 3) / 4;
}

void
putU32(unsigned char *dst, std::uint32_t value)
{
    for (unsigned i = 0; i < 4; ++i)
        dst[i] = static_cast<unsigned char>(value >> (8 * i));
}

void
putU64(unsigned char *dst, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i)
        dst[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *src)
{
    std::uint32_t value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(src[i]) << (8 * i);
    return value;
}

std::uint64_t
getU64(const unsigned char *src)
{
    std::uint64_t value = 0;
    for (unsigned i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(src[i]) << (8 * i);
    return value;
}

std::uint8_t
alphabetCode(AlphabetKind kind)
{
    switch (kind) {
      case AlphabetKind::Dna:
        return 0;
      case AlphabetKind::Rna:
        return 1;
      default:
        return 2;
    }
}

AlphabetKind
alphabetFromCode(std::uint8_t code)
{
    switch (code) {
      case 0:
        return AlphabetKind::Dna;
      case 1:
        return AlphabetKind::Rna;
      case 2:
        return AlphabetKind::Protein;
      default:
        fatal("read store: unknown alphabet code {}", code);
    }
}

/** Does 2-bit packing round-trip @p seq? ('N' and proteins do not.) */
bool
packs2bit(std::string_view seq, AlphabetKind kind)
{
    if (kind == AlphabetKind::Protein)
        return false;
    for (const char c : seq) {
        const char back = kind == AlphabetKind::Rna
                              ? decodeBase2Rna(encodeBase2(c))
                              : decodeBase2Dna(encodeBase2(c));
        if (back != c)
            return false;
    }
    return true;
}

/** Serialize the header; @p headerBytes is the name-padded size. */
std::vector<unsigned char>
encodeHeader(const StoreProvenance &provenance,
             std::uint64_t pairCount, std::uint64_t payloadOffset,
             std::uint64_t payloadBytes, std::uint64_t indexOffset,
             std::uint64_t checksum)
{
    const std::string &name = provenance.name;
    std::vector<unsigned char> header(
        align8(kFixedHeaderBytes + name.size()), 0);
    std::memcpy(header.data(), kStoreMagic.data(), kStoreMagic.size());
    putU32(header.data() + 8, kStoreVersion);
    putU32(header.data() + 12, 0); // reserved flags
    putU64(header.data() + 16, pairCount);
    putU64(header.data() + 24, payloadOffset);
    putU64(header.data() + 32, payloadBytes);
    putU64(header.data() + 40, indexOffset);
    putU64(header.data() + 48, checksum);
    putU64(header.data() + 56, provenance.seed);
    putU64(header.data() + 64,
           std::bit_cast<std::uint64_t>(provenance.scale));
    putU64(header.data() + 72,
           std::bit_cast<std::uint64_t>(provenance.errorRate));
    putU64(header.data() + 80,
           static_cast<std::uint64_t>(provenance.readLength));
    putU32(header.data() + 88,
           static_cast<std::uint32_t>(name.size()));
    std::memcpy(header.data() + kFixedHeaderBytes, name.data(),
                name.size());
    return header;
}

void
encodeIndexEntry(unsigned char *dst, std::uint64_t offset,
                 std::uint32_t patternBases, std::uint32_t textBases,
                 std::int64_t trueEdits, std::uint8_t flags)
{
    std::memset(dst, 0, kIndexEntryBytes);
    putU64(dst, offset);
    putU32(dst + 8, patternBases);
    putU32(dst + 12, textBases);
    putU64(dst + 16, static_cast<std::uint64_t>(trueEdits));
    dst[24] = flags;
}

} // namespace

// ---------------------------------------------------------------------
// StoreWriter

StoreWriter::StoreWriter(const std::string &path,
                         StoreProvenance provenance)
    : path_(path), provenance_(std::move(provenance)),
      checksum_(kFnvOffset)
{
    fatal_if(provenance_.name.size() > kMaxNameBytes,
             "store dataset name longer than {} bytes",
             kMaxNameBytes);
    out_.open(path_, std::ios::binary | std::ios::trunc);
    fatal_if(!out_, "cannot open '{}' for writing", path_);
    // Placeholder header: counts and checksum are zero until
    // finish(), so a torn write is rejected by open().
    const auto header = encodeHeader(provenance_, 0, 0, 0, 0, 0);
    payloadOffset_ = header.size();
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
}

StoreWriter::~StoreWriter()
{
    if (!finished_ && out_.is_open())
        warn("store writer for '{}' destroyed before finish(); the "
             "file is incomplete and will be rejected on open",
             path_);
}

void
StoreWriter::appendSequence(std::string_view seq, bool raw)
{
    static thread_local std::vector<unsigned char> packed;
    const unsigned char *bytes;
    std::size_t count;
    if (raw) {
        bytes = reinterpret_cast<const unsigned char *>(seq.data());
        count = seq.size();
    } else {
        count = packedBytes(seq.size(), false);
        packed.assign(count, 0);
        for (std::size_t i = 0; i < seq.size(); ++i)
            packed[i / 4] = static_cast<unsigned char>(
                packed[i / 4] |
                (encodeBase2(seq[i]) << (2 * (i % 4))));
        bytes = packed.data();
    }
    checksum_ = fnvMix(checksum_, bytes, count);
    out_.write(reinterpret_cast<const char *>(bytes),
               static_cast<std::streamsize>(count));
    payloadBytes_ += count;
}

void
StoreWriter::add(const SequencePair &pair)
{
    fatal_if(finished_, "store writer for '{}' already finished",
             path_);
    validatePair(pair, pair.alphabet, index_.size(),
                 provenance_.name);
    fatal_if(pair.pattern.size() > ~std::uint32_t{0} ||
                 pair.text.size() > ~std::uint32_t{0},
             "store pair {} exceeds the 4 Gbase sequence limit",
             index_.size());
    Entry entry;
    entry.offset = payloadBytes_;
    entry.patternBases =
        static_cast<std::uint32_t>(pair.pattern.size());
    entry.textBases = static_cast<std::uint32_t>(pair.text.size());
    entry.trueEdits = pair.trueEdits;
    const bool patternRaw = !packs2bit(pair.pattern, pair.alphabet);
    const bool textRaw = !packs2bit(pair.text, pair.alphabet);
    entry.flags = static_cast<std::uint8_t>(
        (patternRaw ? kFlagPatternRaw : 0) |
        (textRaw ? kFlagTextRaw : 0) |
        (alphabetCode(pair.alphabet) << kFlagAlphabetShift));
    appendSequence(pair.pattern, patternRaw);
    appendSequence(pair.text, textRaw);
    index_.push_back(entry);
}

void
StoreWriter::finish()
{
    fatal_if(finished_, "store writer for '{}' already finished",
             path_);
    const std::uint64_t indexOffset = payloadOffset_ + payloadBytes_;
    unsigned char entryBytes[kIndexEntryBytes];
    for (const Entry &entry : index_) {
        encodeIndexEntry(entryBytes, entry.offset, entry.patternBases,
                         entry.textBases, entry.trueEdits,
                         entry.flags);
        checksum_ = fnvMix(checksum_, entryBytes, kIndexEntryBytes);
        out_.write(reinterpret_cast<const char *>(entryBytes),
                   static_cast<std::streamsize>(kIndexEntryBytes));
    }
    const auto header =
        encodeHeader(provenance_, index_.size(), payloadOffset_,
                     payloadBytes_, indexOffset, checksum_);
    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.close();
    fatal_if(out_.fail(), "write error finishing store '{}'", path_);
    finished_ = true;
}

// ---------------------------------------------------------------------
// ReadStore

std::shared_ptr<const ReadStore>
ReadStore::open(const std::string &path,
                const StoreOpenOptions &options)
{
    std::shared_ptr<ReadStore> store(new ReadStore());
    store->path_ = path;
    store->fd_ = ::open(path.c_str(), O_RDONLY);
    fatal_if(store->fd_ < 0, "cannot open store '{}'", path);
    struct stat st;
    fatal_if(::fstat(store->fd_, &st) != 0,
             "cannot stat store '{}'", path);
    store->fileBytes_ = static_cast<std::uint64_t>(st.st_size);

    unsigned char fixed[kFixedHeaderBytes];
    fatal_if(store->fileBytes_ < kFixedHeaderBytes,
             "'{}' is not a read store (truncated header)", path);
    store->readBytes(0, fixed, kFixedHeaderBytes);
    fatal_if(std::memcmp(fixed, kStoreMagic.data(),
                         kStoreMagic.size()) != 0,
             "'{}' is not a read store (bad magic)", path);
    const std::uint32_t version = getU32(fixed + 8);
    fatal_if(version != kStoreVersion,
             "store '{}' has version {}, this build reads version {}",
             path, version, kStoreVersion);
    store->pairCount_ = getU64(fixed + 16);
    store->payloadOffset_ = getU64(fixed + 24);
    store->payloadBytes_ = getU64(fixed + 32);
    store->indexOffset_ = getU64(fixed + 40);
    store->checksum_ = getU64(fixed + 48);
    store->provenance_.seed = getU64(fixed + 56);
    store->provenance_.scale =
        std::bit_cast<double>(getU64(fixed + 64));
    store->provenance_.errorRate =
        std::bit_cast<double>(getU64(fixed + 72));
    store->provenance_.readLength =
        static_cast<std::size_t>(getU64(fixed + 80));
    const std::uint32_t nameLen = getU32(fixed + 88);

    fatal_if(nameLen > kMaxNameBytes ||
                 kFixedHeaderBytes + nameLen > store->fileBytes_,
             "store '{}' header is corrupt (name length {})", path,
             nameLen);
    store->provenance_.name.resize(nameLen);
    if (nameLen > 0)
        store->readBytes(kFixedHeaderBytes,
                         store->provenance_.name.data(), nameLen);

    const std::uint64_t headerBytes =
        align8(kFixedHeaderBytes + nameLen);
    fatal_if(store->payloadOffset_ != headerBytes ||
                 store->payloadOffset_ + store->payloadBytes_ !=
                     store->indexOffset_ ||
                 store->indexOffset_ +
                         store->pairCount_ * kIndexEntryBytes !=
                     store->fileBytes_,
             "store '{}' is truncated or corrupt (layout mismatch)",
             path);

    if (!options.disableMmap && store->fileBytes_ > 0) {
        void *map = ::mmap(nullptr, store->fileBytes_, PROT_READ,
                           MAP_SHARED, store->fd_, 0);
        if (map != MAP_FAILED)
            store->map_ = static_cast<const unsigned char *>(map);
        // mmap failure is not an error: fall through to pread.
    }

    if (options.verifyChecksum) {
        // Stream the verification with pread so it never inflates
        // RSS, even in mmap mode.
        std::uint64_t hash = kFnvOffset;
        std::vector<unsigned char> chunk(256 * 1024);
        std::uint64_t offset = store->payloadOffset_;
        while (offset < store->fileBytes_) {
            const std::size_t count = static_cast<std::size_t>(
                std::min<std::uint64_t>(chunk.size(),
                                        store->fileBytes_ - offset));
            const ssize_t got = ::pread(store->fd_, chunk.data(),
                                        count,
                                        static_cast<off_t>(offset));
            fatal_if(got != static_cast<ssize_t>(count),
                     "read error verifying store '{}'", path);
            hash = fnvMix(hash, chunk.data(), count);
            offset += count;
        }
        fatal_if(hash != store->checksum_,
                 "store '{}' failed its content checksum "
                 "(corrupted or torn write)",
                 path);
    }
    return store;
}

ReadStore::~ReadStore()
{
    if (map_ != nullptr)
        ::munmap(const_cast<unsigned char *>(map_), fileBytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

void
ReadStore::readBytes(std::uint64_t offset, void *dst,
                     std::size_t bytes) const
{
    if (map_ != nullptr) {
        std::memcpy(dst, map_ + offset, bytes);
        return;
    }
    const ssize_t got =
        ::pread(fd_, dst, bytes, static_cast<off_t>(offset));
    fatal_if(got != static_cast<ssize_t>(bytes),
             "read error in store '{}' at offset {}", path_, offset);
}

ReadStore::Entry
ReadStore::entryOf(std::size_t index) const
{
    panic_if_not(index < pairCount_,
                 "store pair index {} out of range (size {})", index,
                 pairCount_);
    unsigned char bytes[kIndexEntryBytes];
    readBytes(indexOffset_ + index * kIndexEntryBytes, bytes,
              kIndexEntryBytes);
    Entry entry;
    entry.offset = getU64(bytes);
    entry.patternBases = getU32(bytes + 8);
    entry.textBases = getU32(bytes + 12);
    entry.trueEdits = static_cast<std::int64_t>(getU64(bytes + 16));
    entry.flags = bytes[24];
    const std::uint64_t spanned =
        packedBytes(entry.patternBases,
                    (entry.flags & kFlagPatternRaw) != 0) +
        packedBytes(entry.textBases,
                    (entry.flags & kFlagTextRaw) != 0);
    fatal_if(entry.offset > payloadBytes_ ||
                 spanned > payloadBytes_ - entry.offset,
             "store '{}' index entry {} points outside the payload",
             path_, index);
    return entry;
}

void
ReadStore::decodeSequence(std::uint64_t payloadOffset,
                          std::size_t bases, bool raw,
                          AlphabetKind alphabet,
                          std::string &out) const
{
    out.resize(bases);
    if (raw) {
        readBytes(payloadOffset_ + payloadOffset, out.data(), bases);
        return;
    }
    if (bases == 0)
        return;
    static thread_local std::vector<unsigned char> packed;
    const std::size_t count = packedBytes(bases, false);
    const unsigned char *bytes;
    if (map_ != nullptr) {
        bytes = map_ + payloadOffset_ + payloadOffset;
    } else {
        packed.resize(count);
        readBytes(payloadOffset_ + payloadOffset, packed.data(),
                  count);
        bytes = packed.data();
    }
    const bool rna = alphabet == AlphabetKind::Rna;
    for (std::size_t i = 0; i < bases; ++i) {
        const std::uint8_t code = static_cast<std::uint8_t>(
            (bytes[i / 4] >> (2 * (i % 4))) & 0x3u);
        out[i] = rna ? decodeBase2Rna(code) : decodeBase2Dna(code);
    }
}

void
ReadStore::decodePair(std::size_t index, SequencePair &out) const
{
    const Entry entry = entryOf(index);
    const bool patternRaw = (entry.flags & kFlagPatternRaw) != 0;
    const bool textRaw = (entry.flags & kFlagTextRaw) != 0;
    out.alphabet = alphabetFromCode(
        static_cast<std::uint8_t>(entry.flags >> kFlagAlphabetShift));
    out.trueEdits = entry.trueEdits;
    decodeSequence(entry.offset, entry.patternBases, patternRaw,
                   out.alphabet, out.pattern);
    decodeSequence(entry.offset +
                       packedBytes(entry.patternBases, patternRaw),
                   entry.textBases, textRaw, out.alphabet, out.text);
}

SequencePair
ReadStore::pair(std::size_t index) const
{
    SequencePair out;
    decodePair(index, out);
    return out;
}

std::uint64_t
ReadStore::payloadBeginOf(std::size_t index) const
{
    if (index >= pairCount_)
        return payloadOffset_ + payloadBytes_;
    return payloadOffset_ + entryOf(index).offset;
}

void
ReadStore::releasePairRange(std::size_t from, std::size_t to) const
{
    if (map_ == nullptr || to <= from)
        return;
    const std::uint64_t page =
        static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    const auto release = [&](std::uint64_t begin, std::uint64_t end) {
        begin = (begin + page - 1) / page * page; // shrink inward
        end = end / page * page;
        if (begin < end)
            ::madvise(const_cast<unsigned char *>(map_) + begin,
                      end - begin, MADV_DONTNEED);
    };
    release(payloadBeginOf(from), payloadBeginOf(to));
    release(indexOffset_ + from * kIndexEntryBytes,
            indexOffset_ + to * kIndexEntryBytes);
}

// ---------------------------------------------------------------------
// StorePairSource

StorePairSource::StorePairSource(
    std::shared_ptr<const ReadStore> store, std::size_t from,
    std::size_t to)
    : store_(std::move(store))
{
    fatal_if(!store_, "StorePairSource over a null store");
    const std::size_t total = store_->size();
    from_ = std::min(from, total);
    to_ = std::min(std::max(to, from_), total);
    cursor_ = from_;
    releasedTo_ = from_;
    const StoreProvenance &provenance = store_->provenance();
    info_.name = provenance.name;
    info_.readLength = provenance.readLength;
    info_.errorRate = provenance.errorRate;
}

std::size_t
StorePairSource::next(PairBatch &batch)
{
    batch.clear();
    while (cursor_ < to_ && !batch.full()) {
        SequencePair pair;
        store_->decodePair(cursor_, pair);
        batch.pushOwned(std::move(pair));
        ++cursor_;
    }
    releaseBehindCursor();
    return batch.size();
}

void
StorePairSource::releaseBehindCursor()
{
    // Bound RSS on large sweeps: drop pages more than one release
    // window behind the cursor. The previous batch's pairs are
    // already copied out, so nothing re-reads them.
    constexpr std::uint64_t kWindowBytes = 16ull << 20;
    if (!store_->mapped() || cursor_ <= releasedTo_)
        return;
    const std::uint64_t behind = store_->payloadBeginOf(cursor_) -
                                 store_->payloadBeginOf(releasedTo_);
    if (behind < kWindowBytes)
        return;
    store_->releasePairRange(releasedTo_, cursor_);
    releasedTo_ = cursor_;
}

void
StorePairSource::rewind()
{
    cursor_ = from_;
    releasedTo_ = from_; // released pages fault back in on re-read
}

std::unique_ptr<PairSource>
StorePairSource::slice(std::size_t from, std::size_t to) const
{
    const std::size_t window = size();
    from = std::min(from, window);
    to = std::min(std::max(to, from), window);
    return std::make_unique<StorePairSource>(store_, from_ + from,
                                             from_ + to);
}

// ---------------------------------------------------------------------
// CLI targets and the per-process store cache

StoreTarget
parseStoreTarget(std::string_view target)
{
    StoreTarget parsed;
    parsed.path = std::string(target);
    const std::size_t colon = target.rfind(':');
    if (colon == std::string_view::npos)
        return parsed;
    const std::string_view suffix = target.substr(colon + 1);
    const std::size_t dash = suffix.find('-');
    if (dash == std::string_view::npos ||
        suffix.find('-', dash + 1) != std::string_view::npos ||
        suffix.find_first_not_of("0123456789-") !=
            std::string_view::npos)
        return parsed; // not a range suffix; ':' belongs to the path
    const auto parse = [&](std::string_view digits,
                           std::size_t fallback) {
        if (digits.empty())
            return fallback;
        std::size_t value = 0;
        for (const char c : digits) {
            fatal_if(value > (kStoreEnd - 9) / 10,
                     "store range bound '{}' is out of range",
                     std::string(digits));
            value = value * 10 + static_cast<std::size_t>(c - '0');
        }
        return value;
    };
    parsed.path = std::string(target.substr(0, colon));
    parsed.from = parse(suffix.substr(0, dash), 0);
    parsed.to = parse(suffix.substr(dash + 1), kStoreEnd);
    fatal_if(parsed.to < parsed.from,
             "store range {}-{} is backwards", parsed.from,
             parsed.to);
    return parsed;
}

std::unique_ptr<PairSource>
openStoreSource(const StoreTarget &target)
{
    auto store = openStoreShared(target.path);
    fatal_if(target.from > store->size(),
             "store range starts at pair {} but '{}' holds {} "
             "pair(s)",
             target.from, target.path, store->size());
    return std::make_unique<StorePairSource>(std::move(store),
                                             target.from, target.to);
}

std::shared_ptr<const ReadStore>
openStoreShared(const std::string &path)
{
    static std::mutex mutex;
    static std::map<std::string, std::weak_ptr<const ReadStore>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    if (auto cached = cache[path].lock())
        return cached;
    auto store = ReadStore::open(path);
    cache[path] = store;
    return store;
}

} // namespace quetzal::genomics
