/**
 * @file
 * Indexed on-disk read store (docs/STORE.md): the binary format that
 * lets qz-align/qz-filter/qz-perf sweep millions of pairs at bounded
 * memory instead of regenerating datasets in RAM per run. Modeled on
 * Canu's seqStore/ovStore architecture — a fixed header with dataset
 * provenance, a 2-bit-packed payload with an 8-bit escape, and a
 * fixed-width offset/length index — written streaming by
 * `qz-datagen --store` and opened read-only via mmap with a portable
 * pread() fallback.
 *
 * Layout (all integers little-endian; see docs/STORE.md):
 *
 *   header   magic "QZSTORE1", version, pair count, payload/index
 *            offsets, FNV-1a-64 content checksum, provenance (name,
 *            scale, seed, read length, error rate)
 *   payload  per pair: packed pattern bytes then packed text bytes
 *            (2-bit codes, 4 bases/byte, or raw 8-bit when the
 *            sequence contains 'N'/non-ACGT characters)
 *   index    one 32-byte entry per pair: payload offset, base
 *            counts, true edit distance, encoding/alphabet flags
 *
 * Determinism contract: decoding pair i of a store written from a
 * PairSource yields that source's pair i byte-for-byte, so
 * store-backed runs report identically to in-RAM runs
 * (tests/test_store.cpp, CI store-smoke).
 */
#ifndef QUETZAL_GENOMICS_STORE_HPP
#define QUETZAL_GENOMICS_STORE_HPP

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "genomics/pairsource.hpp"
#include "genomics/sequence.hpp"

namespace quetzal::genomics {

constexpr std::string_view kStoreMagic = "QZSTORE1";
constexpr std::uint32_t kStoreVersion = 1;

/** Index sentinel: "to the end of the store". */
constexpr std::size_t kStoreEnd = ~std::size_t{0};

/** How the pairs in a store were produced (header provenance). */
struct StoreProvenance
{
    std::string name = "custom"; //!< catalog spec name or "custom"
    double scale = 1.0;          //!< catalog scale factor
    std::uint64_t seed = 0;      //!< read-simulator seed
    std::size_t readLength = 0;  //!< nominal bases per read
    double errorRate = 0.0;      //!< nominal per-base edit rate
};

/**
 * Streaming store writer: add() pairs in order, then finish().
 * Memory stays bounded by the index (32 bytes/pair) — payloads are
 * packed and appended immediately. The header (with the final
 * checksum) is rewritten on finish(), so a crashed writer leaves a
 * store that open() rejects.
 */
class StoreWriter
{
  public:
    StoreWriter(const std::string &path, StoreProvenance provenance);
    ~StoreWriter();

    StoreWriter(const StoreWriter &) = delete;
    StoreWriter &operator=(const StoreWriter &) = delete;

    /** Append one pair (validated like dataset generation). */
    void add(const SequencePair &pair);

    /** Pairs appended so far. */
    std::size_t
    pairs() const
    {
        return index_.size();
    }

    /** Write the index, seal the header, close the file. */
    void finish();

  private:
    struct Entry
    {
        std::uint64_t offset; //!< payload-relative byte offset
        std::uint32_t patternBases;
        std::uint32_t textBases;
        std::int64_t trueEdits;
        std::uint8_t flags;
    };

    void appendSequence(std::string_view seq, bool raw);

    std::string path_;
    StoreProvenance provenance_;
    std::ofstream out_;
    std::uint64_t payloadOffset_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t checksum_;
    std::vector<Entry> index_;
    bool finished_ = false;
};

struct StoreOpenOptions
{
    /** Verify the FNV-1a content checksum (streamed, O(file)). */
    bool verifyChecksum = true;
    /** Force the pread() fallback even where mmap is available. */
    bool disableMmap = false;
};

/**
 * Read-only view of a store file. Thread-safe after open(): decoding
 * uses only const state plus pread()/mmap reads, so one shared
 * instance serves any number of StorePairSource cursors.
 */
class ReadStore
{
  public:
    static std::shared_ptr<const ReadStore>
    open(const std::string &path, const StoreOpenOptions &options = {});

    ~ReadStore();

    ReadStore(const ReadStore &) = delete;
    ReadStore &operator=(const ReadStore &) = delete;

    std::size_t
    size() const
    {
        return pairCount_;
    }

    const StoreProvenance &
    provenance() const
    {
        return provenance_;
    }

    const std::string &
    path() const
    {
        return path_;
    }

    std::uint64_t
    checksum() const
    {
        return checksum_;
    }

    /** True when the file is memory-mapped (vs the pread fallback). */
    bool
    mapped() const
    {
        return map_ != nullptr;
    }

    /** Decode pair @p index into @p out (clears previous contents). */
    void decodePair(std::size_t index, SequencePair &out) const;

    /** Decode pair @p index by value. */
    SequencePair pair(std::size_t index) const;

    /**
     * Absolute file offset of pair @p index's payload (== payload
     * end for index == size()). Payload offsets are monotone in pair
     * order, which is what makes streaming release windows valid.
     */
    std::uint64_t payloadBeginOf(std::size_t index) const;

    /**
     * Hint that the payload and index pages of pairs [from, to) will
     * not be touched again (madvise(MADV_DONTNEED) on the
     * page-aligned interiors). No-op in pread mode. Pages fault back
     * in if re-read, so this is always safe — it only bounds RSS.
     */
    void releasePairRange(std::size_t from, std::size_t to) const;

  private:
    ReadStore() = default;

    struct Entry
    {
        std::uint64_t offset;
        std::uint32_t patternBases;
        std::uint32_t textBases;
        std::int64_t trueEdits;
        std::uint8_t flags;
    };

    Entry entryOf(std::size_t index) const;
    void readBytes(std::uint64_t offset, void *dst,
                   std::size_t bytes) const;
    void decodeSequence(std::uint64_t payloadOffset, std::size_t bases,
                        bool raw, AlphabetKind alphabet,
                        std::string &out) const;

    std::string path_;
    int fd_ = -1;
    const unsigned char *map_ = nullptr;
    std::uint64_t fileBytes_ = 0;
    std::uint64_t payloadOffset_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t indexOffset_ = 0;
    std::uint64_t pairCount_ = 0;
    std::uint64_t checksum_ = 0;
    StoreProvenance provenance_;
};

/**
 * Streaming PairSource over a [from, to) range of a store. In mmap
 * mode, payload and index pages behind the cursor are released every
 * ~16 MiB, so RSS stays bounded however large the store is.
 */
class StorePairSource final : public PairSource
{
  public:
    explicit StorePairSource(std::shared_ptr<const ReadStore> store,
                             std::size_t from = 0,
                             std::size_t to = kStoreEnd);

    const SourceInfo &
    info() const override
    {
        return info_;
    }

    std::size_t
    size() const override
    {
        return to_ - from_;
    }

    std::size_t next(PairBatch &batch) override;
    void rewind() override;

    std::unique_ptr<PairSource> slice(std::size_t from,
                                      std::size_t to) const override;

    const ReadStore &
    store() const
    {
        return *store_;
    }

  private:
    void releaseBehindCursor();

    std::shared_ptr<const ReadStore> store_;
    SourceInfo info_;
    std::size_t from_;
    std::size_t to_;
    std::size_t cursor_;
    std::size_t releasedTo_; //!< pairs below this are madvised away
};

/** Parsed `FILE[:FROM-TO]` store range target (CLI `--store`). */
struct StoreTarget
{
    std::string path;
    std::size_t from = 0;
    std::size_t to = kStoreEnd;
};

/**
 * Parse a `--store` argument: `reads.qzs`, `reads.qzs:100-200`
 * (half-open), `reads.qzs:100-` (to the end), `reads.qzs:-200`
 * (from the start). Only a trailing `:digits-digits` suffix is
 * treated as a range, so paths containing ':' still work.
 */
StoreTarget parseStoreTarget(std::string_view target);

/** Open @p target.path and slice its range as a fresh source. */
std::unique_ptr<PairSource> openStoreSource(const StoreTarget &target);

/**
 * Process-wide cache of opened stores, keyed by path: repeated opens
 * (qz-serve workers serving many requests against one store) reuse
 * the mapping and skip re-verifying the checksum. Entries are weak —
 * a store closes when its last user drops it.
 */
std::shared_ptr<const ReadStore>
openStoreShared(const std::string &path);

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_STORE_HPP
