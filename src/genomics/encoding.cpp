#include "genomics/encoding.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace quetzal::genomics {

char
decodeBase2Dna(std::uint8_t code)
{
    // Codes are ASCII bits 1..2: A->00, C->01, T->10, G->11.
    static constexpr char table[4] = {'A', 'C', 'T', 'G'};
    panic_if_not(code < 4, "2-bit code out of range: {}", code);
    return table[code];
}

char
decodeBase2Rna(std::uint8_t code)
{
    static constexpr char table[4] = {'A', 'C', 'U', 'G'};
    panic_if_not(code < 4, "2-bit code out of range: {}", code);
    return table[code];
}

std::vector<std::uint64_t>
pack2bit(std::string_view seq)
{
    std::vector<std::uint64_t> words(divCeil(seq.size() * 2, 64), 0);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const std::uint64_t code = encodeBase2(seq[i]);
        words[i / 32] |= code << (2 * (i % 32));
    }
    return words;
}

std::string
unpack2bitDna(const std::vector<std::uint64_t> &words, std::size_t count)
{
    panic_if_not(count * 2 <= words.size() * 64,
                 "unpack2bitDna: {} bases exceed packed stream", count);
    std::string out(count, '\0');
    for (std::size_t i = 0; i < count; ++i) {
        const auto code = static_cast<std::uint8_t>(
            bits(words[i / 32], 2 * (i % 32), 2));
        out[i] = decodeBase2Dna(code);
    }
    return out;
}

std::vector<std::uint64_t>
pack8bit(std::string_view seq)
{
    std::vector<std::uint64_t> words(divCeil(seq.size(), 8), 0);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        words[i / 8] |= std::uint64_t{
            static_cast<unsigned char>(seq[i])} << (8 * (i % 8));
    }
    return words;
}

std::string
unpack8bit(const std::vector<std::uint64_t> &words, std::size_t count)
{
    panic_if_not(count <= words.size() * 8,
                 "unpack8bit: {} chars exceed packed stream", count);
    std::string out(count, '\0');
    for (std::size_t i = 0; i < count; ++i)
        out[i] = static_cast<char>(bits(words[i / 8], 8 * (i % 8), 8));
    return out;
}

std::uint64_t
extractElement(const std::vector<std::uint64_t> &words, std::size_t index,
               ElementSize size)
{
    const unsigned ebits = bitsPerElement(size);
    const std::size_t bit = index * ebits;
    const std::size_t word = bit / 64;
    panic_if_not(word < words.size(),
                 "extractElement: index {} out of range", index);
    return bits(words[word], bit % 64, ebits);
}

} // namespace quetzal::genomics
