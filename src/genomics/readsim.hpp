/**
 * @file
 * Read simulator: generates pattern/text pairs with a controlled edit
 * model, following the SneakySnake dataset methodology the paper uses
 * for its 30 kbp dataset (Section V-C).
 *
 * A synthetic reference genome is sampled uniformly over the alphabet;
 * each read is a window of the reference ("text") into which
 * substitutions, insertions, and deletions are injected at a
 * configurable per-base rate to form the "pattern". The number of
 * injected edits is recorded as ground truth so algorithm tests can
 * assert that WFA's reported score never exceeds it.
 */
#ifndef QUETZAL_GENOMICS_READSIM_HPP
#define QUETZAL_GENOMICS_READSIM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "genomics/sequence.hpp"

namespace quetzal::genomics {

/** Parameters for the mutation model. */
struct ReadSimConfig
{
    std::size_t readLength = 100;   //!< nominal read length (bases)
    double errorRate = 0.03;        //!< per-base probability of an edit
    double substitutionFrac = 0.6;  //!< fraction of edits: substitutions
    double insertionFrac = 0.2;     //!< fraction of edits: insertions
    //!< remainder are deletions
    AlphabetKind alphabet = AlphabetKind::Dna;
    std::uint64_t seed = 42;        //!< deterministic generation seed
};

/** Generates synthetic references and mutated reads. */
class ReadSimulator
{
  public:
    explicit ReadSimulator(const ReadSimConfig &config);

    /** Sample a uniform random sequence of @p length residues. */
    std::string randomSequence(std::size_t length);

    /**
     * Mutate @p text with the configured error model.
     * @param[out] edits number of edit operations applied.
     */
    std::string mutate(const std::string &text, std::int64_t &edits);

    /** Generate @p count independent pattern/text pairs. */
    std::vector<SequencePair> generatePairs(std::size_t count);

    const ReadSimConfig &config() const { return config_; }

  private:
    char randomResidue();
    char randomResidueOtherThan(char base);

    ReadSimConfig config_;
    Rng rng_;
};

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_READSIM_HPP
