/**
 * @file
 * Dataset catalog reproducing Table II of the paper.
 *
 * Four DNA datasets: two short-read (Illumina-class, 100 bp and 250 bp)
 * and two long-read (PacBio-HiFi-class, 10 kbp and 30 kbp). The paper
 * uses the SneakySnake repository datasets for the short reads and
 * simulates the long reads with the same methodology; here all four are
 * simulated with the in-repo read simulator (see DESIGN.md,
 * substitutions). Pair counts are scaled down so each experiment
 * simulates in seconds rather than the days/weeks the paper reports for
 * gem5 — the paper itself constrained dataset sizes for the same reason.
 */
#ifndef QUETZAL_GENOMICS_DATASETS_HPP
#define QUETZAL_GENOMICS_DATASETS_HPP

#include <string>
#include <string_view>
#include <vector>

#include "genomics/sequence.hpp"

namespace quetzal::genomics {

/** Catalog entry describing one Table II dataset. */
struct DatasetSpec
{
    std::string name;         //!< e.g. "100bp_1"
    std::size_t readLength;   //!< bases per read
    double errorRate;         //!< per-base edit rate, well-matched half
    double highErrorRate;     //!< edit rate of the divergent half
    std::size_t defaultPairs; //!< pair count at scale = 1.0
    bool longRead;            //!< long-read technology class
};

/** All Table II datasets, in paper order. */
const std::vector<DatasetSpec> &datasetCatalog();

/** Look up a catalog entry by name; throws FatalError when unknown. */
const DatasetSpec &datasetSpec(std::string_view name);

/**
 * Materialize a dataset.
 *
 * @param name catalog name ("100bp_1", "250bp_1", "10Kbp", "30Kbp").
 * @param scale multiplies the default pair count (min 1 pair).
 */
PairDataset makeDataset(std::string_view name, double scale = 1.0);

/**
 * Validate one pattern/text pair before it reaches an engine: both
 * sides must be non-empty and every character a letter of @p kind
 * ('N' is additionally accepted for nucleotide alphabets — it encodes
 * via the 8-bit fallback). Throws FatalError naming @p context, the
 * pair index, and the offending character/position.
 */
void validatePair(const SequencePair &pair, AlphabetKind kind,
                  std::size_t index, std::string_view context);

/** validatePair() over every pair of @p dataset (context = its name). */
void validatePairs(const PairDataset &dataset);

/** Names of the short-read datasets. */
std::vector<std::string> shortReadNames();

/** Names of the long-read datasets. */
std::vector<std::string> longReadNames();

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_DATASETS_HPP
