/**
 * @file
 * Biological-sequence alphabets: DNA, RNA, and the 20-letter protein
 * alphabet, plus the ambiguous nucleotide 'N'.
 *
 * QUETZAL (Section IV-A) distinguishes two encoding regimes: 4-letter
 * nucleotide alphabets use a 2-bit code derived from ASCII bits 1..2,
 * while proteins (and 'N') fall back to an 8-bit code.
 */
#ifndef QUETZAL_GENOMICS_ALPHABET_HPP
#define QUETZAL_GENOMICS_ALPHABET_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace quetzal::genomics {

/** The kind of biological data a sequence holds. */
enum class AlphabetKind
{
    Dna,     //!< A, C, G, T
    Rna,     //!< A, C, G, U
    Protein, //!< 20 amino-acid letters
};

/** The 20 standard amino-acid one-letter codes. */
inline constexpr std::string_view kProteinLetters = "ACDEFGHIKLMNPQRSTVWY";

/** The DNA base letters. */
inline constexpr std::string_view kDnaLetters = "ACGT";

/** The RNA base letters. */
inline constexpr std::string_view kRnaLetters = "ACGU";

/** Letters of the given alphabet. */
std::string_view letters(AlphabetKind kind);

/** True when @p base is a valid letter of @p kind (uppercase). */
bool isValid(AlphabetKind kind, char base);

/** True when every character of @p seq is valid for @p kind. */
bool isValid(AlphabetKind kind, std::string_view seq);

/** Watson-Crick complement of a DNA base; 'N' maps to 'N'. */
char complement(char base);

/** Reverse complement of a DNA sequence. */
std::string reverseComplement(std::string_view seq);

/** Human-readable alphabet name. */
std::string_view name(AlphabetKind kind);

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_ALPHABET_HPP
