/**
 * @file
 * Core sequence value types shared by the I/O layer, the read simulator,
 * and the alignment algorithms.
 */
#ifndef QUETZAL_GENOMICS_SEQUENCE_HPP
#define QUETZAL_GENOMICS_SEQUENCE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "genomics/alphabet.hpp"

namespace quetzal::genomics {

/** A named biological sequence. */
struct Sequence
{
    std::string id;          //!< record identifier (FASTA header)
    std::string bases;       //!< the residues, uppercase
    AlphabetKind alphabet = AlphabetKind::Dna;

    std::size_t length() const { return bases.size(); }
};

/**
 * A pattern/text pair as consumed by the ASM algorithms: the pattern is
 * the read, the text the reference window it is compared against.
 */
struct SequencePair
{
    std::string pattern; //!< the read (query)
    std::string text;    //!< the candidate reference region
    AlphabetKind alphabet = AlphabetKind::Dna;

    /**
     * Ground-truth edit distance recorded by the read simulator when the
     * pair was generated; negative when unknown (e.g. parsed from file).
     */
    std::int64_t trueEdits = -1;
};

/** A dataset: a homogeneous batch of pairs plus catalog metadata. */
struct PairDataset
{
    std::string name;                //!< catalog name, e.g. "100bp_1"
    std::vector<SequencePair> pairs; //!< the workload
    std::size_t readLength = 0;      //!< nominal read length in bases
    double errorRate = 0.0;          //!< simulator per-base edit rate

    /**
     * Named numeric parameters for workloads whose input is not a
     * pair list (the other-domain kernels: histogram bin/sample
     * counts, SpMV dimensions, RNG seeds). Ordered so the dataset
     * identity — and the checkpoint cell key built from it — is
     * deterministic.
     */
    std::vector<std::pair<std::string, std::uint64_t>> params;

    std::size_t size() const { return pairs.size(); }

    /** Value of parameter @p key, or @p fallback when absent. */
    std::uint64_t
    param(std::string_view key, std::uint64_t fallback = 0) const
    {
        for (const auto &[name, value] : params)
            if (name == key)
                return value;
        return fallback;
    }

    /** Total bases across all patterns (used for throughput metrics). */
    std::size_t
    totalPatternBases() const
    {
        std::size_t total = 0;
        for (const auto &p : pairs)
            total += p.pattern.size();
        return total;
    }
};

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_SEQUENCE_HPP
