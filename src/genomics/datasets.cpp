#include "genomics/datasets.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"
#include "genomics/pairsource.hpp"
#include "genomics/readsim.hpp"

namespace quetzal::genomics {

const std::vector<DatasetSpec> &
datasetCatalog()
{
    // The SneakySnake datasets the paper uses are read/candidate
    // pairs from a mapper's seed locations: roughly half align within
    // a few percent edits and the rest are clearly divergent (that is
    // what pre-alignment filters exist for). We reproduce that bimodal
    // mix: alternating pairs use errorRate and highErrorRate. Pair
    // counts are sized so the scalar-baseline simulations finish in
    // seconds (the paper likewise constrained dataset sizes for gem5);
    // scale them via makeDataset()'s scale argument.
    static const std::vector<DatasetSpec> catalog = {
        {"100bp_1", 100, 0.03, 0.12, 400, false},
        {"250bp_1", 250, 0.03, 0.12, 160, false},
        {"10Kbp", 10000, 0.03, 0.05, 4, true},
        {"30Kbp", 30000, 0.03, 0.05, 2, true},
    };
    return catalog;
}

const DatasetSpec &
datasetSpec(std::string_view name)
{
    for (const auto &spec : datasetCatalog())
        if (spec.name == name)
            return spec;
    std::ostringstream known;
    for (const auto &spec : datasetCatalog())
        known << (known.tellp() > 0 ? ", " : "") << spec.name;
    fatal("unknown dataset '{}' (valid names: {})", name,
          known.str());
}

namespace {

/**
 * First invalid character of @p seq for @p kind, or npos. 'N' passes
 * for nucleotide alphabets: the encoder handles it via the 8-bit
 * fallback and complement() maps it to itself.
 */
std::size_t
firstInvalid(std::string_view seq, AlphabetKind kind)
{
    for (std::size_t i = 0; i < seq.size(); ++i) {
        const char c = seq[i];
        if (isValid(kind, c))
            continue;
        if (c == 'N' && kind != AlphabetKind::Protein)
            continue;
        return i;
    }
    return std::string_view::npos;
}

void
validateSide(std::string_view seq, std::string_view side,
             AlphabetKind kind, std::size_t index,
             std::string_view context)
{
    fatal_if(seq.empty(),
             "{}: pair {} has an empty {} — remove the pair or fix "
             "the input file",
             context, index, side);
    const std::size_t bad = firstInvalid(seq, kind);
    if (bad == std::string_view::npos)
        return;
    const char c = seq[bad];
    const bool printable = c >= 0x20 && c < 0x7f;
    fatal("{}: pair {} {} has invalid {} character {} at position {} "
          "(expected one of '{}'{}) — check the input encoding or "
          "pass the matching alphabet",
          context, index, side, name(kind),
          printable ? qformat("'{}'", c)
                    : qformat("0x{}", static_cast<int>(
                                          static_cast<unsigned char>(c))),
          bad, letters(kind),
          kind != AlphabetKind::Protein ? " or 'N'" : "");
}

} // namespace

void
validatePair(const SequencePair &pair, AlphabetKind kind,
             std::size_t index, std::string_view context)
{
    validateSide(pair.pattern, "pattern", kind, index, context);
    validateSide(pair.text, "text", kind, index, context);
}

void
validatePairs(const PairDataset &dataset)
{
    for (std::size_t i = 0; i < dataset.pairs.size(); ++i)
        validatePair(dataset.pairs[i], dataset.pairs[i].alphabet, i,
                     dataset.name);
}

PairDataset
makeDataset(std::string_view name, double scale)
{
    // The generator source is the single definition of catalog pair
    // synthesis (seeds, bimodal interleave, per-pair validation);
    // materializing it here keeps in-RAM callers byte-identical to
    // streaming ones (tests/test_store.cpp pins this).
    return GeneratorPairSource(name, scale).materialize();
}

std::vector<std::string>
shortReadNames()
{
    std::vector<std::string> names;
    for (const auto &spec : datasetCatalog())
        if (!spec.longRead)
            names.push_back(spec.name);
    return names;
}

std::vector<std::string>
longReadNames()
{
    std::vector<std::string> names;
    for (const auto &spec : datasetCatalog())
        if (spec.longRead)
            names.push_back(spec.name);
    return names;
}

} // namespace quetzal::genomics
