#include "genomics/pairsource.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.hpp"
#include "genomics/datasets.hpp"

namespace quetzal::genomics {

void
PairBatch::pushView(const SequencePair &pair)
{
    panic_if_not(!full(), "PairBatch overfilled past capacity {}",
                 capacity_);
    views_.push_back(PairView{pair.pattern, pair.text, pair.trueEdits,
                              pair.alphabet});
}

void
PairBatch::pushOwned(SequencePair &&pair)
{
    panic_if_not(!full(), "PairBatch overfilled past capacity {}",
                 capacity_);
    owned_.push_back(std::move(pair)); // reserved: no reallocation
    pushView(owned_.back());
}

PairDataset
PairSource::materialize() const
{
    const SourceInfo &meta = info();
    PairDataset dataset;
    dataset.name = meta.name;
    dataset.readLength = meta.readLength;
    dataset.errorRate = meta.errorRate;
    dataset.params = meta.params;
    dataset.pairs.reserve(size());
    if (const PairDataset *whole = backing()) {
        dataset.pairs = whole->pairs;
        return dataset;
    }
    auto cursor = fork();
    PairBatch batch;
    while (cursor->next(batch) > 0)
        for (const PairView &view : batch.views()) {
            SequencePair pair;
            pair.pattern.assign(view.pattern);
            pair.text.assign(view.text);
            pair.trueEdits = view.trueEdits;
            pair.alphabet = view.alphabet;
            dataset.pairs.push_back(std::move(pair));
        }
    return dataset;
}

// ---------------------------------------------------------------------
// DatasetPairSource

DatasetPairSource::DatasetPairSource(const PairDataset &dataset)
    : DatasetPairSource(nullptr, &dataset, 0, dataset.pairs.size())
{
}

DatasetPairSource::DatasetPairSource(
    std::shared_ptr<const PairDataset> dataset)
    : DatasetPairSource(dataset, dataset.get(), 0,
                        dataset ? dataset->pairs.size() : 0)
{
    fatal_if(!dataset_, "DatasetPairSource over a null dataset");
}

DatasetPairSource::DatasetPairSource(
    std::shared_ptr<const PairDataset> keepalive,
    const PairDataset *dataset, std::size_t from, std::size_t to)
    : keepalive_(std::move(keepalive)), dataset_(dataset),
      from_(from), to_(to), cursor_(from)
{
    if (dataset_ != nullptr) {
        info_.name = dataset_->name;
        info_.readLength = dataset_->readLength;
        info_.errorRate = dataset_->errorRate;
        info_.params = dataset_->params;
    }
}

std::size_t
DatasetPairSource::next(PairBatch &batch)
{
    batch.clear();
    while (cursor_ < to_ && !batch.full())
        batch.pushView(dataset_->pairs[cursor_++]);
    return batch.size();
}

std::unique_ptr<PairSource>
DatasetPairSource::slice(std::size_t from, std::size_t to) const
{
    const std::size_t window = size();
    from = std::min(from, window);
    to = std::min(std::max(to, from), window);
    return std::unique_ptr<PairSource>(new DatasetPairSource(
        keepalive_, dataset_, from_ + from, from_ + to));
}

const PairDataset *
DatasetPairSource::backing() const
{
    return (from_ == 0 && to_ == dataset_->pairs.size()) ? dataset_
                                                         : nullptr;
}

// ---------------------------------------------------------------------
// GeneratorPairSource

namespace {

/** The two simulator configs makeDataset() has always used. */
std::pair<ReadSimConfig, ReadSimConfig>
catalogConfigs(const DatasetSpec &spec)
{
    ReadSimConfig low;
    low.readLength = spec.readLength;
    low.errorRate = spec.errorRate;
    low.alphabet = AlphabetKind::Dna;
    low.seed = 0x9e3779b9ULL ^ std::hash<std::string>{}(spec.name);
    ReadSimConfig high = low;
    high.errorRate = spec.highErrorRate;
    high.seed = low.seed ^ 0x5bd1e995ULL;
    return {low, high};
}

std::size_t
scaledPairCount(const DatasetSpec &spec, double scale)
{
    fatal_if(!std::isfinite(scale) || scale <= 0.0,
             "dataset scale must be a finite positive number, got {}",
             scale);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(spec.defaultPairs) * scale));
}

} // namespace

GeneratorPairSource::GeneratorPairSource(std::string_view name,
                                         double scale)
    : GeneratorPairSource(
          [&] {
              const DatasetSpec &spec = datasetSpec(name);
              const auto [low, high] = catalogConfigs(spec);
              GeneratorPairSource proto(low, scaledPairCount(spec,
                                                             scale),
                                        spec.name);
              proto.highConfig_ = high;
              proto.bimodal_ = true;
              proto.scale_ = scale;
              return proto;
          }(),
          0, ~std::size_t{0})
{
}

GeneratorPairSource::GeneratorPairSource(const ReadSimConfig &config,
                                         std::size_t count,
                                         std::string name)
    : lowConfig_(config), highConfig_(config), bimodal_(false),
      scale_(1.0), total_(count), from_(0), to_(count), cursor_(0),
      low_(config), high_(config)
{
    info_.name = std::move(name);
    info_.readLength = config.readLength;
    info_.errorRate = config.errorRate;
}

GeneratorPairSource::GeneratorPairSource(
    const GeneratorPairSource &proto, std::size_t from,
    std::size_t to)
    : info_(proto.info_), lowConfig_(proto.lowConfig_),
      highConfig_(proto.highConfig_), bimodal_(proto.bimodal_),
      scale_(proto.scale_), total_(proto.total_),
      from_(std::min(from, proto.total_)),
      to_(std::min(std::max(to, std::min(from, proto.total_)),
                   proto.total_)),
      cursor_(0), low_(proto.lowConfig_), high_(proto.highConfig_)
{
}

SequencePair
GeneratorPairSource::generateNext()
{
    // Byte-for-byte the sequence makeDataset() performs for pair i:
    // the even half comes from the well-matched simulator, the odd
    // half from the divergent one, each advancing only its own RNG.
    ReadSimulator &sim =
        (bimodal_ && cursor_ % 2 != 0) ? high_ : low_;
    auto pairs = sim.generatePairs(1);
    ++cursor_;
    return std::move(pairs.front());
}

std::size_t
GeneratorPairSource::next(PairBatch &batch)
{
    batch.clear();
    while (cursor_ < from_)
        (void)generateNext(); // sliced-away prefix: advance the RNGs
    while (cursor_ < to_ && !batch.full()) {
        const std::size_t index = cursor_;
        SequencePair pair = generateNext();
        validatePair(pair, pair.alphabet, index, info_.name);
        batch.pushOwned(std::move(pair));
    }
    return batch.size();
}

void
GeneratorPairSource::rewind()
{
    low_ = ReadSimulator(lowConfig_);
    high_ = ReadSimulator(highConfig_);
    cursor_ = 0;
}

std::unique_ptr<PairSource>
GeneratorPairSource::slice(std::size_t from, std::size_t to) const
{
    const std::size_t window = size();
    from = std::min(from, window);
    to = std::min(std::max(to, from), window);
    return std::unique_ptr<PairSource>(
        new GeneratorPairSource(*this, from_ + from, from_ + to));
}

} // namespace quetzal::genomics
