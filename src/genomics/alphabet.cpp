#include "genomics/alphabet.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace quetzal::genomics {

std::string_view
letters(AlphabetKind kind)
{
    switch (kind) {
      case AlphabetKind::Dna:
        return kDnaLetters;
      case AlphabetKind::Rna:
        return kRnaLetters;
      case AlphabetKind::Protein:
        return kProteinLetters;
    }
    panic("unknown AlphabetKind {}", static_cast<int>(kind));
}

bool
isValid(AlphabetKind kind, char base)
{
    return letters(kind).find(base) != std::string_view::npos;
}

bool
isValid(AlphabetKind kind, std::string_view seq)
{
    return std::all_of(seq.begin(), seq.end(),
                       [kind](char c) { return isValid(kind, c); });
}

char
complement(char base)
{
    switch (base) {
      case 'A':
        return 'T';
      case 'C':
        return 'G';
      case 'G':
        return 'C';
      case 'T':
        return 'A';
      case 'N':
        return 'N';
      default:
        fatal("cannot complement non-DNA base '{}'", base);
    }
}

std::string
reverseComplement(std::string_view seq)
{
    std::string out(seq.size(), '\0');
    for (std::size_t i = 0; i < seq.size(); ++i)
        out[i] = complement(seq[seq.size() - 1 - i]);
    return out;
}

std::string_view
name(AlphabetKind kind)
{
    switch (kind) {
      case AlphabetKind::Dna:
        return "DNA";
      case AlphabetKind::Rna:
        return "RNA";
      case AlphabetKind::Protein:
        return "protein";
    }
    panic("unknown AlphabetKind {}", static_cast<int>(kind));
}

} // namespace quetzal::genomics
