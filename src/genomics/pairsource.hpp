/**
 * @file
 * Streaming pair intake: the seam between "where read pairs come
 * from" (an in-RAM PairDataset, the catalog generator, an on-disk
 * read store) and "what consumes them" (the workload runner, the
 * batch engine, the CLI tools).
 *
 * A PairSource yields pairs in a fixed order through bounded-size
 * PairBatch refills, so consumers never need the whole dataset
 * resident. Determinism contract: for a given source identity
 * (catalog name + scale + seed), every implementation yields
 * byte-identical pairs in the same order, regardless of batch
 * capacity or slicing — that is what makes store-backed, generated,
 * and in-RAM runs interchangeable (pinned by tests/test_store.cpp).
 */
#ifndef QUETZAL_GENOMICS_PAIRSOURCE_HPP
#define QUETZAL_GENOMICS_PAIRSOURCE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "genomics/alphabet.hpp"
#include "genomics/readsim.hpp"
#include "genomics/sequence.hpp"

namespace quetzal::genomics {

/**
 * Dataset-level identity of a source: everything a consumer needs
 * without touching pair payloads. Mirrors the non-pair fields of
 * PairDataset so checkpoint keys and reports are stable across
 * intake modes.
 */
struct SourceInfo
{
    std::string name;
    std::size_t readLength = 0;
    double errorRate = 0.0;
    /** Extra provenance (kernel workloads), key order significant. */
    std::vector<std::pair<std::string, std::uint64_t>> params;
};

/** Borrowed view of one pair; valid until the owning batch refills. */
struct PairView
{
    std::string_view pattern;
    std::string_view text;
    std::int64_t trueEdits = -1;
    AlphabetKind alphabet = AlphabetKind::Dna;
};

/**
 * Fixed-capacity refill buffer. Sources either push borrowed views
 * (zero-copy over storage that outlives the batch) or move owned
 * pairs in (decoded/generated payloads). Owned storage is reserved
 * once, so views into it stay stable until the next clear().
 */
class PairBatch
{
  public:
    static constexpr std::size_t kDefaultCapacity = 64;

    explicit PairBatch(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
        owned_.reserve(capacity_);
        views_.reserve(capacity_);
    }

    std::size_t
    capacity() const
    {
        return capacity_;
    }

    std::size_t
    size() const
    {
        return views_.size();
    }

    bool
    full() const
    {
        return views_.size() >= capacity_;
    }

    const std::vector<PairView> &
    views() const
    {
        return views_;
    }

    /** Drop all pairs; capacity (and owned reservation) is kept. */
    void
    clear()
    {
        views_.clear();
        owned_.clear();
    }

    /** Borrow @p pair; the caller guarantees it outlives this batch. */
    void pushView(const SequencePair &pair);

    /** Take ownership of @p pair and view its stored payload. */
    void pushOwned(SequencePair &&pair);

  private:
    std::size_t capacity_;
    std::vector<SequencePair> owned_; //!< reserve()d: views stay put
    std::vector<PairView> views_;
};

/**
 * Pull-based pair stream. Usage:
 *
 *   PairBatch batch;
 *   source.rewind();
 *   while (source.next(batch) > 0)
 *       for (const PairView &pair : batch.views()) ...
 *
 * next() clears the batch, refills up to its capacity, and returns
 * the number of pairs delivered (0 = exhausted). Implementations are
 * single-cursor: concurrent next() calls on one object are not
 * allowed — take per-thread slices via slice()/fork() instead (both
 * are const, so a shared const source fans out safely).
 */
class PairSource
{
  public:
    virtual ~PairSource() = default;

    /** Dataset identity (name, nominal read length, error rate). */
    virtual const SourceInfo &info() const = 0;

    /** Total pairs this source yields (slices report their window). */
    virtual std::size_t size() const = 0;

    /** Refill @p batch with the next pairs; 0 when exhausted. */
    virtual std::size_t next(PairBatch &batch) = 0;

    /** Reset the cursor to the first pair. */
    virtual void rewind() = 0;

    /**
     * Independent sub-stream over pairs [from, to) of this source,
     * clamped to [0, size()] (from > to yields an empty source).
     * Indices are relative to this source, so slices compose.
     */
    virtual std::unique_ptr<PairSource>
    slice(std::size_t from, std::size_t to) const = 0;

    /** Independent full-range cursor (slice over everything). */
    std::unique_ptr<PairSource>
    fork() const
    {
        return slice(0, size());
    }

    /**
     * The in-RAM dataset backing this source, when one exists and
     * covers exactly this source's range — a zero-copy escape hatch
     * for consumers that genuinely need random access. Streaming
     * sources return nullptr.
     */
    virtual const PairDataset *
    backing() const
    {
        return nullptr;
    }

    /** Materialize the full stream as an in-RAM PairDataset. */
    PairDataset materialize() const;
};

/**
 * Zero-copy PairSource over an existing PairDataset (optionally a
 * [from, to) window of it). Holds an optional shared_ptr keepalive;
 * the non-owning constructor requires the dataset to outlive the
 * source.
 */
class DatasetPairSource final : public PairSource
{
  public:
    explicit DatasetPairSource(const PairDataset &dataset);
    explicit DatasetPairSource(
        std::shared_ptr<const PairDataset> dataset);

    const SourceInfo &
    info() const override
    {
        return info_;
    }

    std::size_t
    size() const override
    {
        return to_ - from_;
    }

    std::size_t next(PairBatch &batch) override;

    void
    rewind() override
    {
        cursor_ = from_;
    }

    std::unique_ptr<PairSource> slice(std::size_t from,
                                      std::size_t to) const override;

    const PairDataset *backing() const override;

  private:
    DatasetPairSource(std::shared_ptr<const PairDataset> keepalive,
                      const PairDataset *dataset, std::size_t from,
                      std::size_t to);

    std::shared_ptr<const PairDataset> keepalive_;
    const PairDataset *dataset_;
    SourceInfo info_;
    std::size_t from_;
    std::size_t to_;
    std::size_t cursor_;
};

/**
 * Catalog/read-simulator generator as a PairSource: yields exactly
 * the pairs makeDataset() materializes for the same name and scale
 * (same seeds, same low/high-error interleave, per-pair validation),
 * but one batch at a time at bounded memory.
 *
 * Slicing replays the generator and discards pairs before the
 * window — RNG streams cannot be skipped — so slice(from, to) costs
 * O(from) generation work on first use and per rewind().
 */
class GeneratorPairSource final : public PairSource
{
  public:
    /** Catalog dataset @p name at @p scale (validated like CLI). */
    GeneratorPairSource(std::string_view name, double scale);

    /** Custom single-simulator stream (qz-datagen's custom mode). */
    GeneratorPairSource(const ReadSimConfig &config, std::size_t count,
                        std::string name = "custom");

    const SourceInfo &
    info() const override
    {
        return info_;
    }

    std::size_t
    size() const override
    {
        return to_ - from_;
    }

    std::size_t next(PairBatch &batch) override;
    void rewind() override;

    std::unique_ptr<PairSource> slice(std::size_t from,
                                      std::size_t to) const override;

    /** Seed of the well-matched half (store provenance). */
    std::uint64_t
    seed() const
    {
        return lowConfig_.seed;
    }

    /** Scale this stream was derived with (1.0 for custom). */
    double
    scale() const
    {
        return scale_;
    }

  private:
    GeneratorPairSource(const GeneratorPairSource &proto,
                        std::size_t from, std::size_t to);

    SequencePair generateNext();

    SourceInfo info_;
    ReadSimConfig lowConfig_;
    ReadSimConfig highConfig_;
    bool bimodal_; //!< catalog sources alternate low/high halves
    double scale_;
    std::size_t total_; //!< full generated stream length
    std::size_t from_;
    std::size_t to_;
    std::size_t cursor_; //!< absolute index of the next pair
    ReadSimulator low_;
    ReadSimulator high_;
};

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_PAIRSOURCE_HPP
