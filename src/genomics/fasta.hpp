/**
 * @file
 * FASTA and FASTQ readers/writers.
 *
 * Minimal but standards-conforming: multi-line FASTA records, '>' and ';'
 * comment headers, FASTQ 4-line records with '+' separators, CRLF
 * tolerance, and a paired "seq-pair" text format (one pattern line and
 * one text line per pair, SneakySnake-repository style: each line is
 * prefixed with '>' for the pattern and '<' for the text).
 */
#ifndef QUETZAL_GENOMICS_FASTA_HPP
#define QUETZAL_GENOMICS_FASTA_HPP

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "genomics/sequence.hpp"

namespace quetzal::genomics {

/** Parse all FASTA records from @p in. Throws FatalError on bad input. */
std::vector<Sequence> readFasta(std::istream &in);

/** Write records as FASTA with the given line wrap width. */
void writeFasta(std::ostream &out, const std::vector<Sequence> &records,
                std::size_t wrap = 60);

/** One FASTQ record: sequence plus per-base quality string. */
struct FastqRecord
{
    Sequence seq;
    std::string quality;
};

/** Parse all FASTQ records from @p in. Throws FatalError on bad input. */
std::vector<FastqRecord> readFastq(std::istream &in);

/** Write FASTQ records. */
void writeFastq(std::ostream &out, const std::vector<FastqRecord> &records);

/**
 * Parse a SneakySnake-style pair file: alternating lines
 * `>PATTERN` / `<TEXT`.
 */
std::vector<SequencePair> readPairFile(std::istream &in);

/** Write pairs in the same alternating `>`/`<` format. */
void writePairFile(std::ostream &out,
                   const std::vector<SequencePair> &pairs);

} // namespace quetzal::genomics

#endif // QUETZAL_GENOMICS_FASTA_HPP
