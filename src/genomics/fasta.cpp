#include "genomics/fasta.hpp"

#include <algorithm>
#include <cctype>

#include "common/logging.hpp"

namespace quetzal::genomics {

namespace {

/** getline that strips a trailing '\r' (CRLF tolerance). */
bool
getLine(std::istream &in, std::string &line)
{
    if (!std::getline(in, line))
        return false;
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return true;
}

std::string
toUpper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

} // namespace

std::vector<Sequence>
readFasta(std::istream &in)
{
    std::vector<Sequence> records;
    std::string line;
    Sequence current;
    bool open = false;

    auto flush = [&] {
        if (open) {
            fatal_if(current.bases.empty(),
                     "FASTA record '{}' has no sequence data", current.id);
            records.push_back(std::move(current));
            current = Sequence{};
        }
    };

    while (getLine(in, line)) {
        if (line.empty() || line[0] == ';')
            continue;
        if (line[0] == '>') {
            flush();
            open = true;
            current.id = line.substr(1, line.find_first_of(" \t") - 1);
        } else {
            fatal_if(!open, "FASTA data before first '>' header");
            current.bases += toUpper(line);
        }
    }
    flush();
    return records;
}

void
writeFasta(std::ostream &out, const std::vector<Sequence> &records,
           std::size_t wrap)
{
    panic_if_not(wrap > 0, "FASTA wrap width must be positive");
    for (const auto &rec : records) {
        out << '>' << rec.id << '\n';
        for (std::size_t i = 0; i < rec.bases.size(); i += wrap)
            out << rec.bases.substr(i, wrap) << '\n';
    }
}

std::vector<FastqRecord>
readFastq(std::istream &in)
{
    std::vector<FastqRecord> records;
    std::string header, bases, plus, quality;
    while (getLine(in, header)) {
        if (header.empty())
            continue;
        fatal_if(header[0] != '@',
                 "FASTQ record must start with '@', got '{}'", header);
        fatal_if(!getLine(in, bases) || !getLine(in, plus) ||
                     !getLine(in, quality),
                 "truncated FASTQ record '{}'", header);
        fatal_if(plus.empty() || plus[0] != '+',
                 "FASTQ separator line must start with '+'");
        fatal_if(bases.size() != quality.size(),
                 "FASTQ record '{}': sequence length {} != quality "
                 "length {}",
                 header, bases.size(), quality.size());
        FastqRecord rec;
        rec.seq.id = header.substr(1, header.find_first_of(" \t") - 1);
        rec.seq.bases = toUpper(bases);
        rec.quality = quality;
        records.push_back(std::move(rec));
    }
    return records;
}

void
writeFastq(std::ostream &out, const std::vector<FastqRecord> &records)
{
    for (const auto &rec : records) {
        panic_if_not(rec.seq.bases.size() == rec.quality.size(),
                     "FASTQ record '{}' has mismatched quality length",
                     rec.seq.id);
        out << '@' << rec.seq.id << '\n'
            << rec.seq.bases << '\n'
            << "+\n"
            << rec.quality << '\n';
    }
}

std::vector<SequencePair>
readPairFile(std::istream &in)
{
    std::vector<SequencePair> pairs;
    std::string pat, txt;
    while (getLine(in, pat)) {
        if (pat.empty())
            continue;
        fatal_if(pat[0] != '>',
                 "pair file: expected '>' pattern line, got '{}'", pat);
        fatal_if(!getLine(in, txt) || txt.empty() || txt[0] != '<',
                 "pair file: pattern line without '<' text line");
        SequencePair pair;
        pair.pattern = toUpper(pat.substr(1));
        pair.text = toUpper(txt.substr(1));
        pairs.push_back(std::move(pair));
    }
    return pairs;
}

void
writePairFile(std::ostream &out, const std::vector<SequencePair> &pairs)
{
    for (const auto &pair : pairs)
        out << '>' << pair.pattern << '\n' << '<' << pair.text << '\n';
}

} // namespace quetzal::genomics
