/**
 * @file
 * SimContext: one simulated core's worth of state — memory hierarchy
 * plus pipeline — bundled for convenient construction by algorithm
 * runners and tests.
 */
#ifndef QUETZAL_SIM_CONTEXT_HPP
#define QUETZAL_SIM_CONTEXT_HPP

#include "sim/memsystem.hpp"
#include "sim/multicore.hpp"
#include "sim/pipeline.hpp"
#include "sim/params.hpp"

namespace quetzal::sim {

/** A fresh simulated core. */
class SimContext
{
  public:
    explicit SimContext(const SystemParams &params = SystemParams::baseline())
        : params_(params), mem_(params), pipeline_(params, mem_)
    {}

    Pipeline &pipeline() { return pipeline_; }
    MemorySystem &mem() { return mem_; }
    const SystemParams &params() const { return params_; }

    /** Execution summary for the multicore composition model. */
    CoreDemand
    demand() const
    {
        return CoreDemand{pipeline_.totalCycles(), mem_.dramBytes()};
    }

  private:
    SystemParams params_;
    MemorySystem mem_;
    Pipeline pipeline_;
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_CONTEXT_HPP
