#include "sim/prefetcher.hpp"

#include "common/bitutil.hpp"

namespace quetzal::sim {

StridePrefetcher::StridePrefetcher(const PrefetcherParams &params,
                                   Cache &target)
    : params_(params), target_(target), table_(params.tableEntries),
      stats_("prefetcher")
{
    if (!table_.empty() && isPowerOf2(table_.size()))
        tableMask_ = table_.size() - 1;
    issued_ = &stats_.stat("issued", "prefetch fills issued");
}

void
StridePrefetcher::issueAhead(const Entry &entry, Addr addr)
{
    // Fetch `degree` lines ahead along the stride.
    for (unsigned d = 1; d <= params_.degree; ++d) {
        const Addr target = addr + static_cast<Addr>(
            entry.stride * static_cast<std::int64_t>(d));
        if (!target_.contains(target)) {
            target_.fill(target);
            ++*issued_;
        }
    }
}

} // namespace quetzal::sim
