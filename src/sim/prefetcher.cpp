#include "sim/prefetcher.hpp"

#include "common/bitutil.hpp"

namespace quetzal::sim {

StridePrefetcher::StridePrefetcher(const PrefetcherParams &params,
                                   Cache &target)
    : params_(params), target_(target), table_(params.tableEntries),
      stats_("prefetcher")
{
    if (!table_.empty() && isPowerOf2(table_.size()))
        tableMask_ = table_.size() - 1;
    issued_ = &stats_.stat("issued", "prefetch fills issued");
}

void
StridePrefetcher::observe(std::uint64_t pc, Addr addr)
{
    if (!params_.enabled || table_.empty())
        return;

    // Same slot as `pc % size`, but without a hardware divide on
    // every demand access when the table size is a power of two.
    const std::size_t slot =
        tableMask_ ? (pc & tableMask_) : (pc % table_.size());
    Entry &entry = table_[slot];
    if (!entry.valid || entry.pc != pc) {
        entry = Entry{pc, addr, 0, 0, true};
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(entry.lastAddr);
    if (stride != 0 && stride == entry.stride) {
        if (entry.confidence < params_.trainThreshold)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = 0;
    }
    entry.lastAddr = addr;

    if (entry.confidence >= params_.trainThreshold && entry.stride != 0) {
        // Fetch `degree` lines ahead along the stride.
        for (unsigned d = 1; d <= params_.degree; ++d) {
            const Addr target = addr + static_cast<Addr>(
                entry.stride * static_cast<std::int64_t>(d));
            if (!target_.contains(target)) {
                target_.fill(target);
                ++*issued_;
            }
        }
    }
}

} // namespace quetzal::sim
