#include "sim/pipeline.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace quetzal::sim {

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::ScalarAlu:
        return "ScalarAlu";
      case OpClass::ScalarLoad:
        return "ScalarLoad";
      case OpClass::ScalarStore:
        return "ScalarStore";
      case OpClass::Branch:
        return "Branch";
      case OpClass::VecAlu:
        return "VecAlu";
      case OpClass::VecCmp:
        return "VecCmp";
      case OpClass::VecPred:
        return "VecPred";
      case OpClass::VecReduce:
        return "VecReduce";
      case OpClass::VecLoad:
        return "VecLoad";
      case OpClass::VecStore:
        return "VecStore";
      case OpClass::VecGather:
        return "VecGather";
      case OpClass::VecScatter:
        return "VecScatter";
      case OpClass::QzConf:
        return "QzConf";
      case OpClass::QzEncode:
        return "QzEncode";
      case OpClass::QzStore:
        return "QzStore";
      case OpClass::QzLoad:
        return "QzLoad";
      case OpClass::QzMhm:
        return "QzMhm";
      case OpClass::QzMm:
        return "QzMm";
      case OpClass::QzCount:
        return "QzCount";
      default:
        return "Unknown";
    }
}

Pipeline::Pipeline(const SystemParams &params, MemorySystem &mem)
    : params_(params), mem_(mem),
      vecPipes_(params.core.vectorPipes, 0),
      scalarPipes_(params.core.scalarPipes, 0),
      aguPipes_(params.core.agus, 0)
{
    panic_if_not(params.core.issueWidth > 0, "issue width must be > 0");
}

Cycle
Pipeline::frontendAdvance()
{
    if (++slotInCycle_ >= params_.core.issueWidth) {
        slotInCycle_ = 0;
        attribute(cycle_, cycle_ + 1, StallKind::Frontend);
        ++cycle_;
    }
    return cycle_;
}

Cycle
Pipeline::unitFree(std::vector<Cycle> &pool, Cycle t) const
{
    Cycle best = ~Cycle{0};
    for (Cycle free : pool)
        best = std::min(best, std::max(free, t));
    return best;
}

void
Pipeline::unitOccupy(std::vector<Cycle> &pool, Cycle start, Cycle busy)
{
    // Pick the unit that allowed the earliest start.
    auto it = std::min_element(pool.begin(), pool.end());
    *it = std::max(*it, start) + busy;
}

void
Pipeline::attribute(Cycle from, Cycle to, StallKind kind)
{
    if (to > from)
        stalls_[static_cast<std::size_t>(kind)] += to - from;
}

Cycle
Pipeline::resolveIssue(std::initializer_list<Tag> srcs,
                       std::vector<Cycle> &pool, std::size_t lsqNeed,
                       bool commitSerialized)
{
    const Cycle front = frontendAdvance();
    Cycle t = front;

    // In-order dispatch: a full ROB stalls the pointer until the
    // oldest in-flight op retires; the stall is attributed to what
    // that op was waiting on (memory -> cache access, else compute).
    while (!rob_.empty() && rob_.front().done <= t)
        rob_.pop_front();
    while (rob_.size() + 1 > params_.core.robEntries && !rob_.empty()) {
        const RobEntry head = rob_.front();
        rob_.pop_front();
        if (head.done > t) {
            attribute(t, head.done,
                      head.mem ? StallKind::Cache : StallKind::Compute);
            t = head.done;
        }
    }
    if (lsqNeed > 0) {
        while (!lsq_.empty() && lsq_.front() <= t)
            lsq_.pop_front();
        while (lsq_.size() + lsqNeed > params_.core.lsqEntries &&
               !lsq_.empty()) {
            const Cycle head = lsq_.front();
            lsq_.pop_front();
            if (head > t) {
                // A full LSQ means dispatch waits on an outstanding
                // memory access: that is cache-access time (the
                // gather/scatter occupancy effect of Section II-G).
                attribute(t, head, StallKind::Cache);
                t = head;
            }
        }
    }
    if (t > cycle_)
        cycle_ = t;

    // Out-of-order execution start: operands, functional unit, and
    // commit-time serialization delay only this op (and its
    // dependents), not the dispatch of younger instructions.
    Tag dep{};
    for (const Tag &src : srcs)
        dep = Tag::join(dep, src);
    Cycle start = std::max(t, dep.ready);
    if (commitSerialized)
        start = std::max(start, maxCompletion_);
    start = unitFree(pool, start);
    return start;
}

void
Pipeline::finishOp(OpClass cls, Cycle completion, std::size_t lsqNeed,
                   bool isMem, Cycle lsqCompletion)
{
    rob_.push_back(RobEntry{completion, isMem});
    const Cycle lsqDone =
        lsqCompletion ? lsqCompletion : completion;
    for (std::size_t i = 0; i < lsqNeed; ++i)
        lsq_.push_back(lsqDone);
    if (completion > maxCompletion_) {
        maxCompletion_ = completion;
        maxCompletionFromMem_ = isMem;
    }
    ++opCounts_[static_cast<std::size_t>(cls)];
    ++instructions_;
}

Tag
Pipeline::executeOp(OpClass cls, std::initializer_list<Tag> srcs)
{
    const CoreParams &core = params_.core;
    unsigned latency = core.scalarAluLatency;
    std::vector<Cycle> *pool = &scalarPipes_;
    switch (cls) {
      case OpClass::ScalarAlu:
        break;
      case OpClass::Branch:
        latency = core.branchLatency;
        break;
      case OpClass::VecAlu:
        latency = core.vectorAluLatency;
        pool = &vecPipes_;
        break;
      case OpClass::VecCmp:
        latency = core.vectorCmpLatency;
        pool = &vecPipes_;
        break;
      case OpClass::VecPred:
        latency = core.predOpLatency;
        pool = &vecPipes_;
        break;
      case OpClass::VecReduce:
        latency = core.reduceLatency;
        pool = &vecPipes_;
        break;
      default:
        panic("executeOp: class {} needs a specialized path",
              opClassName(cls));
    }

    const Cycle issue = resolveIssue(srcs, *pool, 0, false);
    unitOccupy(*pool, issue, 1); // fully pipelined
    const Cycle completion = issue + latency;
    finishOp(cls, completion, 0, false);
    return Tag{completion, false};
}

Tag
Pipeline::executeMem(OpClass cls, std::uint64_t pc, Addr addr,
                     unsigned bytes, std::initializer_list<Tag> srcs)
{
    panic_if_not(isMemClass(cls), "executeMem: {} is not a memory class",
                 opClassName(cls));
    std::vector<Cycle> &pool = aguPipes_;
    const Cycle issue = resolveIssue(srcs, pool, 1, false);
    unitOccupy(pool, issue, 1);
    const bool write = cls == OpClass::ScalarStore ||
                       cls == OpClass::VecStore;
    const unsigned latency = mem_.access(pc, addr, bytes, write);
    // Stores retire once the data sits in the store buffer; the line
    // fill only occupies the LSQ entry. Loads complete at load-to-use.
    const Cycle completion = write ? issue + 1 : issue + latency;
    finishOp(cls, completion, 1, true,
             write ? issue + latency : 0);
    return Tag{completion, true};
}

Tag
Pipeline::executeIndexed(OpClass cls, std::uint64_t pc,
                         std::span<const Addr> addrs, unsigned elemBytes,
                         std::initializer_list<Tag> srcs)
{
    panic_if_not(cls == OpClass::VecGather || cls == OpClass::VecScatter,
                 "executeIndexed: bad class {}", opClassName(cls));
    const CoreParams &core = params_.core;
    const std::size_t lsqNeed = std::max<std::size_t>(1, addrs.size());

    const Cycle issue = resolveIssue(srcs, aguPipes_, lsqNeed, false);

    // Indexed accesses split into scalar element requests that flow
    // down one load pipe at one element per cycle (A64FX gathers are
    // element-serial); the pipe stays busy for the whole burst,
    // delaying later memory instructions on it (the pipeline-occupancy
    // effect the paper highlights), and every element holds an LSQ
    // entry until the instruction completes.
    unitOccupy(aguPipes_, issue, addrs.size());

    const bool write = cls == OpClass::VecScatter;
    laneLatencies_.resize(addrs.size());
    mem_.accessVector(pc, addrs, elemBytes, write, laneLatencies_);
    Cycle worst = issue;
    for (std::size_t i = 0; i < addrs.size(); ++i)
        worst = std::max(worst, issue + i + laneLatencies_[i]);
    Cycle completion = std::max(worst, issue + core.gatherMinLatency);
    Cycle lsqDone = 0;
    if (write) {
        // Scatters retire at address generation; the element writes
        // drain from the store buffer at memory speed.
        lsqDone = completion;
        completion = issue + addrs.size() + 1;
    }
    finishOp(cls, completion, lsqNeed, true, lsqDone);
    return Tag{completion, true};
}

Tag
Pipeline::executeQz(OpClass cls, unsigned latency,
                    std::initializer_list<Tag> srcs, bool commitSerialized)
{
    const Cycle issue = resolveIssue(srcs, vecPipes_, 0, false);
    unitOccupy(vecPipes_, issue, 1);
    // Commit-time execution (QBUFFER writes, Section IV-E): the op
    // waits in the issue queue until it is the oldest in flight, but
    // younger independent instructions keep issuing; only consumers of
    // the written data (via the returned tag) observe the delay.
    const Cycle start =
        commitSerialized ? std::max(issue, maxCompletion_) : issue;
    const Cycle completion = start + latency;
    finishOp(cls, completion, 0, false);
    return Tag{completion, false};
}

void
Pipeline::chargeScalarOps(unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        executeOp(OpClass::ScalarAlu, {});
}

void
Pipeline::bubble(unsigned cycles, StallKind kind)
{
    attribute(cycle_, cycle_ + cycles, kind);
    cycle_ += cycles;
    slotInCycle_ = 0;
}

Cycle
Pipeline::totalCycles() const
{
    return std::max(cycle_, maxCompletion_);
}

} // namespace quetzal::sim
