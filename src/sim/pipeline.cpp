#include "sim/pipeline.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "sim/hostphase.hpp"

namespace quetzal::sim {

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::ScalarAlu:
        return "ScalarAlu";
      case OpClass::ScalarLoad:
        return "ScalarLoad";
      case OpClass::ScalarStore:
        return "ScalarStore";
      case OpClass::Branch:
        return "Branch";
      case OpClass::VecAlu:
        return "VecAlu";
      case OpClass::VecCmp:
        return "VecCmp";
      case OpClass::VecPred:
        return "VecPred";
      case OpClass::VecReduce:
        return "VecReduce";
      case OpClass::VecLoad:
        return "VecLoad";
      case OpClass::VecStore:
        return "VecStore";
      case OpClass::VecGather:
        return "VecGather";
      case OpClass::VecScatter:
        return "VecScatter";
      case OpClass::QzConf:
        return "QzConf";
      case OpClass::QzEncode:
        return "QzEncode";
      case OpClass::QzStore:
        return "QzStore";
      case OpClass::QzLoad:
        return "QzLoad";
      case OpClass::QzMhm:
        return "QzMhm";
      case OpClass::QzMm:
        return "QzMm";
      case OpClass::QzCount:
        return "QzCount";
      default:
        return "Unknown";
    }
}

Pipeline::Pipeline(const SystemParams &params, MemorySystem &mem)
    : params_(params), mem_(mem),
      vecPipes_(params.core.vectorPipes, 0),
      scalarPipes_(params.core.scalarPipes, 0),
      aguPipes_(params.core.agus, 0)
{
    panic_if_not(params.core.issueWidth > 0, "issue width must be > 0");
    // One extra slot each: dispatch may momentarily hold capacity+1
    // entries (the claim happens before the oldest retires), and a
    // single indexed op can claim several LSQ slots at once.
    rob_.reset(params.core.robEntries + 1);
    lsq_.reset(params.core.lsqEntries + 1);

    const CoreParams &core = params_.core;
    const auto spec = [this](OpClass cls, unsigned latency,
                             std::vector<Cycle> *pool) {
        specs_[static_cast<std::size_t>(cls)] = OpSpec{latency, pool};
    };
    spec(OpClass::ScalarAlu, core.scalarAluLatency, &scalarPipes_);
    spec(OpClass::Branch, core.branchLatency, &scalarPipes_);
    spec(OpClass::VecAlu, core.vectorAluLatency, &vecPipes_);
    spec(OpClass::VecCmp, core.vectorCmpLatency, &vecPipes_);
    spec(OpClass::VecPred, core.predOpLatency, &vecPipes_);
    spec(OpClass::VecReduce, core.reduceLatency, &vecPipes_);
}

void
Pipeline::badOpClass(OpClass cls)
{
    panic("executeOp: class {} needs a specialized path",
          opClassName(cls));
}

Tag
Pipeline::executeOp(OpClass cls, Tag dep)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    const OpSpec spec = opSpec(cls);
    const Cycle issue = resolveIssue(dep, *spec.pool, 1, 0);
    const Cycle completion = issue + spec.latency;
    finishOp(cls, completion, 0, false);
    return Tag{completion, false};
}

void
Pipeline::executeOpBurst(OpClass cls, unsigned count)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    if (count == 0)
        return;
    const OpSpec spec = opSpec(cls);
    std::vector<Cycle> &pool = *spec.pool;
    const std::uint64_t width = params_.core.issueWidth;
    const std::uint64_t pipes = pool.size();
    const Cycle c0 = cycle_;
    const std::uint64_t s0 = slotInCycle_;
    const Cycle firstFront = c0 + (s0 + 1) / width;

    // Closed form requires a clean launch state: every unit idle by
    // the first op's dispatch cycle and no chance of ROB back-pressure
    // anywhere in the burst. Otherwise replay the verbatim loop.
    bool clean = pipes > 0 &&
                 rob_.size() + count <= params_.core.robEntries;
    for (std::size_t i = 0; clean && i < pool.size(); ++i)
        clean = pool[i] <= firstFront;
    if (!clean) {
        for (unsigned i = 0; i < count; ++i)
            executeOp(cls);
        return;
    }
    ++burstFastPaths_;

    // N independent, source-free, 1-cycle-occupancy ops form a D/D/P
    // queue fed by a W-wide frontend from an idle start. Its exact
    // start schedule is
    //   S_k = max(front_k, front_r + (k - r) / P),  r = (k-1) % P + 1
    // with front_k = c0 + (s0 + k) / W: the unrolled recurrence
    // S_k = max(front_k, S_{k-P} + 1) evaluated at its two endpoints
    // (the intermediate terms are monotone between them).
    const auto startOf = [&](std::uint64_t k) {
        const std::uint64_t r = (k - 1) % pipes + 1;
        return std::max<Cycle>(c0 + (s0 + k) / width,
                               c0 + (s0 + r) / width + (k - r) / pipes);
    };

    // Frontend bookkeeping for all N slots at once.
    const Cycle finalFront = c0 + (s0 + count) / width;
    attribute(c0, finalFront, StallKind::Frontend);
    cycle_ = finalFront;
    slotInCycle_ = static_cast<unsigned>((s0 + count) % width);

    // Pool rotation: each op replaces the pool minimum with a value
    // larger than everything present, so after the burst the pool
    // holds the last min(N, P) start+1 values (plus untouched slots
    // when N < P, which keep the largest of the original values —
    // here all equal candidates, so replacing any N slots is exact).
    if (count >= pipes) {
        for (std::uint64_t i = 0; i < pipes; ++i)
            pool[i] = startOf(count - pipes + 1 + i) + 1;
    } else {
        for (std::uint64_t j = 1; j <= count; ++j) {
            Cycle *best = pool.data();
            for (std::size_t i = 1; i < pool.size(); ++i)
                if (pool[i] < *best)
                    best = &pool[i];
            *best = startOf(j) + 1;
        }
    }

    // Retire bookkeeping. The ROB prefix that a per-op loop would
    // have drained is exactly the maximal front prefix with
    // done <= finalFront (pops are prefix-only under a monotone
    // dispatch pointer); burst entries behind a surviving older entry
    // all survive with it.
    const Cycle latency = spec.latency;
    bool blocked = false;
    while (!rob_.empty()) {
        if (rob_.front().done > finalFront) {
            blocked = true;
            break;
        }
        rob_.pop();
    }
    // Surviving burst entries are [firstKept, N]: completions are
    // nondecreasing in k, so the retired ones form a prefix — unless
    // an older entry survived, which shields every burst entry.
    std::uint64_t firstKept = count;
    if (blocked) {
        firstKept = 1;
    } else {
        while (firstKept > 1 &&
               startOf(firstKept - 1) + latency > finalFront)
            --firstKept;
    }
    for (std::uint64_t k = firstKept; k < count; ++k)
        rob_.push(RobEntry{startOf(k) + latency, false});
    rob_.push(RobEntry{startOf(count) + latency, false});

    const Cycle lastCompletion = startOf(count) + latency;
    if (lastCompletion > maxCompletion_) {
        maxCompletion_ = lastCompletion;
        maxCompletionFromMem_ = false;
    }
    opCounts_[static_cast<std::size_t>(cls)] += count;
    instructions_ += count;
}

QZ_SIM_ALWAYS_INLINE Tag
Pipeline::memOpImpl(OpClass cls, std::uint64_t pc, Addr addr,
                    unsigned bytes, Tag dep)
{
    // Diagnostics pass the raw enum: opClassName() is a switch the
    // caller would otherwise evaluate on every call of this hot path.
    panic_if_not(isMemClass(cls), "executeMem: class {} is not a memory class",
                 static_cast<int>(cls));
    const Cycle issue = resolveIssue(dep, aguPipes_, 1, 1);
    const bool write = cls == OpClass::ScalarStore ||
                       cls == OpClass::VecStore;
    const unsigned latency = mem_.access(pc, addr, bytes, write);
    // Stores retire once the data sits in the store buffer; the line
    // fill only occupies the LSQ entry. Loads complete at load-to-use.
    const Cycle completion = write ? issue + 1 : issue + latency;
    finishOp(cls, completion, 1, true,
             write ? issue + latency : 0);
    return Tag{completion, true};
}

Tag
Pipeline::executeMem(OpClass cls, std::uint64_t pc, Addr addr,
                     unsigned bytes, Tag dep)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    return memOpImpl(cls, pc, addr, bytes, dep);
}

Tag
Pipeline::executeMemRun(std::span<const MemOp> ops, Tag dep)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    Tag out{};
    for (const MemOp &op : ops)
        out = Tag::join(out,
                        memOpImpl(op.cls, op.pc, op.addr, op.bytes,
                                  dep));
    return out;
}

void
Pipeline::executeMemRun(std::span<const MemOp> ops, Tag dep,
                        std::span<Tag> tags)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    panic_if_not(tags.size() >= ops.size(),
                 "executeMemRun: {} tag slots for {} ops", tags.size(),
                 ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        tags[i] = memOpImpl(ops[i].cls, ops[i].pc, ops[i].addr,
                            ops[i].bytes, dep);
}

Tag
Pipeline::executeOpChain(OpClass cls, unsigned count, Tag dep)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    const OpSpec spec = opSpec(cls);
    for (unsigned i = 0; i < count; ++i) {
        const Cycle issue = resolveIssue(dep, *spec.pool, 1, 0);
        const Cycle completion = issue + spec.latency;
        finishOp(cls, completion, 0, false);
        dep = Tag{completion, false};
    }
    return dep;
}

Tag
Pipeline::executeIndexed(OpClass cls, std::uint64_t pc,
                         std::span<const Addr> addrs, unsigned elemBytes,
                         Tag dep)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    panic_if_not(cls == OpClass::VecGather || cls == OpClass::VecScatter,
                 "executeIndexed: bad class {}", static_cast<int>(cls));
    const CoreParams &core = params_.core;
    const std::size_t lsqNeed = std::max<std::size_t>(1, addrs.size());

    // Indexed accesses split into scalar element requests that flow
    // down one load pipe at one element per cycle (A64FX gathers are
    // element-serial); the pipe stays busy for the whole burst,
    // delaying later memory instructions on it (the pipeline-occupancy
    // effect the paper highlights), and every element holds an LSQ
    // entry until the instruction completes.
    const Cycle issue =
        resolveIssue(dep, aguPipes_, addrs.size(), lsqNeed);

    const bool write = cls == OpClass::VecScatter;
    laneLatencies_.resize(addrs.size());
    mem_.accessVector(pc, addrs, elemBytes, write, laneLatencies_);
    Cycle worst = issue;
    for (std::size_t i = 0; i < addrs.size(); ++i)
        worst = std::max(worst, issue + i + laneLatencies_[i]);
    Cycle completion = std::max(worst, issue + core.gatherMinLatency);
    Cycle lsqDone = 0;
    if (write) {
        // Scatters retire at address generation; the element writes
        // drain from the store buffer at memory speed.
        lsqDone = completion;
        completion = issue + addrs.size() + 1;
    }
    finishOp(cls, completion, lsqNeed, true, lsqDone);
    return Tag{completion, true};
}

Tag
Pipeline::executeQz(OpClass cls, unsigned latency, Tag dep,
                    bool commitSerialized)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    const Cycle issue = resolveIssue(dep, vecPipes_, 1, 0);
    // Commit-time execution (QBUFFER writes, Section IV-E): the op
    // waits in the issue queue until it is the oldest in flight, but
    // younger independent instructions keep issuing; only consumers of
    // the written data (via the returned tag) observe the delay.
    const Cycle start =
        commitSerialized ? std::max(issue, maxCompletion_) : issue;
    const Cycle completion = start + latency;
    finishOp(cls, completion, 0, false);
    return Tag{completion, false};
}

void
Pipeline::bubble(unsigned cycles, StallKind kind)
{
    const HostPhase::Scope scope(HostPhase::Pipeline);
    attribute(cycle_, cycle_ + cycles, kind);
    cycle_ += cycles;
    slotInCycle_ = 0;
}

Cycle
Pipeline::totalCycles() const
{
    return std::max(cycle_, maxCompletion_);
}

} // namespace quetzal::sim
