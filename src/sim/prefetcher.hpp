/**
 * @file
 * PC-indexed stride prefetcher, as attached to the A64FX L1D/L2 in
 * Table I. On a trained stride it issues `degree` line fills ahead of
 * the demand stream. Scatter/gather element streams defeat it (their
 * per-element "PCs" are the same but strides are irregular), which is
 * exactly the behaviour the paper's motivation section describes.
 */
#ifndef QUETZAL_SIM_PREFETCHER_HPP
#define QUETZAL_SIM_PREFETCHER_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/cache.hpp"
#include "sim/params.hpp"

namespace quetzal::sim {

/** Classic reference-prediction-table stride prefetcher. */
class StridePrefetcher
{
  public:
    StridePrefetcher(const PrefetcherParams &params, Cache &target);

    /**
     * Observe a demand access from instruction site @p pc at @p addr and
     * issue prefetch fills into the target cache when a stride is
     * established.
     */
    void observe(std::uint64_t pc, Addr addr);

    std::uint64_t issued() const { return issued_->value(); }

    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        std::uint64_t pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        bool valid = false;
    };

    PrefetcherParams params_;
    Cache &target_;
    std::vector<Entry> table_;
    /** size-1 when the table size is a power of two, else 0. */
    std::size_t tableMask_ = 0;

    StatGroup stats_;
    Stat *issued_;
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_PREFETCHER_HPP
