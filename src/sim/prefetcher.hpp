/**
 * @file
 * PC-indexed stride prefetcher, as attached to the A64FX L1D/L2 in
 * Table I. On a trained stride it issues `degree` line fills ahead of
 * the demand stream. Scatter/gather element streams defeat it (their
 * per-element "PCs" are the same but strides are irregular), which is
 * exactly the behaviour the paper's motivation section describes.
 */
#ifndef QUETZAL_SIM_PREFETCHER_HPP
#define QUETZAL_SIM_PREFETCHER_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/cache.hpp"
#include "sim/params.hpp"

namespace quetzal::sim {

/** Classic reference-prediction-table stride prefetcher. */
class StridePrefetcher
{
  public:
    StridePrefetcher(const PrefetcherParams &params, Cache &target);

    /**
     * Observe a demand access from instruction site @p pc at @p addr and
     * issue prefetch fills into the target cache when a stride is
     * established.
     *
     * Inline (it runs once per demand request from MemorySystem's
     * inlined access chain): the table update and the trained-stream
     * short-circuit — every lookahead target on the demand line and
     * that line resident, making the whole issue loop a provable no-op
     * (contains() never mutates, so nothing would fill and no stat
     * would move); the endpoint line check pins every intermediate
     * target because they are monotone in the lookahead distance.
     * Only streams that genuinely cross a line boundary take the
     * out-of-line issue walk.
     */
    QZ_CACHE_ALWAYS_INLINE void
    observe(std::uint64_t pc, Addr addr)
    {
        if (!params_.enabled || table_.empty())
            return;

        // Same slot as `pc % size`, but without a hardware divide on
        // every demand access when the table size is a power of two.
        const std::size_t slot =
            tableMask_ ? (pc & tableMask_) : (pc % table_.size());
        Entry &entry = table_[slot];
        if (!entry.valid || entry.pc != pc) {
            entry = Entry{pc, addr, 0, 0, true};
            return;
        }

        const std::int64_t stride =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(entry.lastAddr);
        if (stride != 0 && stride == entry.stride) {
            if (entry.confidence < params_.trainThreshold)
                ++entry.confidence;
        } else {
            entry.stride = stride;
            entry.confidence = 0;
        }
        entry.lastAddr = addr;

        if (entry.confidence >= params_.trainThreshold &&
            entry.stride != 0) {
            const Addr last = addr + static_cast<Addr>(
                entry.stride *
                static_cast<std::int64_t>(params_.degree));
            if (target_.sameLine(addr, last) && target_.contains(addr))
                return;
            issueAhead(entry, addr);
        }
    }

    std::uint64_t issued() const { return issued_->value(); }

    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        std::uint64_t pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        bool valid = false;
    };

    /** Trained-stride issue walk: fill `degree` lines ahead. */
    void issueAhead(const Entry &entry, Addr addr);

    PrefetcherParams params_;
    Cache &target_;
    std::vector<Entry> table_;
    /** size-1 when the table size is a power of two, else 0. */
    std::size_t tableMask_ = 0;

    StatGroup stats_;
    Stat *issued_;
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_PREFETCHER_HPP
