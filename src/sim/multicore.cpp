#include "sim/multicore.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace quetzal::sim {

double
multicoreSpeedup(const CoreDemand &demand, unsigned cores,
                 const SystemParams &params)
{
    fatal_if(cores == 0, "core count must be positive");
    const double perCore = demand.bytesPerCycle();
    if (perCore <= 0.0)
        return static_cast<double>(cores);

    // Bandwidth ceiling: total sustained demand cannot exceed the HBM2
    // peak. Below the ceiling, scaling is linear.
    const double ceiling = params.dram.peakBytesPerCycle / perCore;
    return std::min<double>(static_cast<double>(cores), ceiling);
}

double
multicoreThroughput(const CoreDemand &demand,
                    std::uint64_t itemsPerStream, unsigned cores,
                    const SystemParams &params)
{
    if (demand.cycles == 0)
        return 0.0;
    const double single =
        static_cast<double>(itemsPerStream) /
        static_cast<double>(demand.cycles);
    return single * multicoreSpeedup(demand, cores, params);
}

} // namespace quetzal::sim
