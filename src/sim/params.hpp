/**
 * @file
 * Simulated-system parameters, reproducing Table I of the paper.
 *
 * The modeled machine is a Fujitsu A64FX-like core: 2.0 GHz, ARM-SVE-
 * style 512-bit vector datapath, 64 KB 8-way L1 caches, a shared 8 MB
 * 16-way L2, and 4-channel HBM2 main memory. Scatter/gather latency
 * matches the paper's observation that indexed memory instructions cost
 * at least 19 cycles on the A64FX even on an L1 hit.
 */
#ifndef QUETZAL_SIM_PARAMS_HPP
#define QUETZAL_SIM_PARAMS_HPP

#include <cstdint>

namespace quetzal::sim {

/** One cache level's geometry and timing. */
struct CacheParams
{
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned associativity = 8;
    unsigned lineBytes = 256;  //!< A64FX uses 256-byte lines
    unsigned loadToUse = 5;    //!< load-to-use latency in cycles
};

/** Stride-prefetcher knobs. */
struct PrefetcherParams
{
    bool enabled = true;
    unsigned tableEntries = 32; //!< PC-indexed stride table size
    unsigned degree = 2;        //!< lines fetched ahead on a match
    unsigned trainThreshold = 2;
};

/** DRAM latency/bandwidth model (4-channel HBM2). */
struct DramParams
{
    unsigned latencyCycles = 110;    //!< average load-to-use from HBM2
    double peakBytesPerCycle = 128;  //!< 256 GB/s at 2 GHz, whole SoC
};

/** Core pipeline model parameters (A64FX-like out-of-order core). */
struct CoreParams
{
    unsigned issueWidth = 4;        //!< decode/dispatch per cycle
    unsigned vectorPipes = 2;       //!< FLA/FLB SIMD pipes
    unsigned scalarPipes = 2;       //!< EXA/EXB integer pipes
    unsigned agus = 2;              //!< address-generation units
    unsigned robEntries = 128;      //!< reorder-buffer capacity
    unsigned lsqEntries = 40;       //!< load/store queue capacity
    unsigned vlenBits = 512;        //!< SVE vector length

    unsigned scalarAluLatency = 1;
    unsigned vectorAluLatency = 4;  //!< SIMD integer op latency
    unsigned vectorCmpLatency = 4;
    unsigned predOpLatency = 2;
    unsigned reduceLatency = 9;     //!< cross-lane reductions are slow
    unsigned branchLatency = 1;

    /**
     * Minimum completion latency of a scatter/gather whose elements all
     * hit in the L1 (paper Section II-G: >= 19 cycles on A64FX).
     */
    unsigned gatherMinLatency = 19;
};

/** QUETZAL accelerator parameters (Section IV / Table "configs"). */
struct QuetzalParams
{
    bool present = false;         //!< core has a QUETZAL instance
    unsigned readPorts = 8;       //!< QZ_1P/2P/4P/8P
    std::uint64_t bufferBytes = 8 * 1024; //!< per QBUFFER
    unsigned banks = 8;           //!< one per 64-bit VPU lane

    /** Vector read latency: 8 / ports + 1 cycles (Section IV-C1). */
    unsigned
    readLatency() const
    {
        return 8 / readPorts + 1;
    }
};

/** Full simulated-system parameter set (Table I defaults). */
struct SystemParams
{
    double clockGhz = 2.0;
    unsigned cores = 16;

    CacheParams l1d{64 * 1024, 8, 256, 5};
    CacheParams l2{8u * 1024 * 1024, 16, 256, 37};
    PrefetcherParams prefetcher{};
    DramParams dram{};
    CoreParams core{};
    QuetzalParams quetzal{};

    /** Baseline system: no QUETZAL hardware. */
    static SystemParams
    baseline()
    {
        return SystemParams{};
    }

    /** System with a QUETZAL instance with @p ports read ports. */
    static SystemParams
    withQuetzal(unsigned ports = 8)
    {
        SystemParams params;
        params.quetzal.present = true;
        params.quetzal.readPorts = ports;
        return params;
    }
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_PARAMS_HPP
