/**
 * @file
 * Two-level cache hierarchy plus DRAM: the per-core view of the memory
 * system from Table I (L1D 64 KB / L2 8 MB shared / 4-channel HBM2).
 *
 * Returns load-to-use latencies for timing and counts requests and DRAM
 * traffic; DRAM byte counts feed the multicore bandwidth-contention
 * model (Fig. 13b) and the memory-request-reduction results (Fig. 14a).
 */
#ifndef QUETZAL_SIM_MEMSYSTEM_HPP
#define QUETZAL_SIM_MEMSYSTEM_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/stats.hpp"
#include "sim/cache.hpp"
#include "sim/prefetcher.hpp"

namespace quetzal::sim {

/** Per-core memory hierarchy timing model. */
class MemorySystem
{
  public:
    explicit MemorySystem(const SystemParams &params);

    /**
     * Perform one (timing) access.
     *
     * @param pc static instruction site, used by the stride prefetcher.
     * @param addr host address standing in for the physical address.
     * @param bytes access footprint; accesses spanning multiple lines
     *              probe each line and return the worst latency.
     * @param write true for stores (timed like loads; write-allocate).
     * @return load-to-use latency in cycles.
     */
    unsigned access(std::uint64_t pc, Addr addr, unsigned bytes,
                    bool write);

    /** Total demand requests sent to the L1 (the Fig. 14a numerator). */
    std::uint64_t totalRequests() const { return requests_->value(); }

    /**
     * Map a host address to the deterministic simulated physical
     * address the caches index on. Host heap pointers stand in for
     * virtual addresses, but their values depend on allocation order
     * (and ASLR), which would make cache indexing — and therefore
     * cycle counts — vary between runs and between serial and
     * parallel batch execution. Each 16-byte host paragraph is
     * instead assigned the next simulated paragraph on first touch.
     * malloc alignment makes everything below a paragraph
     * deterministic, and a core's access sequence (which fixes the
     * touch order) is deterministic too, so the resulting addresses —
     * and every cycle count downstream — are reproducible no matter
     * where the host allocator put the data. Streams stay contiguous
     * in simulated space because they touch paragraphs in order.
     */
    Addr translate(Addr hostAddr);

    /**
     * Forget host->simulated paragraph assignments (simulated
     * addresses keep advancing, so new mappings never alias old
     * ones). Called between independent work items (e.g. pairs):
     * whether the host allocator recycles one item's buffers for the
     * next depends on allocator state the simulation must not observe,
     * so recycled memory is remapped fresh instead.
     */
    void
    newEpoch()
    {
        paragraphMap_.clear();
    }

    /** Bytes transferred from DRAM (for bandwidth contention). */
    std::uint64_t dramBytes() const { return dramBytes_->value(); }

    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    const SystemParams &params() const { return params_; }

    StatGroup &stats() { return stats_; }

  private:
    unsigned accessLine(std::uint64_t pc, Addr addr);

    SystemParams params_;
    Cache l1d_;
    Cache l2_;
    StridePrefetcher l1Prefetcher_;

    /** First-touch map: host paragraph -> simulated paragraph. */
    std::unordered_map<Addr, Addr> paragraphMap_;
    Addr nextParagraph_ = 1;

    StatGroup stats_;
    Stat *requests_;
    Stat *l2Requests_;
    Stat *dramRequests_;
    Stat *dramBytes_;
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_MEMSYSTEM_HPP
