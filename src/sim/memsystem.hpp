/**
 * @file
 * Two-level cache hierarchy plus DRAM: the per-core view of the memory
 * system from Table I (L1D 64 KB / L2 8 MB shared / 4-channel HBM2).
 *
 * Returns load-to-use latencies for timing and counts requests and DRAM
 * traffic; DRAM byte counts feed the multicore bandwidth-contention
 * model (Fig. 13b) and the memory-request-reduction results (Fig. 14a).
 *
 * Address translation — the per-paragraph host->simulated mapping every
 * access walks — is a two-level flat page table (a small open-addressed
 * chunk directory over flat per-chunk arrays) fronted by a one-entry
 * MRU translation cache, instead of a per-paragraph hash map: the
 * sequential streams the genomics kernels generate resolve almost every
 * paragraph in O(1) with no hashing, and epoch invalidation is a stamp
 * bump instead of a rehash-churning clear(). Simulated metrics are
 * unaffected by construction: the first-touch assignment order, and
 * therefore every simulated address, is identical (docs/SIMULATOR.md,
 * "Host performance").
 */
#ifndef QUETZAL_SIM_MEMSYSTEM_HPP
#define QUETZAL_SIM_MEMSYSTEM_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "sim/cache.hpp"
#include "sim/hostphase.hpp"
#include "sim/prefetcher.hpp"

namespace quetzal::sim {

/** Per-core memory hierarchy timing model. */
class MemorySystem
{
  public:
    explicit MemorySystem(const SystemParams &params);

    /**
     * Perform one (timing) access.
     *
     * @param pc static instruction site, used by the stride prefetcher.
     * @param addr host address standing in for the physical address.
     * @param bytes access footprint; accesses spanning multiple lines
     *              probe each line and return the worst latency.
     * @param write true for stores (timed like loads; write-allocate).
     * @return load-to-use latency in cycles.
     */
    QZ_CACHE_ALWAYS_INLINE unsigned
    access(std::uint64_t pc, Addr addr, unsigned bytes, bool write)
    {
        const HostPhase::Scope scope(HostPhase::Mem);
        return accessOne(pc, addr, bytes, write);
    }

    /**
     * Batched indexed access: translate and probe every lane of a
     * gather/scatter burst in one pass. Element i's latency lands in
     * latencies[i]. The elements are processed in lane order with the
     * exact per-element semantics of access() — same demand counts,
     * same prefetcher observations, same recency updates — so cycles
     * and stats are bit-identical to element-serial access() calls;
     * the burst just keeps the translation and MRU-way fast paths hot
     * across lanes instead of re-entering them per element.
     */
    void accessVector(std::uint64_t pc, std::span<const Addr> addrs,
                      unsigned elemBytes, bool write,
                      std::span<unsigned> latencies);

    /** Total demand requests sent to the L1 (the Fig. 14a numerator). */
    std::uint64_t totalRequests() const { return requests_->value(); }

    /**
     * Map a host address to the deterministic simulated physical
     * address the caches index on. Host heap pointers stand in for
     * virtual addresses, but their values depend on allocation order
     * (and ASLR), which would make cache indexing — and therefore
     * cycle counts — vary between runs and between serial and
     * parallel batch execution. Each 16-byte host paragraph is
     * instead assigned the next simulated paragraph on first touch.
     * malloc alignment makes everything below a paragraph
     * deterministic, and a core's access sequence (which fixes the
     * touch order) is deterministic too, so the resulting addresses —
     * and every cycle count downstream — are reproducible no matter
     * where the host allocator put the data. Streams stay contiguous
     * in simulated space because they touch paragraphs in order.
     */
    QZ_CACHE_ALWAYS_INLINE Addr
    translate(Addr hostAddr)
    {
        const Addr par = hostAddr / kParagraphBytes;
        // The translate_fast stat predates the multi-entry TLB below
        // and counts re-touches of the immediately previous paragraph
        // (sequential streams re-touch one paragraph for up to 16
        // consecutive byte addresses). Keep that exact definition —
        // mruPar_ tracks the last translated paragraph, nothing else —
        // so the stat stays byte-identical to the one-entry-MRU
        // implementation it came from.
        if (par == mruPar_) {
            ++*translateFast_;
        } else {
            mruPar_ = par;
        }
        // Direct-mapped host-TLB over live assignments. The DP inner
        // loops interleave four-to-six address streams (three or four
        // band rows, the output row, the sequences), which thrashed a
        // single MRU entry on nearly every access; distinct streams
        // land in distinct slots here. Pure cache: entries are only
        // ever copies of live (stamped) chunk assignments, so hitting
        // one is observationally identical to re-walking the chunk
        // directory. Entries carry the epoch that stamped them, so a
        // hit is par+epoch equality — and newEpoch() never has to
        // touch the table.
        const TlbEntry &e =
            tlb_[static_cast<std::size_t>(par) & (kTlbEntries - 1)];
        if (e.par == par && e.epoch == epoch_)
            return e.simPar * kParagraphBytes +
                   hostAddr % kParagraphBytes;
        return translateMiss(hostAddr);
    }

    /**
     * Forget host->simulated paragraph assignments (simulated
     * addresses keep advancing, so new mappings never alias old
     * ones). Called between independent work items (e.g. pairs):
     * whether the host allocator recycles one item's buffers for the
     * next depends on allocator state the simulation must not observe,
     * so recycled memory is remapped fresh instead.
     *
     * O(1): entries carry the epoch that stamped them, so bumping the
     * epoch invalidates every assignment at once — no table clear, no
     * rehash churn on the next pair's first touches.
     */
    void
    newEpoch()
    {
        // TLB entries are epoch-stamped, so the bump alone invalidates
        // all of them — no per-item table wipe (work items can be as
        // small as one 100 bp pair, where a wipe would rival the
        // pair's own translation work). Only the previous-paragraph
        // tracker needs re-pointing at a paragraph no host address
        // maps to.
        ++epoch_;
        mruPar_ = kNoParagraph;
    }

    /** Bytes transferred from DRAM (for bandwidth contention). */
    std::uint64_t dramBytes() const { return dramBytes_->value(); }

    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    const SystemParams &params() const { return params_; }

    StatGroup &stats() { return stats_; }

  private:
    /** Translation granularity: malloc's 16-byte alignment guarantee. */
    static constexpr Addr kParagraphBytes = 16;
    /** MRU-invalid sentinel: no host address divides down to this
     *  paragraph index (it would need addr >= 2^64 - 16). */
    static constexpr Addr kNoParagraph = ~Addr{0};
    /** log2(paragraphs per chunk): 1024 paragraphs = 16 KB of host. */
    static constexpr unsigned kChunkShift = 10;
    static constexpr std::size_t kChunkParagraphs =
        std::size_t{1} << kChunkShift;

    /**
     * Second translation level: the assignments for one aligned run
     * of kChunkParagraphs host paragraphs, as flat arrays indexed by
     * the paragraph's offset within the chunk. An entry is live only
     * when its stamp equals the current epoch.
     */
    struct Chunk
    {
        Addr base = 0; //!< host paragraph index >> kChunkShift
        std::array<std::uint64_t, kChunkParagraphs> stamp{};
        std::array<Addr, kChunkParagraphs> simPar{};
    };

    /** Directory lookup (first level); creates the chunk on a miss. */
    Chunk *chunkFor(Addr chunkIdx);
    void growDirectory();

    /** translate() continuation past the MRU entry: chunk-directory
     *  walk, first-touch assignment, MRU refresh. */
    Addr translateMiss(Addr hostAddr);

    /**
     * One line probe. The L1 path — stat, prefetcher observation,
     * L1 probe — inlines into the access chain; only a genuine L1
     * miss leaves the inlined code for the L2/DRAM walk.
     */
    QZ_CACHE_ALWAYS_INLINE unsigned
    accessLine(std::uint64_t pc, Addr addr)
    {
        ++*requests_;
        l1Prefetcher_.observe(pc, addr);
        if (l1d_.access(addr))
            return l1d_.loadToUse();
        return missToL2(addr);
    }

    /** accessLine() continuation after an L1 miss. */
    unsigned missToL2(Addr addr);

    /**
     * access() body without the host-phase scope: accessVector opens
     * one scope for the whole burst and calls this per lane. Most
     * requests (scalar loads/stores, gather elements) fit inside one
     * paragraph: one translation, one line probe, no loop state —
     * that case resolves inline; footprints crossing a paragraph
     * boundary take the out-of-line walk.
     */
    QZ_CACHE_ALWAYS_INLINE unsigned
    accessOne(std::uint64_t pc, Addr addr, unsigned bytes, bool write)
    {
        // Stores are write-allocate and, for timing purposes, behave
        // like loads (the LSQ hides store latency; the occupancy cost
        // is modeled in the pipeline).
        (void)write;
        const unsigned shift = l1LineShift_;
        const Addr first = addr / kParagraphBytes;
        const Addr last =
            (addr + (bytes > 1 ? bytes : 1u) - 1) / kParagraphBytes;
        if (first == last) [[likely]] {
            const Addr simLine = translate(addr) >> shift;
            return accessLine(pc, simLine << shift);
        }
        return accessSpanning(pc, addr, first, last);
    }

    /** accessOne() continuation for multi-paragraph footprints. */
    unsigned accessSpanning(std::uint64_t pc, Addr addr, Addr first,
                            Addr last);

    SystemParams params_;
    Cache l1d_;
    Cache l2_;
    StridePrefetcher l1Prefetcher_;

    /** Owning store of every allocated chunk. */
    std::vector<std::unique_ptr<Chunk>> chunks_;
    /** Open-addressed chunk directory (power-of-two, linear probing). */
    std::vector<Chunk *> directory_;
    std::size_t directoryUsed_ = 0;

    /** Direct-mapped TLB size: must cover the distinct streams a DP
     *  inner loop interleaves with slack against conflicts. */
    static constexpr std::size_t kTlbEntries = 1024;

    /** Last chunk touched (directory-walk shortcut) and last paragraph
     *  translated (the translate_fast stat definition). Both use
     *  kNoParagraph-style sentinels so validity and match are one
     *  compare. */
    Chunk *mruChunk_ = nullptr;
    Addr mruPar_ = kNoParagraph;

    /** One translation-cache entry: host paragraph, its simulated
     *  paragraph, and the epoch that stamped the assignment. A slot
     *  is live only when both par and epoch match, so zero-initialized
     *  entries (epoch 0; epoch_ starts at 1) are never hits and
     *  newEpoch() retires every entry without touching the array.
     *  Kept in one struct so a hit reads one cache line, not two
     *  parallel arrays. */
    struct TlbEntry
    {
        Addr par;
        Addr simPar;
        std::uint64_t epoch;
    };

    /** Direct-mapped translation cache over live chunk assignments,
     *  slot = paragraph & (kTlbEntries - 1). */
    std::array<TlbEntry, kTlbEntries> tlb_{};

    Addr nextParagraph_ = 1;
    std::uint64_t epoch_ = 1; //!< current stamp; 0 marks never-assigned
    unsigned l1LineShift_ = 0; //!< log2(L1 line) — access() index math

    StatGroup stats_;
    Stat *requests_;
    Stat *l2Requests_;
    Stat *dramRequests_;
    Stat *dramBytes_;
    Stat *translateFast_;
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_MEMSYSTEM_HPP
