#include "sim/cache.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace quetzal::sim {

Cache::Cache(std::string name, const CacheParams &params)
    : params_(params), stats_(std::move(name))
{
    fatal_if(params.lineBytes == 0 || !isPowerOf2(params.lineBytes),
             "cache line size must be a power of two");
    fatal_if(params.associativity == 0, "associativity must be positive");
    const std::uint64_t lines = params.sizeBytes / params.lineBytes;
    fatal_if(lines % params.associativity != 0,
             "cache size {} not divisible into {}-way sets",
             params.sizeBytes, params.associativity);
    fatal_if(params.associativity > 255,
             "associativity {} exceeds the per-set occupancy counter",
             params.associativity);
    numSets_ = lines / params.associativity;
    lineShift_ = floorLog2(params.lineBytes);
    setsPow2_ = isPowerOf2(numSets_);
    tags_.resize(lines);
    valid_.resize(numSets_, 0);
    hits_ = &stats_.stat("hits", "demand accesses that hit");
    misses_ = &stats_.stat("misses", "demand accesses that missed");
}

unsigned
Cache::touch(std::size_t set, std::uint64_t line)
{
    std::uint64_t *tags = tags_.data() + set * params_.associativity;
    const unsigned count = valid_[set];
    // MRU fast path: the line touched last dominates the access stream
    // (sequential scans, the paragraph walk in MemorySystem::access,
    // gather bursts over one table), and it needs no reordering.
    if (count > 0 && tags[0] == line)
        return 0;
    for (unsigned i = 1; i < count; ++i) {
        if (tags[i] == line) {
            // Rotate [0, i] right by one: the hit line moves to the
            // MRU slot, everything more recent ages by one place.
            for (unsigned j = i; j > 0; --j)
                tags[j] = tags[j - 1];
            tags[0] = line;
            return i;
        }
    }
    return kMiss;
}

void
Cache::insert(std::size_t set, std::uint64_t line)
{
    std::uint64_t *tags = tags_.data() + set * params_.associativity;
    unsigned count = valid_[set];
    if (count < params_.associativity)
        valid_[set] = static_cast<std::uint8_t>(++count);
    // Shift the survivors down one recency place; when the set was
    // full the LRU tag falls off the end — O(1) victim selection, and
    // the same line timestamp-LRU would have evicted.
    for (unsigned j = count - 1; j > 0; --j)
        tags[j] = tags[j - 1];
    tags[0] = line;
}

bool
Cache::accessRest(std::size_t set, std::uint64_t line)
{
    // The inline fast path already compared the MRU slot, but the
    // compare is repeated here through touch() so this path stays a
    // verbatim replay of the pre-split probe (and fill() can keep
    // sharing touch()). One redundant compare on the cold path.
    if (touch(set, line) != kMiss) {
        ++*hits_;
        return true;
    }
    ++*misses_;
    insert(set, line);
    return false;
}

void
Cache::fill(Addr addr)
{
    const std::uint64_t line = lineOf(addr);
    const std::size_t set = setOf(line);
    if (touch(set, line) != kMiss)
        return; // already resident; the touch refreshed its recency
    insert(set, line);
}

void
Cache::invalidateAll()
{
    for (auto &count : valid_)
        count = 0;
}

} // namespace quetzal::sim
