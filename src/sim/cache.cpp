#include "sim/cache.hpp"

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace quetzal::sim {

Cache::Cache(std::string name, const CacheParams &params)
    : params_(params), stats_(std::move(name))
{
    fatal_if(params.lineBytes == 0 || !isPowerOf2(params.lineBytes),
             "cache line size must be a power of two");
    fatal_if(params.associativity == 0, "associativity must be positive");
    const std::uint64_t lines = params.sizeBytes / params.lineBytes;
    fatal_if(lines % params.associativity != 0,
             "cache size {} not divisible into {}-way sets",
             params.sizeBytes, params.associativity);
    numSets_ = lines / params.associativity;
    ways_.resize(lines);
    hits_ = &stats_.stat("hits", "demand accesses that hit");
    misses_ = &stats_.stat("misses", "demand accesses that missed");
}

Cache::Way *
Cache::find(std::uint64_t line)
{
    const std::size_t set = setOf(line);
    for (unsigned w = 0; w < params_.associativity; ++w) {
        Way &way = ways_[set * params_.associativity + w];
        if (way.valid && way.tag == line)
            return &way;
    }
    return nullptr;
}

const Cache::Way *
Cache::find(std::uint64_t line) const
{
    return const_cast<Cache *>(this)->find(line);
}

Cache::Way &
Cache::victim(std::uint64_t line)
{
    const std::size_t set = setOf(line);
    Way *lru = &ways_[set * params_.associativity];
    for (unsigned w = 0; w < params_.associativity; ++w) {
        Way &way = ways_[set * params_.associativity + w];
        if (!way.valid)
            return way;
        if (way.lastUse < lru->lastUse)
            lru = &way;
    }
    return *lru;
}

bool
Cache::access(Addr addr)
{
    ++useClock_;
    const std::uint64_t line = lineOf(addr);
    if (Way *way = find(line)) {
        way->lastUse = useClock_;
        ++*hits_;
        return true;
    }
    ++*misses_;
    Way &way = victim(line);
    way.valid = true;
    way.tag = line;
    way.lastUse = useClock_;
    return false;
}

bool
Cache::contains(Addr addr) const
{
    return find(lineOf(addr)) != nullptr;
}

void
Cache::fill(Addr addr)
{
    ++useClock_;
    const std::uint64_t line = lineOf(addr);
    if (Way *way = find(line)) {
        way->lastUse = useClock_;
        return;
    }
    Way &way = victim(line);
    way.valid = true;
    way.tag = line;
    way.lastUse = useClock_;
}

void
Cache::invalidateAll()
{
    for (auto &way : ways_)
        way.valid = false;
}

} // namespace quetzal::sim
