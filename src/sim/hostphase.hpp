/**
 * @file
 * Opt-in host-time phase attribution for the simulator's hot paths.
 *
 * `qz_perf --phase` needs to know where *host* wall-clock goes:
 * memory-system modeling (translate + cache), the timing pipeline, or
 * the functional ISA layer (everything else). Scopes are placed at the
 * public entry points of Pipeline (kind Pipeline) and at
 * MemorySystem::access/accessVector (kind Mem); since every memory
 * access happens under a pipeline entry point, the pipeline-exclusive
 * share is nanos(Pipeline) - nanos(Mem), and the functional share is
 * the sweep's total wall time minus nanos(Pipeline). Kind Func wraps
 * the VectorUnit's calls into the host-SIMD kernel table
 * (isa/hostsimd.hpp), splitting the functional share into the
 * SIMD-accelerated kernels and the remaining scalar facade code.
 *
 * Disabled by default: each scope then costs a single predictable
 * branch, so the instrumentation does not perturb the default
 * benchmarking paths (BENCH_hostperf.json runs keep it off). Scopes
 * nest (a burst fallback re-enters executeOp; accessVector calls
 * access per lane): a thread-local depth counter per kind makes sure
 * only the outermost scope of a kind accumulates, so no interval is
 * double-counted. Accumulators are process-wide atomics so
 * BatchRunner worker threads contribute too; `--phase` still requires
 * a single-threaded sweep to make "total wall time" well defined.
 *
 * setEnabled()/reset() must not be called while any scope is open.
 */
#ifndef QUETZAL_SIM_HOSTPHASE_HPP
#define QUETZAL_SIM_HOSTPHASE_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace quetzal::sim {

/**
 * Force-inline marker for the Scope ctor/dtor: they bracket every
 * pipeline and memory-system entry (~1B pairs per full sweep), and
 * the disabled path is one predictable branch each — but only if the
 * compiler actually inlines them, which its size heuristics sometimes
 * decline under LTO.
 */
#if defined(__GNUC__) || defined(__clang__)
#define QZ_PHASE_ALWAYS_INLINE __attribute__((always_inline))
#else
#define QZ_PHASE_ALWAYS_INLINE
#endif

class HostPhase
{
  public:
    enum Kind : unsigned
    {
        Mem,      //!< MemorySystem::access/accessVector (translate+cache)
        Pipeline, //!< Pipeline public entry points (includes Mem time)
        Func,     //!< Host-SIMD backend kernels (isa/hostsimd.hpp)
        NumKinds,
    };

    /** Turn attribution on/off (off by default). */
    static void setEnabled(bool on) { enabled_ = on; }
    static bool enabled() { return enabled_; }

    /** Accumulated host nanoseconds attributed to @p kind. */
    static std::uint64_t
    nanos(Kind kind)
    {
        return ticks_[kind].load(std::memory_order_relaxed);
    }

    /** Zero all accumulators (e.g. between warmup and timed sweep). */
    static void
    reset()
    {
        for (auto &t : ticks_)
            t.store(0, std::memory_order_relaxed);
    }

    /** RAII attribution scope; only the outermost per kind counts. */
    class Scope
    {
      public:
        QZ_PHASE_ALWAYS_INLINE explicit Scope(Kind kind) : kind_(kind)
        {
            if (!enabled_) [[likely]] {
                state_ = Off;
                return;
            }
            if (depth_[kind_]++ == 0) {
                state_ = Outer;
                start_ = now();
            } else {
                state_ = Nested;
            }
        }

        QZ_PHASE_ALWAYS_INLINE ~Scope()
        {
            if (state_ == Off)
                return;
            --depth_[kind_];
            if (state_ == Outer)
                ticks_[kind_].fetch_add(now() - start_,
                                        std::memory_order_relaxed);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        enum State : unsigned char
        {
            Off,
            Nested,
            Outer,
        };

        Kind kind_;
        State state_;
        std::uint64_t start_ = 0;
    };

  private:
    static std::uint64_t
    now()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    static inline bool enabled_ = false;
    static inline std::array<std::atomic<std::uint64_t>, NumKinds>
        ticks_{};
    static inline thread_local std::array<unsigned, NumKinds> depth_{};
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_HOSTPHASE_HPP
