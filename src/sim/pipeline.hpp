/**
 * @file
 * Scoreboard timing model of an A64FX-like out-of-order vector core.
 *
 * Algorithms do not run *on* this model; the ISA facade (isa/vectorunit)
 * calls into it once per dynamic instruction. The model tracks:
 *
 *  - frontend throughput (issueWidth instructions/cycle);
 *  - operand readiness (each produced value carries a ready tag);
 *  - functional-unit contention (2 vector pipes, 2 scalar pipes, 2 AGUs);
 *  - ROB and LSQ occupancy with in-order retirement;
 *  - per-element address generation + cache access for scatter/gather,
 *    with the A64FX's >= 19-cycle L1-hit floor (Section II-G);
 *  - commit-time (non-speculative) execution for QBUFFER writes
 *    (Section IV-E).
 *
 * Every cycle the issue pointer advances is attributed to one of four
 * causes, which directly produces the Fig. 4 execution-time breakdown:
 * frontend, compute dependency/FU, cache access (waiting on data from a
 * memory instruction), or structural ROB/LSQ back-pressure.
 *
 * Host-performance notes (docs/SIMULATOR.md, "Host performance"): the
 * ROB and LSQ are fixed-capacity power-of-two ring buffers sized from
 * robEntries/lsqEntries at construction, so the once-per-instruction
 * dispatch path never allocates; independent same-class op runs go
 * through a closed-form burst path (executeOpBurst) instead of N
 * trips through executeOp. Both are proven observationally identical
 * to the straightforward structures they replaced by randomized
 * lockstep tests (tests/test_sim.cpp, RingRobLsqEquivalence /
 * BurstMatchesSerialExecuteOps).
 */
#ifndef QUETZAL_SIM_PIPELINE_HPP
#define QUETZAL_SIM_PIPELINE_HPP

#include <array>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "sim/memsystem.hpp"
#include "sim/params.hpp"

namespace quetzal::sim {

/**
 * Force-inline marker for the once-per-instruction dispatch helpers:
 * at ~800M calls per full-matrix sweep the call overhead alone is
 * measurable, and inlining lets the compiler specialize each call
 * site on its constant busy/lsqNeed arguments (non-memory sites drop
 * the whole LSQ block). The optimizer's own size heuristics decline
 * these, so the hint is load-bearing — see docs/SIMULATOR.md.
 */
#if defined(__GNUC__) || defined(__clang__)
#define QZ_SIM_ALWAYS_INLINE __attribute__((always_inline)) inline
#define QZ_SIM_NOINLINE_COLD __attribute__((noinline, cold))
#else
#define QZ_SIM_ALWAYS_INLINE inline
#define QZ_SIM_NOINLINE_COLD
#endif

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** Readiness tag carried by every produced value. */
struct Tag
{
    Cycle ready = 0;  //!< cycle the value becomes available
    bool mem = false; //!< produced by a memory (cache-visiting) op

    /** Join two dependencies, keeping the later one. */
    static Tag
    join(Tag a, Tag b)
    {
        if (b.ready > a.ready)
            return b;
        return a;
    }
};

/** Dynamic instruction classes the scoreboard distinguishes. */
enum class OpClass : std::uint8_t
{
    ScalarAlu,
    ScalarLoad,
    ScalarStore,
    Branch,
    VecAlu,
    VecCmp,
    VecPred,
    VecReduce,
    VecLoad,
    VecStore,
    VecGather,
    VecScatter,
    QzConf,
    QzEncode,
    QzStore,
    QzLoad,
    QzMhm,
    QzMm,
    QzCount,
    NumClasses,
};

/** Stall-attribution buckets (Fig. 4 categories). */
enum class StallKind : std::uint8_t
{
    Frontend, //!< issue-bandwidth cycles (useful work proxy)
    Compute,  //!< ALU dependency chains and FU contention
    Cache,    //!< waiting for data from the cache hierarchy
    Struct,   //!< ROB / LSQ structural back-pressure
    NumKinds,
};

/**
 * Power-of-two FIFO ring buffer: the ROB/LSQ storage. push/pop/front
 * are O(1) with free-running indices masked into a flat array, so the
 * per-instruction dispatch path never allocates. Capacity is fixed at
 * reset() (sized from robEntries/lsqEntries); the grow path exists
 * only for the pathological case of a single op claiming more LSQ
 * slots than the whole queue holds, and is never hit in steady state.
 */
template <typename T>
class FifoRing
{
  public:
    /** Size storage for at least @p minCapacity elements. */
    void
    reset(std::size_t minCapacity)
    {
        const std::size_t cap =
            std::bit_ceil(std::max<std::size_t>(minCapacity, 2));
        buf_.assign(cap, T{});
        mask_ = cap - 1;
        head_ = tail_ = 0;
    }

    QZ_SIM_ALWAYS_INLINE bool empty() const { return head_ == tail_; }
    QZ_SIM_ALWAYS_INLINE std::size_t size() const { return tail_ - head_; }
    QZ_SIM_ALWAYS_INLINE const T &front() const
    {
        return buf_[head_ & mask_];
    }
    QZ_SIM_ALWAYS_INLINE void pop() { ++head_; }

    QZ_SIM_ALWAYS_INLINE void
    push(const T &value)
    {
        if (size() > mask_) [[unlikely]]
            grow();
        buf_[tail_ & mask_] = value;
        ++tail_;
    }

  private:
    QZ_SIM_NOINLINE_COLD void
    grow()
    {
        std::vector<T> wider((mask_ + 1) * 2);
        const std::size_t count = size();
        for (std::size_t i = 0; i < count; ++i)
            wider[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(wider);
        mask_ = buf_.size() - 1;
        head_ = 0;
        tail_ = count;
    }

    std::vector<T> buf_{T{}, T{}};
    std::size_t mask_ = 1;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
};

/**
 * One element of an executeMemRun batch: a contiguous memory op
 * described by value so a run of them can cross the pipeline in a
 * single call.
 */
struct MemOp
{
    OpClass cls;
    std::uint64_t pc;
    Addr addr;
    unsigned bytes;
};

/** The scoreboard core model. */
class Pipeline
{
  public:
    Pipeline(const SystemParams &params, MemorySystem &mem);

    /**
     * Fixed-latency non-memory op. @return result tag.
     *
     * The core overloads take the operand dependencies already joined
     * into one Tag (join is an associative max, so the result is
     * independent of grouping); the initializer_list overloads below
     * are inline sugar that join at the call site, letting the
     * optimizer dissolve the braced-list stack array instead of
     * passing a pointer into it ~once per dynamic instruction.
     */
    Tag executeOp(OpClass cls, Tag dep = Tag{});

    QZ_SIM_ALWAYS_INLINE Tag
    executeOp(OpClass cls, std::initializer_list<Tag> srcs)
    {
        return executeOp(cls, joinSrcs(srcs));
    }

    /**
     * Burst of @p count independent, source-free ops of non-memory
     * class @p cls: observationally identical to calling
     * executeOp(cls, {}) @p count times, but the frontend slots, pool
     * rotation, and retire bookkeeping are computed in closed form
     * when the machine state allows (idle pool, no ROB pressure),
     * falling back to the per-op loop otherwise.
     */
    void executeOpBurst(OpClass cls, unsigned count);

    /**
     * Contiguous memory op covering [addr, addr+bytes).
     * @param pc static site id for the prefetcher.
     */
    Tag executeMem(OpClass cls, std::uint64_t pc, Addr addr,
                   unsigned bytes, Tag dep = Tag{});

    QZ_SIM_ALWAYS_INLINE Tag
    executeMem(OpClass cls, std::uint64_t pc, Addr addr,
               unsigned bytes, std::initializer_list<Tag> srcs)
    {
        return executeMem(cls, pc, addr, bytes, joinSrcs(srcs));
    }

    /**
     * Batched run of contiguous memory ops that all consume the same
     * dependency @p dep. Observationally identical to calling
     * executeMem(op.cls, op.pc, op.addr, op.bytes, dep) once per
     * element in order and joining the returned tags (join is an
     * associative earliest-max, so the grouping cannot matter) — but
     * one call lets the compiler keep the scoreboard state (cycle,
     * ring indices, pool slots) in registers across the whole run
     * instead of reloading it per instruction. The DP inner loops
     * charge a fixed 5-7 load shape per cell, which is where the
     * per-call reload cost concentrated.
     */
    Tag executeMemRun(std::span<const MemOp> ops, Tag dep);

    /**
     * Per-op-tag variant for callers whose downstream dependency
     * chains consume each op's tag individually (the vector register
     * model: each loaded register carries its own readiness). Op i's
     * tag lands in @p tags[i]; charging is byte-identical to per-op
     * executeMem calls in array order.
     */
    void executeMemRun(std::span<const MemOp> ops, Tag dep,
                       std::span<Tag> tags);

    /**
     * Chain of @p count dependent ops of non-memory class @p cls: the
     * first consumes @p dep, each subsequent op consumes its
     * predecessor's result tag. Identical to threading executeOp's
     * return through @p count calls; returns the final tag.
     */
    Tag executeOpChain(OpClass cls, unsigned count, Tag dep);

    /**
     * Indexed memory op (gather/scatter): one cache access per element
     * address, AGU-serialized, one LSQ entry per element.
     */
    Tag executeIndexed(OpClass cls, std::uint64_t pc,
                       std::span<const Addr> addrs, unsigned elemBytes,
                       Tag dep = Tag{});

    QZ_SIM_ALWAYS_INLINE Tag
    executeIndexed(OpClass cls, std::uint64_t pc,
                   std::span<const Addr> addrs, unsigned elemBytes,
                   std::initializer_list<Tag> srcs)
    {
        return executeIndexed(cls, pc, addrs, elemBytes,
                              joinSrcs(srcs));
    }

    /**
     * QUETZAL accelerator op with accelerator-determined latency
     * (QBUFFER port model / count-ALU). Bypasses the cache hierarchy.
     * @param commitSerialized model commit-time execution (QBUFFER
     *        writes): issue waits for all prior ops to complete.
     */
    Tag executeQz(OpClass cls, unsigned latency, Tag dep = Tag{},
                  bool commitSerialized = false);

    QZ_SIM_ALWAYS_INLINE Tag
    executeQz(OpClass cls, unsigned latency,
              std::initializer_list<Tag> srcs,
              bool commitSerialized = false)
    {
        return executeQz(cls, latency, joinSrcs(srcs),
                         commitSerialized);
    }

    /** Charge @p count trivial scalar ALU ops (loop overhead). */
    void chargeScalarOps(unsigned count)
    {
        executeOpBurst(OpClass::ScalarAlu, count);
    }

    /**
     * Insert a frontend bubble of @p cycles (e.g. a branch-mispredict
     * redirect), attributed to @p kind.
     */
    void bubble(unsigned cycles, StallKind kind = StallKind::Frontend);

    /** Current issue cycle (monotonic). */
    Cycle now() const { return cycle_; }

    /**
     * Total execution cycles so far: issue pointer plus in-flight
     * drain. Does not mutate state.
     */
    Cycle totalCycles() const;

    /** Cycles attributed to @p kind. */
    Cycle stallCycles(StallKind kind) const
    {
        return stalls_[static_cast<std::size_t>(kind)];
    }

    /** Dynamic instruction count per class. */
    std::uint64_t opCount(OpClass cls) const
    {
        return opCounts_[static_cast<std::size_t>(cls)];
    }

    /** Total dynamic instructions. */
    std::uint64_t instructions() const { return instructions_; }

    /** Bursts the closed-form path handled (host-perf observability). */
    std::uint64_t burstFastPaths() const { return burstFastPaths_; }

    MemorySystem &mem() { return mem_; }
    const SystemParams &params() const { return params_; }

  private:
    /** Join a braced source list into one dependency tag. */
    QZ_SIM_ALWAYS_INLINE static Tag
    joinSrcs(std::initializer_list<Tag> srcs)
    {
        Tag dep{};
        for (const Tag &src : srcs)
            dep = Tag::join(dep, src);
        return dep;
    }

    /** Latency and functional-unit pool of a non-memory op class. */
    struct OpSpec
    {
        unsigned latency = 0;
        std::vector<Cycle> *pool = nullptr;
    };

    /**
     * Class -> spec, a flat array built once at construction: the
     * switch it replaces sat on the once-per-instruction executeOp
     * path. Classes with no executeOp spec (memory, QUETZAL) keep a
     * null pool and panic out of line.
     */
    QZ_SIM_ALWAYS_INLINE OpSpec
    opSpec(OpClass cls)
    {
        const OpSpec spec = specs_[static_cast<std::size_t>(cls)];
        if (spec.pool == nullptr) [[unlikely]]
            badOpClass(cls);
        return spec;
    }
    [[noreturn]] QZ_SIM_NOINLINE_COLD void badOpClass(OpClass cls);

    /** executeMem body without the host-phase scope: executeMemRun
     *  opens one scope for the whole run and invokes this per op. */
    Tag memOpImpl(OpClass cls, std::uint64_t pc, Addr addr,
                  unsigned bytes, Tag dep);

    /** One in-flight instruction tracked for in-order retirement. */
    struct RobEntry
    {
        Cycle done;
        bool mem;
    };

    /** Record an issue-pointer advance from @p from to @p to. */
    QZ_SIM_ALWAYS_INLINE void
    attribute(Cycle from, Cycle to, StallKind kind)
    {
        if (to > from)
            stalls_[static_cast<std::size_t>(kind)] += to - from;
    }

    /** Advance frontend by one instruction slot. */
    QZ_SIM_ALWAYS_INLINE Cycle
    frontendAdvance()
    {
        if (++slotInCycle_ >= params_.core.issueWidth) {
            slotInCycle_ = 0;
            attribute(cycle_, cycle_ + 1, StallKind::Frontend);
            ++cycle_;
        }
        return cycle_;
    }

    /**
     * In-order dispatch: claim a ROB slot (and @p lsqNeed LSQ slots),
     * stalling the dispatch pointer while the queues are full, then
     * return the out-of-order execution start cycle — the later of
     * dispatch, operand readiness, and functional-unit availability.
     * The chosen unit from @p pool is occupied for @p busy cycles in
     * the same scan that found it (no second pool pass). Younger
     * independent instructions are NOT delayed by this op's operand
     * waits; only queue back-pressure moves the dispatch pointer.
     */
    QZ_SIM_ALWAYS_INLINE Cycle
    resolveIssue(Tag dep, std::vector<Cycle> &pool, Cycle busy,
                 std::size_t lsqNeed)
    {
        const Cycle front = frontendAdvance();
        Cycle t = front;

        // In-order dispatch: a full ROB stalls the pointer until the
        // oldest in-flight op retires; the stall is attributed to what
        // that op was waiting on (memory -> cache access, else
        // compute).
        while (!rob_.empty() && rob_.front().done <= t)
            rob_.pop();
        while (rob_.size() + 1 > params_.core.robEntries &&
               !rob_.empty()) {
            const RobEntry head = rob_.front();
            rob_.pop();
            if (head.done > t) {
                attribute(t, head.done,
                          head.mem ? StallKind::Cache
                                   : StallKind::Compute);
                t = head.done;
            }
        }
        if (lsqNeed > 0) {
            while (!lsq_.empty() && lsq_.front() <= t)
                lsq_.pop();
            while (lsq_.size() + lsqNeed > params_.core.lsqEntries &&
                   !lsq_.empty()) {
                const Cycle head = lsq_.front();
                lsq_.pop();
                if (head > t) {
                    // A full LSQ means dispatch waits on an
                    // outstanding memory access: that is cache-access
                    // time (the gather/scatter occupancy effect of
                    // Section II-G).
                    attribute(t, head, StallKind::Cache);
                    t = head;
                }
            }
        }
        if (t > cycle_)
            cycle_ = t;

        // Out-of-order execution start: operands and functional-unit
        // availability delay only this op (and its dependents), not
        // the dispatch of younger instructions.
        Cycle start = std::max(t, dep.ready);

        // Reserve the earliest-free unit in one scan: the unit with
        // the minimum free cycle both defines the start
        // (max(free, start)) and is the one occupied, so finding and
        // claiming it is fused.
        Cycle *best = pool.data();
        for (std::size_t i = 1; i < pool.size(); ++i)
            if (pool[i] < *best)
                best = &pool[i];
        if (*best > start)
            start = *best;
        *best = start + busy;
        return start;
    }

    /**
     * Retire bookkeeping. @p lsqCompletion, when non-zero, lets a
     * store's LSQ (store-buffer) entry outlive its ROB retirement.
     */
    QZ_SIM_ALWAYS_INLINE void
    finishOp(OpClass cls, Cycle completion, std::size_t lsqNeed,
             bool isMem, Cycle lsqCompletion = 0)
    {
        rob_.push(RobEntry{completion, isMem});
        const Cycle lsqDone =
            lsqCompletion ? lsqCompletion : completion;
        for (std::size_t i = 0; i < lsqNeed; ++i)
            lsq_.push(lsqDone);
        if (completion > maxCompletion_) {
            maxCompletion_ = completion;
            maxCompletionFromMem_ = isMem;
        }
        ++opCounts_[static_cast<std::size_t>(cls)];
        ++instructions_;
    }

    SystemParams params_;
    MemorySystem &mem_;

    Cycle cycle_ = 0;          //!< issue pointer
    unsigned slotInCycle_ = 0; //!< frontend slots used this cycle

    std::vector<Cycle> vecPipes_;
    std::vector<Cycle> scalarPipes_;
    std::vector<Cycle> aguPipes_;

    /** opSpec() table; entries for unsupported classes stay null. */
    std::array<OpSpec, static_cast<std::size_t>(OpClass::NumClasses)>
        specs_{};

    FifoRing<RobEntry> rob_;
    FifoRing<Cycle> lsq_;

    /** Scratch lane-latency buffer for executeIndexed (reused across
     *  bursts so gathers do not allocate per instruction). */
    std::vector<unsigned> laneLatencies_;

    Cycle maxCompletion_ = 0;
    bool maxCompletionFromMem_ = false;

    std::array<Cycle, static_cast<std::size_t>(StallKind::NumKinds)>
        stalls_{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(OpClass::NumClasses)>
        opCounts_{};
    std::uint64_t instructions_ = 0;
    std::uint64_t burstFastPaths_ = 0;
};

/** True for classes that visit the cache hierarchy. */
inline bool
isMemClass(OpClass cls)
{
    switch (cls) {
      case OpClass::ScalarLoad:
      case OpClass::ScalarStore:
      case OpClass::VecLoad:
      case OpClass::VecStore:
      case OpClass::VecGather:
      case OpClass::VecScatter:
        return true;
      default:
        return false;
    }
}

/** Human-readable class name (for stat dumps). */
const char *opClassName(OpClass cls);

} // namespace quetzal::sim

#endif // QUETZAL_SIM_PIPELINE_HPP
