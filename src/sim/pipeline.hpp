/**
 * @file
 * Scoreboard timing model of an A64FX-like out-of-order vector core.
 *
 * Algorithms do not run *on* this model; the ISA facade (isa/vectorunit)
 * calls into it once per dynamic instruction. The model tracks:
 *
 *  - frontend throughput (issueWidth instructions/cycle);
 *  - operand readiness (each produced value carries a ready tag);
 *  - functional-unit contention (2 vector pipes, 2 scalar pipes, 2 AGUs);
 *  - ROB and LSQ occupancy with in-order retirement;
 *  - per-element address generation + cache access for scatter/gather,
 *    with the A64FX's >= 19-cycle L1-hit floor (Section II-G);
 *  - commit-time (non-speculative) execution for QBUFFER writes
 *    (Section IV-E).
 *
 * Every cycle the issue pointer advances is attributed to one of four
 * causes, which directly produces the Fig. 4 execution-time breakdown:
 * frontend, compute dependency/FU, cache access (waiting on data from a
 * memory instruction), or structural ROB/LSQ back-pressure.
 */
#ifndef QUETZAL_SIM_PIPELINE_HPP
#define QUETZAL_SIM_PIPELINE_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "sim/memsystem.hpp"
#include "sim/params.hpp"

namespace quetzal::sim {

/** Simulated cycle count. */
using Cycle = std::uint64_t;

/** Readiness tag carried by every produced value. */
struct Tag
{
    Cycle ready = 0;  //!< cycle the value becomes available
    bool mem = false; //!< produced by a memory (cache-visiting) op

    /** Join two dependencies, keeping the later one. */
    static Tag
    join(Tag a, Tag b)
    {
        if (b.ready > a.ready)
            return b;
        return a;
    }
};

/** Dynamic instruction classes the scoreboard distinguishes. */
enum class OpClass : std::uint8_t
{
    ScalarAlu,
    ScalarLoad,
    ScalarStore,
    Branch,
    VecAlu,
    VecCmp,
    VecPred,
    VecReduce,
    VecLoad,
    VecStore,
    VecGather,
    VecScatter,
    QzConf,
    QzEncode,
    QzStore,
    QzLoad,
    QzMhm,
    QzMm,
    QzCount,
    NumClasses,
};

/** Stall-attribution buckets (Fig. 4 categories). */
enum class StallKind : std::uint8_t
{
    Frontend, //!< issue-bandwidth cycles (useful work proxy)
    Compute,  //!< ALU dependency chains and FU contention
    Cache,    //!< waiting for data from the cache hierarchy
    Struct,   //!< ROB / LSQ structural back-pressure
    NumKinds,
};

/** The scoreboard core model. */
class Pipeline
{
  public:
    Pipeline(const SystemParams &params, MemorySystem &mem);

    /** Fixed-latency non-memory op. @return result tag. */
    Tag executeOp(OpClass cls, std::initializer_list<Tag> srcs);

    /**
     * Contiguous memory op covering [addr, addr+bytes).
     * @param pc static site id for the prefetcher.
     */
    Tag executeMem(OpClass cls, std::uint64_t pc, Addr addr,
                   unsigned bytes, std::initializer_list<Tag> srcs);

    /**
     * Indexed memory op (gather/scatter): one cache access per element
     * address, AGU-serialized, one LSQ entry per element.
     */
    Tag executeIndexed(OpClass cls, std::uint64_t pc,
                       std::span<const Addr> addrs, unsigned elemBytes,
                       std::initializer_list<Tag> srcs);

    /**
     * QUETZAL accelerator op with accelerator-determined latency
     * (QBUFFER port model / count-ALU). Bypasses the cache hierarchy.
     * @param commitSerialized model commit-time execution (QBUFFER
     *        writes): issue waits for all prior ops to complete.
     */
    Tag executeQz(OpClass cls, unsigned latency,
                  std::initializer_list<Tag> srcs,
                  bool commitSerialized = false);

    /** Charge @p count trivial scalar ALU ops (loop overhead). */
    void chargeScalarOps(unsigned count);

    /**
     * Insert a frontend bubble of @p cycles (e.g. a branch-mispredict
     * redirect), attributed to @p kind.
     */
    void bubble(unsigned cycles, StallKind kind = StallKind::Frontend);

    /** Current issue cycle (monotonic). */
    Cycle now() const { return cycle_; }

    /**
     * Total execution cycles so far: issue pointer plus in-flight
     * drain. Does not mutate state.
     */
    Cycle totalCycles() const;

    /** Cycles attributed to @p kind. */
    Cycle stallCycles(StallKind kind) const
    {
        return stalls_[static_cast<std::size_t>(kind)];
    }

    /** Dynamic instruction count per class. */
    std::uint64_t opCount(OpClass cls) const
    {
        return opCounts_[static_cast<std::size_t>(cls)];
    }

    /** Total dynamic instructions. */
    std::uint64_t instructions() const { return instructions_; }

    MemorySystem &mem() { return mem_; }
    const SystemParams &params() const { return params_; }

  private:
    /** Advance frontend by one instruction slot. */
    Cycle frontendAdvance();

    /** Earliest cycle a unit from @p pool is free at or after @p t. */
    Cycle unitFree(std::vector<Cycle> &pool, Cycle t) const;

    /** Occupy the pool unit chosen by unitFree for @p busy cycles. */
    void unitOccupy(std::vector<Cycle> &pool, Cycle start, Cycle busy);

    /** One in-flight instruction tracked for in-order retirement. */
    struct RobEntry
    {
        Cycle done;
        bool mem;
    };

    /** Record an issue-pointer advance from @p from to @p to. */
    void attribute(Cycle from, Cycle to, StallKind kind);

    /**
     * In-order dispatch: claim a ROB slot (and @p lsqNeed LSQ slots),
     * stalling the dispatch pointer while the queues are full, then
     * return the out-of-order execution start cycle — the later of
     * dispatch, operand readiness, functional-unit availability, and
     * (for commit-serialized ops) all prior completions. Younger
     * independent instructions are NOT delayed by this op's operand
     * waits; only queue back-pressure moves the dispatch pointer.
     */
    Cycle resolveIssue(std::initializer_list<Tag> srcs,
                       std::vector<Cycle> &pool, std::size_t lsqNeed,
                       bool commitSerialized);

    /**
     * Retire bookkeeping. @p lsqCompletion, when non-zero, lets a
     * store's LSQ (store-buffer) entry outlive its ROB retirement.
     */
    void finishOp(OpClass cls, Cycle completion, std::size_t lsqNeed,
                  bool isMem, Cycle lsqCompletion = 0);

    SystemParams params_;
    MemorySystem &mem_;

    Cycle cycle_ = 0;          //!< issue pointer
    unsigned slotInCycle_ = 0; //!< frontend slots used this cycle

    std::vector<Cycle> vecPipes_;
    std::vector<Cycle> scalarPipes_;
    std::vector<Cycle> aguPipes_;

    std::deque<RobEntry> rob_;
    std::deque<Cycle> lsq_;

    /** Scratch lane-latency buffer for executeIndexed (reused across
     *  bursts so gathers do not allocate per instruction). */
    std::vector<unsigned> laneLatencies_;

    Cycle maxCompletion_ = 0;
    bool maxCompletionFromMem_ = false;

    std::array<Cycle, static_cast<std::size_t>(StallKind::NumKinds)>
        stalls_{};
    std::array<std::uint64_t,
               static_cast<std::size_t>(OpClass::NumClasses)>
        opCounts_{};
    std::uint64_t instructions_ = 0;
};

/** True for classes that visit the cache hierarchy. */
inline bool
isMemClass(OpClass cls)
{
    switch (cls) {
      case OpClass::ScalarLoad:
      case OpClass::ScalarStore:
      case OpClass::VecLoad:
      case OpClass::VecStore:
      case OpClass::VecGather:
      case OpClass::VecScatter:
        return true;
      default:
        return false;
    }
}

/** Human-readable class name (for stat dumps). */
const char *opClassName(OpClass cls);

} // namespace quetzal::sim

#endif // QUETZAL_SIM_PIPELINE_HPP
