/**
 * @file
 * Multicore throughput composition (Fig. 13b).
 *
 * The workloads are embarrassingly parallel across sequence pairs, so
 * an N-core run is N single-core streams contending for shared L2/DRAM
 * bandwidth. We measure a core's DRAM demand (bytes per cycle) in a
 * single-core simulation, then compose N cores under a bandwidth
 * roofline: small working sets scale linearly; once aggregate demand
 * exceeds the HBM2 peak the scaling flattens, which is exactly the
 * sub-linear long-read behaviour the paper reports.
 */
#ifndef QUETZAL_SIM_MULTICORE_HPP
#define QUETZAL_SIM_MULTICORE_HPP

#include <cstdint>

#include "sim/params.hpp"

namespace quetzal::sim {

/** Single-core measurement used as the composition input. */
struct CoreDemand
{
    std::uint64_t cycles = 0;    //!< single-core execution cycles
    std::uint64_t dramBytes = 0; //!< DRAM traffic during those cycles

    double
    bytesPerCycle() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(dramBytes) /
                                 static_cast<double>(cycles);
    }
};

/**
 * Speedup of @p cores identical streams over one stream, under the
 * shared-bandwidth roofline of @p params.
 */
double multicoreSpeedup(const CoreDemand &demand, unsigned cores,
                        const SystemParams &params);

/**
 * Aggregate throughput (work items per cycle) for @p cores streams,
 * where one stream finishes @p itemsPerStream items in demand.cycles.
 */
double multicoreThroughput(const CoreDemand &demand,
                           std::uint64_t itemsPerStream, unsigned cores,
                           const SystemParams &params);

} // namespace quetzal::sim

#endif // QUETZAL_SIM_MULTICORE_HPP
