/**
 * @file
 * Tag-only set-associative cache timing model with LRU replacement.
 *
 * Functional data lives in host memory (the algorithms operate on their
 * real arrays); the cache model only tracks which lines would be
 * resident, gem5-classic style, so timing and functional state stay
 * decoupled.
 */
#ifndef QUETZAL_SIM_CACHE_HPP
#define QUETZAL_SIM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/params.hpp"

namespace quetzal::sim {

/** Physical-address alias; we use host pointers as addresses. */
using Addr = std::uint64_t;

/** A set-associative, LRU, tag-only cache. */
class Cache
{
  public:
    /**
     * @param name stat-group name, e.g. "l1d".
     * @param params geometry and latency.
     */
    Cache(std::string name, const CacheParams &params);

    /**
     * Probe and update the cache for a (timing) access.
     * @return true on hit. On miss the line is filled.
     */
    bool access(Addr addr);

    /** Probe without fill (used by the prefetcher to test residency). */
    bool contains(Addr addr) const;

    /** Insert a line without counting it as a demand access. */
    void fill(Addr addr);

    /** Drop all lines and leave stats intact. */
    void invalidateAll();

    unsigned loadToUse() const { return params_.loadToUse; }
    unsigned lineBytes() const { return params_.lineBytes; }

    std::uint64_t hits() const { return hits_->value(); }
    std::uint64_t misses() const { return misses_->value(); }

    StatGroup &stats() { return stats_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineOf(Addr addr) const { return addr / params_.lineBytes; }
    std::size_t setOf(std::uint64_t line) const { return line % numSets_; }

    /** Find the way holding @p line in its set, or nullptr. */
    Way *find(std::uint64_t line);
    const Way *find(std::uint64_t line) const;

    /** Victim selection: invalid way first, else LRU. */
    Way &victim(std::uint64_t line);

    CacheParams params_;
    std::size_t numSets_;
    std::vector<Way> ways_;       //!< numSets_ x associativity
    std::uint64_t useClock_ = 0;  //!< LRU timestamp source

    StatGroup stats_;
    Stat *hits_;
    Stat *misses_;
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_CACHE_HPP
