/**
 * @file
 * Tag-only set-associative cache timing model with exact LRU
 * replacement.
 *
 * Functional data lives in host memory (the algorithms operate on their
 * real arrays); the cache model only tracks which lines would be
 * resident, gem5-classic style, so timing and functional state stay
 * decoupled.
 *
 * LRU is implemented as an intrusively MRU-ordered per-set way list
 * instead of per-way timestamps: victim selection is O(1) (the list
 * tail), the tag array is contiguous per set for the probe scan, and
 * re-touching the MRU line — the overwhelmingly common case on the
 * simulator hot path — is a single compare with no set walk. The
 * replacement decisions are bit-identical to scanning 8-byte
 * timestamps (tests/test_sim.cpp, ExactLruEquivalence, drives both
 * policies with a randomized trace and asserts identical hit/miss/
 * eviction sequences).
 */
#ifndef QUETZAL_SIM_CACHE_HPP
#define QUETZAL_SIM_CACHE_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "sim/params.hpp"

namespace quetzal::sim {

/**
 * Force-inline marker for the per-access fast paths below: access()
 * and contains() are entered once per demand request (~400M per full
 * sweep) from MemorySystem's inlined access chain, and the MRU-hit
 * path is a handful of instructions once inlined. The optimizer's
 * size heuristics keep these out of line on their own, so the hint is
 * load-bearing (docs/SIMULATOR.md, "Host performance").
 */
#if defined(__GNUC__) || defined(__clang__)
#define QZ_CACHE_ALWAYS_INLINE __attribute__((always_inline)) inline
#else
#define QZ_CACHE_ALWAYS_INLINE inline
#endif

/** Physical-address alias; we use host pointers as addresses. */
using Addr = std::uint64_t;

/** A set-associative, LRU, tag-only cache. */
class Cache
{
  public:
    /**
     * @param name stat-group name, e.g. "l1d".
     * @param params geometry and latency.
     */
    Cache(std::string name, const CacheParams &params);

    /**
     * Probe and update the cache for a (timing) access.
     * @return true on hit. On miss the line is filled.
     *
     * The MRU-way re-touch — the overwhelmingly common case on the
     * simulator hot path — is resolved inline; everything else
     * (non-MRU hits needing a recency rotation, misses needing an
     * insert) takes the out-of-line rest path.
     */
    QZ_CACHE_ALWAYS_INLINE bool
    access(Addr addr)
    {
        const std::uint64_t line = lineOf(addr);
        const std::size_t set = setOf(line);
        const std::uint64_t *tags =
            tags_.data() + set * params_.associativity;
        if (valid_[set] > 0 && tags[0] == line) {
            ++*hits_;
            return true;
        }
        return accessRest(set, line);
    }

    /** Probe without fill (used by the prefetcher to test residency). */
    QZ_CACHE_ALWAYS_INLINE bool
    contains(Addr addr) const
    {
        const std::uint64_t line = lineOf(addr);
        const std::size_t set = setOf(line);
        const std::uint64_t *tags =
            tags_.data() + set * params_.associativity;
        const unsigned count = valid_[set];
        for (unsigned i = 0; i < count; ++i)
            if (tags[i] == line)
                return true;
        return false;
    }

    /** True when @p a and @p b fall on the same cache line. */
    QZ_CACHE_ALWAYS_INLINE bool
    sameLine(Addr a, Addr b) const
    {
        return ((a ^ b) >> lineShift_) == 0;
    }

    /** Insert a line without counting it as a demand access. */
    void fill(Addr addr);

    /** Drop all lines and leave stats intact. */
    void invalidateAll();

    unsigned loadToUse() const { return params_.loadToUse; }
    unsigned lineBytes() const { return params_.lineBytes; }

    std::uint64_t hits() const { return hits_->value(); }
    std::uint64_t misses() const { return misses_->value(); }

    StatGroup &stats() { return stats_; }

  private:
    // Hot-path index math avoids hardware division: the line size is
    // asserted a power of two (shift), and the set count is one for
    // every realistic geometry (mask); the modulo fallback keeps odd
    // set counts exact. Same quotients/remainders either way.
    std::uint64_t lineOf(Addr addr) const { return addr >> lineShift_; }
    std::size_t setOf(std::uint64_t line) const
    {
        return setsPow2_ ? (line & (numSets_ - 1)) : (line % numSets_);
    }

    /**
     * Probe the set for @p line and, on a hit, rotate it to the MRU
     * slot. @return the pre-rotation MRU position, or kMiss.
     */
    unsigned touch(std::size_t set, std::uint64_t line);

    /**
     * access() continuation after the inline MRU-way probe missed:
     * scan the rest of the set (hit -> rotate to MRU), else count the
     * miss and insert. Same hit/miss/eviction sequence as the
     * monolithic access() this splits.
     */
    bool accessRest(std::size_t set, std::uint64_t line);

    /**
     * Insert @p line at the MRU slot of @p set after a probe miss.
     * While the set has unfilled ways the occupancy grows (matching
     * timestamp-LRU's first-invalid-way victim choice); once full, the
     * LRU slot — the set's last valid entry — falls off the end.
     */
    void insert(std::size_t set, std::uint64_t line);

    static constexpr unsigned kMiss = ~0u;

    CacheParams params_;
    std::size_t numSets_;
    unsigned lineShift_;
    bool setsPow2_;

    /**
     * Line tags, numSets_ x associativity, each set's tags contiguous
     * and kept in MRU->LRU order: tags_[set*assoc] is the set's MRU
     * line and tags_[set*assoc + valid_[set] - 1] its LRU (= victim).
     * Re-touching the MRU line is therefore a single compare, probes
     * scan forward over recency-sorted tags, and victim selection
     * reads the last valid slot.
     */
    std::vector<std::uint64_t> tags_;
    /** Valid (resident) lines per set. */
    std::vector<std::uint8_t> valid_;

    StatGroup stats_;
    Stat *hits_;
    Stat *misses_;
};

} // namespace quetzal::sim

#endif // QUETZAL_SIM_CACHE_HPP
