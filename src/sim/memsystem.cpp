#include "sim/memsystem.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "sim/hostphase.hpp"

namespace quetzal::sim {

MemorySystem::MemorySystem(const SystemParams &params)
    : params_(params), l1d_("l1d", params.l1d), l2_("l2", params.l2),
      l1Prefetcher_(params.prefetcher, l1d_), stats_("mem")
{
    requests_ = &stats_.stat("requests", "demand requests to L1D");
    l2Requests_ = &stats_.stat("l2_requests", "requests that reached L2");
    dramRequests_ = &stats_.stat("dram_requests",
                                 "requests that reached DRAM");
    dramBytes_ = &stats_.stat("dram_bytes", "bytes fetched from DRAM");
    translateFast_ = &stats_.stat(
        "translate_fast", "translations served by the MRU entry");
    l1LineShift_ = floorLog2(params.l1d.lineBytes);
    directory_.resize(64, nullptr);
}

namespace {

/** Finalizer-style mix (splitmix64) for the chunk directory. */
inline std::uint64_t
mixChunkIndex(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
MemorySystem::growDirectory()
{
    std::vector<Chunk *> grown(directory_.size() * 2, nullptr);
    const std::size_t mask = grown.size() - 1;
    for (const auto &chunk : chunks_) {
        std::size_t slot = mixChunkIndex(chunk->base) & mask;
        while (grown[slot] != nullptr)
            slot = (slot + 1) & mask;
        grown[slot] = chunk.get();
    }
    directory_ = std::move(grown);
}

MemorySystem::Chunk *
MemorySystem::chunkFor(Addr chunkIdx)
{
    if (mruChunk_ != nullptr && mruChunk_->base == chunkIdx)
        return mruChunk_;
    const std::size_t mask = directory_.size() - 1;
    std::size_t slot = mixChunkIndex(chunkIdx) & mask;
    while (Chunk *c = directory_[slot]) {
        if (c->base == chunkIdx) {
            mruChunk_ = c;
            return c;
        }
        slot = (slot + 1) & mask;
    }
    // First host access anywhere in this 16 KB span: allocate the
    // chunk (zero stamps = every entry stale) and publish it.
    auto owned = std::make_unique<Chunk>();
    owned->base = chunkIdx;
    Chunk *c = owned.get();
    chunks_.push_back(std::move(owned));
    directory_[slot] = c;
    if (++directoryUsed_ * 4 >= directory_.size() * 3)
        growDirectory();
    mruChunk_ = c;
    return c;
}

Addr
MemorySystem::translateMiss(Addr hostAddr)
{
    const Addr par = hostAddr / kParagraphBytes;
    const Addr offset = hostAddr % kParagraphBytes;
    Chunk *chunk = chunkFor(par >> kChunkShift);
    const std::size_t idx = par & (kChunkParagraphs - 1);
    // First touch this epoch: hand out the next simulated paragraph,
    // exactly as the retired hash map's try_emplace did. The stamp
    // compare replaces membership in the per-epoch map.
    if (chunk->stamp[idx] != epoch_) {
        chunk->stamp[idx] = epoch_;
        chunk->simPar[idx] = nextParagraph_++;
    }
    const Addr simPar = chunk->simPar[idx];
    tlb_[static_cast<std::size_t>(par) & (kTlbEntries - 1)] =
        TlbEntry{par, simPar, epoch_};
    return simPar * kParagraphBytes + offset;
}

unsigned
MemorySystem::missToL2(Addr addr)
{
    ++*l2Requests_;
    if (l2_.access(addr)) {
        l1d_.fill(addr);
        return l2_.loadToUse();
    }

    ++*dramRequests_;
    *dramBytes_ += l2_.lineBytes();
    l2_.fill(addr);
    l1d_.fill(addr);
    return params_.dram.latencyCycles;
}

unsigned
MemorySystem::accessSpanning(std::uint64_t pc, Addr addr, Addr first,
                             Addr last)
{
    // Walk the host footprint paragraph by paragraph (the translation
    // granularity), probing each distinct simulated line once. The
    // line split is decided by simulated addresses so that it, too,
    // is independent of where the host allocator placed the data.
    // Line-index math is a shift (line size is a power of two): a
    // hardware divide here would be the single hottest instruction of
    // the whole simulator.
    //
    // translate()'s previous-paragraph bookkeeping is hoisted out of
    // the walk: consecutive paragraphs always differ, so only the
    // first can re-touch the prior access's paragraph (the
    // translate_fast definition), and the tracker ends up holding the
    // last paragraph — exactly the state per-paragraph translate()
    // calls would leave behind.
    if (first == mruPar_)
        ++*translateFast_;
    mruPar_ = last;
    const unsigned shift = l1LineShift_;
    unsigned worst = 0;
    Addr prevLine = ~Addr{0};
    for (Addr p = first; p <= last; ++p) {
        const Addr offset = p == first ? addr % kParagraphBytes : 0;
        const TlbEntry &e =
            tlb_[static_cast<std::size_t>(p) & (kTlbEntries - 1)];
        const Addr sim = (e.par == p && e.epoch == epoch_)
            ? e.simPar * kParagraphBytes + offset
            : translateMiss(p * kParagraphBytes + offset);
        const Addr simLine = sim >> shift;
        if (simLine != prevLine) {
            worst = std::max(worst,
                             accessLine(pc, simLine << shift));
            prevLine = simLine;
        }
    }
    return worst;
}

void
MemorySystem::accessVector(std::uint64_t pc, std::span<const Addr> addrs,
                           unsigned elemBytes, bool write,
                           std::span<unsigned> latencies)
{
    const HostPhase::Scope scope(HostPhase::Mem);
    fatal_if(latencies.size() < addrs.size(),
             "accessVector latency span ({}) shorter than lane count ({})",
             latencies.size(), addrs.size());
    // Lane order is the element-serial order executeIndexed used when
    // it called access() per lane, so demand counts, prefetcher
    // training, and recency updates are bit-identical; batching only
    // keeps the translation/MRU fast paths warm across the burst.
    for (std::size_t i = 0; i < addrs.size(); ++i)
        latencies[i] = accessOne(pc, addrs[i], elemBytes, write);
}

} // namespace quetzal::sim
