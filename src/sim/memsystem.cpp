#include "sim/memsystem.hpp"

#include <algorithm>

namespace quetzal::sim {

MemorySystem::MemorySystem(const SystemParams &params)
    : params_(params), l1d_("l1d", params.l1d), l2_("l2", params.l2),
      l1Prefetcher_(params.prefetcher, l1d_), stats_("mem")
{
    requests_ = &stats_.stat("requests", "demand requests to L1D");
    l2Requests_ = &stats_.stat("l2_requests", "requests that reached L2");
    dramRequests_ = &stats_.stat("dram_requests",
                                 "requests that reached DRAM");
    dramBytes_ = &stats_.stat("dram_bytes", "bytes fetched from DRAM");
}

unsigned
MemorySystem::accessLine(std::uint64_t pc, Addr addr)
{
    ++*requests_;
    l1Prefetcher_.observe(pc, addr);
    if (l1d_.access(addr))
        return l1d_.loadToUse();

    ++*l2Requests_;
    if (l2_.access(addr)) {
        l1d_.fill(addr);
        return l2_.loadToUse();
    }

    ++*dramRequests_;
    *dramBytes_ += l2_.lineBytes();
    l2_.fill(addr);
    l1d_.fill(addr);
    return params_.dram.latencyCycles;
}

unsigned
MemorySystem::access(std::uint64_t pc, Addr addr, unsigned bytes,
                     bool write)
{
    // Stores are write-allocate and, for timing purposes, behave like
    // loads (the LSQ hides store latency; the occupancy cost is modeled
    // in the pipeline).
    (void)write;
    const unsigned line = l1d_.lineBytes();
    unsigned worst = 0;
    const Addr first = addr / line;
    const Addr last = (addr + std::max(1u, bytes) - 1) / line;
    for (Addr l = first; l <= last; ++l)
        worst = std::max(worst, accessLine(pc, l * line));
    return worst;
}

} // namespace quetzal::sim
