#include "sim/memsystem.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "sim/hostphase.hpp"

namespace quetzal::sim {

MemorySystem::MemorySystem(const SystemParams &params)
    : params_(params), l1d_("l1d", params.l1d), l2_("l2", params.l2),
      l1Prefetcher_(params.prefetcher, l1d_), stats_("mem")
{
    requests_ = &stats_.stat("requests", "demand requests to L1D");
    l2Requests_ = &stats_.stat("l2_requests", "requests that reached L2");
    dramRequests_ = &stats_.stat("dram_requests",
                                 "requests that reached DRAM");
    dramBytes_ = &stats_.stat("dram_bytes", "bytes fetched from DRAM");
    translateFast_ = &stats_.stat(
        "translate_fast", "translations served by the MRU entry");
    l1LineShift_ = floorLog2(params.l1d.lineBytes);
    directory_.resize(64, nullptr);
}

namespace {

/** Finalizer-style mix (splitmix64) for the chunk directory. */
inline std::uint64_t
mixChunkIndex(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

void
MemorySystem::growDirectory()
{
    std::vector<Chunk *> grown(directory_.size() * 2, nullptr);
    const std::size_t mask = grown.size() - 1;
    for (const auto &chunk : chunks_) {
        std::size_t slot = mixChunkIndex(chunk->base) & mask;
        while (grown[slot] != nullptr)
            slot = (slot + 1) & mask;
        grown[slot] = chunk.get();
    }
    directory_ = std::move(grown);
}

MemorySystem::Chunk *
MemorySystem::chunkFor(Addr chunkIdx)
{
    if (mruChunk_ != nullptr && mruChunk_->base == chunkIdx)
        return mruChunk_;
    const std::size_t mask = directory_.size() - 1;
    std::size_t slot = mixChunkIndex(chunkIdx) & mask;
    while (Chunk *c = directory_[slot]) {
        if (c->base == chunkIdx) {
            mruChunk_ = c;
            return c;
        }
        slot = (slot + 1) & mask;
    }
    // First host access anywhere in this 16 KB span: allocate the
    // chunk (zero stamps = every entry stale) and publish it.
    auto owned = std::make_unique<Chunk>();
    owned->base = chunkIdx;
    Chunk *c = owned.get();
    chunks_.push_back(std::move(owned));
    directory_[slot] = c;
    if (++directoryUsed_ * 4 >= directory_.size() * 3)
        growDirectory();
    mruChunk_ = c;
    return c;
}

Addr
MemorySystem::translate(Addr hostAddr)
{
    const Addr par = hostAddr / kParagraphBytes;
    const Addr offset = hostAddr % kParagraphBytes;
    // MRU translation cache: sequential streams re-touch the same
    // paragraph for (up to) 16 consecutive byte addresses, and a
    // gather burst over one table stays within a paragraph run.
    // (mruPar_ is the kNoParagraph sentinel when invalid, so one
    // compare covers both validity and match.)
    if (par == mruPar_) {
        ++*translateFast_;
        return mruSimPar_ * kParagraphBytes + offset;
    }
    Chunk *chunk = chunkFor(par >> kChunkShift);
    const std::size_t idx = par & (kChunkParagraphs - 1);
    // First touch this epoch: hand out the next simulated paragraph,
    // exactly as the retired hash map's try_emplace did. The stamp
    // compare replaces membership in the per-epoch map.
    if (chunk->stamp[idx] != epoch_) {
        chunk->stamp[idx] = epoch_;
        chunk->simPar[idx] = nextParagraph_++;
    }
    mruPar_ = par;
    mruSimPar_ = chunk->simPar[idx];
    return mruSimPar_ * kParagraphBytes + offset;
}

unsigned
MemorySystem::accessLine(std::uint64_t pc, Addr addr)
{
    ++*requests_;
    l1Prefetcher_.observe(pc, addr);
    if (l1d_.access(addr))
        return l1d_.loadToUse();

    ++*l2Requests_;
    if (l2_.access(addr)) {
        l1d_.fill(addr);
        return l2_.loadToUse();
    }

    ++*dramRequests_;
    *dramBytes_ += l2_.lineBytes();
    l2_.fill(addr);
    l1d_.fill(addr);
    return params_.dram.latencyCycles;
}

unsigned
MemorySystem::access(std::uint64_t pc, Addr addr, unsigned bytes,
                     bool write)
{
    const HostPhase::Scope scope(HostPhase::Mem);
    return accessOne(pc, addr, bytes, write);
}

unsigned
MemorySystem::accessOne(std::uint64_t pc, Addr addr, unsigned bytes,
                        bool write)
{
    // Stores are write-allocate and, for timing purposes, behave like
    // loads (the LSQ hides store latency; the occupancy cost is modeled
    // in the pipeline).
    (void)write;
    // Walk the host footprint paragraph by paragraph (the translation
    // granularity), probing each distinct simulated line once. The
    // line split is decided by simulated addresses so that it, too,
    // is independent of where the host allocator placed the data.
    // Line-index math is a shift (line size is a power of two): a
    // hardware divide here would be the single hottest instruction of
    // the whole simulator.
    const unsigned shift = l1LineShift_;
    const Addr first = addr / kParagraphBytes;
    const Addr last =
        (addr + std::max(1u, bytes) - 1) / kParagraphBytes;
    // Most requests (scalar loads/stores, gather elements) fit inside
    // one paragraph: one translation, one line probe, no loop state.
    if (first == last) {
        const Addr simLine = translate(addr) >> shift;
        return accessLine(pc, simLine << shift);
    }
    unsigned worst = 0;
    Addr prevLine = ~Addr{0};
    for (Addr p = first; p <= last; ++p) {
        const Addr host =
            p == first ? addr : p * kParagraphBytes;
        const Addr simLine = translate(host) >> shift;
        if (simLine != prevLine) {
            worst = std::max(worst,
                             accessLine(pc, simLine << shift));
            prevLine = simLine;
        }
    }
    return worst;
}

void
MemorySystem::accessVector(std::uint64_t pc, std::span<const Addr> addrs,
                           unsigned elemBytes, bool write,
                           std::span<unsigned> latencies)
{
    const HostPhase::Scope scope(HostPhase::Mem);
    fatal_if(latencies.size() < addrs.size(),
             "accessVector latency span ({}) shorter than lane count ({})",
             latencies.size(), addrs.size());
    // Lane order is the element-serial order executeIndexed used when
    // it called access() per lane, so demand counts, prefetcher
    // training, and recency updates are bit-identical; batching only
    // keeps the translation/MRU fast paths warm across the burst.
    for (std::size_t i = 0; i < addrs.size(); ++i)
        latencies[i] = accessOne(pc, addrs[i], elemBytes, write);
}

} // namespace quetzal::sim
