#include "sim/memsystem.hpp"

#include <algorithm>

namespace quetzal::sim {

MemorySystem::MemorySystem(const SystemParams &params)
    : params_(params), l1d_("l1d", params.l1d), l2_("l2", params.l2),
      l1Prefetcher_(params.prefetcher, l1d_), stats_("mem")
{
    requests_ = &stats_.stat("requests", "demand requests to L1D");
    l2Requests_ = &stats_.stat("l2_requests", "requests that reached L2");
    dramRequests_ = &stats_.stat("dram_requests",
                                 "requests that reached DRAM");
    dramBytes_ = &stats_.stat("dram_bytes", "bytes fetched from DRAM");
}

namespace {
/** malloc's alignment guarantee: host offsets below this granularity
 *  are deterministic, everything above is normalized away. */
constexpr Addr kParagraphBytes = 16;
} // namespace

Addr
MemorySystem::translate(Addr hostAddr)
{
    const auto [it, inserted] = paragraphMap_.try_emplace(
        hostAddr / kParagraphBytes, nextParagraph_);
    if (inserted)
        ++nextParagraph_;
    return it->second * kParagraphBytes + hostAddr % kParagraphBytes;
}

unsigned
MemorySystem::accessLine(std::uint64_t pc, Addr addr)
{
    ++*requests_;
    l1Prefetcher_.observe(pc, addr);
    if (l1d_.access(addr))
        return l1d_.loadToUse();

    ++*l2Requests_;
    if (l2_.access(addr)) {
        l1d_.fill(addr);
        return l2_.loadToUse();
    }

    ++*dramRequests_;
    *dramBytes_ += l2_.lineBytes();
    l2_.fill(addr);
    l1d_.fill(addr);
    return params_.dram.latencyCycles;
}

unsigned
MemorySystem::access(std::uint64_t pc, Addr addr, unsigned bytes,
                     bool write)
{
    // Stores are write-allocate and, for timing purposes, behave like
    // loads (the LSQ hides store latency; the occupancy cost is modeled
    // in the pipeline).
    (void)write;
    // Walk the host footprint paragraph by paragraph (the translation
    // granularity), probing each distinct simulated line once. The
    // line split is decided by simulated addresses so that it, too,
    // is independent of where the host allocator placed the data.
    const unsigned line = l1d_.lineBytes();
    unsigned worst = 0;
    Addr prevLine = ~Addr{0};
    const Addr first = addr / kParagraphBytes;
    const Addr last =
        (addr + std::max(1u, bytes) - 1) / kParagraphBytes;
    for (Addr p = first; p <= last; ++p) {
        const Addr host =
            p == first ? addr : p * kParagraphBytes;
        const Addr simLine = translate(host) / line;
        if (simLine != prevLine) {
            worst = std::max(worst, accessLine(pc, simLine * line));
            prevLine = simLine;
        }
    }
    return worst;
}

} // namespace quetzal::sim
