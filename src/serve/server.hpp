/**
 * @file
 * AlignService: a self-healing pool of worker processes serving
 * alignment requests over length-prefixed pipe frames.
 *
 * The parent keeps an explicit per-worker state machine
 * (Idle/Working/Draining/Dead — mirroring QuAPI's quapi_state) and a
 * bounded request queue, and runs a single-threaded poll(2) loop:
 *
 *  - A crashed or killed worker is detected via pipe EOF + waitpid;
 *    any complete response frames still buffered are honored first,
 *    then the in-flight request is re-dispatched at the front of the
 *    queue (bounded by ServeConfig::maxDispatchAttempts, terminal
 *    Panic when exhausted) while the worker is respawned — the queue
 *    is never dropped.
 *  - A worker that blows its per-request wall-clock deadline is
 *    SIGKILLed and handled exactly like a crash, except exhaustion
 *    reports Resource instead of Panic.
 *  - Admission control sheds load with a structured Overloaded
 *    response once the queue reaches ServeConfig::queueBound.
 *  - requestStop() (async-signal-safe) drains gracefully: in-flight
 *    requests finish, still-queued ones get Shutdown responses, then
 *    workers see EOF and exit cleanly.
 *
 * Protocol details and the full state machine are in docs/SERVICE.md.
 */
#ifndef QUETZAL_SERVE_SERVER_HPP
#define QUETZAL_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

#include "serve/protocol.hpp"

namespace quetzal::serve {

/** Lifecycle of one pooled worker process. */
enum class WorkerState
{
    Idle,     //!< alive, no request in flight
    Working,  //!< one request dispatched, response pending
    Draining, //!< finishing its request during graceful stop
    Dead,     //!< reaped; respawn pending (or final, when stopping)
};

std::string_view workerStateName(WorkerState state);

/** Pool, queue, and recovery knobs. */
struct ServeConfig
{
    unsigned workers = 2;
    std::size_t queueBound = 64; //!< admission control threshold
    unsigned deadlineMs = 0;     //!< per-request wall clock; 0 = none
    /** Total deliveries per request, incl. the first (so 2 = one
     *  recovery redispatch, Panic/Resource on the second loss). */
    unsigned maxDispatchAttempts = 2;
    /** Armed injection, forwarded to fork-only workers and compared
     *  against request ids (exec workers re-read QZ_FAULT_INJECT). */
    std::optional<algos::FaultInjection> inject;
    /**
     * argv of the worker binary (e.g. {"/proc/self/exe","--worker"}).
     * Empty: fork-only mode — the child runs workerMain() in the
     * forked image directly, which is what the unit tests use.
     */
    std::vector<std::string> workerCommand;
    /** External stop flag (e.g. a signal handler's); polled each
     *  loop iteration in addition to requestStop(). */
    const std::atomic<int> *stopFlag = nullptr;
};

/** Observability counters, all monotonic over the service lifetime. */
struct ServeStats
{
    std::uint64_t served = 0;        //!< Ok responses emitted
    std::uint64_t errors = 0;        //!< terminal Error responses
    std::uint64_t shed = 0;          //!< Overloaded responses
    std::uint64_t shutdownShed = 0;  //!< Shutdown responses
    std::uint64_t respawns = 0;      //!< workers restarted after death
    std::uint64_t deadlineKills = 0; //!< SIGKILLs for blown deadlines
    std::uint64_t redispatches = 0;  //!< requests re-queued on loss
};

/**
 * The service. Construction spawns the pool; submit()/serveAll()
 * feed it; every response (in completion order) is delivered through
 * the sink callback from within the serving thread.
 */
class AlignService
{
  public:
    using ResponseSink = std::function<void(const ServeResponse &)>;

    AlignService(ServeConfig config, ResponseSink sink);
    ~AlignService();

    AlignService(const AlignService &) = delete;
    AlignService &operator=(const AlignService &) = delete;

    /**
     * Admit one request. Sheds with an immediate Overloaded response
     * (returning false) when the queue is at its bound, or with a
     * Shutdown response when a stop was requested. The request's
     * attempt counter is owned by the service and reset here.
     */
    bool submit(ServeRequest request);

    /** Pump the event loop until the queue and every worker are idle
     *  (or a stop sheds what remains). */
    void drain();

    /** submit() + drain() over a whole request list, with
     *  backpressure instead of shedding for the tail beyond the
     *  queue bound. */
    void serveAll(std::vector<ServeRequest> requests);

    /** Request a graceful drain; safe from a signal handler. */
    void requestStop() { stop_.store(1, std::memory_order_relaxed); }

    /** Close pipes, wait for workers to exit, reap them. Idempotent;
     *  the destructor calls it. */
    void shutdown();

    const ServeStats &stats() const { return stats_; }
    std::vector<WorkerState> workerStates() const;
    std::size_t queueDepth() const { return queue_.size(); }

  private:
    struct Worker
    {
        pid_t pid = -1;
        int toChild = -1;   //!< request pipe, parent write end
        int fromChild = -1; //!< response pipe, parent read end
        WorkerState state = WorkerState::Dead;
        bool hasInflight = false;
        ServeRequest inflight;
        std::chrono::steady_clock::time_point deadline{};
        FrameDecoder rx;
    };

    bool stopping() const;
    void spawn(Worker &worker);
    void dispatchIdle();
    void shedQueueForShutdown();
    void emit(const ServeResponse &response);
    void step();
    void readFromWorker(Worker &worker);
    bool handleResponseFrame(Worker &worker,
                             const std::string &payload);
    void recoverDeadWorker(Worker &worker, bool timedOut);
    void killExpiredWorkers();
    bool anyInflight() const;

    ServeConfig config_;
    ResponseSink sink_;
    std::deque<ServeRequest> queue_;
    std::vector<Worker> workers_;
    std::atomic<int> stop_{0};
    bool shutdownDone_ = false;
    ServeStats stats_;
};

/**
 * Run @p request through a one-worker fork-only pool and verify the
 * served result is byte-identical to runRequestInProcess() — the
 * clients' --serve check. Narrates the verdict (including both JSON
 * renderings on a mismatch) to @p out; true on success. An armed
 * QZ_FAULT_INJECT applies to the pooled worker, so the check also
 * exercises crash/hang recovery when asked to.
 */
bool serveRoundTripCheck(const ServeRequest &request,
                         std::ostream &out);

} // namespace quetzal::serve

#endif // QUETZAL_SERVE_SERVER_HPP
