/**
 * @file
 * Wire protocol of the qz-serve alignment service.
 *
 * The service (src/serve/server.hpp) talks to its worker processes
 * over anonymous pipes using length-prefixed frames: a 4-byte
 * little-endian payload length followed by one JSON document. The
 * framing layer here is deliberately dumb — it knows nothing about
 * requests or workers — so it can be unit-tested through a bare
 * pipe(2) and reused by any future transport.
 *
 * Above the framing sit the two message types: ServeRequest (one
 * evaluation cell — a registry workload plus a catalog dataset name,
 * inline sequence pairs, or an on-disk read-store range; see
 * docs/STORE.md) and ServeResponse (the RunResult, or
 * a structured failure). Both serialize through the in-repo JSON
 * layer. runRequestInProcess() is the single execution path shared by
 * the worker loop and the clients' --serve round-trip checks, which
 * is what makes "served results are byte-identical to an in-process
 * run" a testable invariant rather than a hope.
 */
#ifndef QUETZAL_SERVE_PROTOCOL_HPP
#define QUETZAL_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algos/faults.hpp"
#include "algos/runner.hpp"
#include "common/json.hpp"
#include "genomics/sequence.hpp"
#include "genomics/store.hpp"

namespace quetzal::serve {

/**
 * Hard ceiling on one frame's payload. A torn or hostile length
 * prefix must fail loudly instead of looking like a 4 GB allocation.
 */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Write one frame (length prefix + payload) to @p fd, riding out
 * EINTR and short writes. False when the peer is gone (EPIPE after
 * a worker death) or the payload exceeds kMaxFrameBytes.
 */
bool writeFrame(int fd, std::string_view payload);

/** Outcome of one blocking readFrame() call. */
enum class FrameRead
{
    Frame, //!< @p payload holds one complete frame
    Eof,   //!< clean end of stream at a frame boundary
    Error, //!< torn frame, oversized length, or read error
};

/**
 * Blocking read of one frame from @p fd (the worker side of the
 * pipe, where there is nothing else to wait on). EOF mid-frame is an
 * Error, not an Eof: the writer died mid-message.
 */
FrameRead readFrame(int fd, std::string &payload);

/**
 * Incremental frame decoder for the parent's nonblocking reads:
 * feed() whatever bytes poll() surfaced, then drain complete frames
 * with next(). Bytes of a partial frame are buffered across calls.
 */
class FrameDecoder
{
  public:
    /** Append @p count raw bytes from the stream. */
    void feed(const char *data, std::size_t count);

    /**
     * Extract the next complete frame into @p payload. False when
     * the buffer holds only a partial frame (or the stream is
     * corrupt — check corrupt()).
     */
    bool next(std::string &payload);

    /** True after a length prefix exceeded kMaxFrameBytes. */
    bool corrupt() const { return corrupt_; }

    /** Bytes buffered but not yet returned (partial frame). */
    std::size_t pending() const { return buffer_.size(); }

  private:
    std::string buffer_;
    bool corrupt_ = false;
};

/**
 * One alignment request: a registry workload against a named catalog
 * dataset (makeDataset(dataset, scale)), inline pairs, or a range of
 * an indexed on-disk read store (store/storeFrom/storeTo; workers
 * stream the range at bounded memory and cache open stores per
 * process). @c attempt is owned by the dispatching service — it counts
 * deliveries of this request to a worker, and is what the
 * fault-injection gate in the worker compares against
 * FaultInjection::times, so a crash injected "once" fires on the
 * first delivery and not on the post-respawn retry.
 */
struct ServeRequest
{
    std::uint64_t id = 0;
    unsigned attempt = 1;
    std::string workload; //!< registry display name, e.g. "WFA"
    std::string dataset;  //!< catalog name; optional with inline pairs
    double scale = 1.0;
    std::string variant = "qzc"; //!< base|vec|qz|qzc
    std::uint64_t maxLen = 0;    //!< 0 = unlimited
    std::int64_t ssThreshold = 0;
    bool protein = false;
    std::vector<genomics::SequencePair> pairs; //!< inline payload
    std::string store; //!< read-store path; exclusive with the above
    std::size_t storeFrom = 0; //!< first store pair (global index)
    std::size_t storeTo = genomics::kStoreEnd; //!< one past the last
};

std::string toJson(const ServeRequest &request);
std::optional<ServeRequest> requestFromJson(const JsonValue &json);

/** What one response means. */
enum class ResponseStatus
{
    Ok,         //!< result holds the RunResult
    Error,      //!< kind/message describe the terminal failure
    Overloaded, //!< shed at admission: queue over its bound
    Shutdown,   //!< shed during graceful drain: never dispatched
};

std::string_view responseStatusName(ResponseStatus status);
std::optional<ResponseStatus>
responseStatusFromName(std::string_view name);

/** One response, matched to its request by id. */
struct ServeResponse
{
    std::uint64_t id = 0;
    ResponseStatus status = ResponseStatus::Ok;
    unsigned attempts = 1; //!< deliveries the service made in total
    std::optional<algos::RunResult> result; //!< set when Ok
    algos::FailureKind kind = algos::FailureKind::Unknown;
    std::string message;
};

std::string toJson(const ServeResponse &response);
std::optional<ServeResponse> responseFromJson(const JsonValue &json);

/**
 * Materialize the dataset a request names (via the workload's
 * catalog), carries inline, or addresses as a store range. Fatal when
 * it does none of these. Store-backed requests normally stream
 * through runRequestInProcess() instead; this materializing fallback
 * exists for callers that need a concrete PairDataset.
 */
genomics::PairDataset datasetFor(const ServeRequest &request);

/** The RunOptions a request encodes. */
algos::RunOptions optionsFor(const ServeRequest &request);

/**
 * Execute @p request on this process's simulated core — the worker's
 * work function, and the reference half of every --serve round-trip
 * check. Cells are pure functions of their identity, so two calls in
 * two processes produce bitwise-identical RunResults.
 */
algos::RunResult runRequestInProcess(const ServeRequest &request);

} // namespace quetzal::serve

#endif // QUETZAL_SERVE_PROTOCOL_HPP
