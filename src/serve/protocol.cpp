#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <unistd.h>

#include "algos/report.hpp"
#include "algos/workload.hpp"
#include "common/logging.hpp"
#include "genomics/pairsource.hpp"

namespace quetzal::serve {

namespace {

/** write(2) all of @p count bytes, riding out EINTR/short writes. */
bool
writeAll(int fd, const char *data, std::size_t count)
{
    while (count > 0) {
        const ssize_t wrote = ::write(fd, data, count);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += wrote;
        count -= static_cast<std::size_t>(wrote);
    }
    return true;
}

/**
 * read(2) exactly @p count bytes. Returns Frame when filled, Eof when
 * the stream ended before the first byte (only honored when
 * @p eofIsClean), Error otherwise.
 */
FrameRead
readAll(int fd, char *data, std::size_t count, bool eofIsClean)
{
    std::size_t got = 0;
    while (got < count) {
        const ssize_t n = ::read(fd, data + got, count - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return FrameRead::Error;
        }
        if (n == 0)
            return got == 0 && eofIsClean ? FrameRead::Eof
                                          : FrameRead::Error;
        got += static_cast<std::size_t>(n);
    }
    return FrameRead::Frame;
}

void
encodeLength(std::uint32_t length, char out[4])
{
    out[0] = static_cast<char>(length & 0xff);
    out[1] = static_cast<char>((length >> 8) & 0xff);
    out[2] = static_cast<char>((length >> 16) & 0xff);
    out[3] = static_cast<char>((length >> 24) & 0xff);
}

std::uint32_t
decodeLength(const char in[4])
{
    const auto b = [&](int i) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(in[i]));
    };
    return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

} // namespace

bool
writeFrame(int fd, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    char header[4];
    encodeLength(static_cast<std::uint32_t>(payload.size()), header);
    return writeAll(fd, header, sizeof header) &&
           writeAll(fd, payload.data(), payload.size());
}

FrameRead
readFrame(int fd, std::string &payload)
{
    char header[4];
    const FrameRead head =
        readAll(fd, header, sizeof header, /*eofIsClean=*/true);
    if (head != FrameRead::Frame)
        return head;
    const std::uint32_t length = decodeLength(header);
    if (length > kMaxFrameBytes)
        return FrameRead::Error;
    payload.resize(length);
    return readAll(fd, payload.data(), length, /*eofIsClean=*/false);
}

void
FrameDecoder::feed(const char *data, std::size_t count)
{
    buffer_.append(data, count);
}

bool
FrameDecoder::next(std::string &payload)
{
    if (corrupt_ || buffer_.size() < 4)
        return false;
    const std::uint32_t length = decodeLength(buffer_.data());
    if (length > kMaxFrameBytes) {
        corrupt_ = true;
        return false;
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(length))
        return false;
    payload.assign(buffer_, 4, length);
    buffer_.erase(0, 4 + static_cast<std::size_t>(length));
    return true;
}

std::string
toJson(const ServeRequest &request)
{
    JsonWriter json;
    json.beginObject()
        .field("id", std::uint64_t{request.id})
        .field("attempt", std::uint64_t{request.attempt})
        .field("workload", request.workload)
        .field("variant", request.variant);
    if (!request.dataset.empty())
        json.field("dataset", request.dataset)
            .field("scale", request.scale);
    if (request.maxLen > 0)
        json.field("maxlen", std::uint64_t{request.maxLen});
    if (request.ssThreshold != 0)
        json.field("ss_threshold",
                   std::int64_t{request.ssThreshold});
    if (request.protein)
        json.field("protein", true);
    if (!request.store.empty()) {
        json.field("store", request.store);
        if (request.storeFrom != 0)
            json.field("store_from",
                       std::uint64_t{request.storeFrom});
        if (request.storeTo != genomics::kStoreEnd)
            json.field("store_to", std::uint64_t{request.storeTo});
    }
    if (!request.pairs.empty()) {
        json.beginArray("pairs");
        for (const auto &pair : request.pairs) {
            json.beginObject()
                .field("pattern", pair.pattern)
                .field("text", pair.text);
            if (pair.trueEdits >= 0)
                json.field("edits", std::int64_t{pair.trueEdits});
            json.endObject();
        }
        json.endArray();
    }
    json.endObject();
    return json.str();
}

std::optional<ServeRequest>
requestFromJson(const JsonValue &json)
{
    if (!json.isObject())
        return std::nullopt;
    ServeRequest request;
    request.id = json.getUint("id");
    request.attempt =
        static_cast<unsigned>(json.getUint("attempt", 1));
    request.workload = json.getString("workload");
    if (request.workload.empty())
        return std::nullopt;
    request.variant = json.getString("variant", "qzc");
    request.dataset = json.getString("dataset");
    const JsonValue *scale = json.find("scale");
    if (scale && scale->isNumber())
        request.scale = scale->asDouble();
    request.maxLen = json.getUint("maxlen", 0);
    request.ssThreshold = json.getInt("ss_threshold", 0);
    request.protein = json.getBool("protein", false);
    request.store = json.getString("store");
    request.storeFrom = static_cast<std::size_t>(
        json.getUint("store_from", 0));
    request.storeTo = static_cast<std::size_t>(json.getUint(
        "store_to", std::uint64_t{genomics::kStoreEnd}));
    if (request.storeTo < request.storeFrom)
        return std::nullopt;
    if (const JsonValue *pairs = json.find("pairs")) {
        if (!pairs->isArray())
            return std::nullopt;
        for (const JsonValue &item : pairs->items()) {
            if (!item.isObject())
                return std::nullopt;
            genomics::SequencePair pair;
            pair.pattern = item.getString("pattern");
            pair.text = item.getString("text");
            pair.trueEdits = item.getInt("edits", -1);
            pair.alphabet = request.protein
                                ? genomics::AlphabetKind::Protein
                                : genomics::AlphabetKind::Dna;
            if (pair.pattern.empty() || pair.text.empty())
                return std::nullopt;
            request.pairs.push_back(std::move(pair));
        }
    }
    if (request.dataset.empty() && request.pairs.empty() &&
        request.store.empty())
        return std::nullopt;
    return request;
}

std::string_view
responseStatusName(ResponseStatus status)
{
    switch (status) {
      case ResponseStatus::Ok:
        return "ok";
      case ResponseStatus::Error:
        return "error";
      case ResponseStatus::Overloaded:
        return "overloaded";
      case ResponseStatus::Shutdown:
        return "shutdown";
    }
    return "?";
}

std::optional<ResponseStatus>
responseStatusFromName(std::string_view name)
{
    for (ResponseStatus status :
         {ResponseStatus::Ok, ResponseStatus::Error,
          ResponseStatus::Overloaded, ResponseStatus::Shutdown})
        if (name == responseStatusName(status))
            return status;
    return std::nullopt;
}

std::string
toJson(const ServeResponse &response)
{
    JsonWriter json;
    json.beginObject()
        .field("id", std::uint64_t{response.id})
        .field("status", responseStatusName(response.status))
        .field("attempts", std::uint64_t{response.attempts});
    if (response.result)
        json.rawField("result", algos::toJson(*response.result));
    if (response.status == ResponseStatus::Error)
        json.field("kind", algos::failureKindName(response.kind));
    if (!response.message.empty())
        json.field("message", response.message);
    json.endObject();
    return json.str();
}

std::optional<ServeResponse>
responseFromJson(const JsonValue &json)
{
    if (!json.isObject())
        return std::nullopt;
    ServeResponse response;
    response.id = json.getUint("id");
    const auto status =
        responseStatusFromName(json.getString("status"));
    if (!status)
        return std::nullopt;
    response.status = *status;
    response.attempts =
        static_cast<unsigned>(json.getUint("attempts", 1));
    if (const JsonValue *result = json.find("result")) {
        auto parsed = algos::runResultFromJson(*result);
        if (!parsed)
            return std::nullopt;
        response.result = std::move(*parsed);
    }
    if (response.status == ResponseStatus::Ok && !response.result)
        return std::nullopt;
    const auto kind =
        algos::failureKindFromName(json.getString("kind", "unknown"));
    response.kind = kind.value_or(algos::FailureKind::Unknown);
    response.message = json.getString("message");
    return response;
}

namespace {

/**
 * Streaming source over the store range a request addresses. Open
 * stores are cached per process (openStoreShared), so a worker
 * serving many ranges of one store maps and checksums it once.
 */
genomics::StorePairSource
storeSourceFor(const ServeRequest &request)
{
    auto store = genomics::openStoreShared(request.store);
    fatal_if(request.storeFrom > store->size(),
             "request {}: store range starts at {} but '{}' holds "
             "only {} pair(s)",
             request.id, request.storeFrom, request.store,
             store->size());
    return genomics::StorePairSource(std::move(store),
                                     request.storeFrom,
                                     request.storeTo);
}

} // namespace

genomics::PairDataset
datasetFor(const ServeRequest &request)
{
    if (!request.pairs.empty()) {
        genomics::PairDataset dataset;
        dataset.name =
            request.dataset.empty() ? "inline" : request.dataset;
        dataset.pairs = request.pairs;
        dataset.readLength = request.pairs.front().pattern.size();
        dataset.errorRate = 0.0;
        return dataset;
    }
    if (!request.store.empty())
        return storeSourceFor(request).materialize();
    fatal_if(request.dataset.empty(),
             "request {} names no dataset and carries no pairs or "
             "store range",
             request.id);
    const algos::Workload &workload =
        algos::workloadByName(request.workload);
    return workload.makeDataset(request.dataset, request.scale);
}

algos::RunOptions
optionsFor(const ServeRequest &request)
{
    algos::RunOptions options;
    options.variant = [&] {
        const std::string &name = request.variant;
        if (name == "base")
            return algos::Variant::Base;
        if (name == "vec")
            return algos::Variant::Vec;
        if (name == "qz")
            return algos::Variant::Qz;
        if (name == "qzc" || name == "quetzal")
            return algos::Variant::QzC;
        fatal("request {}: unknown variant '{}' "
              "(expected base|vec|qz|qzc)",
              request.id, name);
    }();
    // options.system stays at its baseline default: workload.cpp's
    // systemFor() upgrades to withQuetzal() for qz/qzc variants, and
    // keeping the request's RunOptions identical to a directly-built
    // BatchCell's is what makes served results byte-comparable.
    if (request.maxLen > 0)
        options.maxLen = static_cast<std::size_t>(request.maxLen);
    options.ssThreshold = request.ssThreshold;
    options.alphabet = request.protein
                           ? genomics::AlphabetKind::Protein
                           : genomics::AlphabetKind::Dna;
    return options;
}

algos::RunResult
runRequestInProcess(const ServeRequest &request)
{
    const algos::Workload &workload =
        algos::workloadByName(request.workload);
    if (!request.store.empty() && request.pairs.empty()) {
        // Stream the store range directly: bounded memory, and the
        // per-process store cache gives respawned-worker retries a
        // warm open. Byte-identical to the materializing path — the
        // dataset run() is itself a DatasetPairSource stream.
        genomics::StorePairSource source = storeSourceFor(request);
        return workload.runStream(source, optionsFor(request));
    }
    const genomics::PairDataset dataset = datasetFor(request);
    return workload.run(dataset, optionsFor(request));
}

} // namespace quetzal::serve
