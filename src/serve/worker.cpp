#include "serve/worker.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "serve/protocol.hpp"

namespace quetzal::serve {

namespace {

/**
 * Fire an armed worker-level injection for @p request. The gate
 * compares the delivery attempt against the injection budget, so
 * "crash once" aborts on the first delivery and serves the
 * post-respawn redelivery normally — which is exactly the recovery
 * path the tests pin down.
 */
void
maybeInject(const algos::FaultInjection &inject,
            const ServeRequest &request)
{
    if (inject.cell != request.id || request.attempt > inject.times)
        return;
    switch (inject.action) {
      case algos::FaultAction::Crash:
        // Mid-request process death, as a real heap corruption or
        // assert would produce. No response frame is ever written.
        std::abort();
      case algos::FaultAction::Hang:
        // Long enough to trip any sane per-request deadline, short
        // enough that a misconfigured test without one still ends.
        std::this_thread::sleep_for(std::chrono::seconds(120));
        return;
      case algos::FaultAction::Throw:
        algos::throwInjectedFault(inject);
    }
}

} // namespace

int
workerMain(int requestFd, int responseFd,
           std::optional<algos::FaultInjection> inject)
{
    std::string payload;
    for (;;) {
        switch (readFrame(requestFd, payload)) {
          case FrameRead::Eof:
            return 0; // parent closed the pipe: drain complete
          case FrameRead::Error:
            return 2;
          case FrameRead::Frame:
            break;
        }

        ServeResponse response;
        const auto json = parseJson(payload);
        std::optional<ServeRequest> request =
            json ? requestFromJson(*json) : std::nullopt;
        if (!request) {
            response.status = ResponseStatus::Error;
            response.kind = algos::FailureKind::Fatal;
            response.message = "unparseable request frame";
        } else {
            response.id = request->id;
            response.attempts = request->attempt;
            try {
                if (inject)
                    maybeInject(*inject, *request);
                response.result = runRequestInProcess(*request);
                response.status = ResponseStatus::Ok;
            } catch (...) {
                const std::exception_ptr error =
                    std::current_exception();
                response.status = ResponseStatus::Error;
                response.kind = algos::classifyException(error);
                response.message = algos::exceptionMessage(error);
            }
        }

        if (!writeFrame(responseFd, toJson(response)))
            return 3; // parent is gone; nothing left to serve
    }
}

} // namespace quetzal::serve
