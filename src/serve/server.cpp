#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ostream>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "algos/report.hpp"
#include "common/logging.hpp"
#include "serve/worker.hpp"

namespace quetzal::serve {

std::string_view
workerStateName(WorkerState state)
{
    switch (state) {
      case WorkerState::Idle:
        return "idle";
      case WorkerState::Working:
        return "working";
      case WorkerState::Draining:
        return "draining";
      case WorkerState::Dead:
        return "dead";
    }
    return "?";
}

namespace {

/** Upper bound on one poll(2) sleep so stop flags are noticed. */
constexpr int kMaxPollMs = 200;

void
closeFd(int &fd)
{
    if (fd >= 0) {
        while (::close(fd) < 0 && errno == EINTR) {
        }
        fd = -1;
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    fatal_if(flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0,
             "qz-serve: fcntl(O_NONBLOCK): {}", std::strerror(errno));
}

} // namespace

AlignService::AlignService(ServeConfig config, ResponseSink sink)
    : config_(std::move(config)), sink_(std::move(sink))
{
    fatal_if(!sink_, "AlignService needs a response sink");
    if (config_.workers == 0)
        config_.workers = 1;
    if (config_.maxDispatchAttempts == 0)
        config_.maxDispatchAttempts = 1;
    // A worker death between poll() rounds must surface as EPIPE from
    // writeFrame, not a process-killing SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    workers_.resize(config_.workers);
    for (Worker &worker : workers_)
        spawn(worker);
}

AlignService::~AlignService()
{
    shutdown();
}

bool
AlignService::stopping() const
{
    if (stop_.load(std::memory_order_relaxed))
        return true;
    return config_.stopFlag &&
           config_.stopFlag->load(std::memory_order_relaxed) != 0;
}

void
AlignService::spawn(Worker &worker)
{
    int request[2];
    int response[2];
    fatal_if(::pipe(request) != 0, "qz-serve: pipe(): {}",
             std::strerror(errno));
    fatal_if(::pipe(response) != 0, "qz-serve: pipe(): {}",
             std::strerror(errno));

    const pid_t pid = ::fork();
    fatal_if(pid < 0, "qz-serve: fork(): {}", std::strerror(errno));

    if (pid == 0) {
        // Child. Drop every parent-side fd, including the pipes of
        // the *other* workers this child inherited — holding a copy
        // of a sibling's request-pipe write end would mask the EOF
        // that tells that sibling to drain.
        ::close(request[1]);
        ::close(response[0]);
        for (const Worker &other : workers_) {
            if (other.toChild >= 0)
                ::close(other.toChild);
            if (other.fromChild >= 0)
                ::close(other.fromChild);
        }
        if (config_.workerCommand.empty()) {
            // Fork-only mode (tests): run the worker loop in the
            // forked image. _exit skips parent-owned atexit state.
            ::_exit(workerMain(request[0], response[1],
                               config_.inject));
        }
        // Fork/exec mode: the worker binary speaks frames on
        // stdin/stdout (it re-reads QZ_FAULT_INJECT from the
        // inherited environment).
        ::dup2(request[0], STDIN_FILENO);
        ::dup2(response[1], STDOUT_FILENO);
        if (request[0] > STDERR_FILENO)
            ::close(request[0]);
        if (response[1] > STDERR_FILENO)
            ::close(response[1]);
        std::vector<char *> argv;
        argv.reserve(config_.workerCommand.size() + 1);
        for (const std::string &arg : config_.workerCommand)
            argv.push_back(const_cast<char *>(arg.c_str()));
        argv.push_back(nullptr);
        ::execv(argv[0], argv.data());
        ::_exit(127);
    }

    // Parent.
    ::close(request[0]);
    ::close(response[1]);
    setNonBlocking(response[0]);
    worker.pid = pid;
    worker.toChild = request[1];
    worker.fromChild = response[0];
    worker.state = WorkerState::Idle;
    worker.hasInflight = false;
    worker.rx = FrameDecoder{};
}

void
AlignService::emit(const ServeResponse &response)
{
    switch (response.status) {
      case ResponseStatus::Ok:
        ++stats_.served;
        break;
      case ResponseStatus::Error:
        ++stats_.errors;
        break;
      case ResponseStatus::Overloaded:
        ++stats_.shed;
        break;
      case ResponseStatus::Shutdown:
        ++stats_.shutdownShed;
        break;
    }
    sink_(response);
}

bool
AlignService::submit(ServeRequest request)
{
    request.attempt = 1;
    ServeResponse rejection;
    rejection.id = request.id;
    rejection.attempts = 0;
    if (stopping()) {
        rejection.status = ResponseStatus::Shutdown;
        rejection.message = "service is draining";
        emit(rejection);
        return false;
    }
    if (queue_.size() >= config_.queueBound) {
        rejection.status = ResponseStatus::Overloaded;
        rejection.message =
            qformat("queue at its bound of {}", config_.queueBound);
        emit(rejection);
        return false;
    }
    queue_.push_back(std::move(request));
    return true;
}

void
AlignService::shedQueueForShutdown()
{
    while (!queue_.empty()) {
        ServeResponse response;
        response.id = queue_.front().id;
        response.status = ResponseStatus::Shutdown;
        response.attempts = queue_.front().attempt - 1;
        response.message = "shed during graceful drain";
        queue_.pop_front();
        emit(response);
    }
}

void
AlignService::dispatchIdle()
{
    for (Worker &worker : workers_) {
        if (queue_.empty() || stopping())
            return;
        if (worker.state != WorkerState::Idle)
            continue;
        worker.inflight = std::move(queue_.front());
        queue_.pop_front();
        worker.hasInflight = true;
        if (!writeFrame(worker.toChild, toJson(worker.inflight))) {
            // The worker died while idle; its pipe is gone. Recover
            // (which re-queues or finalizes the request) and let the
            // respawned worker pick it up on the next pass.
            warn("qz-serve: worker {} died while idle; respawning",
                 worker.pid);
            recoverDeadWorker(worker, /*timedOut=*/false);
            continue;
        }
        worker.state = WorkerState::Working;
        if (config_.deadlineMs > 0)
            worker.deadline =
                std::chrono::steady_clock::now() +
                std::chrono::milliseconds(config_.deadlineMs);
    }
}

bool
AlignService::handleResponseFrame(Worker &worker,
                                  const std::string &payload)
{
    const auto json = parseJson(payload);
    std::optional<ServeResponse> response =
        json ? responseFromJson(*json) : std::nullopt;
    if (!response || !worker.hasInflight ||
        response->id != worker.inflight.id)
        return false; // protocol violation; the caller decides
    response->attempts = worker.inflight.attempt;
    worker.hasInflight = false;
    if (worker.state != WorkerState::Dead)
        worker.state = WorkerState::Idle;
    emit(*response);
    return true;
}

void
AlignService::readFromWorker(Worker &worker)
{
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            ::read(worker.fromChild, chunk, sizeof chunk);
        if (n > 0) {
            worker.rx.feed(chunk, static_cast<std::size_t>(n));
            std::string payload;
            while (worker.rx.next(payload)) {
                if (!handleResponseFrame(worker, payload)) {
                    // A worker that breaks the protocol cannot be
                    // trusted with its in-flight request; treat it
                    // like a crash.
                    warn("qz-serve: worker {} sent an unexpected "
                         "frame; killing",
                         worker.pid);
                    ::kill(worker.pid, SIGKILL);
                    recoverDeadWorker(worker, /*timedOut=*/false);
                    return;
                }
            }
            if (worker.rx.corrupt()) {
                warn("qz-serve: worker {} sent a corrupt frame; "
                     "killing",
                     worker.pid);
                ::kill(worker.pid, SIGKILL);
                recoverDeadWorker(worker, /*timedOut=*/false);
                return;
            }
            continue;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return; // drained what poll() surfaced
            warn("qz-serve: read from worker {}: {}", worker.pid,
                 std::strerror(errno));
        }
        // EOF (or a read error): the worker is gone. Complete frames
        // already handled above were honored first, so a response
        // that raced the death is never dropped or duplicated.
        recoverDeadWorker(worker, /*timedOut=*/false);
        return;
    }
}

void
AlignService::recoverDeadWorker(Worker &worker, bool timedOut)
{
    // Reap first: after waitpid returns, every byte the worker ever
    // wrote is in the pipe and its write end is closed, so the
    // salvage read below terminates at a true EOF instead of racing
    // a still-dying process. The extra SIGKILL is a no-op for an
    // already-dead child and guarantees waitpid cannot block on one
    // that is merely wounded.
    if (worker.pid > 0) {
        ::kill(worker.pid, SIGKILL);
        int status = 0;
        while (::waitpid(worker.pid, &status, 0) < 0 &&
               errno == EINTR) {
        }
        worker.pid = -1;
    }

    // Honor any complete response frames that raced the death. The
    // pipe survives the child (the parent holds the read end), so
    // everything the worker wrote before dying is still readable.
    if (worker.fromChild >= 0) {
        char chunk[4096];
        for (;;) {
            const ssize_t n =
                ::read(worker.fromChild, chunk, sizeof chunk);
            if (n > 0) {
                worker.rx.feed(chunk,
                               static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            break; // EOF, EAGAIN, or error: nothing more to salvage
        }
        std::string payload;
        while (worker.hasInflight && worker.rx.next(payload)) {
            if (!handleResponseFrame(worker, payload)) {
                // The worker is already dead; a bad salvaged frame
                // just means the rest of its stream is untrustable.
                warn("qz-serve: discarding torn output of dead "
                     "worker {}",
                     worker.pid);
                break;
            }
        }
    }

    const bool lostRequest = worker.hasInflight;
    ServeRequest lost;
    if (lostRequest) {
        lost = std::move(worker.inflight);
        worker.hasInflight = false;
    }

    closeFd(worker.toChild);
    closeFd(worker.fromChild);
    worker.pid = -1;
    worker.state = WorkerState::Dead;
    worker.rx = FrameDecoder{};

    if (lostRequest) {
        if (stopping()) {
            // Graceful drain: a request lost to a dying worker is
            // shed, not retried — stop means stop.
            ServeResponse response;
            response.id = lost.id;
            response.status = ResponseStatus::Shutdown;
            response.attempts = lost.attempt;
            response.message = "worker lost during graceful drain";
            emit(response);
        } else if (lost.attempt >= config_.maxDispatchAttempts) {
            ServeResponse response;
            response.id = lost.id;
            response.status = ResponseStatus::Error;
            response.attempts = lost.attempt;
            response.kind = timedOut ? algos::FailureKind::Resource
                                     : algos::FailureKind::Panic;
            response.message =
                timedOut
                    ? qformat("deadline of {} ms exceeded on all {} "
                              "deliveries; worker killed each time",
                              config_.deadlineMs, lost.attempt)
                    : qformat("worker process died on all {} "
                              "deliveries",
                              lost.attempt);
            emit(response);
        } else {
            // Front of the queue: a request that already lost a
            // worker should not also wait behind the backlog.
            lost.attempt += 1;
            ++stats_.redispatches;
            queue_.push_front(std::move(lost));
        }
    }

    if (!stopping()) {
        ++stats_.respawns;
        spawn(worker);
    }
}

void
AlignService::killExpiredWorkers()
{
    if (config_.deadlineMs == 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    for (Worker &worker : workers_) {
        if ((worker.state != WorkerState::Working &&
             worker.state != WorkerState::Draining) ||
            now < worker.deadline)
            continue;
        warn("qz-serve: worker {} blew the {} ms deadline on "
             "request {}; killing",
             worker.pid, config_.deadlineMs, worker.inflight.id);
        ++stats_.deadlineKills;
        ::kill(worker.pid, SIGKILL);
        recoverDeadWorker(worker, /*timedOut=*/true);
    }
}

bool
AlignService::anyInflight() const
{
    return std::any_of(workers_.begin(), workers_.end(),
                       [](const Worker &w) { return w.hasInflight; });
}

void
AlignService::step()
{
    if (stopping()) {
        shedQueueForShutdown();
        for (Worker &worker : workers_)
            if (worker.state == WorkerState::Working)
                worker.state = WorkerState::Draining;
    }
    killExpiredWorkers();
    dispatchIdle();

    std::vector<pollfd> fds;
    std::vector<std::size_t> index;
    int timeoutMs = kMaxPollMs;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        const Worker &worker = workers_[i];
        if (worker.fromChild < 0)
            continue;
        fds.push_back(pollfd{worker.fromChild, POLLIN, 0});
        index.push_back(i);
        if (config_.deadlineMs > 0 && worker.hasInflight) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    worker.deadline - now)
                    .count();
            timeoutMs = std::clamp(
                static_cast<int>(std::max<long long>(left, 0)), 0,
                timeoutMs);
        }
    }
    if (fds.empty())
        return;

    const int ready =
        ::poll(fds.data(), fds.size(), timeoutMs);
    if (ready < 0) {
        fatal_if(errno != EINTR, "qz-serve: poll(): {}",
                 std::strerror(errno));
        return; // a signal landed; the next pass sees the stop flag
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents == 0)
            continue;
        Worker &worker = workers_[index[k]];
        // The fd may have been closed by an earlier recovery in this
        // same pass (recoverDeadWorker compacts nothing; indices
        // stay stable, but the fd goes to -1).
        if (worker.fromChild == fds[k].fd)
            readFromWorker(worker);
    }
}

void
AlignService::drain()
{
    while (!queue_.empty() || anyInflight())
        step();
    if (stopping())
        shedQueueForShutdown();
}

void
AlignService::serveAll(std::vector<ServeRequest> requests)
{
    std::deque<ServeRequest> input(
        std::make_move_iterator(requests.begin()),
        std::make_move_iterator(requests.end()));
    while (!input.empty() || !queue_.empty() || anyInflight()) {
        if (stopping()) {
            // The not-yet-admitted tail is shed exactly like the
            // queue; in-flight work still finishes via step().
            while (!input.empty()) {
                ServeResponse response;
                response.id = input.front().id;
                response.status = ResponseStatus::Shutdown;
                response.attempts = 0;
                response.message = "shed during graceful drain";
                input.pop_front();
                emit(response);
            }
        }
        // Backpressure: feed the queue only to its bound, so the
        // service's memory stays flat however long the request list.
        while (!input.empty() &&
               queue_.size() < config_.queueBound) {
            ServeRequest request = std::move(input.front());
            input.pop_front();
            request.attempt = 1;
            queue_.push_back(std::move(request));
        }
        step();
    }
    drain();
}

void
AlignService::shutdown()
{
    if (shutdownDone_)
        return;
    shutdownDone_ = true;
    // A worker still holding a request here (stop during flight, or
    // shutdown without drain) will not exit on EOF promptly; don't
    // wait out a hang.
    for (Worker &worker : workers_)
        if (worker.pid > 0 && worker.hasInflight)
            ::kill(worker.pid, SIGKILL);
    for (Worker &worker : workers_)
        closeFd(worker.toChild); // EOF: idle workers drain and exit
    for (Worker &worker : workers_) {
        if (worker.pid > 0) {
            int status = 0;
            while (::waitpid(worker.pid, &status, 0) < 0 &&
                   errno == EINTR) {
            }
            worker.pid = -1;
        }
        closeFd(worker.fromChild);
        worker.state = WorkerState::Dead;
    }
}

bool
serveRoundTripCheck(const ServeRequest &request, std::ostream &out)
{
    ServeConfig config;
    config.workers = 1;
    config.inject = algos::faultInjectionFromEnv();
    std::optional<ServeResponse> served;
    AlignService service(
        config,
        [&](const ServeResponse &response) { served = response; });
    service.serveAll({request});
    service.shutdown();

    if (!served || served->status != ResponseStatus::Ok ||
        !served->result) {
        out << "serve round-trip: FAILED ("
            << (served ? served->message : "no response arrived")
            << ")\n";
        return false;
    }
    const std::string servedJson = algos::toJson(*served->result);
    const std::string directJson =
        algos::toJson(runRequestInProcess(request));
    if (servedJson != directJson) {
        out << "serve round-trip: MISMATCH\n  served: " << servedJson
            << "\n  direct: " << directJson << "\n";
        return false;
    }
    out << "serve round-trip: ok — served result byte-identical to "
           "the in-process run ("
        << served->attempts << " delivery/deliveries)\n  "
        << servedJson << "\n";
    return true;
}

std::vector<WorkerState>
AlignService::workerStates() const
{
    std::vector<WorkerState> states;
    states.reserve(workers_.size());
    for (const Worker &worker : workers_)
        states.push_back(worker.state);
    return states;
}

} // namespace quetzal::serve
