/**
 * @file
 * The worker side of the qz-serve service: a loop that reads request
 * frames, runs them on this process's simulated core, and writes
 * response frames. One process per worker — a crash, hang, or memory
 * blowup in any cell takes down only this process, never the service
 * (see docs/SERVICE.md).
 */
#ifndef QUETZAL_SERVE_WORKER_HPP
#define QUETZAL_SERVE_WORKER_HPP

#include <optional>

#include "algos/faults.hpp"

namespace quetzal::serve {

/**
 * Serve requests from @p requestFd until EOF (the parent closed the
 * pipe: graceful drain), writing responses to @p responseFd. Returns
 * the process exit code: 0 on clean EOF, nonzero on a protocol or
 * pipe error. @p inject arms the worker-level fault kinds — Crash
 * abort()s and Hang stalls when the request id matches
 * FaultInjection::cell and the delivery attempt is within
 * FaultInjection::times; Throw raises the usual taxonomy exception,
 * which the worker survives and reports as a structured Error.
 */
int workerMain(int requestFd, int responseFd,
               std::optional<algos::FaultInjection> inject);

} // namespace quetzal::serve

#endif // QUETZAL_SERVE_WORKER_HPP
