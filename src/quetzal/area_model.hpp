/**
 * @file
 * Analytic 7 nm area/power model for QUETZAL configurations
 * (paper Table III) and the accelerator comparison (Table IV).
 *
 * The paper's numbers come from Synopsys ICC2 place-and-route; we
 * reproduce them with an SRAM-macro scaling model: each added read
 * port replicates the SRAM array (data-replication multi-porting,
 * Section IV-B1), so area and power grow close to linearly in the
 * port count on top of a fixed logic overhead (encoder, access
 * control, count ALUs). Constants are anchored to the paper's QZ_8P
 * figures (0.097 mm^2, 746 uW, 1.41% of an A64FX SoC).
 */
#ifndef QUETZAL_QUETZAL_AREA_MODEL_HPP
#define QUETZAL_QUETZAL_AREA_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/params.hpp"

namespace quetzal::accel {

/** Area/power estimate for one QUETZAL configuration. */
struct AreaPowerEstimate
{
    std::string config;      //!< "QZ_1P" .. "QZ_8P"
    unsigned readPorts;
    double areaMm2;          //!< total QUETZAL area, both QBUFFERs
    double powerMw;          //!< total power
    double corePercent;      //!< overhead vs one A64FX core
    double socPercent;       //!< overhead vs the A64FX SoC (48 cores)
    unsigned readLatency;    //!< cycles, 8/ports + 1
};

/** Reference A64FX geometry used for the overhead columns. */
struct A64fxReference
{
    static constexpr double coreAreaMm2 = 2.79; //!< one core, 7 nm
    static constexpr unsigned socCores = 48;
    static constexpr double socAreaMm2 = 331.0; //!< compute region
};

/** Estimate area/power for a port count (1, 2, 4, or 8). */
AreaPowerEstimate estimateAreaPower(unsigned readPorts);

/** All four Table III configurations. */
std::vector<AreaPowerEstimate> tableIiiConfigs();

/** One row of the Table IV accelerator comparison. */
struct AcceleratorRow
{
    std::string study;   //!< "QUETZAL", "GenASM", ...
    std::string device;  //!< "CPU" or "ASIC"
    unsigned numPes;
    double areaMm2;      //!< scaled to 7 nm
    double pgcups;       //!< peak GCUPS
    double
    pgcupsPerMm2() const
    {
        return areaMm2 > 0 ? pgcups / areaMm2 : 0.0;
    }
};

/**
 * Published accelerator reference rows (GenASM, WFAsic with/without
 * backtracking, GenDP, Darwin), areas scaled to 7 nm as in the paper.
 */
std::vector<AcceleratorRow> publishedAccelerators();

/**
 * Compute GCUPS (giga cell-updates per second) from a simulated run:
 * DP-cells the algorithm logically updates divided by wall time at
 * the simulated clock.
 */
double gcups(std::uint64_t dpCells, std::uint64_t cycles,
             double clockGhz);

/** Equivalent DP-cell count of one alignment of an n x m pair. */
inline std::uint64_t
dpCellsClassic(std::uint64_t n, std::uint64_t m)
{
    return n * m;
}

} // namespace quetzal::accel

#endif // QUETZAL_QUETZAL_AREA_MODEL_HPP
