#include "quetzal/qbuffer.hpp"

#include <algorithm>
#include <array>

#include "common/bitutil.hpp"
#include "common/logging.hpp"

namespace quetzal::accel {

QBuffer::QBuffer(const sim::QuetzalParams &params)
    : params_(params), storage_(params.bufferBytes / 8, 0)
{
    fatal_if(params.bufferBytes % 8 != 0,
             "QBUFFER size must be a multiple of the 64-bit word");
    fatal_if(params.banks == 0 || params.readPorts == 0,
             "QBUFFER needs at least one bank and one read port");
}

unsigned
QBuffer::writeEncodedPair(std::size_t wordIdx, std::uint64_t segA,
                          std::uint64_t segB)
{
    panic_if_not(wordIdx + 1 < storage_.size(),
                 "encoded write pair at {} beyond QBUFFER of {} words",
                 wordIdx, storage_.size());
    storage_[wordIdx] = segA;
    storage_[wordIdx + 1] = segB;
    return 1;
}

void
QBuffer::writeWord(std::size_t wordIdx, std::uint64_t value)
{
    panic_if_not(wordIdx < storage_.size(),
                 "word write at {} beyond QBUFFER of {} words", wordIdx,
                 storage_.size());
    storage_[wordIdx] = value;
}

std::uint64_t
QBuffer::readWord(std::size_t wordIdx) const
{
    panic_if_not(wordIdx < storage_.size(),
                 "word read at {} beyond QBUFFER of {} words", wordIdx,
                 storage_.size());
    return storage_[wordIdx];
}

void
QBuffer::writeElement(std::size_t elemIdx, std::uint64_t value,
                      ElementSize size)
{
    const unsigned ebits = genomics::bitsPerElement(size);
    const std::size_t bit = elemIdx * ebits;
    const std::size_t word = bit / 64;
    panic_if_not(word < storage_.size(),
                 "element write at {} beyond QBUFFER", elemIdx);
    storage_[word] =
        insertBits(storage_[word], bit % 64, ebits, value);
}

unsigned
QBuffer::writeDirect(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> elems,
    ElementSize size)
{
    const unsigned ebits = genomics::bitsPerElement(size);
    std::vector<unsigned> perBank(params_.banks, 0);
    for (const auto &[idx, value] : elems) {
        writeElement(idx, value, size);
        const std::size_t word = idx * ebits / 64;
        ++perBank[bankOf(word)];
    }
    unsigned worst = 0;
    for (unsigned count : perBank)
        worst = std::max(worst, count);
    return std::max(worst, 1u);
}

std::uint64_t
QBuffer::readElement(std::size_t elemIdx, ElementSize size) const
{
    return genomics::extractElement(storage_, elemIdx, size);
}

std::uint64_t
QBuffer::readWindow64(std::size_t elemIdx, ElementSize size) const
{
    const unsigned ebits = genomics::bitsPerElement(size);
    const std::size_t bit = elemIdx * ebits;
    const std::size_t word = bit / 64;
    const unsigned offset = static_cast<unsigned>(bit % 64);
    panic_if_not(word < storage_.size(),
                 "window read at element {} beyond QBUFFER", elemIdx);

    // Access logic: fetch two consecutive SRAM words (W1, W2) ...
    const std::uint64_t w1 = storage_[word];
    const std::uint64_t w2 =
        word + 1 < storage_.size() ? storage_[word + 1] : 0;
    // ... then the slicing logic extracts offset..offset+63 and packs.
    if (offset == 0)
        return w1;
    return (w1 >> offset) | (w2 << (64 - offset));
}

std::uint64_t
QBuffer::readWindow64Ending(std::size_t elemIdx, ElementSize size) const
{
    const unsigned ebits = genomics::bitsPerElement(size);
    const std::int64_t endBit =
        static_cast<std::int64_t>((elemIdx + 1) * ebits);
    const std::int64_t startBit = endBit - 64;
    if (startBit >= 0) {
        const std::size_t word = static_cast<std::size_t>(startBit) / 64;
        const unsigned offset =
            static_cast<unsigned>(static_cast<std::size_t>(startBit) % 64);
        panic_if_not(word < storage_.size(),
                     "reverse window at element {} beyond QBUFFER",
                     elemIdx);
        const std::uint64_t w1 = storage_[word];
        const std::uint64_t w2 =
            word + 1 < storage_.size() ? storage_[word + 1] : 0;
        if (offset == 0)
            return w1;
        return (w1 >> offset) | (w2 << (64 - offset));
    }
    // Window underruns the buffer start: real elements occupy the top
    // bits, the bottom pads with zeros.
    panic_if_not(!storage_.empty(), "reverse window on empty QBUFFER");
    const unsigned pad = static_cast<unsigned>(-startBit);
    const std::uint64_t w1 = storage_[0];
    if (pad >= 64)
        return 0;
    return w1 << pad;
}

unsigned
QBuffer::vectorReadCycles(unsigned requests) const
{
    if (requests == 0)
        return 1;
    return static_cast<unsigned>(
        divCeil(requests, params_.readPorts) + 1);
}

void
QBuffer::clear()
{
    std::fill(storage_.begin(), storage_.end(), 0);
}

void
QBuffer::restore(const std::vector<std::uint64_t> &snapshot)
{
    panic_if_not(snapshot.size() == storage_.size(),
                 "QBUFFER snapshot size mismatch: {} vs {}",
                 snapshot.size(), storage_.size());
    storage_ = snapshot;
}

} // namespace quetzal::accel
