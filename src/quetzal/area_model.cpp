#include "quetzal/area_model.hpp"

#include "common/format.hpp"

#include "common/logging.hpp"

namespace quetzal::accel {

namespace {

/**
 * Fixed (port-independent) logic: data encoder, access control,
 * count ALUs, write logic. Anchored so that the 1-port and 8-port
 * points land on the paper's Table III values (0.013 / 0.097 mm^2).
 */
constexpr double kFixedLogicMm2 = 0.001;
/** One replicated SRAM read-port copy of both 8 KB QBUFFERs. */
constexpr double kPerPortMm2 = 0.012;

/** Power follows the same replication structure (anchor: 746 uW @8P). */
constexpr double kFixedLogicMw = 0.026;
constexpr double kPerPortMw = 0.090;

} // namespace

AreaPowerEstimate
estimateAreaPower(unsigned readPorts)
{
    fatal_if(readPorts == 0 || readPorts > 8,
             "QUETZAL supports 1..8 read ports, got {}", readPorts);
    AreaPowerEstimate est;
    est.config = qformat("QZ_{}P", readPorts);
    est.readPorts = readPorts;
    est.areaMm2 = kFixedLogicMm2 + kPerPortMm2 * readPorts;
    est.powerMw = kFixedLogicMw + kPerPortMw * readPorts;
    est.corePercent = 100.0 * est.areaMm2 / A64fxReference::coreAreaMm2;
    est.socPercent = 100.0 * est.areaMm2 * A64fxReference::socCores /
                     A64fxReference::socAreaMm2;
    sim::QuetzalParams params;
    params.readPorts = readPorts;
    est.readLatency = params.readLatency();
    return est;
}

std::vector<AreaPowerEstimate>
tableIiiConfigs()
{
    return {estimateAreaPower(1), estimateAreaPower(2),
            estimateAreaPower(4), estimateAreaPower(8)};
}

std::vector<AcceleratorRow>
publishedAccelerators()
{
    // Published numbers from the paper's Table IV (areas already
    // scaled to 7 nm there).
    return {
        {"GenASM", "ASIC", 32, 1.37, 2043.8, },
        {"WFAsic (w/ backtrack)", "ASIC", 1, 0.45, 61.2},
        {"WFAsic (no backtrack)", "ASIC", 1, 0.45, 136.1},
        {"GenDP", "ASIC", 64, 5.82, 296.8},
        {"Darwin", "ASIC", 64, 5.06, 3469.1},
    };
}

double
gcups(std::uint64_t dpCells, std::uint64_t cycles, double clockGhz)
{
    if (cycles == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(cycles) / (clockGhz * 1e9);
    return static_cast<double>(dpCells) / seconds / 1e9;
}

} // namespace quetzal::accel
