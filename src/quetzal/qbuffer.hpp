/**
 * @file
 * QBUFFER: the scratchpad-style buffer attached to the VPU
 * (paper Section IV-B, Fig. 9c).
 *
 * Geometry: 8 KB organized as 64-bit SRAM words across 8 banks (one per
 * 64-bit VPU lane), words interleaved across banks like the VRF. The
 * structure is direct-mapped and index-addressed (no tags), supports
 * 2-/8-/64-bit element granularities including unaligned sub-word
 * reads (the read logic fetches two consecutive SRAM words and slices,
 * Fig. 10), and is multi-ported via data replication: a full-vector
 * read of R requests takes ceil(R / ports) + 1 cycles.
 */
#ifndef QUETZAL_QUETZAL_QBUFFER_HPP
#define QUETZAL_QUETZAL_QBUFFER_HPP

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "genomics/encoding.hpp"
#include "sim/params.hpp"

namespace quetzal::accel {

using genomics::ElementSize;

/** One QBUFFER instance (hardware model). */
class QBuffer
{
  public:
    explicit QBuffer(const sim::QuetzalParams &params);

    /** Total 64-bit SRAM words. */
    std::size_t words() const { return storage_.size(); }

    /** Elements the buffer can hold at @p size granularity. */
    std::size_t
    capacityElements(ElementSize size) const
    {
        return words() * (64 / genomics::bitsPerElement(size));
    }

    /**
     * Encoded-mode write (from the data encoder): stores a 128-bit
     * vector as two consecutive words starting at @p wordIdx.
     * Single-cycle (Section IV-B2).
     * @return cycles taken (always 1).
     */
    unsigned writeEncodedPair(std::size_t wordIdx, std::uint64_t segA,
                              std::uint64_t segB);

    /** Write one raw 64-bit word (used when filling 64-bit data). */
    void writeWord(std::size_t wordIdx, std::uint64_t value);

    /** Read one raw 64-bit word. */
    std::uint64_t readWord(std::size_t wordIdx) const;

    /**
     * Direct-mode write: element (index, value) pairs land in the SRAM
     * column selected by each index; concurrent writes to the same bank
     * serialize (Section IV-B2: all-same-bank = 8 cycles).
     * @return cycles = worst per-bank request count.
     */
    unsigned writeDirect(
        std::span<const std::pair<std::uint64_t, std::uint64_t>> elems,
        ElementSize size);

    /** Read the element at @p elemIdx with @p size granularity. */
    std::uint64_t readElement(std::size_t elemIdx, ElementSize size) const;

    /**
     * Read a full 64-bit window starting at element @p elemIdx — the
     * unaligned read-logic path (Fig. 10): two consecutive SRAM words
     * are fetched, sliced at the element offset, and packed.
     */
    std::uint64_t readWindow64(std::size_t elemIdx, ElementSize size) const;

    /**
     * Read the 64-bit window whose top element slot is @p elemIdx (the
     * reverse-direction unaligned read used by BiWFA's reverse
     * extension). Elements below the start of the buffer read as zero.
     */
    std::uint64_t readWindow64Ending(std::size_t elemIdx,
                                     ElementSize size) const;

    /**
     * Cycles for a vector read of @p requests lane requests:
     * ceil(requests / readPorts) + 1 (the +1 is the slicing stage,
     * Section IV-C1).
     */
    unsigned vectorReadCycles(unsigned requests) const;

    /** Bank of SRAM word @p wordIdx (interleaved mapping). */
    unsigned bankOf(std::size_t wordIdx) const
    {
        return static_cast<unsigned>(wordIdx % params_.banks);
    }

    const sim::QuetzalParams &params() const { return params_; }

    /** Zero the storage (context-switch restore testing). */
    void clear();

    /** Architectural state snapshot (context switches, Section IV-E). */
    std::vector<std::uint64_t> save() const { return storage_; }
    /** Restore a snapshot taken with save(). */
    void restore(const std::vector<std::uint64_t> &snapshot);

  private:
    /** Write @p value into the element slot, read-modify-write. */
    void writeElement(std::size_t elemIdx, std::uint64_t value,
                      ElementSize size);

    sim::QuetzalParams params_;
    std::vector<std::uint64_t> storage_;
};

} // namespace quetzal::accel

#endif // QUETZAL_QUETZAL_QBUFFER_HPP
