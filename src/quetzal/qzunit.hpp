/**
 * @file
 * QzUnit: the programmer-visible QUETZAL instruction set
 * (paper Section III-A), layered on the vector ISA facade.
 *
 * Implements qzconf, qzencode, qzstore, qzload, qzmhm<OPN>, qzmm<OPN>,
 * and qzcount against two QBUFFER instances, the data encoder, and the
 * count ALUs. Every instruction reports its timing to the pipeline:
 * QBUFFER reads cost ceil(lanes/ports)+1 cycles instead of a trip
 * through the cache hierarchy, and QBUFFER writes execute at commit
 * (non-speculatively, Section IV-E).
 */
#ifndef QUETZAL_QUETZAL_QZUNIT_HPP
#define QUETZAL_QUETZAL_QZUNIT_HPP

#include <cstdint>
#include <span>
#include <string_view>

#include "isa/vectorunit.hpp"
#include "quetzal/countalu.hpp"
#include "quetzal/encoder.hpp"
#include "quetzal/qbuffer.hpp"

namespace quetzal::accel {

/** Operation selector for qzmhm<OPN> / qzmm<OPN>. */
enum class QzOpn : std::uint8_t
{
    Add,
    Sub,
    Mul,
    Max,
    Min,
    CmpEq,    //!< 1 when equal, else 0
    Count,    //!< count-ALU: consecutive matches, forward window
    CountRev, //!< count-ALU: consecutive matches, reverse window
    XorWin,   //!< raw XOR of forward 64-bit windows (no count ALU)
    XorWinRev, //!< raw XOR of reverse 64-bit windows
};

/** QBUFFER selector. */
enum class QzSel : std::uint8_t
{
    Buf0 = 0, //!< by convention: the pattern buffer
    Buf1 = 1, //!< by convention: the text buffer
};

/** The QUETZAL accelerator attached to one core's VPU. */
class QzUnit
{
  public:
    /**
     * @param vpu the core's vector facade (shared pipeline).
     * @param params accelerator configuration (ports, sizes).
     */
    QzUnit(isa::VectorUnit &vpu, const sim::QuetzalParams &params);

    // ---- qzconf ----------------------------------------------------
    /**
     * Configure element counts of each buffer and the element size
     * (0: 2-bit encoded, 1: 8-bit chars, 2: 64-bit elements).
     */
    void qzconf(std::uint64_t eb0, std::uint64_t eb1, ElementSize esiz);

    // ---- qzencode --------------------------------------------------
    /**
     * Encode the 64 chars in @p val to 2-bit codes and store them as a
     * 128-bit vector at word pair @p wordIdx of buffer @p sel.
     * Executes at commit.
     */
    void qzencode(QzSel sel, const isa::VReg &val, std::uint64_t wordIdx);

    // ---- qzstore ---------------------------------------------------
    /**
     * Direct-mode indexed store: element idx.u64(i) of buffer @p sel
     * gets val.u64(i), for the first @p n lanes active in @p p.
     * Bank conflicts serialize; executes at commit.
     */
    void qzstore(const isa::VReg &val, const isa::VReg &idx, QzSel sel,
                 const isa::Pred &p, unsigned n = isa::kLanes64);

    // ---- qzload ----------------------------------------------------
    /**
     * Indexed load: lane i of the result is the element at idx.u64(i)
     * of buffer @p sel, zero-extended to 64 bits.
     */
    isa::VReg qzload(const isa::VReg &idx, QzSel sel, const isa::Pred &p,
                     unsigned n = isa::kLanes64);

    // ---- qzmhm<OPN> -------------------------------------------------
    /**
     * Dual-buffer indexed compute: lane i reads buffer 0 at idx0.u64(i)
     * and buffer 1 at idx1.u64(i) and applies @p opn. For
     * QzOpn::Count the reads are full 64-bit windows starting at the
     * element index (unaligned read path) and the count ALU counts
     * consecutive matching elements.
     */
    isa::VReg qzmhm(QzOpn opn, const isa::VReg &idx0,
                    const isa::VReg &idx1, const isa::Pred &p,
                    unsigned n = isa::kLanes64);

    // ---- qzmm<OPN> --------------------------------------------------
    /**
     * Mixed compute: lane i reads buffer @p sel at idx.u64(i) and
     * combines it with val.u64(i) using @p opn.
     */
    isa::VReg qzmm(QzOpn opn, const isa::VReg &val, const isa::VReg &idx,
                   QzSel sel, const isa::Pred &p,
                   unsigned n = isa::kLanes64);

    // ---- qzcount ---------------------------------------------------
    /**
     * Standalone count: lane i counts consecutive matching elements
     * between the 64-bit segments val0.u64(i) and val1.u64(i).
     */
    isa::VReg qzcount(const isa::VReg &val0, const isa::VReg &val1);

    // ---- software helpers (sequence staging) -----------------------
    /**
     * Stage a nucleotide sequence into buffer @p sel via vector loads +
     * qzencode; charges the full staging time (the paper includes it
     * in every measurement). Leaves element size responsibility with
     * the caller's qzconf.
     */
    void stageSequence2bit(QzSel sel, std::string_view seq);

    /** Stage raw 8-bit characters (protein mode). */
    void stageSequence8bit(QzSel sel, std::string_view seq);

    /** Stage 64-bit words (DP rows, histogram tables). */
    void stageWords64(QzSel sel, std::span<const std::uint64_t> words);

    /** Direct functional access for verification in tests. */
    const QBuffer &buffer(QzSel sel) const;
    QBuffer &buffer(QzSel sel);

    ElementSize elementSize() const { return esiz_; }
    std::uint64_t elementCount(QzSel sel) const
    {
        return sel == QzSel::Buf0 ? eb0_ : eb1_;
    }

    isa::VectorUnit &vpu() { return vpu_; }

  private:
    /** Apply a non-count QzOpn to two 64-bit operands. */
    static std::uint64_t apply(QzOpn opn, std::uint64_t a,
                               std::uint64_t b);

    /** Bounds-check an element index against the qzconf'd count. */
    void checkIndex(QzSel sel, std::uint64_t elemIdx,
                    bool window) const;

    /** Readiness tag of the most recent write to buffer @p sel. */
    sim::Tag &writeTag(QzSel sel)
    {
        return sel == QzSel::Buf0 ? write0_ : write1_;
    }

    isa::VectorUnit &vpu_;
    QBuffer buf0_;
    QBuffer buf1_;
    sim::Tag write0_{}; //!< store->load dependency through QBUFFER 0
    sim::Tag write1_{}; //!< store->load dependency through QBUFFER 1
    std::uint64_t eb0_ = 0;
    std::uint64_t eb1_ = 0;
    ElementSize esiz_ = ElementSize::Bits2;
};

} // namespace quetzal::accel

#endif // QUETZAL_QUETZAL_QZUNIT_HPP
