/**
 * @file
 * Count ALU: the qzcount functional unit (paper Section IV-D, Fig. 11).
 *
 * Counts consecutive matching elements between two 64-bit segments:
 * (1) bitwise XNOR marks matching bits, (2) trailing-ones count finds
 * the run of consecutive matching bits from bit 0, (3) a shift by
 * log2(element bits) converts matching bits to whole matching elements.
 *
 * Host-side note: countr_one(~(a ^ b)) == countr_zero(a ^ b), so the
 * whole-register qzcount path maps onto the host-SIMD backend's
 * xor + per-lane trailing-zero kernel (isa/hostsimd.hpp, qzcount) —
 * same value per lane, one table call for all eight.
 */
#ifndef QUETZAL_QUETZAL_COUNTALU_HPP
#define QUETZAL_QUETZAL_COUNTALU_HPP

#include <bit>
#include <cstdint>

#include "genomics/encoding.hpp"

namespace quetzal::accel {

/** Hardware model of one count-ALU instance (one per 64-bit lane). */
class CountAlu
{
  public:
    /** Pipeline depth in cycles (xnor / count / shift stages). */
    static constexpr unsigned kPipelineDepth = 3;

    /**
     * Number of consecutive matching elements between segments
     * @p a and @p b at @p size granularity, counted from bit 0.
     */
    static unsigned
    count(std::uint64_t a, std::uint64_t b, genomics::ElementSize size)
    {
        const std::uint64_t matched = ~(a ^ b);          // stage 1: xnor
        const int trailing = countTrailingOnesOf(matched); // stage 2
        return static_cast<unsigned>(trailing) >> shiftFor(size); // 3
    }

    /**
     * Reverse count: consecutive matching elements counted from the
     * top of the segment downwards. The mirror of count() — a bit-
     * reversed input into the same trailing-ones tree — needed by
     * BiWFA's reverse wavefront extension (the paper evaluates BiWFA;
     * its hardware counts runs in both directions, see DESIGN.md).
     */
    static unsigned
    countReverse(std::uint64_t a, std::uint64_t b,
                 genomics::ElementSize size)
    {
        const std::uint64_t matched = ~(a ^ b);
        const int leading = std::countl_one(matched);
        return static_cast<unsigned>(leading) >> shiftFor(size);
    }

    /** Shift amount per element size: 2-bit -> 1, 8-bit -> 3, 64 -> 6. */
    static unsigned
    shiftFor(genomics::ElementSize size)
    {
        switch (size) {
          case genomics::ElementSize::Bits2:
            return 1;
          case genomics::ElementSize::Bits8:
            return 3;
          default:
            return 6;
        }
    }

    /** Elements per 64-bit segment at @p size granularity. */
    static unsigned
    elementsPerSegment(genomics::ElementSize size)
    {
        return 64 / genomics::bitsPerElement(size);
    }

  private:
    static int
    countTrailingOnesOf(std::uint64_t value)
    {
        return std::countr_one(value);
    }
};

} // namespace quetzal::accel

#endif // QUETZAL_QUETZAL_COUNTALU_HPP
