#include "quetzal/qzunit.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "isa/hostsimd.hpp"
#include "sim/hostphase.hpp"

namespace quetzal::accel {

using isa::Pred;
using isa::VReg;
using sim::OpClass;

QzUnit::QzUnit(isa::VectorUnit &vpu, const sim::QuetzalParams &params)
    : vpu_(vpu), buf0_(params), buf1_(params)
{
    fatal_if(!params.present,
             "constructing a QzUnit on a system without QUETZAL "
             "hardware; use SystemParams::withQuetzal()");
}

const QBuffer &
QzUnit::buffer(QzSel sel) const
{
    return sel == QzSel::Buf0 ? buf0_ : buf1_;
}

QBuffer &
QzUnit::buffer(QzSel sel)
{
    return sel == QzSel::Buf0 ? buf0_ : buf1_;
}

void
QzUnit::qzconf(std::uint64_t eb0, std::uint64_t eb1, ElementSize esiz)
{
    fatal_if(eb0 > buf0_.capacityElements(esiz),
             "qzconf: {} elements exceed QBUFFER0 capacity {}", eb0,
             buf0_.capacityElements(esiz));
    fatal_if(eb1 > buf1_.capacityElements(esiz),
             "qzconf: {} elements exceed QBUFFER1 capacity {}", eb1,
             buf1_.capacityElements(esiz));
    eb0_ = eb0;
    eb1_ = eb1;
    esiz_ = esiz;
    vpu_.pipeline().executeQz(OpClass::QzConf, 1, {});
}

void
QzUnit::checkIndex(QzSel sel, std::uint64_t elemIdx, bool window) const
{
    const std::uint64_t count = sel == QzSel::Buf0 ? eb0_ : eb1_;
    // Window reads may legitimately extend past the configured element
    // count (the algorithm clamps the count result), but the starting
    // element must be in range.
    (void)window;
    panic_if_not(elemIdx < count,
                 "QBUFFER{} access at element {} >= configured count {}",
                 static_cast<int>(sel), elemIdx, count);
}

void
QzUnit::qzencode(QzSel sel, const VReg &val, std::uint64_t wordIdx)
{
    const auto [segA, segB] = DataEncoder::encode(val);
    QBuffer &buf = buffer(sel);
    const unsigned cycles = buf.writeEncodedPair(wordIdx, segA, segB);
    writeTag(sel) = vpu_.pipeline().executeQz(
        OpClass::QzEncode, cycles, {val.tag, writeTag(sel)},
        /*commitSerialized=*/true);
}

void
QzUnit::qzstore(const VReg &val, const VReg &idx, QzSel sel,
                const Pred &p, unsigned n)
{
    panic_if_not(n <= isa::kLanes64, "qzstore over {} lanes", n);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> elems;
    elems.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        checkIndex(sel, idx.u64(i), false);
        elems.emplace_back(idx.u64(i), val.u64(i));
    }
    QBuffer &buf = buffer(sel);
    const unsigned cycles = buf.writeDirect(elems, esiz_);
    writeTag(sel) = vpu_.pipeline().executeQz(
        OpClass::QzStore, cycles, {val.tag, idx.tag, p.tag,
                                   writeTag(sel)},
        /*commitSerialized=*/true);
}

VReg
QzUnit::qzload(const VReg &idx, QzSel sel, const Pred &p, unsigned n)
{
    panic_if_not(n <= isa::kLanes64, "qzload over {} lanes", n);
    const QBuffer &buf = buffer(sel);
    VReg out;
    unsigned requests = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        checkIndex(sel, idx.u64(i), false);
        out.setU64(i, buf.readElement(idx.u64(i), esiz_));
        ++requests;
    }
    const unsigned latency = buf.vectorReadCycles(requests);
    out.tag = vpu_.pipeline().executeQz(OpClass::QzLoad, latency,
                                        {idx.tag, p.tag,
                                         writeTag(sel)});
    return out;
}

std::uint64_t
QzUnit::apply(QzOpn opn, std::uint64_t a, std::uint64_t b)
{
    switch (opn) {
      case QzOpn::Add:
        return a + b;
      case QzOpn::Sub:
        return a - b;
      case QzOpn::Mul:
        return a * b;
      case QzOpn::Max:
        return std::max<std::int64_t>(static_cast<std::int64_t>(a),
                                      static_cast<std::int64_t>(b));
      case QzOpn::Min:
        return std::min<std::int64_t>(static_cast<std::int64_t>(a),
                                      static_cast<std::int64_t>(b));
      case QzOpn::CmpEq:
        return a == b ? 1 : 0;
      default:
        panic("apply: count opcodes take the count-ALU path");
    }
}

VReg
QzUnit::qzmhm(QzOpn opn, const VReg &idx0, const VReg &idx1,
              const Pred &p, unsigned n)
{
    panic_if_not(n <= isa::kLanes64, "qzmhm over {} lanes", n);
    VReg out;
    unsigned requests = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        const bool counting =
            opn == QzOpn::Count || opn == QzOpn::CountRev ||
            opn == QzOpn::XorWin || opn == QzOpn::XorWinRev;
        checkIndex(QzSel::Buf0, idx0.u64(i), counting);
        checkIndex(QzSel::Buf1, idx1.u64(i), counting);
        if (opn == QzOpn::XorWin) {
            const std::uint64_t w0 =
                buf0_.readWindow64(idx0.u64(i), esiz_);
            const std::uint64_t w1 =
                buf1_.readWindow64(idx1.u64(i), esiz_);
            out.setU64(i, w0 ^ w1);
        } else if (opn == QzOpn::XorWinRev) {
            const std::uint64_t w0 =
                buf0_.readWindow64Ending(idx0.u64(i), esiz_);
            const std::uint64_t w1 =
                buf1_.readWindow64Ending(idx1.u64(i), esiz_);
            out.setU64(i, w0 ^ w1);
        } else if (opn == QzOpn::Count) {
            const std::uint64_t w0 =
                buf0_.readWindow64(idx0.u64(i), esiz_);
            const std::uint64_t w1 =
                buf1_.readWindow64(idx1.u64(i), esiz_);
            out.setU64(i, CountAlu::count(w0, w1, esiz_));
        } else if (opn == QzOpn::CountRev) {
            const std::uint64_t w0 =
                buf0_.readWindow64Ending(idx0.u64(i), esiz_);
            const std::uint64_t w1 =
                buf1_.readWindow64Ending(idx1.u64(i), esiz_);
            out.setU64(i, CountAlu::countReverse(w0, w1, esiz_));
        } else {
            const std::uint64_t a = buf0_.readElement(idx0.u64(i), esiz_);
            const std::uint64_t b = buf1_.readElement(idx1.u64(i), esiz_);
            out.setU64(i, apply(opn, a, b));
        }
        ++requests;
    }
    const unsigned readLat = std::max(buf0_.vectorReadCycles(requests),
                                      buf1_.vectorReadCycles(requests));
    const unsigned aluLat =
        (opn == QzOpn::Count || opn == QzOpn::CountRev)
            ? CountAlu::kPipelineDepth : 1;
    out.tag = vpu_.pipeline().executeQz(
        OpClass::QzMhm, readLat + aluLat,
        {idx0.tag, idx1.tag, p.tag, write0_, write1_});
    return out;
}

VReg
QzUnit::qzmm(QzOpn opn, const VReg &val, const VReg &idx, QzSel sel,
             const Pred &p, unsigned n)
{
    panic_if_not(n <= isa::kLanes64, "qzmm over {} lanes", n);
    const QBuffer &buf = buffer(sel);
    VReg out;
    unsigned requests = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (!p.active(i))
            continue;
        checkIndex(sel, idx.u64(i),
                   opn == QzOpn::Count || opn == QzOpn::CountRev);
        if (opn == QzOpn::Count) {
            const std::uint64_t w = buf.readWindow64(idx.u64(i), esiz_);
            out.setU64(i, CountAlu::count(w, val.u64(i), esiz_));
        } else if (opn == QzOpn::CountRev) {
            const std::uint64_t w =
                buf.readWindow64Ending(idx.u64(i), esiz_);
            out.setU64(i, CountAlu::countReverse(w, val.u64(i), esiz_));
        } else {
            const std::uint64_t b = buf.readElement(idx.u64(i), esiz_);
            out.setU64(i, apply(opn, val.u64(i), b));
        }
        ++requests;
    }
    const unsigned readLat = buf.vectorReadCycles(requests);
    const unsigned aluLat =
        (opn == QzOpn::Count || opn == QzOpn::CountRev)
            ? CountAlu::kPipelineDepth : 1;
    out.tag = vpu_.pipeline().executeQz(
        OpClass::QzMm, readLat + aluLat,
        {val.tag, idx.tag, p.tag, writeTag(sel)});
    return out;
}

VReg
QzUnit::qzcount(const VReg &val0, const VReg &val1)
{
    VReg out;
    {
        sim::HostPhase::Scope scope(sim::HostPhase::Func);
        isa::hostSimd().qzcount(val0.words.data(), val1.words.data(),
                                CountAlu::shiftFor(esiz_),
                                out.words.data());
    }
    out.tag = vpu_.pipeline().executeQz(OpClass::QzCount,
                                        CountAlu::kPipelineDepth,
                                        {val0.tag, val1.tag});
    return out;
}

void
QzUnit::stageSequence2bit(QzSel sel, std::string_view seq)
{
    QBuffer &buf = buffer(sel);
    fatal_if(seq.size() > buf.capacityElements(ElementSize::Bits2),
             "sequence of {} bases exceeds QBUFFER 2-bit capacity {}",
             seq.size(), buf.capacityElements(ElementSize::Bits2));
    // 64 chars per iteration: one contiguous vector load feeds one
    // qzencode, filling two consecutive 64-bit SRAM words.
    char block[64];
    for (std::size_t off = 0, word = 0; off < seq.size();
         off += 64, word += 2) {
        const std::size_t chunk = std::min<std::size_t>(64,
                                                        seq.size() - off);
        std::memset(block, 'A', sizeof(block));
        std::memcpy(block, seq.data() + off, chunk);
        const VReg chars =
            vpu_.load(/*site=*/0x9100 + static_cast<int>(sel), block, 64);
        qzencode(sel, chars, word);
    }
}

void
QzUnit::stageSequence8bit(QzSel sel, std::string_view seq)
{
    QBuffer &buf = buffer(sel);
    fatal_if(seq.size() > buf.capacityElements(ElementSize::Bits8),
             "sequence of {} chars exceeds QBUFFER 8-bit capacity {}",
             seq.size(), buf.capacityElements(ElementSize::Bits8));
    // 64 chars per iteration: vector load + direct-mode write of eight
    // consecutive words (one per bank: single-cycle, conflict-free).
    for (std::size_t off = 0; off < seq.size(); off += 64) {
        const std::size_t chunk = std::min<std::size_t>(64,
                                                        seq.size() - off);
        char block[64] = {};
        std::memcpy(block, seq.data() + off, chunk);
        const VReg chars =
            vpu_.load(/*site=*/0x9200 + static_cast<int>(sel), block, 64);
        for (unsigned w = 0; w < 8; ++w)
            buf.writeWord(off / 8 + w, chars.u64(w));
        writeTag(sel) = vpu_.pipeline().executeQz(
            OpClass::QzStore, 1, {chars.tag, writeTag(sel)},
            /*commitSerialized=*/true);
    }
}

void
QzUnit::stageWords64(QzSel sel, std::span<const std::uint64_t> words)
{
    QBuffer &buf = buffer(sel);
    fatal_if(words.size() > buf.words(),
             "{} words exceed QBUFFER word capacity {}", words.size(),
             buf.words());
    for (std::size_t off = 0; off < words.size(); off += 8) {
        const std::size_t chunk = std::min<std::size_t>(8,
                                                        words.size() - off);
        const VReg data = vpu_.load(
            /*site=*/0x9300 + static_cast<int>(sel), words.data() + off,
            static_cast<unsigned>(chunk * 8));
        for (std::size_t w = 0; w < chunk; ++w)
            buf.writeWord(off + w, data.u64(static_cast<unsigned>(w)));
        writeTag(sel) = vpu_.pipeline().executeQz(
            OpClass::QzStore, 1, {data.tag, writeTag(sel)},
            /*commitSerialized=*/true);
    }
}

} // namespace quetzal::accel
