/**
 * @file
 * Data encoder: hardware model of the unit feeding qzencode
 * (paper Section IV-A, Fig. 9a/b).
 *
 * Receives a 512-bit vector of characters from the VRF, extracts ASCII
 * bits 1 and 2 of each character, and packs the resulting 2-bit codes
 * into a 128-bit vector (two 64-bit segments) destined for a QBUFFER.
 */
#ifndef QUETZAL_QUETZAL_ENCODER_HPP
#define QUETZAL_QUETZAL_ENCODER_HPP

#include <cstdint>
#include <utility>

#include "genomics/encoding.hpp"
#include "isa/vreg.hpp"

namespace quetzal::accel {

/** The static bit-encoding unit. */
class DataEncoder
{
  public:
    /**
     * Encode the 64 characters of @p chars into two 64-bit segments of
     * packed 2-bit codes (segA = chars 0..31, segB = chars 32..63).
     */
    static std::pair<std::uint64_t, std::uint64_t>
    encode(const isa::VReg &chars)
    {
        std::uint64_t segA = 0, segB = 0;
        for (unsigned i = 0; i < 32; ++i) {
            segA |= std::uint64_t{genomics::encodeBase2(
                        static_cast<char>(chars.u8(i)))}
                    << (2 * i);
            segB |= std::uint64_t{genomics::encodeBase2(
                        static_cast<char>(chars.u8(32 + i)))}
                    << (2 * i);
        }
        return {segA, segB};
    }
};

} // namespace quetzal::accel

#endif // QUETZAL_QUETZAL_ENCODER_HPP
