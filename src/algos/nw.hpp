/**
 * @file
 * Needleman-Wunsch (NW) with unit costs — the classic full-table DP
 * (paper Fig. 1a; evaluated as the parasail-style baseline in use
 * case 3).
 *
 * The timed variants compute the table along anti-diagonals (paper
 * Fig. 7): all loads/stores are unit-stride against a diagonal-
 * linearized table, so the classic algorithm vectorizes without
 * gathers — which is exactly why QUETZAL's benefit here is modest
 * compared to the modern algorithms. The QUETZAL variant keeps both
 * sequences in the QBUFFERs and produces the substitution-cost vector
 * with qzmhm<cmpeq> instead of two cache loads plus a compare.
 */
#ifndef QUETZAL_ALGOS_NW_HPP
#define QUETZAL_ALGOS_NW_HPP

#include <string_view>

#include "algos/variant.hpp"
#include "algos/wfa.hpp" // AlignResult
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"

namespace quetzal::algos {

/**
 * Full-table NW alignment (optimal edit distance + CIGAR).
 *
 * @param variant Ref / Base / Vec / Qz (QzC behaves as Qz: the count
 *        unit has no role in the classic recurrence).
 * @param vpu required for timed variants.
 * @param qz required for Qz/QzC.
 */
AlignResult nwAlign(Variant variant, std::string_view pattern,
                    std::string_view text, isa::VectorUnit *vpu = nullptr,
                    accel::QzUnit *qz = nullptr, bool traceback = true);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_NW_HPP
