/**
 * @file
 * SneakySnake (SS) edit-distance approximation / pre-alignment filter.
 *
 * SS computes a lower bound on the edit distance by greedily chaining
 * the longest exact match runs across 2E+1 diagonals (paper Fig. 1c /
 * Fig. 2b): if even the optimistic bound exceeds the threshold E the
 * pair cannot align within E edits and is rejected before the
 * expensive aligner runs. Long reads are processed in segments whose
 * text base follows the diagonal the previous segment ended on (the
 * grid decomposition SneakySnake uses for long sequences).
 *
 * The diagonal run-counting kernel is the hot loop; it executes per
 * variant: Base (scalar), Vec (gathers across diagonal lanes), Qz
 * (qzmhm<cmpeq>), QzC (qzmhm<qzcount>, 32 bases per lane per
 * instruction).
 */
#ifndef QUETZAL_ALGOS_SNEAKYSNAKE_HPP
#define QUETZAL_ALGOS_SNEAKYSNAKE_HPP

#include <cstdint>
#include <memory>
#include <string_view>

#include "algos/variant.hpp"
#include "genomics/encoding.hpp"
#include "isa/scalarunit.hpp"
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"

namespace quetzal::algos {

/** Filter outcome. */
struct SsResult
{
    bool accepted = false;       //!< edit bound <= threshold
    std::int64_t editBound = 0;  //!< SS's lower-bound estimate
};

/** Per-variant diagonal run-counting kernel. */
class SsEngine
{
  public:
    virtual ~SsEngine() = default;

    /** Prepare for one pair (QUETZAL engines stage the QBUFFERs). */
    void begin(std::string_view pattern, std::string_view text,
               genomics::ElementSize esize =
                   genomics::ElementSize::Bits2);

    /**
     * Longest exact-match run over diagonals [kLo, kHi]: the run for
     * diagonal k starts at pattern index @p pi and text index
     * @p tiBase + k.
     *
     * @param[out] bestK the smallest diagonal achieving the maximum.
     * @return the maximum run length (0 when nothing matches).
     */
    virtual std::int32_t bestRun(std::int64_t pi, std::int64_t tiBase,
                                 int kLo, int kHi, int &bestK) = 0;

  protected:
    virtual void onBegin(genomics::ElementSize esize) { (void)esize; }

    /** Functional run length for one diagonal (shared golden model). */
    std::int32_t runLength(std::int64_t pi, std::int64_t ti) const;

    /** Sentinel padding for the word-wise kernels (see WfaEngine). */
    static constexpr std::size_t kSeqPad = 8;
    const char *patData() const { return p_.data(); }
    const char *txtData() const { return t_.data(); }

    std::string_view p_;
    std::string_view t_;

  private:
    std::string paddedP_;
    std::string paddedT_;
};

/** SneakySnake configuration. */
struct SsConfig
{
    std::int64_t editThreshold = 0; //!< E; <=0 derives from length
    std::size_t segmentLength = 1000; //!< long-read grid segment
};

/** Derive the default threshold for a read of @p length at @p rate. */
std::int64_t defaultSsThreshold(std::size_t length, double errorRate);

/** Run the filter with the given kernel engine. */
SsResult sneakySnake(SsEngine &engine, std::string_view pattern,
                     std::string_view text, const SsConfig &config,
                     genomics::ElementSize esize =
                         genomics::ElementSize::Bits2);

/** Create the kernel engine for @p variant (see makeWfaEngine). */
std::unique_ptr<SsEngine> makeSsEngine(Variant variant,
                                       isa::VectorUnit *vpu,
                                       accel::QzUnit *qz);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_SNEAKYSNAKE_HPP
