#include "algos/cigar.hpp"

#include "common/format.hpp"

namespace quetzal::algos {

std::string
Cigar::rle() const
{
    std::string out;
    std::size_t i = 0;
    while (i < ops.size()) {
        std::size_t j = i;
        while (j < ops.size() && ops[j] == ops[i])
            ++j;
        out += qformat("{}{}", j - i, ops[i]);
        i = j;
    }
    return out;
}

bool
validateCigar(std::string_view pattern, std::string_view text,
              const Cigar &cigar)
{
    std::size_t i = 0, j = 0;
    for (char op : cigar.ops) {
        switch (op) {
          case 'M':
            if (i >= pattern.size() || j >= text.size() ||
                pattern[i] != text[j])
                return false;
            ++i;
            ++j;
            break;
          case 'X':
            if (i >= pattern.size() || j >= text.size() ||
                pattern[i] == text[j])
                return false;
            ++i;
            ++j;
            break;
          case 'I':
            if (j >= text.size())
                return false;
            ++j;
            break;
          case 'D':
            if (i >= pattern.size())
                return false;
            ++i;
            break;
          default:
            return false;
        }
    }
    return i == pattern.size() && j == text.size();
}

} // namespace quetzal::algos
