/**
 * @file
 * Batch experiment engine: runs many (algorithm, variant, dataset)
 * evaluation-matrix cells concurrently on a fixed thread pool, with
 * per-cell fault isolation, bounded retries, checkpoint/resume, and
 * deterministic fault injection (docs/ROBUSTNESS.md).
 *
 * Each cell is independent by construction — runAlgorithm() builds a
 * fresh simulated core per call and datasets are read-only — so the
 * matrix is embarrassingly parallel. Results come back in submission
 * order regardless of completion order, and every cell is bitwise
 * identical to what a serial run would produce (the simulator is
 * deterministic and shares no mutable state across cells). A cell
 * that fails becomes a structured CellFailure record instead of
 * killing the sweep; every other cell's result is unaffected.
 */
#ifndef QUETZAL_ALGOS_BATCH_HPP
#define QUETZAL_ALGOS_BATCH_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algos/faults.hpp"
#include "algos/runner.hpp"
#include "algos/workload.hpp"
#include "common/threadpool.hpp"
#include "genomics/pairsource.hpp"

namespace quetzal::algos {

/**
 * One queued evaluation-matrix cell. Pairs arrive through a shared
 * PairSource — an in-RAM dataset is just the zero-copy
 * DatasetPairSource special case, which the dataset constructors
 * below build for callers that still materialize.
 */
struct BatchCell
{
    /** Registry workload this cell runs (non-owning; registry-owned). */
    const Workload *workload = nullptr;
    /** Shared so many cells can stream one dataset/store/generator. */
    std::shared_ptr<const genomics::PairSource> source;
    RunOptions options;

    BatchCell() = default;

    BatchCell(const Workload &workload_,
              std::shared_ptr<const genomics::PairSource> source_,
              RunOptions options_)
        : workload(&workload_), source(std::move(source_)),
          options(std::move(options_))
    {
    }

    BatchCell(const Workload &workload_,
              std::shared_ptr<const genomics::PairDataset> dataset_,
              RunOptions options_)
        : BatchCell(workload_,
                    std::make_shared<genomics::DatasetPairSource>(
                        std::move(dataset_)),
                    std::move(options_))
    {
    }

    /** Legacy construction from the AlgoKind enum. */
    BatchCell(AlgoKind kind,
              std::shared_ptr<const genomics::PairDataset> dataset_,
              RunOptions options_)
        : BatchCell(workloadFor(kind), std::move(dataset_),
                    std::move(options_))
    {
    }

    BatchCell(AlgoKind kind,
              std::shared_ptr<const genomics::PairSource> source_,
              RunOptions options_)
        : BatchCell(workloadFor(kind), std::move(source_),
                    std::move(options_))
    {
    }
};

/**
 * One shard of a partitioned sweep: this process owns every cell
 * whose submission index i satisfies i % count == index - 1
 * (deterministic round-robin, so shard layouts balance mixed-cost
 * matrices and cell ownership never depends on execution order).
 */
struct ShardSpec
{
    unsigned index = 1; //!< 1-based shard number (K in "K/N")
    unsigned count = 1; //!< total shards (N in "K/N")

    bool owns(std::size_t cell) const
    {
        return cell % count == index - 1;
    }

    bool operator==(const ShardSpec &other) const
    {
        return index == other.index && count == other.count;
    }
};

/**
 * Parse a "K/N" shard spec (1 <= K <= N). Empty input yields nullopt
 * (unsharded); malformed input is a fatal() diagnostic.
 */
std::optional<ShardSpec> parseShardSpec(std::string_view spec);

/** Shard from the QZ_BENCH_SHARD environment variable, if set. */
std::optional<ShardSpec> shardFromEnv();

/** "K/N" rendering of @p shard. */
std::string shardName(const ShardSpec &shard);

/** Fault-tolerance knobs of one BatchRunner. */
struct BatchPolicy
{
    /**
     * true (default): a failing cell is recorded and the sweep
     * continues. false: legacy fail-fast — the first failure rethrows
     * from run() after the pool drains.
     */
    bool isolateFailures = true;

    /** Bounded retries for Transient failures. */
    RetryPolicy retry;

    /**
     * When non-empty, completed cells are appended to this file as
     * JSON lines and cells already present in it are skipped on the
     * next run (checkpoint/resume; see docs/ROBUSTNESS.md).
     */
    std::string checkpointPath;

    /** Deterministic fault injection (QZ_FAULT_INJECT by default). */
    std::optional<FaultInjection> inject;

    /**
     * When set, only the cells this shard owns execute (QZ_BENCH_SHARD
     * by default); the other slots keep their identity with zeroed
     * metrics. Checkpoint resume, writes, and fault injection apply to
     * owned cells only, and injection cell indices stay global — the
     * same QZ_FAULT_INJECT spec fires in exactly one shard.
     */
    std::optional<ShardSpec> shard;
};

/** Everything one run() produced. */
struct BatchOutcome
{
    /**
     * One slot per submitted cell, in submission order. A failed
     * cell's slot carries the identifying fields (algo, variant,
     * dataset) with zeroed metrics; check failureFor()/failures.
     */
    std::vector<RunResult> results;

    /** Terminal failures, ordered by cell index. */
    std::vector<CellFailure> failures;

    std::uint64_t resumedCells = 0; //!< skipped via checkpoint
    std::uint64_t retries = 0;      //!< attempts beyond each first

    /** The shard this run executed as (nullopt = every cell). */
    std::optional<ShardSpec> shard;

    /**
     * Global indices of the cells this run owned, in submission
     * order — every index when unsharded. Shard reports serialize
     * exactly these slots.
     */
    std::vector<std::size_t> ownedCells;

    bool ok() const { return failures.empty(); }

    /** Failure record for @p cell; nullptr when the cell succeeded. */
    const CellFailure *
    failureFor(std::size_t cell) const
    {
        for (const auto &failure : failures)
            if (failure.cell == cell)
                return &failure;
        return nullptr;
    }
};

/** True when QZ_BENCH_HOSTPERF is set to a non-empty, non-"0" value. */
bool hostPerfFromEnv();

/**
 * Repair a JSONL checkpoint whose writer was killed mid-line: when
 * the file does not end in '\n', drop the bytes after the last
 * newline (truncate-and-warn) so a subsequent append cannot
 * concatenate a fresh record onto the torn tail and poison both.
 * Complete-but-unparseable lines are left alone — the loader skips
 * them. Returns the number of bytes dropped (0 for a missing or
 * clean file). Shared by BatchRunner and the per-pair checkpoints of
 * qz-align/qz-filter.
 */
std::size_t truncateTornCheckpointTail(const std::string &path);

/**
 * Collects evaluation cells and runs them on a worker pool.
 *
 * Usage: add() every cell (the returned index identifies its slot),
 * then run() once; results land at the same indices. The runner is
 * single-shot per run() call but can be refilled and rerun.
 */
class BatchRunner
{
  public:
    /** @p threads worker count; <= 1 degrades to a serial loop. */
    explicit BatchRunner(unsigned threads = ThreadPool::hardwareThreads())
        : threads_(threads == 0 ? 1 : threads)
    {
        policy_.inject = faultInjectionFromEnv();
        policy_.shard = shardFromEnv();
        hostPerf_ = hostPerfFromEnv();
    }

    /** Queue @p cell; @return its index into run()'s result vector. */
    std::size_t
    add(BatchCell cell)
    {
        fatal_if(!cell.source, "BatchRunner cell without a pair source");
        fatal_if(!cell.workload, "BatchRunner cell without a workload");
        cells_.push_back(std::move(cell));
        return cells_.size() - 1;
    }

    /** Convenience overload building the cell in place. */
    std::size_t
    add(const Workload &workload,
        std::shared_ptr<const genomics::PairDataset> dataset,
        const RunOptions &options)
    {
        return add(BatchCell{workload, std::move(dataset), options});
    }

    /** Convenience overload over a streaming source. */
    std::size_t
    add(const Workload &workload,
        std::shared_ptr<const genomics::PairSource> source,
        const RunOptions &options)
    {
        return add(BatchCell{workload, std::move(source), options});
    }

    /** Legacy convenience overload keyed by AlgoKind. */
    std::size_t
    add(AlgoKind kind,
        std::shared_ptr<const genomics::PairDataset> dataset,
        const RunOptions &options)
    {
        return add(BatchCell{kind, std::move(dataset), options});
    }

    /** Streaming-source overload keyed by AlgoKind. */
    std::size_t
    add(AlgoKind kind,
        std::shared_ptr<const genomics::PairSource> source,
        const RunOptions &options)
    {
        return add(BatchCell{kind, std::move(source), options});
    }

    std::size_t size() const { return cells_.size(); }
    unsigned threads() const { return threads_; }

    /** Mutable fault-tolerance policy (set before run()). */
    BatchPolicy &policy() { return policy_; }
    const BatchPolicy &policy() const { return policy_; }

    /** Enable checkpoint/resume against @p path. */
    void setCheckpoint(std::string path)
    {
        policy_.checkpointPath = std::move(path);
    }

    /** Override the injection spec (tests; env is the default). */
    void setFaultInjection(std::optional<FaultInjection> inject)
    {
        policy_.inject = std::move(inject);
    }

    /** Override the shard (tests/tools; QZ_BENCH_SHARD is the default). */
    void setShard(std::optional<ShardSpec> shard)
    {
        policy_.shard = shard;
    }

    /**
     * Record host wall-clock per cell into RunResult::hostNanos
     * (default: the QZ_BENCH_HOSTPERF environment variable). Off by
     * default so reports stay byte-identical across machines and
     * serial/parallel/sharded execution (docs/SIMULATOR.md, "Host
     * performance").
     */
    void setHostPerf(bool enabled) { hostPerf_ = enabled; }
    bool hostPerf() const { return hostPerf_; }

    /**
     * Run every queued cell and clear the queue. Results are ordered
     * by submission index. Failing cells become CellFailure records
     * (unless policy().isolateFailures is false, which restores the
     * legacy rethrow-first behavior).
     */
    BatchOutcome run();

  private:
    unsigned threads_;
    BatchPolicy policy_;
    bool hostPerf_ = false;
    std::vector<BatchCell> cells_;
};

/** One-shot helper: run @p cells on @p threads workers. */
BatchOutcome runBatch(std::vector<BatchCell> cells, unsigned threads);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_BATCH_HPP
