/**
 * @file
 * Batch experiment engine: runs many (algorithm, variant, dataset)
 * evaluation-matrix cells concurrently on a fixed thread pool.
 *
 * Each cell is independent by construction — runAlgorithm() builds a
 * fresh simulated core per call and datasets are read-only — so the
 * matrix is embarrassingly parallel. Results come back in submission
 * order regardless of completion order, and every cell is bitwise
 * identical to what a serial run would produce (the simulator is
 * deterministic and shares no mutable state across cells).
 */
#ifndef QUETZAL_ALGOS_BATCH_HPP
#define QUETZAL_ALGOS_BATCH_HPP

#include <memory>
#include <vector>

#include "algos/runner.hpp"
#include "common/threadpool.hpp"

namespace quetzal::algos {

/** One queued evaluation-matrix cell. */
struct BatchCell
{
    AlgoKind kind = AlgoKind::Wfa;
    /** Shared so many cells can reference one materialized dataset. */
    std::shared_ptr<const genomics::PairDataset> dataset;
    RunOptions options;
};

/**
 * Collects evaluation cells and runs them on a worker pool.
 *
 * Usage: add() every cell (the returned index identifies its slot),
 * then run() once; results land at the same indices. The runner is
 * single-shot per run() call but can be refilled and rerun.
 */
class BatchRunner
{
  public:
    /** @p threads worker count; <= 1 degrades to a serial loop. */
    explicit BatchRunner(unsigned threads = ThreadPool::hardwareThreads())
        : threads_(threads == 0 ? 1 : threads)
    {}

    /** Queue @p cell; @return its index into run()'s result vector. */
    std::size_t
    add(BatchCell cell)
    {
        fatal_if(!cell.dataset, "BatchRunner cell without a dataset");
        cells_.push_back(std::move(cell));
        return cells_.size() - 1;
    }

    /** Convenience overload building the cell in place. */
    std::size_t
    add(AlgoKind kind,
        std::shared_ptr<const genomics::PairDataset> dataset,
        const RunOptions &options)
    {
        return add(BatchCell{kind, std::move(dataset), options});
    }

    std::size_t size() const { return cells_.size(); }
    unsigned threads() const { return threads_; }

    /**
     * Run every queued cell and clear the queue. The result vector is
     * ordered by submission index; a worker exception (fatal/panic
     * from a cell) rethrows here after the pool drains.
     */
    std::vector<RunResult> run();

  private:
    unsigned threads_;
    std::vector<BatchCell> cells_;
};

/** One-shot helper: run @p cells on @p threads workers. */
std::vector<RunResult> runBatch(std::vector<BatchCell> cells,
                                unsigned threads);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_BATCH_HPP
