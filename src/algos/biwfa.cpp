#include "algos/biwfa.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace quetzal::algos {

namespace {

/** Subproblems at or below this size run plain WFA with traceback. */
constexpr std::size_t kLeafSize = 1024;

/** Diagonal range of wave @p s for an m x n problem. */
void
waveRange(std::int64_t s, std::int64_t m, std::int64_t n, int &lo,
          int &hi)
{
    lo = static_cast<int>(std::max(-m, -s));
    hi = static_cast<int>(std::min(n, s));
}

/**
 * Scan for a forward/reverse meeting: a diagonal k where the text
 * consumed by both sides covers the whole text.
 */
bool
findOverlap(WfaEngine &engine, const Wave &f, const Wave &r,
            std::int64_t m, std::int64_t n, std::int64_t sf,
            std::int64_t sr, Breakpoint &bp)
{
    const int nm = static_cast<int>(n - m);
    const int lo = std::max(f.lo(), nm - r.hi());
    const int hi = std::min(f.hi(), nm - r.lo());
    if (lo > hi)
        return false;
    engine.chargeOverlapCheck(f, r, lo, hi);
    for (int k = lo; k <= hi; ++k) {
        const std::int32_t jf = f.at(k);
        const std::int32_t jvr = r.at(nm - k);
        if (jf == kOffNone || jvr == kOffNone)
            continue;
        if (static_cast<std::int64_t>(jf) + jvr >=
            static_cast<std::int64_t>(n)) {
            // Split where the reverse coverage begins, clamped into
            // the forward run.
            std::int64_t j = n - jvr;
            j = std::max<std::int64_t>(j, std::max<std::int64_t>(k, 0));
            j = std::min<std::int64_t>(
                j, std::min<std::int64_t>(jf,
                                          std::min<std::int64_t>(
                                              n, m + k)));
            bp.i = j - k;
            bp.j = j;
            bp.scoreF = sf;
            bp.scoreR = sr;
            return true;
        }
    }
    return false;
}

/**
 * Score pass with watchdog accounting. BiWFA's rolling storage is
 * O(s) by construction, so only the step ceiling is consulted; a
 * breach throws WfaBudgetExceeded for the callers here to translate
 * (biwfaAlign degrades to pruned WFA, biwfaScore reports terminally).
 */
std::int64_t
scoreImpl(WfaEngine &engine, std::string_view pattern,
          std::string_view text, genomics::ElementSize esize,
          Breakpoint *bp)
{
    if (pattern.empty() || text.empty()) {
        if (bp)
            *bp = Breakpoint{};
        return static_cast<std::int64_t>(
            std::max(pattern.size(), text.size()));
    }

    const auto m = static_cast<std::int64_t>(pattern.size());
    const auto n = static_cast<std::int64_t>(text.size());

    engine.begin(pattern, text, esize);

    Wave fwd(0, 0), rev(0, 0), scratch;
    fwd.set(0, 0);
    rev.set(0, 0);
    engine.extend(fwd, Dir::Fwd);
    engine.extend(rev, Dir::Rev);

    std::int64_t sf = 0, sr = 0;
    Breakpoint found;
    if (findOverlap(engine, fwd, rev, m, n, sf, sr, found)) {
        if (bp)
            *bp = found;
        return 0;
    }

    for (;;) {
        panic_if_not(sf + sr <= m + n,
                     "BiWFA exceeded the m+n score bound");
        engine.noteStep();
        if (engine.budgetExceeded())
            throw WfaBudgetExceeded{engine.stepsUsed(),
                                    engine.waveBytesUsed()};
        if (sf <= sr) {
            int lo, hi;
            waveRange(sf + 1, m, n, lo, hi);
            scratch.reset(lo, hi);
            engine.nextWave(fwd, scratch);
            engine.extend(scratch, Dir::Fwd);
            std::swap(fwd, scratch);
            ++sf;
        } else {
            // The reverse problem aligns reversed pattern/text; its
            // own (m, n) are the same, so ranges match.
            int lo, hi;
            waveRange(sr + 1, m, n, lo, hi);
            scratch.reset(lo, hi);
            engine.nextWave(rev, scratch);
            engine.extend(scratch, Dir::Rev);
            std::swap(rev, scratch);
            ++sr;
        }
        if (findOverlap(engine, fwd, rev, m, n, sf, sr, found)) {
            if (bp)
                *bp = found;
            return sf + sr;
        }
    }
}

} // namespace

std::int64_t
biwfaScore(WfaEngine &engine, std::string_view pattern,
           std::string_view text, genomics::ElementSize esize,
           Breakpoint *bp)
{
    try {
        return scoreImpl(engine, pattern, text, esize, bp);
    } catch (const WfaBudgetExceeded &e) {
        // Score-only callers need the exact score; no degraded mode.
        const std::string msg = qformat(
            "BiWFA step budget exhausted (pair {}x{}: {} steps / "
            "ceiling {})",
            pattern.size(), text.size(), e.steps,
            engine.budget().maxSteps);
        std::fputs(("fatal: " + msg + "\n").c_str(), stderr);
        throw ResourceError(msg);
    }
}

AlignResult
biwfaAlign(WfaEngine &engine, std::string_view pattern,
           std::string_view text, bool traceback,
           genomics::ElementSize esize)
{
    const auto m = static_cast<std::int64_t>(pattern.size());
    const auto n = static_cast<std::int64_t>(text.size());

    // Small problems (and empty sides) go straight to WFA: the
    // wavefront table fits comfortably, which is exactly when BiWFA's
    // recursion bottoms out.
    if (std::max(pattern.size(), text.size()) <= kLeafSize)
        return wfaAlign(engine, pattern, text, traceback, esize);

    Breakpoint bp;
    std::int64_t score;
    try {
        score = scoreImpl(engine, pattern, text, esize, &bp);
    } catch (const WfaBudgetExceeded &) {
        // Watchdog fired mid-meet: degrade this subproblem to the
        // pruned unidirectional variant. As in wfaAlign's own retry,
        // the step ceiling is lifted (pruning bounds per-step work
        // instead; steps track the score, which pruning cannot
        // shrink) while the memory ceiling stays enforced — wfaAlign
        // raises a terminal ResourceError if even the pruned pass
        // breaches it.
        WfaHeuristic fallback;
        fallback.maxLag = engine.budget().fallbackLag;
        const ResourceBudget saved = engine.budget();
        ResourceBudget relaxed = saved;
        relaxed.maxSteps = 0;
        engine.setBudget(relaxed);
        AlignResult out;
        try {
            out = wfaAlign(engine, pattern, text, traceback, esize,
                           fallback);
        } catch (...) {
            engine.setBudget(saved);
            throw;
        }
        engine.setBudget(saved);
        out.degraded = true;
        return out;
    }
    if (!traceback)
        return AlignResult{score, {}};

    // Degenerate splits cannot shrink the problem; fall back.
    const bool degenerate = (bp.i <= 0 && bp.j <= 0) ||
                            (bp.i >= m && bp.j >= n);
    if (degenerate)
        return wfaAlign(engine, pattern, text, traceback, esize);

    const auto i = static_cast<std::size_t>(bp.i);
    const auto j = static_cast<std::size_t>(bp.j);
    AlignResult left = biwfaAlign(engine, pattern.substr(0, i),
                                  text.substr(0, j), traceback, esize);
    AlignResult right = biwfaAlign(engine, pattern.substr(i),
                                   text.substr(j), traceback, esize);

    AlignResult out;
    out.score = left.score + right.score;
    out.cigar.ops = std::move(left.cigar.ops);
    out.cigar.ops += right.cigar.ops;
    out.degraded = left.degraded || right.degraded;
    return out;
}

} // namespace quetzal::algos
