#include "algos/shouji.hpp"

#include <algorithm>
#include <vector>

#include "common/bitutil.hpp"
#include "common/logging.hpp"
#include "isa/scalarunit.hpp"

namespace quetzal::algos {

using genomics::ElementSize;
using isa::Pred;
using isa::VReg;

namespace {

enum Site : std::uint64_t
{
    kSitePat = 0x700,
    kSiteTxt = 0x701,
    kSiteBits = 0x702,
};

/** Match bit-vectors, one per diagonal, bit i = (p[i] == t[i+k]). */
struct NeighborhoodMap
{
    std::int64_t length = 0; //!< pattern length in bits
    int kLo = 0;
    std::vector<std::vector<std::uint64_t>> rows; //!< [k - kLo]

    bool
    bit(int k, std::int64_t i) const
    {
        const auto &row = rows[static_cast<std::size_t>(k - kLo)];
        return (row[static_cast<std::size_t>(i) / 64] >>
                (static_cast<std::size_t>(i) % 64)) &
               1;
    }
};

/** Functional map construction (golden model). */
NeighborhoodMap
buildMap(std::string_view p, std::string_view t, std::int64_t e)
{
    NeighborhoodMap map;
    map.length = static_cast<std::int64_t>(p.size());
    map.kLo = static_cast<int>(-e);
    const auto n = static_cast<std::int64_t>(t.size());
    const std::size_t words =
        divCeil(static_cast<std::uint64_t>(map.length), 64);
    map.rows.assign(static_cast<std::size_t>(2 * e + 1),
                    std::vector<std::uint64_t>(words, 0));
    for (int k = map.kLo; k <= static_cast<int>(e); ++k) {
        auto &row = map.rows[static_cast<std::size_t>(k - map.kLo)];
        for (std::int64_t i = 0; i < map.length; ++i) {
            const std::int64_t j = i + k;
            if (j < 0 || j >= n)
                continue;
            if (p[static_cast<std::size_t>(i)] ==
                t[static_cast<std::size_t>(j)])
                row[static_cast<std::size_t>(i) / 64] |=
                    std::uint64_t{1}
                    << (static_cast<std::size_t>(i) % 64);
        }
    }
    return map;
}

/** Charge the map construction per variant. */
void
chargeBuild(Variant variant, std::int64_t m, std::int64_t diagonals,
            isa::VectorUnit *vpu, accel::QzUnit *qz,
            std::string_view p, std::string_view t)
{
    switch (variant) {
      case Variant::Ref:
        return;
      case Variant::Base: {
        // Word-wise scalar (the reference Shouji builds its bit-
        // vectors with 64-bit ops): two 8-byte loads + xor/pack per
        // eight cells of a diagonal.
        isa::BaseUnit bu(vpu->pipeline());
        for (std::int64_t k = 0; k < diagonals; ++k) {
            bu.cut();
            for (std::int64_t i = 0; i < m; i += 8) {
                bu.loadChar(kSitePat, p.data() + i % p.size());
                bu.loadChar(kSiteTxt, t.data() + i % t.size());
                bu.alu(3);
                bu.branch();
            }
        }
        return;
      }
      case Variant::Vec: {
        // Contiguous 16-char compares per diagonal (no gathers:
        // a fixed diagonal is a unit-stride stream). The diagonal
        // offset wraps around the sequence, so the modeled cnt-byte
        // read must be pulled back from the tail to stay in bounds.
        auto inBounds = [](std::string_view s, std::int64_t i,
                           unsigned cnt) {
            const std::size_t span =
                std::min<std::size_t>(cnt, s.size());
            return s.data() +
                   std::min(static_cast<std::size_t>(i) % s.size(),
                            s.size() - span);
        };
        for (std::int64_t k = 0; k < diagonals; ++k) {
            for (std::int64_t i = 0; i < m; i += 16) {
                const unsigned cnt = static_cast<unsigned>(
                    std::min<std::int64_t>(16, m - i));
                const VReg pc = vpu->load8to32(
                    kSitePat, inBounds(p, i, cnt),
                    std::min<unsigned>(
                        cnt, static_cast<unsigned>(p.size())));
                const VReg tc = vpu->load8to32(
                    kSiteTxt, inBounds(t, i, cnt),
                    std::min<unsigned>(
                        cnt, static_cast<unsigned>(t.size())));
                const Pred lanes = vpu->whilelt(0, cnt, 16);
                vpu->cmpeq32(pc, tc, lanes, 16);
                vpu->scalarOps(1); // pack bits + store
            }
        }
        return;
      }
      case Variant::Qz:
      case Variant::QzC: {
        // Sequences staged once; each qzmhm<xor> covers a 32-base
        // window per lane, bits derived with a couple of vector ops.
        qz->qzconf(p.size(), t.size(), ElementSize::Bits2);
        qz->stageSequence2bit(accel::QzSel::Buf0, p);
        qz->stageSequence2bit(accel::QzSel::Buf1, t);
        const Pred p8 = vpu->pTrue(8);
        for (std::int64_t k = 0; k < diagonals; ++k) {
            for (std::int64_t i = 0; i < m; i += 256) {
                VReg idx0, idx1;
                for (unsigned l = 0; l < 8; ++l) {
                    const std::uint64_t base = std::min<std::uint64_t>(
                        static_cast<std::uint64_t>(i) + 32 * l,
                        p.size() - 1);
                    idx0.setU64(l, base);
                    idx1.setU64(l, std::min<std::uint64_t>(
                                       base, t.size() - 1));
                }
                const VReg x = qz->qzmhm(accel::QzOpn::XorWin, idx0,
                                         idx1, p8, 8);
                // 2-bit pairs -> per-base match bits: or + not + pack.
                vpu->or64(x, x);
                vpu->scalarOps(2);
            }
        }
        return;
      }
    }
}

/** Charge the sliding-window selection per variant. */
void
chargeSelect(Variant variant, std::int64_t windows,
             std::int64_t diagonals, isa::VectorUnit *vpu)
{
    if (variant == Variant::Ref)
        return;
    if (variant == Variant::Base) {
        // Register-resident bit manipulation: one word load per
        // window, then shift/popcount/max per diagonal.
        isa::BaseUnit bu(vpu->pipeline());
        for (std::int64_t w = 0; w < windows; ++w) {
            bu.cut();
            bu.loadInt(kSiteBits,
                       reinterpret_cast<const std::int32_t *>(&w));
            for (std::int64_t k = 0; k < diagonals; ++k)
                bu.alu(3); // extract 4 bits + popcount + max
            bu.branch();
        }
        return;
    }
    // Vector variants scan 16 diagonals per step.
    for (std::int64_t w = 0; w < windows; ++w) {
        for (std::int64_t k = 0; k < diagonals; k += 16) {
            vpu->scalarOps(1); // window extract
            vpu->pipeline().executeOp(sim::OpClass::VecAlu, {});
            vpu->pipeline().executeOp(sim::OpClass::VecReduce, {});
        }
        vpu->scalarOps(2); // OR the winning segment into S
    }
}

} // namespace

ShoujiResult
shouji(Variant variant, std::string_view pattern, std::string_view text,
       std::int64_t editThreshold, isa::VectorUnit *vpu,
       accel::QzUnit *qz)
{
    fatal_if(pattern.empty() || text.empty(),
             "Shouji requires non-empty sequences");
    fatal_if(editThreshold <= 0,
             "Shouji needs a positive edit threshold");
    if (variant != Variant::Ref)
        panic_if_not(vpu != nullptr, "timed Shouji needs a VectorUnit");
    if (needsQuetzal(variant))
        panic_if_not(qz != nullptr, "QUETZAL Shouji needs a QzUnit");

    const auto m = static_cast<std::int64_t>(pattern.size());
    const std::int64_t e = editThreshold;
    const std::int64_t diagonals = 2 * e + 1;

    const NeighborhoodMap map = buildMap(pattern, text, e);
    chargeBuild(variant, m, diagonals, vpu, qz, pattern, text);

    // Sliding 4-column windows: keep the best diagonal segment.
    constexpr std::int64_t kWindow = 4;
    std::vector<bool> sBits(static_cast<std::size_t>(m), false);
    const std::int64_t windows = std::max<std::int64_t>(1, m - kWindow + 1);
    for (std::int64_t w = 0; w < windows; ++w) {
        int bestK = map.kLo;
        int bestCount = -1;
        for (int k = map.kLo; k <= static_cast<int>(e); ++k) {
            int count = 0;
            for (std::int64_t c = 0; c < kWindow && w + c < m; ++c)
                count += map.bit(k, w + c);
            if (count > bestCount) {
                bestCount = count;
                bestK = k;
            }
        }
        for (std::int64_t c = 0; c < kWindow && w + c < m; ++c)
            if (map.bit(bestK, w + c))
                sBits[static_cast<std::size_t>(w + c)] = true;
    }
    chargeSelect(variant, windows, diagonals, vpu);

    ShoujiResult result;
    for (bool bit : sBits)
        result.zeroCount += bit ? 0 : 1;
    result.accepted = result.zeroCount <= editThreshold;
    return result;
}

} // namespace quetzal::algos
