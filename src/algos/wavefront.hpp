/**
 * @file
 * Wavefront storage shared by WFA and BiWFA.
 *
 * A Wave holds the furthest-reaching text offsets for every diagonal
 * in [lo, hi] at a given score. The backing array is padded with
 * invalid sentinels on both sides so the vectorized kernels can load
 * k-1 / k+1 neighbours and full 16-element batches without bounds
 * branches — the same trick real SIMD WFA implementations use.
 */
#ifndef QUETZAL_ALGOS_WAVEFRONT_HPP
#define QUETZAL_ALGOS_WAVEFRONT_HPP

#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "common/logging.hpp"

namespace quetzal::algos {

/** Invalid-offset sentinel; stays negative under +1 arithmetic. */
inline constexpr std::int32_t kOffNone =
    std::numeric_limits<std::int32_t>::min() / 4;

/**
 * Per-thread buffer pool for wavefront storage with exact-size-class
 * LIFO recycling (memory is never returned to the system).
 *
 * Waves are the simulator's hottest sim-visible scratch, and
 * wavefront algorithms free and reallocate them constantly (BiWFA's
 * swap/reset loop, per-segment teardown). Under glibc, whether such a
 * request reuses a just-freed chunk depends on heap state left behind
 * by earlier work, so the address-collision pattern — which the
 * memory-system translation layer turns into cache behavior — would
 * differ between a serial and a parallel batch run. With exact size
 * classes and LIFO reuse, a free followed by a same-size allocation
 * always recycles the same buffer regardless of pool state, so a
 * cell's collision pattern depends only on its own alloc/free
 * sequence and simulated timings are reproducible.
 */
class WavePool
{
  public:
    std::int32_t *
    take(std::size_t elems)
    {
        auto it = free_.find(elems);
        if (it != free_.end() && !it->second.empty()) {
            std::int32_t *p = it->second.back();
            it->second.pop_back();
            return p;
        }
        slabs_.push_back(std::make_unique<std::int32_t[]>(elems));
        return slabs_.back().get();
    }

    void
    give(std::int32_t *ptr, std::size_t elems)
    {
        free_[elems].push_back(ptr);
    }

    static WavePool &
    local()
    {
        static thread_local WavePool pool;
        return pool;
    }

  private:
    std::map<std::size_t, std::vector<std::int32_t *>> free_;
    std::vector<std::unique_ptr<std::int32_t[]>> slabs_;
};

/** Pool-backed int32 buffer used as Wave storage. */
class WaveStorage
{
  public:
    WaveStorage() = default;
    WaveStorage(const WaveStorage &other) { copyFrom(other); }
    WaveStorage(WaveStorage &&other) noexcept { steal(other); }

    WaveStorage &
    operator=(const WaveStorage &other)
    {
        if (this != &other) {
            release();
            copyFrom(other);
        }
        return *this;
    }

    WaveStorage &
    operator=(WaveStorage &&other) noexcept
    {
        if (this != &other) {
            release();
            steal(other);
        }
        return *this;
    }

    ~WaveStorage() { release(); }

    /** Resize to @p n elements, all set to @p value. */
    void
    assign(std::size_t n, std::int32_t value)
    {
        if (n > cap_) {
            release();
            data_ = WavePool::local().take(n);
            cap_ = n;
        }
        size_ = n;
        for (std::size_t i = 0; i < n; ++i)
            data_[i] = value;
    }

    std::size_t size() const { return size_; }
    std::int32_t *data() { return data_; }
    const std::int32_t *data() const { return data_; }
    std::int32_t &operator[](std::size_t i) { return data_[i]; }
    std::int32_t operator[](std::size_t i) const { return data_[i]; }

  private:
    void
    release()
    {
        if (data_)
            WavePool::local().give(data_, cap_);
        data_ = nullptr;
        size_ = cap_ = 0;
    }

    void
    copyFrom(const WaveStorage &other)
    {
        if (other.size_ > 0) {
            data_ = WavePool::local().take(other.size_);
            cap_ = size_ = other.size_;
            std::memcpy(data_, other.data_,
                        size_ * sizeof(std::int32_t));
        }
    }

    void
    steal(WaveStorage &other) noexcept
    {
        data_ = other.data_;
        size_ = other.size_;
        cap_ = other.cap_;
        other.data_ = nullptr;
        other.size_ = other.cap_ = 0;
    }

    std::int32_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
};

/** One wavefront: offsets for diagonals lo..hi at a fixed score. */
class Wave
{
  public:
    /** Sentinel padding on each side (covers a 16-lane overshoot). */
    static constexpr int kPad = 18;

    Wave() = default;

    /** Construct covering diagonals [lo, hi], all offsets invalid. */
    Wave(int lo, int hi) { reset(lo, hi); }

    /** Reinitialize to [lo, hi] with every offset invalid. */
    void
    reset(int lo, int hi)
    {
        panic_if_not(lo <= hi, "wave range [{}, {}] inverted", lo, hi);
        lo_ = lo;
        hi_ = hi;
        data_.assign(static_cast<std::size_t>(hi - lo + 1) + 2 * kPad,
                     kOffNone);
    }

    int lo() const { return lo_; }
    int hi() const { return hi_; }
    bool contains(int k) const { return k >= lo_ && k <= hi_; }

    /** Offset for diagonal @p k (must be within [lo-kPad, hi+kPad]). */
    std::int32_t
    at(int k) const
    {
        return data_[index(k)];
    }

    void
    set(int k, std::int32_t offset)
    {
        data_[index(k)] = offset;
    }

    /** Host pointer for diagonal @p k (for the timed vector kernels). */
    std::int32_t *ptr(int k) { return data_.data() + index(k); }
    const std::int32_t *ptr(int k) const
    {
        return data_.data() + index(k);
    }

  private:
    std::size_t
    index(int k) const
    {
        const long idx = static_cast<long>(k) - lo_ + kPad;
        panic_if_not(idx >= 0 &&
                         idx < static_cast<long>(data_.size()),
                     "diagonal {} outside wave [{}, {}] incl. padding",
                     k, lo_, hi_);
        return static_cast<std::size_t>(idx);
    }

    int lo_ = 0;
    int hi_ = 0;
    WaveStorage data_;
};

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_WAVEFRONT_HPP
