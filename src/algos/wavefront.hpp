/**
 * @file
 * Wavefront storage shared by WFA and BiWFA.
 *
 * A Wave holds the furthest-reaching text offsets for every diagonal
 * in [lo, hi] at a given score. The backing array is padded with
 * invalid sentinels on both sides so the vectorized kernels can load
 * k-1 / k+1 neighbours and full 16-element batches without bounds
 * branches — the same trick real SIMD WFA implementations use.
 */
#ifndef QUETZAL_ALGOS_WAVEFRONT_HPP
#define QUETZAL_ALGOS_WAVEFRONT_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.hpp"

namespace quetzal::algos {

/** Invalid-offset sentinel; stays negative under +1 arithmetic. */
inline constexpr std::int32_t kOffNone =
    std::numeric_limits<std::int32_t>::min() / 4;

/** One wavefront: offsets for diagonals lo..hi at a fixed score. */
class Wave
{
  public:
    /** Sentinel padding on each side (covers a 16-lane overshoot). */
    static constexpr int kPad = 18;

    Wave() = default;

    /** Construct covering diagonals [lo, hi], all offsets invalid. */
    Wave(int lo, int hi) { reset(lo, hi); }

    /** Reinitialize to [lo, hi] with every offset invalid. */
    void
    reset(int lo, int hi)
    {
        panic_if_not(lo <= hi, "wave range [{}, {}] inverted", lo, hi);
        lo_ = lo;
        hi_ = hi;
        data_.assign(static_cast<std::size_t>(hi - lo + 1) + 2 * kPad,
                     kOffNone);
    }

    int lo() const { return lo_; }
    int hi() const { return hi_; }
    bool contains(int k) const { return k >= lo_ && k <= hi_; }

    /** Offset for diagonal @p k (must be within [lo-kPad, hi+kPad]). */
    std::int32_t
    at(int k) const
    {
        return data_[index(k)];
    }

    void
    set(int k, std::int32_t offset)
    {
        data_[index(k)] = offset;
    }

    /** Host pointer for diagonal @p k (for the timed vector kernels). */
    std::int32_t *ptr(int k) { return data_.data() + index(k); }
    const std::int32_t *ptr(int k) const
    {
        return data_.data() + index(k);
    }

  private:
    std::size_t
    index(int k) const
    {
        const long idx = static_cast<long>(k) - lo_ + kPad;
        panic_if_not(idx >= 0 &&
                         idx < static_cast<long>(data_.size()),
                     "diagonal {} outside wave [{}, {}] incl. padding",
                     k, lo_, hi_);
        return static_cast<std::size_t>(idx);
    }

    int lo_ = 0;
    int hi_ = 0;
    std::vector<std::int32_t> data_;
};

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_WAVEFRONT_HPP
