/**
 * @file
 * Algorithm-variant taxonomy matching the paper's evaluation bars.
 */
#ifndef QUETZAL_ALGOS_VARIANT_HPP
#define QUETZAL_ALGOS_VARIANT_HPP

#include <string_view>

namespace quetzal::algos {

/** Which implementation of an algorithm runs. */
enum class Variant
{
    Ref,  //!< untimed functional reference (golden model)
    Base, //!< timed scalar baseline (compiler auto-vectorization proxy)
    Vec,  //!< timed SVE-intrinsics implementation ("VEC" in the paper)
    Qz,   //!< QBUFFERs only ("QUETZAL")
    QzC,  //!< QBUFFERs + count ALU ("QUETZAL+C")
};

/** Display name matching the paper's figures. */
constexpr std::string_view
variantName(Variant v)
{
    switch (v) {
      case Variant::Ref:
        return "REF";
      case Variant::Base:
        return "BASE";
      case Variant::Vec:
        return "VEC";
      case Variant::Qz:
        return "QUETZAL";
      case Variant::QzC:
        return "QUETZAL+C";
    }
    return "?";
}

/** True when the variant needs QUETZAL hardware. */
constexpr bool
needsQuetzal(Variant v)
{
    return v == Variant::Qz || v == Variant::QzC;
}

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_VARIANT_HPP
